"""Benchmark models for the block-execution perf harness.

Two representative workloads:

* :func:`build_adc_chain` — a TDF-heavy signal chain where every module
  is block-capable (sources, amplifier, FIR, quantizer, IIR, sink).
  This is the workload the compiled-schedule / batched execution engine
  is designed to accelerate.
* :func:`build_mixed_chain` — a mixed-signal chain with an embedded
  continuous-time solver (``ElnTdfModule``).  The per-activation solver
  lockstep bounds the achievable speedup; this model tracks how much
  the surrounding dataflow overhead still shrinks.
* :func:`build_eln_ladder` — an ELN-heavy workload: a long RC ladder
  whose MNA system (>= :data:`LADDER_NODES` unknowns) auto-selects the
  sparse solver variant.  This model exercises the sparse assembly /
  factorization-reuse path rather than the dataflow engine.

Both builders return a top-level module exposing ``.sink`` (a
:class:`repro.lib.TdfSink`); :func:`sink_streams` extracts the recorded
(times, samples) arrays for equivalence checks.
"""

import numpy as np

from repro.core import Module, SimTime
from repro.eln import Capacitor, Network, Resistor, Vsource
from repro.lib import (
    Add2,
    FirFilter,
    GaussianNoiseSource,
    IdealAdc,
    IirFilter,
    Mixer,
    SaturatingAmp,
    SineSource,
    TdfSink,
    butterworth_lowpass_sections,
    fir_lowpass,
)
from repro.sync import ElnTdfModule
from repro.tdf import TdfSignal

#: base sample rate of both models (1 MHz, 1 us timestep).
FS = 1e6


def _us(x: float) -> SimTime:
    return SimTime(x, "us")


class AdcChainTop(Module):
    """tone+noise -> add -> saturating amp -> FIR -> ADC -> IIR -> sink."""

    def __init__(self):
        super().__init__("adc_chain")
        self.s_tone = TdfSignal("s_tone")
        self.s_noise = TdfSignal("s_noise")
        self.s_sum = TdfSignal("s_sum")
        self.s_amp = TdfSignal("s_amp")
        self.s_fir = TdfSignal("s_fir")
        self.s_adc = TdfSignal("s_adc")
        self.s_iir = TdfSignal("s_iir")

        self.tone = SineSource("tone", 17.3e3, amplitude=0.7,
                               parent=self, timestep=_us(1))
        self.noise = GaussianNoiseSource("noise", rms=1e-3, seed=7,
                                         parent=self)
        self.add = Add2("add", parent=self)
        self.amp = SaturatingAmp("amp", gain=1.2, limit=1.0, mode="tanh",
                                 parent=self)
        self.fir = FirFilter("fir", fir_lowpass(63, 40e3, FS),
                             parent=self)
        self.adc = IdealAdc("adc", bits=10, parent=self)
        self.iir = IirFilter(
            "iir", butterworth_lowpass_sections(4, 50e3, FS),
            parent=self,
        )
        self.sink = TdfSink("sink", parent=self)

        self.tone.out(self.s_tone)
        self.noise.out(self.s_noise)
        self.add.a(self.s_tone)
        self.add.b(self.s_noise)
        self.add.out(self.s_sum)
        self.amp.inp(self.s_sum)
        self.amp.out(self.s_amp)
        self.fir.inp(self.s_amp)
        self.fir.out(self.s_fir)
        self.adc.inp(self.s_fir)
        self.adc.out(self.s_adc)
        self.iir.inp(self.s_adc)
        self.iir.out(self.s_iir)
        self.sink.inp(self.s_iir)


class MixedChainTop(Module):
    """sine -> RC network (CT solver) -> mixer (x LO sine) -> sink."""

    def __init__(self):
        super().__init__("mixed_chain")
        net = Network("rc")
        net.add(Vsource("Vin", "in", "0"))
        net.add(Resistor("R1", "in", "out", 1e3))
        net.add(Capacitor("C1", "out", "0", 1e-9))

        self.s_src = TdfSignal("s_src")
        self.s_rc = TdfSignal("s_rc")
        self.s_lo = TdfSignal("s_lo")
        self.s_mix = TdfSignal("s_mix")

        self.src = SineSource("src", 21e3, amplitude=0.9,
                              parent=self, timestep=_us(1))
        self.rc = ElnTdfModule("rc", net, parent=self)
        self.lo = SineSource("lo", 100e3, parent=self)
        self.mixer = Mixer("mixer", parent=self)
        self.sink = TdfSink("sink", parent=self)

        self.src.out(self.s_src)
        self.rc.drive_voltage("Vin")(self.s_src)
        self.rc.sample_voltage("out")(self.s_rc)
        self.lo.out(self.s_lo)
        self.mixer.rf(self.s_rc)
        self.mixer.lo(self.s_lo)
        self.mixer.out(self.s_mix)
        self.sink.inp(self.s_mix)


#: RC-ladder node count of the ELN-heavy model (257 MNA unknowns:
#: 256 node voltages + the source branch current — large enough that
#: the "auto" variant selects the sparse path).
LADDER_NODES = 256


def ladder_network(name: str, nodes: int, r: float = 10.0,
                   c: float = 1e-10) -> Network:
    """An ``nodes``-section RC ladder driven at ``n1``.

    ``Vin`` drives node ``n1``; section ``k`` is a series resistor from
    ``n<k>`` to ``n<k+1>`` with a shunt capacitor to ground.
    """
    net = Network(name)
    net.add(Vsource("Vin", "n1", "0"))
    for k in range(1, nodes):
        net.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}", r))
        net.add(Capacitor(f"C{k}", f"n{k + 1}", "0", c))
    return net


class ElnLadderTop(Module):
    """sine -> 256-section RC ladder (sparse MNA solver) -> sink."""

    def __init__(self):
        super().__init__("eln_ladder")
        net = ladder_network("ladder", LADDER_NODES)

        self.s_src = TdfSignal("s_src")
        self.s_out = TdfSignal("s_out")

        self.src = SineSource("src", 5e3, amplitude=1.0,
                              parent=self, timestep=_us(1))
        self.line = ElnTdfModule("line", net, parent=self)
        self.sink = TdfSink("sink", parent=self)

        self.src.out(self.s_src)
        self.line.drive_voltage("Vin")(self.s_src)
        self.line.sample_voltage(f"n{LADDER_NODES}")(self.s_out)
        self.sink.inp(self.s_out)


def build_adc_chain() -> Module:
    return AdcChainTop()


def build_mixed_chain() -> Module:
    return MixedChainTop()


def build_eln_ladder() -> Module:
    return ElnLadderTop()


#: name -> (builder, full-run duration in us, quick duration in us)
MODELS = {
    "adc_chain": (build_adc_chain, 200_000.0, 20_000.0),
    "mixed_chain": (build_mixed_chain, 30_000.0, 5_000.0),
    "eln_ladder": (build_eln_ladder, 20_000.0, 2_500.0),
}


def sink_streams(top: Module):
    """(times, samples) arrays recorded by the model's sink."""
    times, samples = top.sink.as_arrays()
    return np.asarray(times, dtype=float), np.asarray(samples, dtype=float)
