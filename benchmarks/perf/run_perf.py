"""Block-execution perf harness: scalar vs compiled/batched TDF runs.

For each model in :mod:`models` the harness runs the same simulation
twice — once with ``tdf_block=False`` (the scalar reference engine) and
once with block mode on — checks the recorded output streams are
bit-identical, and reports samples/sec plus the block/scalar speedup.
A third short profiled run (``Simulator.enable_profiling``) attributes
wall-clock time to individual modules.

Usage::

    python benchmarks/perf/run_perf.py                # full run
    python benchmarks/perf/run_perf.py --quick        # CI-sized run
    python benchmarks/perf/run_perf.py --output BENCH_PR3.json
    python benchmarks/perf/run_perf.py --quick \
        --check-regression BENCH_PR3.json             # gate CI

The regression gate compares *speedups* (block vs scalar on the same
machine and run size), not absolute samples/sec, so a committed
baseline stays meaningful across hardware: the run fails when any
model's speedup drops more than ``--threshold`` (default 20%) below
the baseline, or when any equivalence check fails.
"""

import argparse
import json
import os
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
for path in (os.path.join(ROOT, "src"), HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

import numpy as np  # noqa: E402

from models import MODELS, sink_streams  # noqa: E402
from repro.core import SimTime, Simulator  # noqa: E402

#: batching configuration for the block runs: large batches amortize
#: the numpy dispatch, and the compaction interval must not fragment
#: them (batches never cross a compaction boundary).
BLOCK_BATCH = 512
BLOCK_COMPACT = 4096


def run_model(builder, duration_us: float, *, block: bool,
              profile: bool = False):
    """One timed simulation.

    Returns ``(wall_s, cpu_s, times, samples, sim)`` — wall clock for
    human-facing throughput, process CPU time for the regression gate
    (insensitive to other load on the machine).
    """
    top = builder()
    sim = Simulator(
        top,
        tdf_block=block,
        tdf_batch=BLOCK_BATCH if block else 1,
        tdf_compact_every=BLOCK_COMPACT,
    )
    if profile:
        sim.enable_profiling()
    sim.elaborate()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    sim.run(SimTime(duration_us, "us"))
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    times, samples = sink_streams(top)
    return wall, cpu, times, samples, sim


def measure(name: str, builder, duration_us: float,
            repeats: int = 2) -> dict:
    # Best-of-N on both engines damps scheduler noise so the CI
    # regression gate is judging the code, not the machine load; the
    # gated speedup uses CPU time for the same reason.
    scalar_w = scalar_c = np.inf
    block_w = block_c = np.inf
    t_ref = x_ref = t_blk = x_blk = None
    for _ in range(repeats):
        wall, cpu, t_ref, x_ref, _ = run_model(builder, duration_us,
                                               block=False)
        scalar_w, scalar_c = min(scalar_w, wall), min(scalar_c, cpu)
        wall, cpu, t_blk, x_blk, _ = run_model(builder, duration_us,
                                               block=True)
        block_w, block_c = min(block_w, wall), min(block_c, cpu)
    equivalent = (np.array_equal(t_ref, t_blk)
                  and np.array_equal(x_ref, x_blk))
    samples = int(len(x_ref))
    return {
        "samples": samples,
        "scalar_seconds": scalar_w,
        "block_seconds": block_w,
        "scalar_cpu_seconds": scalar_c,
        "block_cpu_seconds": block_c,
        "scalar_samples_per_sec": samples / scalar_w,
        "block_samples_per_sec": samples / block_w,
        "speedup": scalar_c / block_c,
        "equivalent": bool(equivalent),
    }


def profile_model(builder, duration_us: float, top_n: int = 8) -> dict:
    """Per-module seconds from a short profiled block run."""
    _wall, _cpu, _t, _x, sim = run_model(builder, duration_us,
                                         block=True, profile=True)
    seconds: dict[str, float] = {}
    for cluster in sim.profile()["clusters"].values():
        seconds.update(cluster["module_seconds"])
    ranked = sorted(seconds.items(), key=lambda kv: -kv[1])[:top_n]
    return {module: round(secs, 6) for module, secs in ranked}


def run_suite(quick: bool) -> dict:
    report = {
        "schema": "repro-perf/1",
        "mode": "quick" if quick else "full",
        "tdf_batch": BLOCK_BATCH,
        "benchmarks": {},
        "profile": {},
    }
    for name, (builder, full_us, quick_us) in MODELS.items():
        duration = quick_us if quick else full_us
        print(f"[perf] {name}: {duration:.0f} us simulated ...",
              flush=True)
        result = measure(name, builder, duration)
        report["benchmarks"][name] = result
        print(f"[perf]   scalar {result['scalar_samples_per_sec']:.0f} "
              f"samples/s, block {result['block_samples_per_sec']:.0f} "
              f"samples/s, speedup {result['speedup']:.2f}x, "
              f"equivalent={result['equivalent']}", flush=True)
        report["profile"][name] = profile_model(
            builder, min(duration, quick_us)
        )
    return report


def check_regression(report: dict, baseline_path: str,
                     threshold: float) -> list[str]:
    """Failure messages (empty = pass).

    Speedups are only compared against the baseline section recorded
    in the *same* run mode — quick runs amortize elaboration and
    warm-up less, so their speedups sit systematically below full-run
    numbers.
    """
    failures = []
    for name, result in report["benchmarks"].items():
        if not result["equivalent"]:
            failures.append(
                f"{name}: block output diverges from scalar reference"
            )
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except OSError:
        failures.append(f"baseline {baseline_path!r} not readable")
        return failures
    section = baseline.get("runs", {}).get(report["mode"])
    if section is None:
        failures.append(
            f"baseline {baseline_path!r} has no "
            f"{report['mode']!r}-mode section"
        )
        return failures
    for name, result in report["benchmarks"].items():
        base = section.get("benchmarks", {}).get(name)
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - threshold)
        if result["speedup"] < floor:
            failures.append(
                f"{name}: speedup {result['speedup']:.2f}x fell more "
                f"than {threshold:.0%} below baseline "
                f"{base['speedup']:.2f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized runs (~10x shorter)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--baseline", action="store_true",
                        help="with --output: run BOTH modes and write "
                        "a two-section baseline usable by "
                        "--check-regression in either mode")
    parser.add_argument("--check-regression", metavar="BASELINE",
                        default=None,
                        help="compare against a committed report; "
                        "exit non-zero on equivalence failure or "
                        "speedup regression")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional speedup regression "
                        "(default 0.20)")
    args = parser.parse_args(argv)

    if args.baseline:
        if not args.output:
            parser.error("--baseline requires --output")
        payload = {
            "schema": "repro-perf/1",
            "tdf_batch": BLOCK_BATCH,
            "runs": {
                "full": run_suite(False),
                "quick": run_suite(True),
            },
        }
        report = payload["runs"]["full"]
    else:
        report = run_suite(args.quick)
        payload = report

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[perf] report written to {args.output}")

    status = 0
    if args.check_regression:
        failures = check_regression(report, args.check_regression,
                                    args.threshold)
        for message in failures:
            print(f"[perf] FAIL: {message}", file=sys.stderr)
        status = 1 if failures else 0
    else:
        for name, result in report["benchmarks"].items():
            if not result["equivalent"]:
                print(f"[perf] FAIL: {name}: block output diverges "
                      "from scalar reference", file=sys.stderr)
                status = 1
    print(json.dumps(
        {name: round(r["speedup"], 2)
         for name, r in report["benchmarks"].items()},
        indent=None))
    return status


if __name__ == "__main__":
    sys.exit(main())
