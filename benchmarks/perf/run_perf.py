"""Block-execution perf harness: scalar vs compiled/batched TDF runs.

For each model in :mod:`models` the harness runs the same simulation
twice — once with ``tdf_block=False`` (the scalar reference engine) and
once with block mode on — checks the recorded output streams are
bit-identical, and reports samples/sec plus the block/scalar speedup.
A third short profiled run (``Simulator.enable_profiling``) attributes
wall-clock time to individual modules.

Usage::

    python benchmarks/perf/run_perf.py                # full run
    python benchmarks/perf/run_perf.py --quick        # CI-sized run
    python benchmarks/perf/run_perf.py --output BENCH_PR3.json
    python benchmarks/perf/run_perf.py --quick \
        --check-regression BENCH_PR3.json             # gate CI

The regression gate compares *speedups* (block vs scalar on the same
machine and run size), not absolute samples/sec, so a committed
baseline stays meaningful across hardware: the run fails when any
model's speedup drops more than ``--threshold`` (default 20%) below
the baseline, or when any equivalence check fails.
"""

import argparse
import json
import os
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
for path in (os.path.join(ROOT, "src"), HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

import numpy as np  # noqa: E402

from models import MODELS, ladder_network, sink_streams  # noqa: E402
from repro.core import SimTime, Simulator  # noqa: E402
from repro.ct.linear import make_stepper  # noqa: E402
from repro.eln import Capacitor, Isource, Network, Resistor  # noqa: E402

#: batching configuration for the block runs: large batches amortize
#: the numpy dispatch, and the compaction interval must not fragment
#: them (batches never cross a compaction boundary).
BLOCK_BATCH = 512
BLOCK_COMPACT = 4096


def run_model(builder, duration_us: float, *, block: bool,
              profile: bool = False):
    """One timed simulation.

    Returns ``(wall_s, cpu_s, times, samples, sim)`` — wall clock for
    human-facing throughput, process CPU time for the regression gate
    (insensitive to other load on the machine).
    """
    top = builder()
    sim = Simulator(
        top,
        tdf_block=block,
        tdf_batch=BLOCK_BATCH if block else 1,
        tdf_compact_every=BLOCK_COMPACT,
    )
    if profile:
        sim.enable_profiling()
    sim.elaborate()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    sim.run(SimTime(duration_us, "us"))
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    times, samples = sink_streams(top)
    return wall, cpu, times, samples, sim


def measure(name: str, builder, duration_us: float,
            repeats: int = 2) -> dict:
    # Best-of-N on both engines damps scheduler noise so the CI
    # regression gate is judging the code, not the machine load; the
    # gated speedup uses CPU time for the same reason.
    scalar_w = scalar_c = np.inf
    block_w = block_c = np.inf
    t_ref = x_ref = t_blk = x_blk = None
    for _ in range(repeats):
        wall, cpu, t_ref, x_ref, _ = run_model(builder, duration_us,
                                               block=False)
        scalar_w, scalar_c = min(scalar_w, wall), min(scalar_c, cpu)
        wall, cpu, t_blk, x_blk, _ = run_model(builder, duration_us,
                                               block=True)
        block_w, block_c = min(block_w, wall), min(block_c, cpu)
    equivalent = (np.array_equal(t_ref, t_blk)
                  and np.array_equal(x_ref, x_blk))
    samples = int(len(x_ref))
    return {
        "samples": samples,
        "scalar_seconds": scalar_w,
        "block_seconds": block_w,
        "scalar_cpu_seconds": scalar_c,
        "block_cpu_seconds": block_c,
        "scalar_samples_per_sec": samples / scalar_w,
        "block_samples_per_sec": samples / block_w,
        "speedup": scalar_c / block_c,
        "equivalent": bool(equivalent),
    }


def profile_model(builder, duration_us: float, top_n: int = 8) -> dict:
    """Per-module seconds from a short profiled block run."""
    _wall, _cpu, _t, _x, sim = run_model(builder, duration_us,
                                         block=True, profile=True)
    seconds: dict[str, float] = {}
    for cluster in sim.profile()["clusters"].values():
        seconds.update(cluster["module_seconds"])
    ranked = sorted(seconds.items(), key=lambda kv: -kv[1])[:top_n]
    return {module: round(secs, 6) for module, secs in ranked}


#: ladder sizes for the dense-vs-sparse stepper microbenchmark (MNA
#: unknowns are nodes + 1 for the source branch current).
LADDER_SIZES_QUICK = [32, 96, 192, 384]
LADDER_SIZES_FULL = [32, 96, 192, 384, 768]


def _ladder_dae(nodes: int, sparse: bool):
    net = ladder_network("ladder", nodes)
    # Drive the source so the equivalence check sees nonzero data.
    net.components[0].waveform = lambda t: np.sin(2e4 * np.pi * t)
    return net.assemble(sparse=sparse)[0]


def _ode_ladder_dae(nodes: int):
    """An RC ladder driven by a current source, with a capacitor on
    every node: an invertible-``C`` pure ODE the expm stepper accepts."""
    net = Network("ode_ladder")
    net.add(Isource("Iin", "n1", "0",
                    current=lambda t: 1e-3 * np.sin(2e4 * np.pi * t)))
    net.add(Capacitor("C0", "n1", "0", 1e-9))
    net.add(Resistor("R0", "n1", "0", 1e3))
    for k in range(1, nodes):
        net.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}", 1e3))
        net.add(Capacitor(f"C{k}", f"n{k + 1}", "0", 1e-9))
    return net.assemble()[0]


def _source_blocks(dae, times: np.ndarray, h: float):
    steps = len(times)
    b_next = np.empty((steps, dae.n))
    b_now = np.empty((steps, dae.n))
    for k, t in enumerate(times):
        b_next[k] = dae.source(t)
        b_now[k] = dae.source(t - h)
    return b_next, b_now


def _time_window(stepper, x0, times, h_values, b_next, b_now,
                 repeats: int = 3):
    """Best-of-N CPU seconds for one ``step_window`` call (the factor
    cache is warmed by the first repeat)."""
    best = np.inf
    states = None
    for _ in range(repeats):
        cpu0 = time.process_time()
        states = stepper.step_window(x0, h_values, b_next, b_now, times)
        best = min(best, time.process_time() - cpu0)
    return best, states


def solver_suite(quick: bool) -> dict:
    """Stepper-level microbenchmarks for the solver variants.

    * dense vs sparse trapezoidal stepping across ladder sizes —
      per-step CPU time, bit-level agreement, and the size where the
      sparse path starts winning;
    * the exact-expm LTI stepper vs dense trapezoidal on a pure ODE
      ladder — per-step CPU time plus an accuracy flag against an
      oversampled trapezoidal reference.
    """
    steps = 1024 if quick else 4096
    h = 1e-6
    times = (1.0 + np.arange(steps)) * h
    h_values = np.full(steps, h)

    ladder = []
    crossover = None
    for nodes in (LADDER_SIZES_QUICK if quick else LADDER_SIZES_FULL):
        entry = {"nodes": nodes}
        states = {}
        for variant in ("dense", "sparse"):
            dae = _ladder_dae(nodes, sparse=(variant == "sparse"))
            b_next, b_now = _source_blocks(dae, times, h)
            x0 = np.zeros(dae.n)
            stepper = make_stepper(dae, h, "trapezoidal", variant)
            cpu, states[variant] = _time_window(
                stepper, x0, times, h_values, b_next, b_now)
            entry[f"{variant}_per_step_us"] = cpu / steps * 1e6
        diff = float(np.max(np.abs(states["dense"] - states["sparse"])))
        entry["max_abs_diff"] = diff
        entry["equivalent"] = bool(diff < 1e-8)
        entry["sparse_faster"] = bool(entry["sparse_per_step_us"]
                                      < entry["dense_per_step_us"])
        if crossover is None and entry["sparse_faster"]:
            crossover = nodes
        ladder.append(entry)
        print(f"[perf]   ladder n={nodes}: dense "
              f"{entry['dense_per_step_us']:.2f} us/step, sparse "
              f"{entry['sparse_per_step_us']:.2f} us/step, "
              f"equivalent={entry['equivalent']}", flush=True)

    expm_nodes = 64
    dae = _ode_ladder_dae(expm_nodes)
    b_next, b_now = _source_blocks(dae, times, h)
    x0 = np.zeros(dae.n)
    expm_cpu, expm_states = _time_window(
        make_stepper(dae, h, variant="expm"),
        x0, times, h_values, b_next, b_now)
    trap_cpu, _ = _time_window(
        make_stepper(dae, h, variant="dense"),
        x0, times, h_values, b_next, b_now)
    # Accuracy reference: 32x-oversampled trapezoidal driven by the
    # SAME first-order-hold input the expm stepper integrates (expm is
    # exact for piecewise-linear sources, so any gap beyond the
    # reference's own truncation error is a stepper bug).
    over = 32
    h_ref = h / over
    t_ref = (1.0 + np.arange(steps * over)) * h_ref
    ramp_next = (np.arange(over) + 1.0) / over
    ramp_now = np.arange(over) / over
    b_next_ref = np.empty((steps * over, dae.n))
    b_now_ref = np.empty_like(b_next_ref)
    for k in range(steps):
        delta = b_next[k] - b_now[k]
        b_next_ref[k * over:(k + 1) * over] = \
            b_now[k] + np.outer(ramp_next, delta)
        b_now_ref[k * over:(k + 1) * over] = \
            b_now[k] + np.outer(ramp_now, delta)
    ref_states = make_stepper(dae, h_ref, variant="dense").step_window(
        x0, np.full(steps * over, h_ref), b_next_ref, b_now_ref, t_ref)
    err = float(np.max(np.abs(expm_states[-1] - ref_states[-1])))
    scale = float(np.max(np.abs(ref_states[-1]))) or 1.0
    expm = {
        "nodes": expm_nodes,
        "expm_per_step_us": expm_cpu / steps * 1e6,
        "dense_per_step_us": trap_cpu / steps * 1e6,
        "max_rel_err": err / scale,
        "accurate": bool(err / scale < 1e-6),
    }
    print(f"[perf]   expm n={expm_nodes}: expm "
          f"{expm['expm_per_step_us']:.2f} us/step, dense "
          f"{expm['dense_per_step_us']:.2f} us/step, "
          f"accurate={expm['accurate']}", flush=True)
    return {"ladder": ladder, "crossover_nodes": crossover,
            "expm": expm}


def run_suite(quick: bool) -> dict:
    report = {
        "schema": "repro-perf/2",
        "mode": "quick" if quick else "full",
        "tdf_batch": BLOCK_BATCH,
        "benchmarks": {},
        "profile": {},
    }
    for name, (builder, full_us, quick_us) in MODELS.items():
        duration = quick_us if quick else full_us
        print(f"[perf] {name}: {duration:.0f} us simulated ...",
              flush=True)
        result = measure(name, builder, duration)
        report["benchmarks"][name] = result
        print(f"[perf]   scalar {result['scalar_samples_per_sec']:.0f} "
              f"samples/s, block {result['block_samples_per_sec']:.0f} "
              f"samples/s, speedup {result['speedup']:.2f}x, "
              f"equivalent={result['equivalent']}", flush=True)
        report["profile"][name] = profile_model(
            builder, min(duration, quick_us)
        )
    print("[perf] solver variants: dense / sparse / expm ...",
          flush=True)
    report["solver"] = solver_suite(quick)
    return report


def solver_failures(report: dict) -> list[str]:
    """Correctness failures in the solver-variant section (these are
    deterministic flags, gated even without a baseline)."""
    failures = []
    solver = report.get("solver", {})
    for entry in solver.get("ladder", []):
        if not entry["equivalent"]:
            failures.append(
                f"solver ladder n={entry['nodes']}: sparse states "
                f"diverge from dense (max abs diff "
                f"{entry['max_abs_diff']:.3e})"
            )
    expm = solver.get("expm")
    if expm is not None and not expm["accurate"]:
        failures.append(
            f"solver expm: relative error {expm['max_rel_err']:.3e} "
            "against the oversampled trapezoidal reference"
        )
    return failures


def check_regression(report: dict, baseline_path: str,
                     threshold: float) -> list[str]:
    """Failure messages (empty = pass).

    Speedups are only compared against the baseline section recorded
    in the *same* run mode — quick runs amortize elaboration and
    warm-up less, so their speedups sit systematically below full-run
    numbers.
    """
    failures = []
    for name, result in report["benchmarks"].items():
        if not result["equivalent"]:
            failures.append(
                f"{name}: block output diverges from scalar reference"
            )
    failures.extend(solver_failures(report))
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except OSError:
        failures.append(f"baseline {baseline_path!r} not readable")
        return failures
    section = baseline.get("runs", {}).get(report["mode"])
    if section is None:
        failures.append(
            f"baseline {baseline_path!r} has no "
            f"{report['mode']!r}-mode section"
        )
        return failures
    for name, result in report["benchmarks"].items():
        base = section.get("benchmarks", {}).get(name)
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - threshold)
        if result["speedup"] < floor:
            failures.append(
                f"{name}: speedup {result['speedup']:.2f}x fell more "
                f"than {threshold:.0%} below baseline "
                f"{base['speedup']:.2f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized runs (~10x shorter)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--baseline", action="store_true",
                        help="with --output: run BOTH modes and write "
                        "a two-section baseline usable by "
                        "--check-regression in either mode")
    parser.add_argument("--check-regression", metavar="BASELINE",
                        default=None,
                        help="compare against a committed report; "
                        "exit non-zero on equivalence failure or "
                        "speedup regression")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional speedup regression "
                        "(default 0.20)")
    args = parser.parse_args(argv)

    if args.baseline:
        if not args.output:
            parser.error("--baseline requires --output")
        payload = {
            "schema": "repro-perf/2",
            "tdf_batch": BLOCK_BATCH,
            "runs": {
                "full": run_suite(False),
                "quick": run_suite(True),
            },
        }
        report = payload["runs"]["full"]
    else:
        report = run_suite(args.quick)
        payload = report

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[perf] report written to {args.output}")

    status = 0
    if args.check_regression:
        failures = check_regression(report, args.check_regression,
                                    args.threshold)
        for message in failures:
            print(f"[perf] FAIL: {message}", file=sys.stderr)
        status = 1 if failures else 0
    else:
        for name, result in report["benchmarks"].items():
            if not result["equivalent"]:
                print(f"[perf] FAIL: {name}: block output diverges "
                      "from scalar reference", file=sys.stderr)
                status = 1
        for message in solver_failures(report):
            print(f"[perf] FAIL: {message}", file=sys.stderr)
            status = 1
    print(json.dumps(
        {name: round(r["speedup"], 2)
         for name, r in report["benchmarks"].items()},
        indent=None))
    return status


if __name__ == "__main__":
    sys.exit(main())
