"""E3 — SDF<->CT fixed-timestep synchronization.

Design objective "a, possibly generic, way to handle interactions
between MoCs": a TDF sine drives an ELN RC through the synchronization
layer at sample rates from 1x to 64x the corner frequency; steady-state
amplitude error vs the analytic transfer, and the cost of oversampling.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core import Module, SimTime, Simulator
from repro.eln import Capacitor, Network, Resistor, Vsource
from repro.lib import SineSource, TdfSink
from repro.sync import ElnTdfModule
from repro.tdf import TdfSignal

R, C = 1e3, 1e-6
F_CORNER = 1 / (2 * np.pi * R * C)


def build_and_run(timestep_us: float, oversample: int, duration_ms=25):
    class Top(Module):
        def __init__(self):
            super().__init__("top")
            net = Network()
            net.add(Vsource("Vin", "in", "0"))
            net.add(Resistor("R1", "in", "out", R))
            net.add(Capacitor("C1", "out", "0", C))
            self.src = SineSource("src", frequency=F_CORNER, parent=self,
                                  timestep=SimTime(timestep_us, "us"))
            self.rc = ElnTdfModule("rc", net, parent=self,
                                   oversample=oversample)
            self.sink = TdfSink("sink", self)
            s_in, s_out = TdfSignal("si"), TdfSignal("so")
            self.src.out(s_in)
            self.rc.drive_voltage("Vin")(s_in)
            self.rc.sample_voltage("out")(s_out)
            self.sink.inp(s_out)

    top = Top()
    simulator = Simulator(top)
    simulator.run(SimTime(duration_ms, "ms"))
    samples = np.asarray(top.sink.samples)
    tail = samples[len(samples) // 2:]
    gain = np.max(np.abs(tail))
    return gain, simulator.kernel.activation_count


def test_e3_rate_sweep(benchmark):
    """Amplitude accuracy at the corner vs sample rate (analytic:
    1/sqrt(2))."""
    results = {}

    def measure():
        for step_us in (100, 50, 20, 10, 5):
            results[step_us] = build_and_run(step_us, oversample=1)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    expected = 1 / np.sqrt(2)
    rows = []
    errors = {}
    for step_us, (gain, activations) in results.items():
        errors[step_us] = abs(gain - expected) / expected
        samples_per_cycle = 1e6 / step_us / F_CORNER
        rows.append([step_us, round(samples_per_cycle, 1),
                     round(gain, 4), f"{errors[step_us]:.2e}",
                     activations])
    print_table(
        "E3: corner-gain error vs TDF sample rate "
        f"(analytic {expected:.4f})",
        ["step [us]", "samples/cycle", "gain", "rel err",
         "kernel activations"],
        rows,
    )
    # Error falls with rate, and even 60 samples/cycle is ~1% accurate.
    assert errors[5] < errors[100]
    assert errors[10] < 0.01


def test_e3_oversampling_inside_solver(benchmark):
    """Internal solver oversampling refines accuracy at a fixed sync
    rate (the cluster period stays the same; only CT substeps grow)."""
    results = {}

    def measure():
        for oversample in (1, 4, 16):
            results[oversample] = build_and_run(50, oversample)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    expected = 1 / np.sqrt(2)
    rows = [[k, round(g, 5), f"{abs(g - expected) / expected:.2e}", a]
            for k, (g, a) in results.items()]
    print_table(
        "E3: internal oversampling at 50 us sync interval",
        ["oversample", "gain", "rel err", "kernel activations"],
        rows,
    )
    # Kernel activation count must NOT grow with internal oversampling:
    # synchronization cost is decoupled from solver resolution.
    activations = [a for _g, a in results.values()]
    assert max(activations) - min(activations) <= 2


def test_e3_interpolation_ablation(benchmark):
    """DESIGN.md ablation: zero-order hold vs linear interpolation of
    the sampled inputs inside the CT step."""
    results = {}

    def run(interpolate: bool):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                net = Network()
                net.add(Vsource("Vin", "in", "0"))
                net.add(Resistor("R1", "in", "out", R))
                net.add(Capacitor("C1", "out", "0", C))
                self.src = SineSource("src", frequency=F_CORNER,
                                      parent=self,
                                      timestep=SimTime(50, "us"))
                self.rc = ElnTdfModule("rc", net, parent=self,
                                       interpolate_inputs=interpolate)
                self.sink = TdfSink("sink", self)
                s_in, s_out = TdfSignal("si"), TdfSignal("so")
                self.src.out(s_in)
                self.rc.drive_voltage("Vin")(s_in)
                self.rc.sample_voltage("out")(s_out)
                self.sink.inp(s_out)

        top = Top()
        Simulator(top).run(SimTime(25, "ms"))
        samples = np.asarray(top.sink.samples)
        gain = np.max(np.abs(samples[len(samples) // 2:]))
        return abs(gain - 1 / np.sqrt(2)) * np.sqrt(2)

    def measure():
        results["zero-order hold"] = run(False)
        results["linear (FOH)"] = run(True)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[k, f"{v:.2e}"] for k, v in results.items()]
    print_table("E3 ablation: input reconstruction inside the CT step",
                ["input hold", "corner-gain rel err"], rows)
    # First-order hold is the better reconstruction at equal rate.
    assert results["linear (FOH)"] < results["zero-order hold"]


def test_e3_sync_runtime(benchmark):
    """Wall-clock of the coupled simulation (the efficiency claim)."""
    benchmark.pedantic(
        lambda: build_and_run(20, 2, duration_ms=10),
        rounds=3, iterations=1,
    )
