"""Shared helpers for the experiment benches.

Each ``bench_eN_*.py`` regenerates one experiment of DESIGN.md's index:
it *measures* with pytest-benchmark, *prints* the table/series the
experiment defines (visible with ``-s``), and *asserts* the expected
shape so regressions fail loudly.
"""

import numpy as np
import pytest


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for bench output."""
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) + 2
              for i, h in enumerate(header)]
    print(f"\n== {title} ==")
    print("".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
