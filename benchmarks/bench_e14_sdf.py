"""E14 — SDF substrate validity and scheduling throughput.

The dataflow MoC underneath everything: balance-equation solving and
PASS construction on generated multirate graphs (validity), scheduling
throughput versus graph size, and buffer bounds of the static schedule.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.sdf import (
    Add,
    Downsample,
    Fir,
    Fork,
    Gain,
    Ramp,
    SdfGraph,
    Sink,
    Upsample,
)


def build_multirate_graph(depth: int) -> tuple[SdfGraph, Sink]:
    """A chain of alternating up/down-samplers with a filtered side
    branch folded back in — a representative multirate DSP graph."""
    graph = SdfGraph(f"g{depth}")
    source = Ramp("src")
    fork = Fork("fork")
    graph.connect(source, "out", fork, "in")
    previous, port = fork, "a"
    for k in range(depth):
        node = Upsample(f"u{k}", 2) if k % 2 == 0 \
            else Downsample(f"d{k}", 2)
        graph.connect(previous, port, node, "in")
        previous, port = node, "out"
    # Side branch: FIR at source rate, then matched rate conversion.
    side = Fir("fir", [0.5, 0.5])
    graph.connect(fork, "b", side, "in")
    sink_side = Sink("sink_side")
    graph.connect(side, "out", sink_side, "in")
    sink = Sink("sink")
    graph.connect(previous, port, sink, "in")
    return graph, sink


def test_e14_balance_and_schedule_validity(benchmark):
    rows = []
    results = {}

    def measure():
        for depth in (2, 4, 8, 12):
            graph, _sink = build_multirate_graph(depth)
            repetitions = graph.repetition_vector()
            schedule = graph.schedule()
            graph.run(3)
            results[depth] = (repetitions, schedule, graph)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    for depth, (repetitions, schedule, graph) in results.items():
        max_rep = max(repetitions.values())
        max_buffer = max(graph.buffer_bounds().values())
        rows.append([depth, len(repetitions), len(schedule), max_rep,
                     max_buffer])
    print_table(
        "E14: multirate graph scheduling",
        ["depth", "actors", "schedule length", "max repetitions",
         "max buffer"],
        rows,
    )
    for depth, (repetitions, schedule, graph) in results.items():
        # Balance equations hold on every edge.
        for edge in graph.edges:
            assert repetitions[edge.src] * edge.produce_rate == \
                repetitions[edge.dst] * edge.consume_rate
        # Schedule contains each actor exactly its repetition count.
        for actor, count in repetitions.items():
            assert schedule.count(actor) == count
        # After full periods, buffers return to initial occupancy.
        for edge in graph.edges:
            assert len(edge.tokens) == len(edge.initial_tokens)


def test_e14_scheduling_throughput(benchmark):
    """Cost of building the static schedule for a 12-deep graph."""

    def build_and_schedule():
        graph, _sink = build_multirate_graph(12)
        return graph.schedule()

    schedule = benchmark(build_and_schedule)
    assert len(schedule) > 12


def test_e14_execution_throughput(benchmark):
    """Steady-state execution rate of a scheduled graph."""
    graph, sink = build_multirate_graph(6)
    graph.schedule()

    benchmark(lambda: graph.run(10))
    assert len(sink.collected) > 0
