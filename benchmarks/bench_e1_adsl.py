"""E1 — Figure 1: the ADSL SLIC/codec system.

Regenerates the paper's motivating example: the full mixed-signal
virtual prototype (DE software + RTL + TDF dataflow + ΣΔ converters +
LSF filters + ELN subscriber line) transmitting a voice-band tone, with
the receive SNDR and the frequency responses of the starred blocks.

Besides the pytest-benchmark tests, this module exposes
:func:`run_once` — one parameterized end-to-end simulation returning a
metrics dict — so campaign drivers (`repro.campaign`, the SNR corner
sweep in ``examples/campaign_adsl_corners.py``) reuse the system setup
instead of duplicating it.
"""

import numpy as np

from repro.adsl import (
    AdslConfig,
    AdslSystem,
    antialias_transfer,
    end_to_end_analog_transfer,
    line_output_noise,
    line_transfer,
    smoothing_transfer,
)
from repro.core import SimTime, Simulator
from repro.ct import magnitude_db

try:
    from conftest import print_table
except ImportError:  # imported as a library from outside benchmarks/
    def print_table(title, header, rows):
        print(f"\n== {title} ==")
        for row in [header] + rows:
            print("  ".join(str(cell) for cell in row))


def run_system():
    system = AdslSystem()
    Simulator(system).run(SimTime(12, "ms"))
    return system


#: AdslConfig fields a campaign point may override.
CONFIG_PARAMS = (
    "tone_frequency", "tone_amplitude", "driver_gain", "driver_rail",
    "line_series_r", "line_series_l", "line_shunt_c", "subscriber_r",
    "protection_r", "antialias_corner", "rx_gain_db",
    "far_end_amplitude", "echo_cancellation",
)


def run_once(params: dict) -> dict:
    """One ADSL front-end simulation (Figure 1 of the paper).

    Builds an :class:`AdslConfig` from any recognized keys in
    ``params`` (see :data:`CONFIG_PARAMS`), simulates for
    ``duration_us`` microseconds (default 8000), and reports the
    receive-path figures of merit.
    """
    overrides = {key: params[key] for key in CONFIG_PARAMS
                 if key in params}
    config = AdslConfig(**overrides)
    duration_us = int(params.get("duration_us", 8000))
    system = AdslSystem(config)
    Simulator(system).run(SimTime(duration_us, "us"))
    polls = [entry for entry in system.software_log
             if entry[0] == "poll"]
    metrics = {
        "sndr_db": float(system.rx_snr_db()),
        "line_level": float(polls[-1][1][0]) if polls else 0.0,
        "hook_seen": bool(any(p[1][1] for p in polls)),
        "n_samples": int(len(system.rx_output())),
    }
    if config.far_end_amplitude > 0.0:
        metrics["far_end_sndr_db"] = float(system.far_end_snr_db())
    return metrics


def test_e1_adsl_system(benchmark):
    system = benchmark.pedantic(run_system, rounds=1, iterations=1)
    sndr = system.rx_snr_db()
    polls = [entry for entry in system.software_log
             if entry[0] == "poll"]
    level = polls[-1][1][0]
    hook_seen = any(p[1][1] for p in polls)

    config = system.config
    freqs = np.array([1e2, 1e3, config.tone_frequency, 1e4, 1e5])
    rows = []
    for name, h in (
        ("line drv->sub", line_transfer(config, freqs)),
        ("TX smoothing", smoothing_transfer(config, freqs)),
        ("RX anti-alias", antialias_transfer(config, freqs)),
        ("end-to-end", end_to_end_analog_transfer(config, freqs)),
    ):
        rows.append([name] + [round(m, 1) for m in magnitude_db(h)])
    print_table(
        "E1: starred-block frequency responses [dB]",
        ["block"] + [f"{f:.0f} Hz" for f in freqs], rows,
    )
    noise = line_output_noise(config,
                              np.array([config.tone_frequency]))[0]
    print_table(
        "E1: system results",
        ["metric", "value"],
        [["RX SNDR [dB]", round(sndr, 1)],
         ["SW level register [mRMS]", level],
         ["hook status seen", hook_seen],
         ["line noise [nV/rtHz]", round(np.sqrt(noise) * 1e9, 2)],
         ["DSP samples", len(system.rx_output())]],
    )
    # Expected shape: clean tone through the whole chain, software loop
    # alive, hook detector tripped.
    assert sndr > 35.0
    assert 100 < level < 600
    assert hook_seen


def test_e1_duplex_echo_cancellation(benchmark):
    """The duplex extension of Figure 1: far-end upstream reception
    under near-end TX echo, with the DSP's LMS canceller on/off."""
    results = {}

    def run():
        for ec in (False, True):
            config = AdslConfig(far_end_amplitude=2.0,
                                echo_cancellation=ec)
            system = AdslSystem(config)
            Simulator(system).run(SimTime(15, "ms"))
            results[ec] = (system.far_end_snr_db(),
                           system.rx_snr_db())
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[("on" if ec else "off"), round(far, 1), round(near, 1)]
            for ec, (far, near) in results.items()]
    print_table(
        "E1 duplex: far-end SNDR with/without echo cancellation",
        ["canceller", "far-end SNDR [dB]", "TX-echo SNDR [dB]"],
        rows,
    )
    improvement = results[True][0] - results[False][0]
    assert results[False][0] < 0.0      # echo buries the far end
    assert results[True][0] > 25.0      # canceller recovers it
    assert improvement > 30.0


if __name__ == "__main__":
    metrics = run_once({"duration_us": 6000})
    print_table("E1 single run", ["metric", "value"],
                [[k, v] for k, v in metrics.items()])
