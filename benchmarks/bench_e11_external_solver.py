"""E11 — Coupling with existing continuous-time simulators.

The objective "an open architecture in which existing, mature,
simulators or solvers may be plugged in": the same circuit simulated
through the built-in fixed-step solver and through the SciPy plug-in
behind the identical TransientSolver API, synchronized sample by sample;
waveform agreement and the relative cost of each engine.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.core import Module, SimTime, Simulator
from repro.ct import LinearDae, LinearTransientSolver, ScipyIvpSolver
from repro.eln import Capacitor, Network, Resistor, Vsource
from repro.lib import SineSource, TdfSink
from repro.sync import ElnTdfModule, InputHolder, SolverTdfModule
from repro.tdf import TdfIn, TdfSignal

R, C = 1e3, 1e-6
TAU = R * C
F_IN = 1 / (2 * np.pi * TAU)


def run_builtin():
    class Top(Module):
        def __init__(self):
            super().__init__("top")
            net = Network()
            net.add(Vsource("Vin", "in", "0"))
            net.add(Resistor("R1", "in", "out", R))
            net.add(Capacitor("C1", "out", "0", C))
            self.src = SineSource("src", frequency=F_IN, parent=self,
                                  timestep=SimTime(20, "us"))
            self.ct = ElnTdfModule("ct", net, parent=self, oversample=8)
            self.sink = TdfSink("sink", self)
            s_in, s_out = TdfSignal("si"), TdfSignal("so")
            self.src.out(s_in)
            self.ct.drive_voltage("Vin")(s_in)
            self.ct.sample_voltage("out")(s_out)
            self.sink.inp(s_out)

    top = Top()
    Simulator(top).run(SimTime(15, "ms"))
    return np.asarray(top.sink.samples)


def run_external():
    class Top(Module):
        def __init__(self):
            super().__init__("top")
            holder = InputHolder()
            solver = ScipyIvpSolver(
                rhs=lambda t, x, h=holder: np.array([(h(t) - x[0]) / TAU]),
                n=1, rtol=1e-9, atol=1e-11,
            )
            self.src = SineSource("src", frequency=F_IN, parent=self,
                                  timestep=SimTime(20, "us"))
            self.ct = SolverTdfModule("ct", solver, parent=self)
            port = TdfIn("in_u")
            port.module = self.ct
            self.ct.in_u = port
            self.ct._inputs.append((port, holder))
            self.ct.add_output("v", lambda x: float(x[0]))
            self.sink = TdfSink("sink", self)
            s_in, s_out = TdfSignal("si"), TdfSignal("so")
            self.src.out(s_in)
            port(s_in)
            self.ct.out_v(s_out)
            self.sink.inp(s_out)

    top = Top()
    Simulator(top).run(SimTime(15, "ms"))
    return np.asarray(top.sink.samples), top.ct._solver.segment_count


def test_e11_plugin_agreement(benchmark):
    builtin = benchmark.pedantic(run_builtin, rounds=1, iterations=1)
    start = time.perf_counter()
    external, segments = run_external()
    external_seconds = time.perf_counter() - start
    start = time.perf_counter()
    run_builtin()
    builtin_seconds = time.perf_counter() - start
    m = min(len(builtin), len(external))
    deviation = float(np.max(np.abs(builtin[:m] - external[:m])))
    print_table(
        "E11: built-in solver vs SciPy plug-in (same sync API)",
        ["metric", "value"],
        [["samples", m],
         ["max |diff| [V]", f"{deviation:.2e}"],
         ["built-in wall [ms]", round(builtin_seconds * 1e3, 1)],
         ["plug-in wall [ms]", round(external_seconds * 1e3, 1)],
         ["plug-in solver segments", segments]],
    )
    assert deviation < 2e-3
    assert segments > 500  # one integration segment per sync interval


def test_e11_raw_solver_api_equivalence(benchmark):
    """The two engines behind the bare TransientSolver protocol."""
    dae = LinearDae(
        C=np.array([[C]]), G=np.array([[1 / R]]),
        source=lambda t: np.array([1.0 / R]),
    )
    builtin = LinearTransientSolver(dae, h_internal=TAU / 500)
    external = ScipyIvpSolver(linear_system=dae, rtol=1e-10, atol=1e-12)

    def run():
        builtin.initialize(0.0, x0=np.zeros(1))
        external.initialize(0.0, x0=np.zeros(1))
        worst = 0.0
        for k in range(1, 21):
            t = k * TAU / 4
            xb = builtin.advance_to(t)
            xe = external.advance_to(t)
            worst = max(worst, abs(float(xb[0] - xe[0])))
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E11: raw API lockstep", ["metric", "value"],
                [["max |diff| over 20 sync points", f"{worst:.2e}"]])
    assert worst < 1e-6
