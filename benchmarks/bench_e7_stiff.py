"""E7 — Phase 2: stiff nonlinear systems and variable timesteps.

"The simulation of control systems ... usually requires solving stiff
nonlinear systems" — a two-time-constant nonlinear circuit whose
stiffness ratio is swept 10..1e5: steps taken by the adaptive solver vs
the fixed-step count needed for the same accuracy, and the stiff Van der
Pol oscillator against the SciPy BDF reference.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analysis import max_error
from repro.baselines import van_der_pol_reference
from repro.ct import (
    FunctionSystem,
    NonlinearStepper,
    variable_step_transient,
)


def two_tau_system(stiffness: float):
    """x1' = -x1 (slow, tau=1), x2' = -k*(x2 - x1^2) (fast, tau=1/k).

    The x1^2 coupling keeps it nonlinear; the fast mode shadows the slow
    manifold x2 = x1^2.
    """

    def static(x, t):
        return np.array([
            x[0],
            stiffness * (x[1] - x[0] * x[0]),
        ])

    return FunctionSystem(
        n=2, static=static,
        charge=lambda x: x.copy(),
        charge_jacobian=lambda x: np.eye(2),
        static_jacobian=lambda x, t: np.array([
            [1.0, 0.0],
            [-2 * stiffness * x[0], stiffness],
        ]),
    )


def analytic_slow(times):
    return np.exp(-times)


def test_e7_stiffness_sweep(benchmark):
    rows = []
    results = {}

    def measure():
        for stiffness in (1e1, 1e2, 1e3, 1e4, 1e5):
            system = two_tau_system(stiffness)
            result = variable_step_transient(
                system, 5.0, x0=np.array([1.0, 1.0]),
                reltol=1e-5, abstol=1e-8, h0=1e-4,
            )
            error = max_error(result.states[:, 0],
                              analytic_slow(result.times))
            # A fixed-step run must resolve the fast time constant over
            # the whole span: ~10 steps per 1/k.
            fixed_steps_needed = int(5.0 * stiffness * 10)
            results[stiffness] = (result.accepted_steps,
                                  result.rejected_steps,
                                  fixed_steps_needed, error)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    for stiffness, (accepted, rejected, fixed, error) in results.items():
        rows.append([f"{stiffness:.0e}", accepted, rejected, fixed,
                     round(fixed / accepted, 1), f"{error:.1e}"])
    print_table(
        "E7: adaptive vs fixed step on stiffness sweep (span 5 s)",
        ["stiffness", "adaptive steps", "rejected", "fixed needed",
         "advantage", "error"],
        rows,
    )
    # Shape: adaptive step count is nearly flat in stiffness while the
    # fixed-step requirement grows linearly -> the advantage explodes.
    counts = [r[0] for r in results.values()]
    assert max(counts) < 4 * min(counts)
    assert results[1e5][2] / results[1e5][0] > 100
    for *_rest, error in results.values():
        assert error < 1e-3


def test_e7_van_der_pol_vs_reference(benchmark):
    mu = 30.0

    def static(v, t):
        x, y = v
        return np.array([-y, -(mu * (1 - x * x) * y - x)])

    def jacobian(v, t):
        x, y = v
        return np.array([
            [0.0, -1.0],
            [-(-2 * mu * x * y - 1), -(mu * (1 - x * x))],
        ])

    system = FunctionSystem(
        n=2, static=static, charge=lambda v: v.copy(),
        charge_jacobian=lambda v: np.eye(2),
        static_jacobian=jacobian,
    )

    def run():
        return variable_step_transient(
            system, 30.0, x0=np.array([2.0, 0.0]),
            reltol=1e-6, abstol=1e-9, h0=1e-3,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = van_der_pol_reference(mu, [2.0, 0.0], result.times)
    error = max_error(result.states[:, 0], reference[:, 0])
    print_table(
        "E7: stiff Van der Pol (mu=30) vs SciPy BDF",
        ["metric", "value"],
        [["accepted steps", result.accepted_steps],
         ["rejected steps", result.rejected_steps],
         ["max |x - x_ref|", f"{error:.2e}"]],
    )
    assert error < 0.05  # relaxation fronts are steep; phase error tiny


def test_e7_fixed_step_baseline(benchmark):
    """Cost of the fixed-step (non-adaptive) alternative at k=1e3."""
    system = two_tau_system(1e3)
    stepper = NonlinearStepper(system, "trapezoidal")
    h = 1.0 / (1e3 * 10)

    def run_fixed():
        x = np.array([1.0, 1.0])
        t = 0.0
        # 0.5 s slice of the 5 s span (full span would dominate runtime).
        for _ in range(int(0.5 / h)):
            x = stepper.step(x, t, h)
            t += h
        return x

    x = benchmark.pedantic(run_fixed, rounds=1, iterations=1)
    assert x[0] == pytest.approx(np.exp(-0.5), rel=1e-3)
