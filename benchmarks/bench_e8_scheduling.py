"""E8 — Scheduling efficiency: TDF clustering vs naive DE processes.

The objective "effective at managing complexity ... in terms of
simulation performances", and Bonnerud's virtual-clock motivation:
identical N-block signal chains run (a) as one statically-scheduled TDF
cluster and (b) as N event-driven DE processes.  Kernel activations,
delta cycles, and wall-clock versus N.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.baselines import run_naive_chain, run_tdf_chain

N_SAMPLES = 200


def test_e8_activation_scaling(benchmark):
    results = {}

    def measure():
        for n_blocks in (4, 16, 64):
            naive_out, naive = run_naive_chain(n_blocks, N_SAMPLES)
            tdf_out, tdf = run_tdf_chain(n_blocks, N_SAMPLES)
            results[n_blocks] = (naive, tdf)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for n_blocks, (naive, tdf) in results.items():
        ratio = naive["kernel_activations"] / tdf["kernel_activations"]
        rows.append([
            n_blocks,
            naive["kernel_activations"], tdf["kernel_activations"],
            round(ratio, 1),
            naive["delta_cycles"], tdf["delta_cycles"],
        ])
    print_table(
        f"E8: kernel cost, naive DE vs TDF cluster ({N_SAMPLES} samples)",
        ["blocks", "naive activations", "tdf activations", "ratio",
         "naive deltas", "tdf deltas"],
        rows,
    )
    ratios = [naive["kernel_activations"] / tdf["kernel_activations"]
              for naive, tdf in results.values()]
    # The advantage grows with chain length (cluster wakes once per
    # sample regardless of N; naive wakes N times + delta churn).
    assert ratios[-1] > ratios[0] * 4
    assert ratios[-1] > 20


def test_e8_wall_clock(benchmark):
    timings = {}

    def best_of(runner, n_blocks, repeats=3):
        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            runner(n_blocks, N_SAMPLES)
            best = min(best, time.perf_counter() - start)
        return best

    def measure():
        for n_blocks in (8, 32):
            timings[n_blocks] = (
                best_of(run_naive_chain, n_blocks),
                best_of(run_tdf_chain, n_blocks),
            )
        return timings

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[n, round(a * 1e3, 1), round(b * 1e3, 1), round(a / b, 2)]
            for n, (a, b) in timings.items()]
    print_table(
        "E8: wall-clock, naive vs TDF",
        ["blocks", "naive [ms]", "tdf [ms]", "speedup"], rows,
    )
    # TDF must not be slower; typically noticeably faster.
    for naive_seconds, tdf_seconds in timings.values():
        assert tdf_seconds < naive_seconds * 1.2


def test_e8_gating_ablation(benchmark):
    """Virtual-clock activation gating on a settled CT block: the
    Bonnerud optimization avoids needless solver work."""
    from repro.core import Module, SimTime, Simulator
    from repro.eln import Capacitor, Network, Resistor, Vsource
    from repro.lib import StepSource, TdfSink
    from repro.sync import ElnTdfModule
    from repro.tdf import TdfSignal

    def run(gating: bool):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                net = Network()
                net.add(Vsource("Vin", "in", "0"))
                net.add(Resistor("R1", "in", "out", 1e3))
                net.add(Capacitor("C1", "out", "0", 1e-6))
                self.src = StepSource("src", parent=self,
                                      timestep=SimTime(10, "us"))
                self.rc = ElnTdfModule("rc", net, parent=self)
                if gating:
                    self.rc.enable_gating(1e-9)
                self.sink = TdfSink("sink", self)
                s_in, s_out = TdfSignal("si"), TdfSignal("so")
                self.src.out(s_in)
                self.rc.drive_voltage("Vin")(s_in)
                self.rc.sample_voltage("out")(s_out)
                self.sink.inp(s_out)

        top = Top()
        Simulator(top).run(SimTime(30, "ms"))
        final = top.sink.samples[-1]
        return top.rc.skipped_activations, top.rc.activation_count, final

    results = {}

    def measure():
        results["off"] = run(False)
        results["on"] = run(True)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[k, total, skipped, round(final, 6)]
            for k, (skipped, total, final) in results.items()]
    print_table(
        "E8 ablation: activation gating (30 ms, tau = 1 ms)",
        ["gating", "activations", "skipped", "final value"], rows,
    )
    assert results["off"][0] == 0
    assert results["on"][0] > 500          # most of the tail skipped
    assert results["on"][2] == pytest.approx(results["off"][2],
                                             abs=1e-3)
