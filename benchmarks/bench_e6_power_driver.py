"""E6 — Grimm AnalogSL power driver (seed [8]).

The dedicated piecewise-linear power MoC versus the general nonlinear
DAE solver on the same PWM half-bridge + R-L load: waveform agreement
and speedup (the raison d'être of a specialized continuous-time MoC),
plus the periodic-steady-state shortcut.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.ct import variable_step_transient
from repro.eln import Inductor, Resistor, Vsource
from repro.nonlin import NMos, NonlinearNetwork
from repro.power import HalfBridgeDriver, RLLoad

V_SUPPLY = 12.0
R_LOAD = 2.0
L_LOAD = 500e-6
F_PWM = 20e3
DUTY = 0.4
CYCLES = 12


def run_pwl():
    driver = HalfBridgeDriver(RLLoad(R_LOAD, L_LOAD), v_supply=V_SUPPLY,
                              r_on=0.05, pwm_frequency=F_PWM, duty=DUTY)
    times, states = driver.simulate(CYCLES, samples_per_segment=10)
    return times, states[:, 0], driver


def run_nonlinear():
    net = NonlinearNetwork("bridge")
    period = 1.0 / F_PWM

    def gate_high(t):
        return 25.0 if (t % period) < DUTY * period else 0.0

    def gate_low(t):
        return 0.0 if (t % period) < DUTY * period else 25.0

    net.add(Vsource("Vdd", "vdd", "0", V_SUPPLY))
    net.add(Vsource("Vgh", "gh", "0", gate_high))
    net.add(Vsource("Vgl", "gl", "0", gate_low))
    net.add_device(NMos("Mh", "vdd", "gh", "sw", k_prime=1.7, vth=1.0))
    net.add_device(NMos("Ml", "sw", "gl", "0", k_prime=1.7, vth=1.0))
    net.add(Resistor("Rload", "sw", "x", R_LOAD))
    net.add(Inductor("Lload", "x", "0", L_LOAD))
    system, index = net.assemble_nonlinear()
    result = variable_step_transient(
        system, CYCLES * period, x0=np.zeros(system.n),
        reltol=1e-4, abstol=1e-6, h0=period / 200, h_max=period / 20,
    )
    return result.times, index.current_series(result.states, "Lload"), \
        result


def test_e6_dedicated_vs_general(benchmark):
    t_pwl = i_pwl = None

    def run_dedicated():
        nonlocal t_pwl, i_pwl
        t_pwl, i_pwl, _driver = run_pwl()

    benchmark.pedantic(run_dedicated, rounds=3, iterations=1)
    start = time.perf_counter()
    t_nl, i_nl, result = run_nonlinear()
    nonlinear_seconds = time.perf_counter() - start
    start = time.perf_counter()
    run_pwl()
    pwl_seconds = time.perf_counter() - start
    speedup = nonlinear_seconds / pwl_seconds

    i_nl_resampled = np.interp(t_pwl, t_nl, i_nl)
    tail = t_pwl > 0.5 * t_pwl[-1]
    deviation = np.max(np.abs(i_pwl[tail] - i_nl_resampled[tail]))
    print_table(
        "E6: dedicated PWL MoC vs general nonlinear solver",
        ["metric", "value"],
        [["PWL wall [ms]", round(pwl_seconds * 1e3, 2)],
         ["nonlinear wall [ms]", round(nonlinear_seconds * 1e3, 2)],
         ["speedup", round(speedup, 1)],
         ["Newton iterations", result.newton_iterations],
         ["waveform deviation [mA]", round(deviation * 1e3, 2)]],
    )
    # The specialized MoC must win big at matched waveforms.
    assert speedup > 5.0
    assert deviation < 0.1  # < 100 mA on a ~2.4 A waveform


def test_e6_steady_state_shortcut(benchmark):
    """Periodic steady state by fixed-point solve vs long transient."""
    driver = HalfBridgeDriver(RLLoad(R_LOAD, L_LOAD), v_supply=V_SUPPLY,
                              r_on=0.0, pwm_frequency=F_PWM, duty=DUTY)
    x_ss = benchmark(driver.steady_state)
    # Long transient reference: simulate 40 cycles from zero.
    times, states = driver.simulate(40, samples_per_segment=1)
    settled = states[-2 * 1 - 1, 0]  # a period boundary near the end
    average = driver.average_output()[0]
    expected_avg = DUTY * V_SUPPLY / R_LOAD
    print_table(
        "E6: periodic steady state",
        ["metric", "value"],
        [["fixed-point cycle-start [A]", round(float(x_ss[0]), 4)],
         ["transient cycle-start [A]", round(float(settled), 4)],
         ["average current [A]", round(average, 4)],
         ["duty*V/R [A]", round(expected_avg, 4)]],
    )
    assert x_ss[0] == pytest.approx(settled, rel=0.01)
    assert average == pytest.approx(expected_avg, rel=0.01)
