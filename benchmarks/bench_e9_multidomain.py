"""E9 — Phase 3: multi-domain automotive application.

A software-in-the-loop electro-mechanical virtual prototype: PWM-driven
DC motor (electrical + rotational mechanics via the MNA analogies) with
a DE-process PI speed controller.  Step-response metrics of the closed
loop and a thermal co-simulation of the motor's dissipation.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analysis import StepResponse
from repro.core import Module, Signal, SimTime, Simulator
from repro.eln import Network, Vsource, dc_analysis
from repro.lib import TdfSink
from repro.multidomain import (
    DcMotor,
    HeatFlowSource,
    Inertia,
    RotationalDamper,
    ThermalCapacitance,
    ThermalResistance,
)
from repro.sync import ElnTdfModule
from repro.tdf import TdfDeIn, TdfModule, TdfOut, TdfSignal

KT, R_A, L_A = 0.05, 1.0, 1e-3
J, B = 5e-4, 1e-4
TARGET = 150.0


def build_plant() -> Network:
    net = Network("motor")
    net.add(Vsource("Vdrive", "vin", "0"))
    DcMotor("mot", net, "vin", "0", "w", kt=KT, r_a=R_A, l_a=L_A)
    net.add(Inertia("J", "w", J))
    net.add(RotationalDamper("b", "w", "0", B))
    return net


class CommandBridge(TdfModule):
    def __init__(self, name, de_signal, parent=None):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self.de_in = TdfDeIn("de_in")
        self.de_in(de_signal)

    def set_attributes(self):
        self.set_timestep(SimTime(100, "us"))

    def processing(self):
        self.out.write(float(self.de_in.read()))


class Rig(Module):
    def __init__(self):
        super().__init__("rig")
        self.command = Signal("command", initial=0.0)
        self.bridge = CommandBridge("bridge", self.command, parent=self)
        self.plant = ElnTdfModule("plant", build_plant(), parent=self,
                                  oversample=4)
        self.speed_sink = TdfSink("speed_sink", self)
        s_cmd, s_speed = TdfSignal("c"), TdfSignal("w")
        self.bridge.out(s_cmd)
        self.plant.drive_voltage("Vdrive")(s_cmd)
        self.plant.sample_voltage("w")(s_speed)
        self.speed_sink.inp(s_speed)
        self.thread(self.controller)

    def controller(self):
        kp, ki, dt = 0.3, 1.5, 1e-3
        integral = 0.0
        while True:
            yield SimTime(1, "ms")
            samples = self.speed_sink.samples
            speed = samples[-1] if samples else 0.0
            error = TARGET - speed
            integral = float(np.clip(integral + error * dt,
                                     -24 / ki, 24 / ki))
            self.command.write(float(np.clip(kp * error + ki * integral,
                                             -24.0, 24.0)))


def test_e9_closed_loop_speed_control(benchmark):
    def run():
        rig = Rig()
        Simulator(rig).run(SimTime(300, "ms"))
        return rig

    rig = benchmark.pedantic(run, rounds=1, iterations=1)
    t, speed = rig.speed_sink.as_arrays()
    step = StepResponse(t, speed, final_value=TARGET, initial_value=0.0)
    settled = speed[t > 0.25]
    steady_error = abs(np.mean(settled) - TARGET)
    print_table(
        "E9: closed-loop DC-motor speed step",
        ["metric", "value"],
        [["final speed [rad/s]", round(speed[-1], 2)],
         ["steady error [rad/s]", round(steady_error, 3)],
         ["rise time [ms]", round(step.rise_time * 1e3, 1)],
         ["overshoot [%]", round(step.overshoot * 100, 1)]],
    )
    assert steady_error < 5.0
    assert step.overshoot < 0.15


def test_e9_motor_thermal_cosimulation(benchmark):
    """Electrical dissipation feeds a thermal RC network: junction
    temperature rise = P * R_th at steady state."""

    def run():
        net = build_plant()
        # Fixed 12 V drive for the thermal scenario.
        for component in net.components:
            if component.name == "Vdrive":
                component.waveform = lambda t: 12.0
        dc = dc_analysis(net)
        omega = dc.voltage("w")
        current = abs(dc.current("mot_la"))
        dissipation = current ** 2 * R_A
        thermal = Network("thermal")
        thermal.add(HeatFlowSource("p", "junction", power=dissipation))
        thermal.add(ThermalResistance("rjc", "junction", "case", 2.0))
        thermal.add(ThermalResistance("rca", "case", "0", 5.0))
        thermal.add(ThermalCapacitance("cj", "junction", 0.1))
        dae, index = thermal.assemble()
        times, states = dae.transient(10.0, 0.01,
                                      x0=np.zeros(index.size))
        rise = states[:, index.node_index["junction"]]
        return omega, current, dissipation, times, rise

    omega, current, dissipation, times, rise = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    expected = dissipation * 7.0
    print_table(
        "E9: electro-thermal co-simulation (12 V drive)",
        ["metric", "value"],
        [["speed [rad/s]", round(omega, 1)],
         ["armature current [A]", round(current, 3)],
         ["dissipation [W]", round(dissipation, 3)],
         ["final temp rise [K]", round(rise[-1], 2)],
         ["P*R_th [K]", round(expected, 2)]],
    )
    assert rise[-1] == pytest.approx(expected, rel=0.02)
