"""E2 — Linear CT solver accuracy and convergence order.

Design objective "SystemC-AMS must support continuous-time MoCs":
fixed-step backward-Euler and trapezoidal solutions of RC / RLC / 4th-
order transfer-function systems against analytic references, error vs
timestep, and the measured convergence orders (theory: BE=1, TRAP=2).
"""

import numpy as np
import pytest

from conftest import print_table
from repro.analysis import convergence_order, max_error
from repro.baselines import rc_step_response, series_rlc_step_response
from repro.ct import LinearDae
from repro.eln import Capacitor, Inductor, Network, Resistor, Vsource

R, C = 1e3, 1e-6
TAU = R * C


def rc_dae():
    return LinearDae(
        C=np.array([[C]]), G=np.array([[1 / R]]),
        source=lambda t: np.array([1.0 / R]),
    )


def rlc_network():
    net = Network()
    net.add(Vsource("V1", "in", "0", 1.0))
    net.add(Resistor("R1", "in", "a", 100.0))
    net.add(Inductor("L1", "a", "b", 1e-3))
    net.add(Capacitor("C1", "b", "0", 1e-8))
    return net.assemble()


def sweep_errors(method):
    steps = [TAU / 10, TAU / 20, TAU / 40, TAU / 80, TAU / 160]
    errors = []
    dae = rc_dae()
    for h in steps:
        times, states = dae.transient(3 * TAU, h, x0=np.zeros(1),
                                      method=method)
        reference = rc_step_response(R, C, 1.0, times)
        errors.append(max_error(states[:, 0], reference))
    return steps, errors


def test_e2_convergence_orders(benchmark):
    result = {}

    def measure():
        for method in ("backward_euler", "trapezoidal"):
            result[method] = sweep_errors(method)
        return result

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    orders = {}
    for method, (steps, errors) in result.items():
        orders[method] = convergence_order(steps, errors)
        rows.append([method] + [f"{e:.2e}" for e in errors]
                    + [round(orders[method], 2)])
    print_table(
        "E2: RC step max error vs timestep",
        ["method", "tau/10", "tau/20", "tau/40", "tau/80", "tau/160",
         "order"],
        rows,
    )
    assert orders["backward_euler"] == pytest.approx(1.0, abs=0.2)
    assert orders["trapezoidal"] == pytest.approx(2.0, abs=0.2)
    # TRAP beats BE at equal step size.
    assert result["trapezoidal"][1][2] < result["backward_euler"][1][2] / 5


def test_e2_rlc_accuracy(benchmark):
    dae, index = rlc_network()
    alpha = 100.0 / (2 * 1e-3)
    w0 = 1 / np.sqrt(1e-3 * 1e-8)

    def run():
        return dae.transient(4 / alpha, 0.02 / w0,
                             x0=np.zeros(index.size))

    times, states = benchmark(run)
    reference = series_rlc_step_response(100.0, 1e-3, 1e-8, 1.0, times)
    error = max_error(states[:, index.node_index["b"]], reference)
    print_table("E2: RLC vs analytic", ["metric", "value"],
                [["max error [V]", f"{error:.2e}"],
                 ["points", len(times)]])
    assert error < 5e-3


def test_e2_dae_vs_direct_evaluation_ablation(benchmark):
    """DESIGN.md ablation: the same 2nd-order lowpass as (a) a
    continuous LSF transfer function solved through the DAE machinery
    and (b) a bilinear-transform digital biquad evaluated directly
    (the fast path for feed-forward-only behaviour): accuracy is
    comparable; the direct evaluation is cheaper per sample."""
    import time

    from repro.lib import butterworth_lowpass_sections, filter_samples
    from repro.lsf import LsfLtfNd, LsfNetwork, LsfSource, lsf_transient

    fs = 1e6
    f_c = 10e3
    w0 = 2 * np.pi * f_c
    zeta = 1 / np.sqrt(2)
    n = 20000
    t_end = n / fs
    t = np.arange(n + 1) / fs
    # Analytic Butterworth step response.
    wd = w0 * np.sqrt(1 - zeta ** 2)
    analytic = 1 - np.exp(-zeta * w0 * t) * (
        np.cos(wd * t) + zeta * w0 / wd * np.sin(wd * t)
    )

    def run_dae():
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfLtfNd("lp", u, y,
                         num=[w0 ** 2],
                         den=[w0 ** 2, 2 * zeta * w0, 1.0]))
        return lsf_transient(net, t_end, 1 / fs)[y]

    def run_direct():
        sections = butterworth_lowpass_sections(2, f_c, fs)
        return filter_samples(sections, np.ones(n + 1))

    start = time.perf_counter()
    dae_out = run_dae()
    dae_seconds = time.perf_counter() - start
    start = time.perf_counter()
    direct_out = run_direct()
    direct_seconds = time.perf_counter() - start
    benchmark(run_direct)
    err_dae = float(np.max(np.abs(dae_out - analytic)))
    err_direct = float(np.max(np.abs(direct_out - analytic)))
    from conftest import print_table

    print_table(
        "E2 ablation: DAE solve vs direct digital evaluation",
        ["path", "max error vs analytic", "wall [ms]"],
        [["LSF DAE (trapezoidal)", f"{err_dae:.2e}",
          round(dae_seconds * 1e3, 1)],
         ["digital biquad (bilinear)", f"{err_direct:.2e}",
          round(direct_seconds * 1e3, 1)]],
    )
    # The DAE path integrates the true continuous system (error ~ h^2);
    # the bilinear biquad matches the frequency response but its step
    # transient deviates at the ~1% level.  Direct evaluation is the
    # cheaper fast path.
    assert err_dae < 1e-3
    assert err_direct < 0.05
    assert direct_seconds < dae_seconds


def test_e2_fourth_order_ltf_speed(benchmark):
    """Throughput of the factor-once linear stepper on a 4th-order
    system (the 'solved without iterations' claim)."""
    from repro.lsf import LsfLtfNd, LsfNetwork, LsfSource, lsf_transient

    w = 2 * np.pi * 1e4

    def run():
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfLtfNd(
            "filt", u, y,
            num=[w ** 4],
            den=[w ** 4, 2.613 * w ** 3, 3.414 * w ** 2, 2.613 * w, 1.0],
        ))
        return lsf_transient(net, 2e-3, 1e-7)

    result = benchmark(run)
    final = result.raw[-1]
    # Butterworth step response settles at DC gain 1.
    y_index = -1  # y is the last declared signal before states
    assert result.raw.shape[0] == 20001
