"""E4 — Bonnerud pipelined ADC with digital noise cancellation (seed [2]).

ENOB vs per-stage gain error with and without the digital correction,
agreement with the independently-coded vectorized golden model, and
conversion throughput.

Besides the pytest-benchmark tests, this module exposes
:func:`run_once` — one parameterized conversion experiment returning a
metrics dict — so campaign drivers (`repro.campaign`, the Monte Carlo
mismatch/yield demo in ``examples/campaign_adc_yield.py``) reuse the
model setup instead of duplicating it.
"""

import numpy as np
import pytest

from repro.analysis import coherent_tone_frequency, enob_of_tone
from repro.baselines import golden_pipeline_convert
from repro.lib import PipelinedAdc, as_generator

try:
    from conftest import print_table
except ImportError:  # imported as a library from outside benchmarks/
    def print_table(title, header, rows):
        print(f"\n== {title} ==")
        for row in [header] + rows:
            print("  ".join(str(cell) for cell in row))

FS = 1e6
N = 4096
N_STAGES = 7
BACKEND = 3


def stimulus(n: int = N):
    f = coherent_tone_frequency(FS, n, 17e3)
    t = np.arange(n) / FS
    return f, 0.95 * np.sin(2 * np.pi * f * t)


def run_once(params: dict) -> dict:
    """One Monte Carlo sample of the pipelined ADC (seed work [2]).

    Draws per-stage gain errors (capacitor mismatch) and comparator
    offsets from the run's random stream, converts a coherent test
    tone, and reports ENOB with (``enob_cal``) and without
    (``enob_raw``) the digital noise cancellation.

    Recognized params (all optional): ``seed`` (int or Generator),
    ``n_stages``, ``backend_bits``, ``mismatch_rms`` (relative cap
    mismatch → stage gain error sigma), ``offset_rms`` [V],
    ``noise_rms`` [V], ``n_samples``.
    """
    rng = as_generator(params.get("seed"))
    n_stages = int(params.get("n_stages", N_STAGES))
    backend_bits = int(params.get("backend_bits", BACKEND))
    mismatch_rms = float(params.get("mismatch_rms", 0.01))
    offset_rms = float(params.get("offset_rms", 0.02))
    noise_rms = float(params.get("noise_rms", 0.0))
    n_samples = int(params.get("n_samples", N))

    gain_errors = rng.normal(0.0, mismatch_rms, n_stages)
    offsets = rng.normal(0.0, offset_rms, n_stages)
    f, x = stimulus(n_samples)
    adc = PipelinedAdc(
        n_stages=n_stages,
        backend_bits=backend_bits,
        gain_errors=gain_errors.tolist(),
        comparator_offsets=offsets.tolist(),
        noise_rms=noise_rms,
        seed=rng,
    )
    raw = adc.convert_array(x, calibrated=False)
    cal = adc.convert_array(x, calibrated=True)
    enob_raw = float(enob_of_tone(raw, FS, tone_frequency=f))
    enob_cal = float(enob_of_tone(cal, FS, tone_frequency=f))
    return {
        "enob_raw": enob_raw,
        "enob_cal": enob_cal,
        "recovered": enob_cal - enob_raw,
    }


def test_e4_gain_error_sweep(benchmark):
    f, x = stimulus()
    table = {}

    def measure():
        for gain_error in (0.0, 0.005, 0.01, 0.02):
            adc = PipelinedAdc(n_stages=N_STAGES, backend_bits=BACKEND,
                               gain_errors=[gain_error] * N_STAGES)
            raw = adc.convert_array(x, calibrated=False)
            cal = adc.convert_array(x, calibrated=True)
            table[gain_error] = (
                enob_of_tone(raw, FS, tone_frequency=f),
                enob_of_tone(cal, FS, tone_frequency=f),
            )
        return table

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[f"{ge:.1%}", round(raw, 2), round(cal, 2),
             round(cal - raw, 2)]
            for ge, (raw, cal) in table.items()]
    print_table(
        "E4: pipelined ADC ENOB vs stage gain error "
        f"({N_STAGES}x1.5b + {BACKEND}b backend)",
        ["gain error", "ENOB raw", "ENOB calibrated", "recovered"],
        rows,
    )
    raw_1pct, cal_1pct = table[0.01]
    # Bonnerud's claim: digital correction recovers the lost resolution.
    assert cal_1pct - raw_1pct >= 2.0
    assert cal_1pct > 9.0
    # Without analog error both reconstructions meet nominal-1.5 bits.
    assert table[0.0][0] > N_STAGES + BACKEND - 1.5


def test_e4_matches_golden_model(benchmark):
    """Framework vs vectorized golden ('comparable accuracy to MATLAB')."""
    _f, x = stimulus()
    errors = np.random.default_rng(4).uniform(-0.02, 0.02, N_STAGES)
    adc = PipelinedAdc(n_stages=N_STAGES, backend_bits=BACKEND,
                       gain_errors=errors.tolist())

    framework = benchmark(lambda: adc.convert_array(x, calibrated=True))
    golden = golden_pipeline_convert(
        x, N_STAGES, BACKEND, gain_errors=errors.tolist(),
        calibrated=True,
    )
    deviation = float(np.max(np.abs(framework - golden)))
    print_table("E4: framework vs golden", ["metric", "value"],
                [["max |diff|", f"{deviation:.2e}"],
                 ["samples", N]])
    assert deviation < 1e-12


def test_e4_throughput_golden(benchmark):
    """Vectorized golden model conversion rate (the baseline's speed)."""
    _f, x = stimulus()
    benchmark(lambda: golden_pipeline_convert(x, N_STAGES, BACKEND))


if __name__ == "__main__":
    metrics = run_once({"seed": 1, "n_samples": 1024})
    print_table("E4 single Monte Carlo sample", ["metric", "value"],
                [[k, round(v, 3)] for k, v in metrics.items()])
