"""E5 — Einwich mixed-signal frequency-domain simulation (seed [6]).

The same equations serve time and frequency domains: AC analysis of an
RLC bandpass and of an LSF biquad against analytic responses, and noise
analysis reproducing the kT/C law.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.ct import corner_frequency, integrated_noise, magnitude_db
from repro.ct.noise import BOLTZMANN
from repro.eln import (
    Capacitor,
    Inductor,
    Network,
    Resistor,
    Vsource,
    ac_analysis,
    noise_analysis,
)
from repro.lsf import LsfLtfNd, LsfNetwork, LsfSource, lsf_ac


def test_e5_rlc_bandpass_ac(benchmark):
    R, L, C = 1e3, 1e-3, 1e-9
    f0 = 1 / (2 * np.pi * np.sqrt(L * C))
    q_factor = R * np.sqrt(C / L)

    def run():
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "out", R))
        net.add(Inductor("L1", "out", "0", L))
        net.add(Capacitor("C1", "out", "0", C))
        freqs = np.logspace(4, 7, 901)
        return freqs, ac_analysis(net, freqs, input_source="V1")

    freqs, ac = benchmark(run)
    h = np.abs(ac.voltage("out"))
    f_peak = freqs[np.argmax(h)]
    # -3 dB bandwidth around the peak.
    above = freqs[h >= np.max(h) / np.sqrt(2)]
    bandwidth = above[-1] - above[0]
    print_table(
        "E5: RLC bandpass AC analysis",
        ["metric", "measured", "analytic"],
        [["peak frequency [Hz]", f"{f_peak:.3e}", f"{f0:.3e}"],
         ["peak gain", round(np.max(h), 4), 1.0],
         ["-3dB bandwidth [Hz]", f"{bandwidth:.3e}",
          f"{f0 / q_factor:.3e}"]],
    )
    assert f_peak == pytest.approx(f0, rel=0.02)
    assert np.max(h) == pytest.approx(1.0, abs=0.02)
    assert bandwidth == pytest.approx(f0 / q_factor, rel=0.1)


def test_e5_lsf_biquad_bode(benchmark):
    """LSF transfer-function block: AC sweep vs the analytic polynomial."""
    w0, zeta = 2 * np.pi * 1e4, 0.4

    def run():
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=0.0, ac=1.0))
        net.add(LsfLtfNd("bq", u, y, num=[w0 ** 2],
                         den=[w0 ** 2, 2 * zeta * w0, 1.0]))
        freqs = np.logspace(2, 6, 401)
        return freqs, lsf_ac(net, freqs, y)

    freqs, h = benchmark(run)
    s = 2j * np.pi * freqs
    analytic = w0 ** 2 / (w0 ** 2 + 2 * zeta * w0 * s + s ** 2)
    deviation = np.max(np.abs(h - analytic))
    peak_db = np.max(magnitude_db(h))
    expected_peak_db = -20 * np.log10(2 * zeta * np.sqrt(1 - zeta ** 2))
    print_table(
        "E5: LSF biquad vs analytic",
        ["metric", "value"],
        [["max |H - H_analytic|", f"{deviation:.2e}"],
         ["resonant peak [dB]", round(peak_db, 2)],
         ["expected peak [dB]", round(expected_peak_db, 2)]],
    )
    assert deviation < 1e-9
    assert peak_db == pytest.approx(expected_peak_db, abs=0.1)


def test_e5_harmonic_balance_large_signal(benchmark):
    """Phase 2 'large-signal nonlinear frequency-domain analysis':
    harmonic balance of a diode rectifier, checked against the
    time-domain steady state."""
    from repro.ct import harmonic_balance, variable_step_transient
    from repro.eln import Capacitor, Isource
    from repro.nonlin import Diode, NonlinearNetwork

    f0 = 1e3
    net = NonlinearNetwork()
    net.add(Isource("Iin", "v", "0",
                    lambda t: 2e-3 * np.sin(2 * np.pi * f0 * t)))
    net.add(Resistor("R1", "v", "0", 1e3))
    net.add(Capacitor("C1", "v", "0", 1e-7))
    net.add_device(Diode("D1", "v", "0", i_sat=1e-12))
    system, index = net.assemble_nonlinear()

    hb = benchmark(lambda: harmonic_balance(system, f0, harmonics=13))
    transient = variable_step_transient(system, 4 / f0, reltol=1e-6,
                                        abstol=1e-9, h0=1e-7)
    mask = transient.times >= 3 / f0
    v_ref = transient.states[mask, index.node_index["v"]]
    v_hb = hb.evaluate(transient.times[mask],
                       state=index.node_index["v"])
    deviation = float(np.max(np.abs(v_ref - v_hb)))
    v_idx = index.node_index["v"]
    print_table(
        "E5: harmonic balance (diode rectifier, 13 harmonics)",
        ["metric", "value"],
        [["DC component [V]", round(hb.harmonic(0, v_idx).real, 4)],
         ["fundamental [V]", round(hb.magnitude(1, v_idx), 4)],
         ["2nd harmonic [V]", round(hb.magnitude(2, v_idx), 4)],
         ["THD", round(hb.thd(v_idx), 4)],
         ["Newton iterations", hb.iterations],
         ["max dev vs transient [V]", f"{deviation:.2e}"]],
    )
    assert deviation < 0.02 * float(np.ptp(v_ref))
    assert hb.harmonic(0, v_idx).real < -0.1  # rectification shifts DC


def test_e5_noise_kt_over_c(benchmark):
    """Noise analysis integrates to kT/C regardless of R."""
    results = {}

    def run():
        for R in (1e3, 1e4, 1e5):
            net = Network()
            net.add(Resistor("R1", "n", "0", R))
            net.add(Capacitor("C1", "n", "0", 1e-9))
            freqs = np.logspace(0, 10, 3001)
            psd = noise_analysis(net, freqs, "n")
            results[R] = integrated_noise(freqs, psd)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    expected = BOLTZMANN * 300.0 / 1e-9
    rows = [[f"{R:.0e}", f"{total:.3e}", f"{expected:.3e}",
             round(total / expected, 3)]
            for R, total in results.items()]
    print_table(
        "E5: integrated output noise vs kT/C",
        ["R [ohm]", "integral [V^2]", "kT/C [V^2]", "ratio"], rows,
    )
    for total in results.values():
        assert total == pytest.approx(expected, rel=0.1)
