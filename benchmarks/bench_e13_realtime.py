"""E13 — Real-time capability.

The requirement that "models must execute in time steps that are bounded
by some maximum execution time" for hardware-in-the-loop prototypes:
wall-clock per model step of HIL-style plant models (DC motor, power
stage) against their real-time budget, i.e. the real-time factor.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.ct import LinearTransientSolver
from repro.eln import Network, Vsource
from repro.multidomain import DcMotor, Inertia, RotationalDamper
from repro.power import HalfBridgeDriver, PwlSolver, RLLoad

STEP_SECONDS = 1e-3  # a typical 1 kHz HIL step (automotive speed loop)


def motor_solver():
    net = Network("plant")
    net.add(Vsource("Vdrive", "vin", "0", 12.0))
    DcMotor("mot", net, "vin", "0", "w", kt=0.05, r_a=1.0, l_a=1e-3)
    net.add(Inertia("J", "w", 5e-4))
    net.add(RotationalDamper("b", "w", "0", 1e-4))
    dae, index = net.assemble()
    solver = LinearTransientSolver(dae)
    solver.initialize(0.0, x0=np.zeros(index.size))
    return solver


def test_e13_motor_step_budget(benchmark):
    solver = motor_solver()
    state = {"t": 0.0}

    def one_step():
        state["t"] += STEP_SECONDS
        solver.advance_to(state["t"])

    benchmark(one_step)
    # Direct measurement: warm up (factorization happens once), then
    # 1000 steps.  The 99th percentile is the model's bound; the raw
    # max additionally absorbs OS scheduler noise and is informational.
    solver = motor_solver()
    solver.advance_to(STEP_SECONDS)
    durations = []
    t = STEP_SECONDS
    for _ in range(1000):
        t += STEP_SECONDS
        start = time.perf_counter()
        solver.advance_to(t)
        durations.append(time.perf_counter() - start)
    p99 = float(np.percentile(durations, 99))
    mean = float(np.mean(durations))
    print_table(
        "E13: DC-motor plant, 1 ms HIL step",
        ["metric", "value"],
        [["mean step wall [us]", round(mean * 1e6, 1)],
         ["p99 step wall [us]", round(p99 * 1e6, 1)],
         ["max step wall [us]",
          round(max(durations) * 1e6, 1)],
         ["real-time factor (mean)",
          round(STEP_SECONDS / mean, 1)],
         ["bounded (p99 < budget)", p99 < STEP_SECONDS]],
    )
    # Shape: the linear plant runs faster than real time with a bounded
    # per-step cost.
    assert mean < STEP_SECONDS
    assert p99 < STEP_SECONDS


def test_e13_power_stage_step_budget(benchmark):
    driver = HalfBridgeDriver(RLLoad(2.0, 5e-4), v_supply=12.0,
                              pwm_frequency=10e3, duty=0.5)
    solver = driver.solver
    # Warm the transition cache (deterministic per-step cost after).
    half = 0.5 / 10e3
    solver.advance(np.zeros(1), "high", half)
    solver.advance(np.zeros(1), "low", half)
    state = {"x": np.zeros(1), "key": "high"}

    def one_segment():
        state["x"] = solver.advance(state["x"], state["key"], half)
        state["key"] = "low" if state["key"] == "high" else "high"

    benchmark(one_segment)
    durations = []
    x = np.zeros(1)
    key = "high"
    for _ in range(2000):
        start = time.perf_counter()
        x = solver.advance(x, key, half)
        durations.append(time.perf_counter() - start)
        key = "low" if key == "high" else "high"
    p99 = float(np.percentile(durations, 99))
    mean = float(np.mean(durations))
    budget = half  # one PWM half-period of real time
    print_table(
        "E13: PWL power stage, 50 us PWM segment",
        ["metric", "value"],
        [["mean segment wall [us]", round(mean * 1e6, 2)],
         ["p99 segment wall [us]", round(p99 * 1e6, 2)],
         ["real-time factor (mean)", round(budget / mean, 1)],
         ["bounded (p99 < budget)", p99 < budget]],
    )
    assert mean < budget
    assert p99 < budget
