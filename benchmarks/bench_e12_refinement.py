"""E12 — Grimm top-down refinement flow (seed [9]).

The same ΣΔ ADC at three abstraction levels, "from high-level
mathematical models to more physical, pin-accurate, models":

* **L0 math** — vectorized NumPy behavioural model (no kernel at all);
* **L1 signal-flow** — TDF modulator + CIC in the scheduled cluster;
* **L2 pin-accurate** — L1 plus the continuous anti-alias front-end
  (an ELN RC solved by MNA) ahead of the modulator.

Accuracy (ENOB) stays essentially constant through refinement while the
simulation cost grows — the trade the methodology is about.
"""

import time

import numpy as np
import pytest

from conftest import print_table
from repro.analysis import ToneAnalysis, coherent_tone_frequency
from repro.core import Module, SimTime, Simulator
from repro.eln import Capacitor, Network, Resistor, Vsource
from repro.lib import (
    CicDecimator,
    SigmaDelta2,
    SineSource,
    TdfSink,
    cic_decimate,
    sigma_delta2_bitstream,
)
from repro.sync import ElnTdfModule
from repro.tdf import TdfSignal

FS = 1e6
OSR = 32
N = 1 << 15
FS_DEC = FS / OSR
F_TONE = coherent_tone_frequency(FS_DEC, 512, 1.5e3)
AMPLITUDE = 0.5


def enob_of(decimated: np.ndarray) -> float:
    tail = decimated[len(decimated) - 512:]
    return ToneAnalysis(tail, FS_DEC, tone_frequency=F_TONE).enob


def level0_math():
    t = np.arange(N) / FS
    x = AMPLITUDE * np.sin(2 * np.pi * F_TONE * t)
    bits = sigma_delta2_bitstream(x)
    return cic_decimate(bits, OSR, order=3)


class Level1Top(Module):
    def __init__(self):
        super().__init__("l1")
        self.src = SineSource("src", frequency=F_TONE,
                              amplitude=AMPLITUDE, parent=self,
                              timestep=SimTime(1, "us"))
        self.sd = SigmaDelta2("sd", parent=self)
        self.cic = CicDecimator("cic", factor=OSR, order=3, parent=self)
        self.sink = TdfSink("sink", self)
        a, b, c = TdfSignal("a"), TdfSignal("b"), TdfSignal("c")
        self.src.out(a)
        self.sd.inp(a)
        self.sd.out(b)
        self.cic.inp(b)
        self.cic.out(c)
        self.sink.inp(c)


class Level2Top(Module):
    """Pin-accurate front: the tone passes a physical RC anti-alias
    network (corner ~50 kHz) before the modulator."""

    def __init__(self):
        super().__init__("l2")
        net = Network()
        net.add(Vsource("Vin", "in", "0"))
        net.add(Resistor("R1", "in", "out", 3.2e3))
        net.add(Capacitor("C1", "out", "0", 1e-9))
        self.src = SineSource("src", frequency=F_TONE,
                              amplitude=AMPLITUDE, parent=self,
                              timestep=SimTime(1, "us"))
        self.frontend = ElnTdfModule("aa", net, parent=self,
                                     oversample=2)
        self.sd = SigmaDelta2("sd", parent=self)
        self.cic = CicDecimator("cic", factor=OSR, order=3, parent=self)
        self.sink = TdfSink("sink", self)
        a, b, c, d = (TdfSignal(n) for n in "abcd")
        self.src.out(a)
        self.frontend.drive_voltage("Vin")(a)
        self.frontend.sample_voltage("out")(b)
        self.sd.inp(b)
        self.sd.out(c)
        self.cic.inp(c)
        self.cic.out(d)
        self.sink.inp(d)


def run_level(level: int):
    start = time.perf_counter()
    if level == 0:
        out = level0_math()
    else:
        top = Level1Top() if level == 1 else Level2Top()
        Simulator(top).run(SimTime(N, "us"))
        out = np.asarray(top.sink.samples)
    elapsed = time.perf_counter() - start
    return enob_of(out), elapsed


def test_e12_refinement_levels(benchmark):
    results = {}

    def measure():
        for level in (0, 1, 2):
            results[level] = run_level(level)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    names = {0: "L0 math (numpy)", 1: "L1 signal-flow (TDF)",
             2: "L2 pin-accurate (TDF+ELN)"}
    base_time = results[0][1]
    rows = [[names[level], round(enob, 2), round(seconds * 1e3, 1),
             round(seconds / base_time, 1)]
            for level, (enob, seconds) in results.items()]
    print_table(
        f"E12: sigma-delta ADC through refinement (OSR {OSR})",
        ["abstraction level", "ENOB", "wall [ms]", "slowdown"],
        rows,
    )
    enobs = [enob for enob, _s in results.values()]
    times = [seconds for _e, seconds in results.values()]
    # Functional behaviour is preserved through refinement ...
    assert max(enobs) - min(enobs) < 1.5
    assert min(enobs) > 9.0
    # ... while cost increases monotonically with physical detail.
    assert times[0] < times[1] < times[2]
