"""E10 — Static analyses: DC operating point, AC, noise.

The objective "static analyses include the computation of the DC
operating point ... transfer functions ... small-signal linear
frequency-domain analysis (including noise analysis)": DC homotopy
robustness on hard nonlinear networks (gmin-stepping ablation), AC of an
amplifier stage at its operating point, and a noise budget.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.core import ConvergenceError
from repro.ct import (
    NoiseSource,
    ac_sweep,
    dc_operating_point,
    linearize,
    output_noise_psd,
    per_source_contributions,
    thermal_current_psd,
)
from repro.eln import Isource, Resistor, Vsource
from repro.nonlin import Diode, NMos, NonlinearNetwork


def diode_stack(n_diodes=4, v_supply=20.0):
    """A stack of diodes in series: notoriously bad for plain Newton
    from a zero guess."""
    net = NonlinearNetwork("stack")
    net.add(Vsource("V1", "n0", "0", v_supply))
    net.add(Resistor("R1", "n0", "d1", 100.0))
    for k in range(1, n_diodes):
        net.add_device(Diode(f"D{k}", f"d{k}", f"d{k + 1}"))
    net.add_device(Diode(f"D{n_diodes}", f"d{n_diodes}", "0"))
    return net.assemble_nonlinear()


def test_e10_dc_homotopy_ablation(benchmark):
    system, index = diode_stack()

    def with_homotopy():
        return dc_operating_point(system, gmin_stepping=True)

    x = benchmark(with_homotopy)
    residual = float(np.max(np.abs(system.static(x, 0.0))))
    # Ablation: plain Newton from a deliberately bad guess.
    plain_failed = False
    try:
        dc_operating_point(system, x0=np.full(system.n, 10.0),
                           gmin_stepping=False)
    except ConvergenceError:
        plain_failed = True
    x_bad_guess = dc_operating_point(system,
                                     x0=np.full(system.n, 10.0),
                                     gmin_stepping=True)
    print_table(
        "E10: DC operating point of a 4-diode stack (20 V)",
        ["metric", "value"],
        [["residual |F|", f"{residual:.1e}"],
         ["v(d1) [V]", round(index.voltage(x, "d1"), 3)],
         ["plain Newton from bad guess", "diverged" if plain_failed
          else "converged"],
         ["gmin homotopy from bad guess",
          f"residual {np.max(np.abs(system.static(x_bad_guess, 0.0))):.1e}"]],
    )
    assert residual < 1e-8
    assert np.max(np.abs(system.static(x_bad_guess, 0.0))) < 1e-6
    # The interesting shape: homotopy succeeds where plain Newton is
    # fragile (plain may or may not converge depending on damping luck).


def test_e10_amplifier_ac_at_operating_point(benchmark):
    """Common-source amplifier: small-signal gain = -gm * Rd at the DC
    operating point, straight from the linearized Jacobians."""
    kp, vth, rd = 2e-3, 0.7, 5e3
    vg = 1.5
    net = NonlinearNetwork("cs_amp")
    net.add(Vsource("Vdd", "vdd", "0", 5.0))
    net.add(Vsource("Vg", "g", "0", vg))
    net.add(Resistor("Rd", "vdd", "d", rd))
    net.add_device(NMos("M1", "d", "g", "0", k_prime=kp, vth=vth))
    system, index = net.assemble_nonlinear()

    def run():
        x_op = dc_operating_point(system)
        C, G = linearize(system, x_op)
        b_ac = np.zeros(index.size)
        b_ac[index.current_index["Vg"]] = 1.0  # 1 V AC on the gate
        phasors = ac_sweep(C, G, b_ac, np.array([1e3]))
        return x_op, phasors[0, index.node_index["d"]]

    x_op, gain = benchmark(run)
    gm = kp * (vg - vth)
    expected = -gm * rd
    print_table(
        "E10: common-source small-signal gain",
        ["metric", "value"],
        [["v(d) operating [V]", round(index.voltage(x_op, "d"), 3)],
         ["measured gain", round(float(gain.real), 3)],
         ["-gm*Rd", round(expected, 3)]],
    )
    assert float(gain.real) == pytest.approx(expected, rel=1e-3)
    assert abs(gain.imag) < 1e-9  # no capacitance in this network


def test_e10_noise_budget(benchmark):
    """Per-source noise budget of a two-resistor divider driving a
    capacitor; contributions must sum to the total."""
    r1, r2, c = 10e3, 40e3, 1e-9
    C = np.array([[c]])
    G = np.array([[1 / r1 + 1 / r2]])
    sources = [
        NoiseSource("R1", [1.0], thermal_current_psd(r1)),
        NoiseSource("R2", [1.0], thermal_current_psd(r2)),
    ]
    freqs = np.logspace(1, 8, 301)

    def run():
        total = output_noise_psd(C, G, sources, [1.0], freqs)
        parts = per_source_contributions(C, G, sources, [1.0], freqs)
        return total, parts

    total, parts = benchmark(run)
    ratio_low = parts["R1"][0] / parts["R2"][0]
    print_table(
        "E10: noise budget (divider + C)",
        ["metric", "value"],
        [["total PSD at 10 Hz [V^2/Hz]", f"{total[0]:.3e}"],
         ["R1 share", f"{parts['R1'][0] / total[0]:.2%}"],
         ["R2 share", f"{parts['R2'][0] / total[0]:.2%}"],
         ["R1/R2 ratio", round(ratio_low, 3)]],
    )
    np.testing.assert_allclose(parts["R1"] + parts["R2"], total,
                               rtol=1e-12)
    # Current-noise PSD goes as 1/R: the smaller resistor dominates.
    assert ratio_low == pytest.approx(r2 / r1, rel=1e-9)
