"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold over randomized inputs: solver agreement with
closed forms, stamping passivity, schedule admissibility, numerical
continuity of device models, and parser/builder equivalence.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ct import LinearDae, newton
from repro.ct.nonlinear import dlimexp, limexp
from repro.eln import Capacitor, Network, Resistor, Vsource, dc_analysis
from repro.frontends import parse_netlist
from repro.power import PwlConfig, PwlSolver


@given(
    tau=st.floats(min_value=1e-6, max_value=1.0),
    u=st.floats(min_value=-10.0, max_value=10.0),
    x0=st.floats(min_value=-10.0, max_value=10.0),
)
@settings(max_examples=50, deadline=None)
def test_trapezoidal_matches_exponential_decay(tau, u, x0):
    """TRAP on x' = (u - x)/tau agrees with the closed form to O(h^2)."""
    dae = LinearDae(
        C=np.array([[tau]]), G=np.array([[1.0]]),
        source=lambda t: np.array([u]),
    )
    h = tau / 50
    times, states = dae.transient(tau, h, x0=np.array([x0]))
    exact = u + (x0 - u) * np.exp(-times / tau)
    scale = max(abs(u), abs(x0), 1.0)
    assert np.max(np.abs(states[:, 0] - exact)) < 1e-3 * scale


@given(
    a=st.floats(min_value=-50.0, max_value=-0.01),
    b=st.floats(min_value=-10.0, max_value=10.0),
    h=st.floats(min_value=1e-4, max_value=0.5),
)
@settings(max_examples=50, deadline=None)
def test_pwl_solver_is_exact(a, b, h):
    """PWL transition equals the analytic solution of x' = a x + b."""
    solver = PwlSolver({"k": PwlConfig([[a]], [b])})
    x0 = 1.0
    result = solver.advance(np.array([x0]), "k", h)
    x_inf = -b / a
    exact = x_inf + (x0 - x_inf) * np.exp(a * h)
    assert result[0] == pytest.approx(exact, rel=1e-9, abs=1e-12)


@given(st.lists(st.floats(min_value=1.0, max_value=1e6),
                min_size=2, max_size=8))
@settings(max_examples=50, deadline=None)
def test_series_resistor_chain_dc(resistances):
    """Current through a series chain equals V / sum(R); the netlist
    parser builds the identical network."""
    v_in = 10.0
    lines = [f"V1 n0 0 DC {v_in}"]
    net = Network()
    net.add(Vsource("V1", "n0", "0", v_in))
    for k, r in enumerate(resistances):
        net.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}", r))
        lines.append(f"R{k} n{k} n{k+1} {r!r}")
    net.add(Resistor("Rend", f"n{len(resistances)}", "0", 1.0))
    lines.append(f"Rend n{len(resistances)} 0 1")
    total = sum(resistances) + 1.0
    dc = dc_analysis(net)
    assert dc.current("V1") == pytest.approx(-v_in / total, rel=1e-9)
    parsed = parse_netlist("\n".join(lines))
    dc2 = dc_analysis(parsed)
    assert dc2.current("V1") == pytest.approx(dc.current("V1"), rel=1e-12)


@given(
    values=st.lists(
        st.tuples(st.sampled_from("RC"),
                  st.floats(min_value=1e-2, max_value=1e2)),
        min_size=1, max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_rc_network_eigenvalues_stable(values):
    """Any grounded R/C ladder is passive: the state matrix of the
    assembled DAE has no right-half-plane generalized eigenvalues."""
    net = Network()
    net.add(Resistor("Ranchor", "n0", "0", 1.0))
    net.add(Capacitor("Canchor", "n0", "0", 1e-6))
    for k, (kind, value) in enumerate(values):
        a, b = f"n{k}", f"n{k + 1}"
        if kind == "R":
            net.add(Resistor(f"R{k}", a, b, value))
            net.add(Capacitor(f"Cg{k}", b, "0", 1e-6))
        else:
            net.add(Capacitor(f"C{k}", a, b, value * 1e-6))
            net.add(Resistor(f"Rg{k}", b, "0", 1.0))
    dae, _index = net.assemble()
    eigenvalues = [ev for ev in
                   np.linalg.eigvals(np.linalg.solve(
                       dae.C + 1e-12 * np.eye(dae.n), -dae.G))
                   if np.isfinite(ev)]
    assert all(ev.real < 1e6 for ev in eigenvalues)


@given(st.floats(min_value=-200.0, max_value=200.0))
@settings(max_examples=200, deadline=None)
def test_limexp_continuity_and_monotonicity(x):
    """limexp is finite, positive, monotone, with matching derivative."""
    y = limexp(x)
    assert np.isfinite(y) and y > 0
    eps = 1e-6 * max(abs(x), 1.0)
    assert limexp(x + eps) >= y
    numeric = (limexp(x + eps) - limexp(x - eps)) / (2 * eps)
    assert numeric == pytest.approx(dlimexp(x), rel=1e-3)


@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_newton_solves_linear_systems_in_one_iteration(n, seed):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=n)
    x, iterations = newton(
        lambda v: A @ v - b,
        lambda v: A,
        np.zeros(n),
    )
    np.testing.assert_allclose(A @ x, b, atol=1e-7)
    assert iterations <= 3


@given(
    r=st.floats(min_value=10.0, max_value=1e5),
    c=st.floats(min_value=1e-10, max_value=1e-5),
    frequency=st.floats(min_value=1.0, max_value=1e7),
)
@settings(max_examples=60, deadline=None)
def test_ac_transient_consistency(r, c, frequency):
    """|H| from AC analysis equals the analytic RC response everywhere."""
    dae = LinearDae(
        C=np.array([[c]]), G=np.array([[1 / r]]),
        source=lambda t: np.array([1.0 / r]),
    )
    h = dae.ac(np.array([frequency]))[0, 0]
    expected = 1 / (1 + 2j * np.pi * frequency * r * c)
    assert abs(h - expected) < 1e-9 * abs(expected) + 1e-15


@given(st.integers(min_value=2, max_value=64),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_cic_preserves_dc(factor, order):
    from repro.lib import cic_decimate

    out = cic_decimate(np.full(factor * 20, 0.75), factor, order)
    np.testing.assert_allclose(out[order + 1:], 0.75, atol=1e-9)


@given(st.floats(min_value=0.05, max_value=0.95),
       st.floats(min_value=2.0, max_value=48.0))
@settings(max_examples=40, deadline=None)
def test_buck_average_equals_duty(duty, v_supply):
    """Cycle-average of the PWL buck equals duty * V/R for any duty."""
    from repro.power import HalfBridgeDriver, RLLoad

    driver = HalfBridgeDriver(
        RLLoad(resistance=1.0, inductance=1e-3),
        v_supply=v_supply, r_on=0.0, pwm_frequency=50e3, duty=duty,
    )
    average = driver.average_output()[0]
    assert average == pytest.approx(duty * v_supply, rel=1e-6)
