"""Tests for the PWL power-electronics solver and driver models."""

import numpy as np
import pytest

from repro.core import ElaborationError, SolverError
from repro.power import (
    HIGH,
    LOW,
    HalfBridgeDriver,
    PwlConfig,
    PwlSolver,
    RCLoad,
    RLLoad,
    RlcLoad,
    run_schedule,
)


class TestPwlSolver:
    def test_exact_first_order_decay(self):
        solver = PwlSolver({"a": PwlConfig([[-10.0]], [0.0])})
        x = solver.advance(np.array([1.0]), "a", 0.3)
        assert x[0] == pytest.approx(np.exp(-3.0), rel=1e-12)

    def test_exact_forced_response(self):
        # x' = -x + 5: x_inf = 5.
        solver = PwlSolver({"a": PwlConfig([[-1.0]], [5.0])})
        x = solver.advance(np.zeros(1), "a", 2.0)
        assert x[0] == pytest.approx(5 * (1 - np.exp(-2.0)), rel=1e-12)

    def test_singular_a_integrator(self):
        # x' = 3 (pure integrator, singular A): augmented-matrix path.
        solver = PwlSolver({"a": PwlConfig([[0.0]], [3.0])})
        x = solver.advance(np.array([1.0]), "a", 2.0)
        assert x[0] == pytest.approx(7.0, rel=1e-12)

    def test_second_order_oscillator_exact(self):
        w = 2 * np.pi * 100.0
        solver = PwlSolver({
            "a": PwlConfig([[0.0, 1.0], [-w * w, 0.0]], [0.0, 0.0])
        })
        x = solver.advance(np.array([1.0, 0.0]), "a", 1.0 / 400.0)
        # Quarter period: x -> (cos(pi/2), ...) = (0, -w).
        assert x[0] == pytest.approx(np.cos(w / 400), abs=1e-9)

    def test_transition_cache_reused(self):
        solver = PwlSolver({"a": PwlConfig([[-1.0]], [0.0])})
        solver.advance(np.ones(1), "a", 0.1)
        solver.advance(np.ones(1), "a", 0.1)
        assert len(solver._cache) == 1
        assert solver.segment_count == 2

    def test_validation(self):
        with pytest.raises(SolverError):
            PwlSolver({})
        with pytest.raises(SolverError):
            PwlSolver({
                "a": PwlConfig([[-1.0]], [0.0]),
                "b": PwlConfig(np.eye(2), np.zeros(2)),
            })
        solver = PwlSolver({"a": PwlConfig([[-1.0]], [0.0])})
        with pytest.raises(SolverError):
            solver.advance(np.ones(1), "nope", 0.1)
        with pytest.raises(SolverError):
            solver.advance(np.ones(1), "a", -0.1)

    def test_zero_duration_identity(self):
        solver = PwlSolver({"a": PwlConfig([[-1.0]], [0.0])})
        np.testing.assert_array_equal(
            solver.advance(np.array([2.0]), "a", 0.0), [2.0]
        )

    def test_run_schedule_concatenates(self):
        solver = PwlSolver({
            "up": PwlConfig([[0.0]], [1.0]),
            "down": PwlConfig([[0.0]], [-1.0]),
        })
        times, states = run_schedule(
            solver, [("up", 1.0), ("down", 0.5)], np.zeros(1),
            samples_per_segment=2,
        )
        np.testing.assert_allclose(times, [0, 0.5, 1.0, 1.25, 1.5])
        np.testing.assert_allclose(states[:, 0], [0, 0.5, 1.0, 0.75, 0.5])


class TestSteadyState:
    def test_rl_steady_state_average(self):
        """Buck-style: average inductor current = duty * V / R."""
        driver = HalfBridgeDriver(
            RLLoad(resistance=1.0, inductance=1e-3),
            v_supply=10.0, r_on=0.0, pwm_frequency=10e3, duty=0.3,
        )
        average = driver.average_output()[0]
        assert average == pytest.approx(3.0, rel=0.01)

    def test_steady_state_is_periodic_fixed_point(self):
        driver = HalfBridgeDriver(
            RLLoad(resistance=2.0, inductance=5e-4),
            v_supply=12.0, pwm_frequency=20e3, duty=0.6,
        )
        x0 = driver.steady_state()
        schedule = driver.period_schedule()
        x1 = driver.solver.advance(x0, schedule[0][0], schedule[0][1])
        x1 = driver.solver.advance(x1, schedule[1][0], schedule[1][1])
        np.testing.assert_allclose(x1, x0, rtol=1e-9)

    def test_ripple_decreases_with_frequency(self):
        def ripple(freq):
            driver = HalfBridgeDriver(
                RLLoad(resistance=1.0, inductance=1e-3),
                v_supply=10.0, pwm_frequency=freq, duty=0.5,
            )
            return driver.steady_ripple()[0]

        assert ripple(100e3) < ripple(10e3) / 5

    def test_rc_load_steady_average(self):
        driver = HalfBridgeDriver(
            RCLoad(resistance=100.0, capacitance=1e-6),
            v_supply=5.0, r_on=0.0, pwm_frequency=50e3, duty=0.4,
        )
        assert driver.average_output()[0] == pytest.approx(2.0, rel=0.01)

    def test_rlc_filter_smooths_output(self):
        driver = HalfBridgeDriver(
            RlcLoad(resistance=0.1, inductance=100e-6,
                    capacitance=100e-6, load_resistance=10.0),
            v_supply=12.0, pwm_frequency=100e3, duty=0.5,
        )
        ripple = driver.steady_ripple()
        average = driver.average_output()
        # Output voltage ~ duty * supply with small ripple.
        assert average[1] == pytest.approx(6.0, rel=0.05)
        assert ripple[1] < 0.05


class TestTransient:
    def test_rl_rise_matches_analytic(self):
        R, L, V = 1.0, 1e-3, 10.0
        driver = HalfBridgeDriver(
            RLLoad(resistance=R, inductance=L), v_supply=V, r_on=0.0,
            pwm_frequency=1e3, duty=0.999,  # essentially always on
        )
        times, states = driver.simulate(3, samples_per_segment=50)
        tau = L / R
        expected = V / R * (1 - np.exp(-times / tau))
        # The 0.1% off-segment barely disturbs the rise.
        np.testing.assert_allclose(states[:, 0], expected, atol=0.05)

    def test_pwm_waveform_shape(self):
        driver = HalfBridgeDriver(
            RLLoad(resistance=1.0, inductance=1e-3),
            v_supply=10.0, r_on=0.0, pwm_frequency=10e3, duty=0.5,
        )
        times, states = driver.simulate(50, samples_per_segment=4)
        current = states[:, 0]
        # Rises toward steady state, then oscillates about the average.
        tail = current[len(current) // 2:]
        assert np.mean(tail) == pytest.approx(5.0, rel=0.05)
        assert np.ptp(tail) > 0.01  # visible switching ripple

    def test_validation(self):
        with pytest.raises(ElaborationError):
            HalfBridgeDriver(RLLoad(1.0, 1e-3), duty=0.0)
        with pytest.raises(ElaborationError):
            HalfBridgeDriver(RLLoad(1.0, 1e-3), pwm_frequency=0.0)
        with pytest.raises(ElaborationError):
            RLLoad(0.0, 1e-3)
        with pytest.raises(ElaborationError):
            RCLoad(1.0, 0.0)
        with pytest.raises(ElaborationError):
            RlcLoad(1.0, 0.0, 1e-6)


class TestPwmDriverModule:
    def test_de_gated_driver_in_tdf(self):
        from repro.core import Clock, Module, SimTime, Simulator
        from repro.lib import TdfSink
        from repro.power import PwmDriverModule
        from repro.tdf import TdfSignal

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                # 10 kHz PWM from a DE clock, 50% duty.
                self.clk = Clock("clk", period=SimTime(100, "us"),
                                 parent=self)
                self.drv = PwmDriverModule(
                    "drv", RLLoad(resistance=1.0, inductance=1e-3),
                    v_supply=10.0, r_on=0.0, parent=self,
                )
                self.drv.set_timestep(SimTime(10, "us"))
                self.drv.bind_gate(self.clk.signal)
                self.sig = TdfSignal("i")
                self.drv.out_i_load(self.sig)
                self.sink = TdfSink("sink", self)
                self.sink.inp(self.sig)

        top = Top()
        Simulator(top).run(SimTime(20, "ms"))
        t, i = top.sink.as_arrays()
        tail = i[len(i) // 2:]
        assert np.mean(tail) == pytest.approx(5.0, rel=0.1)
        assert np.ptp(tail) > 0.05
