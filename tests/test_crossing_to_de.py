"""Tests for sub-sample CT->DE crossing events."""

import numpy as np
import pytest

from repro.core import (
    BitSignal,
    Kernel,
    Module,
    SimTime,
    Simulator,
    SynchronizationError,
)
from repro.lib import SineSource
from repro.sync import CrossingToDe
from repro.tdf import TdfSignal


def us(x):
    return SimTime(x, "us")


def build(direction="rising", threshold=0.0, frequency=1e3,
          timestep_us=37):
    """A sine sampled coarsely (odd step so crossings are sub-sample)."""

    class Top(Module):
        def __init__(self):
            super().__init__("top")
            self.src = SineSource("src", frequency=frequency,
                                  parent=self,
                                  timestep=us(timestep_us))
            self.det = CrossingToDe("det", threshold=threshold,
                                    direction=direction, parent=self)
            self.level = BitSignal("level")
            self.det.de_out(self.level)
            sig = TdfSignal("s")
            self.src.out(sig)
            self.det.inp(sig)
            self.edge_times = []
            self.method(self._capture,
                        sensitivity=[self.level],
                        dont_initialize=True)

        def _capture(self):
            self.edge_times.append(Kernel.current().now_ticks * 1e-15)

    return Top()


class TestCrossingToDe:
    def test_rising_crossings_at_analytic_times(self):
        top = build()
        Simulator(top).run(SimTime(5, "ms"))
        # Rising zero crossings of sin(2*pi*1kHz*t) at 1, 2, 3, 4 ms
        # (t=0 is the initial sample, not a detected crossing).
        expected = np.array([1e-3, 2e-3, 3e-3, 4e-3])
        measured = np.asarray(top.det.crossings[:4])
        # Interpolated localization: far better than the 37 us sample
        # spacing (linear interpolation of a sine: O(h^2) ~ 2 us here).
        np.testing.assert_allclose(measured, expected, atol=3e-6)

    def test_de_events_fire_at_pipelined_interpolated_ticks(self):
        top = build()
        Simulator(top).run(SimTime(5, "ms"))
        assert len(top.edge_times) >= 4
        latency = 37e-6  # one cluster period
        for measured, expected in zip(top.edge_times,
                                      (1e-3, 2e-3, 3e-3, 4e-3)):
            # DE transition at the interpolated instant plus the
            # constant one-period pipeline latency — NOT quantized to a
            # 37 us sample boundary.
            assert measured == pytest.approx(expected + latency,
                                             abs=3e-6)
            remainder = (measured * 1e6) % 37
            assert min(remainder, 37 - remainder) > 1e-3

    def test_inter_event_spacing_is_sub_sample_accurate(self):
        """The pipeline latency is constant: spacings are exact."""
        top = build()
        Simulator(top).run(SimTime(5, "ms"))
        deltas = np.diff(top.edge_times)
        np.testing.assert_allclose(deltas, 1e-3, atol=5e-6)
        sample_error = 37e-6 / 2
        assert np.max(np.abs(deltas - 1e-3)) < sample_error / 3

    def test_falling_direction(self):
        top = build(direction="falling")
        Simulator(top).run(SimTime(4, "ms"))
        expected = np.array([0.5e-3, 1.5e-3, 2.5e-3, 3.5e-3])
        np.testing.assert_allclose(np.asarray(top.det.crossings[:4]),
                                   expected, atol=3e-6)
        # Direction-filtered: the DE level toggles per crossing.
        assert len(top.edge_times) >= 3

    def test_nonzero_threshold(self):
        top = build(direction="rising", threshold=0.5)
        Simulator(top).run(SimTime(3, "ms"))
        # sin crosses 0.5 upward at t = T/12.
        assert top.det.crossings[0] == pytest.approx(1e-3 / 12,
                                                     abs=5e-6)

    def test_invalid_direction_rejected(self):
        with pytest.raises(SynchronizationError):
            CrossingToDe("d", direction="diagonal")

    def test_both_directions_level_follows_comparator(self):
        top = build(direction="either")
        Simulator(top).run(SimTime(3, "ms"))
        # Crossings at every half millisecond: 0.5, 1.0, 1.5, ...
        assert len(top.det.crossings) >= 5
        deltas = np.diff(top.det.crossings)
        np.testing.assert_allclose(deltas, 0.5e-3, atol=5e-6)
        # DE level alternates (post-crossing comparator state); the
        # first falling crossing writes False onto an already-False
        # signal, so it produces crossings-1 visible transitions.
        assert len(top.edge_times) >= len(top.det.crossings) - 1
