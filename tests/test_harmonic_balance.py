"""Tests for single-tone harmonic balance (large-signal frequency
domain, Phase 2)."""

import numpy as np
import pytest

from repro.core import SolverError
from repro.ct import FunctionSystem, variable_step_transient
from repro.ct.harmonic import harmonic_balance
from repro.ct.nonlinear import dlimexp, limexp
from repro.eln import Capacitor, Isource, Resistor, Vsource
from repro.nonlin import Diode, NonlinearConductor, NonlinearNetwork


def linear_rc(r=1e3, c=1e-6, amplitude=1.0, frequency=1e3):
    """Driven linear RC as a FunctionSystem (known analytic HB)."""
    w = 2 * np.pi * frequency

    def static(x, t):
        return np.array([
            (x[0] - amplitude * np.sin(w * t)) / r
        ])

    return FunctionSystem(
        n=1, static=static,
        charge=lambda x: np.array([c * x[0]]),
        charge_jacobian=lambda x: np.array([[c]]),
        static_jacobian=lambda x, t: np.array([[1.0 / r]]),
    )


class TestLinearLimit:
    def test_rc_fundamental_matches_analytic(self):
        r, c, f = 1e3, 1e-6, 1e3
        system = linear_rc(r, c, amplitude=1.0, frequency=f)
        result = harmonic_balance(system, f, harmonics=3)
        h = 1 / (1 + 2j * np.pi * f * r * c)
        assert result.magnitude(1) == pytest.approx(abs(h), rel=1e-6)
        # A linear system has no harmonics beyond the fundamental.
        assert result.magnitude(2) < 1e-9
        assert result.magnitude(3) < 1e-9
        assert abs(result.harmonic(0)) < 1e-9

    def test_waveform_reconstruction(self):
        f = 1e3
        system = linear_rc(frequency=f)
        result = harmonic_balance(system, f, harmonics=3)
        t = np.linspace(0, 2e-3, 200)
        wave = result.evaluate(t)
        assert np.max(np.abs(wave)) == pytest.approx(
            result.magnitude(1), rel=1e-3
        )


class CubicResistorDrive(FunctionSystem):
    """v across i = g1*v + g3*v^3 driven by a sinusoidal current."""

    def __init__(self, g1=1e-3, g3=2e-4, i_amp=1e-3, frequency=1e3):
        w = 2 * np.pi * frequency

        def static(x, t):
            v = x[0]
            return np.array([
                g1 * v + g3 * v ** 3 - i_amp * np.sin(w * t)
            ])

        super().__init__(
            n=1, static=static,
            static_jacobian=lambda x, t: np.array(
                [[g1 + 3 * g3 * x[0] ** 2]]
            ),
        )


class TestNonlinearHarmonics:
    def test_cubic_generates_third_harmonic_only(self):
        result = harmonic_balance(
            CubicResistorDrive(), 1e3, harmonics=5,
        )
        # Odd symmetry: even harmonics and DC vanish.
        assert abs(result.harmonic(0)) < 1e-9
        assert result.magnitude(2) < 1e-9
        assert result.magnitude(4) < 1e-9
        assert result.magnitude(3) > 1e-3 * result.magnitude(1)
        assert result.magnitude(5) < result.magnitude(3)

    def test_third_harmonic_small_signal_theory(self):
        """For weak nonlinearity, |V3| ~ g3*|V1|^3 / (4*g1)."""
        g1, g3, i_amp = 1e-3, 1e-5, 1e-4
        result = harmonic_balance(
            CubicResistorDrive(g1, g3, i_amp), 1e3, harmonics=5,
        )
        v1 = result.magnitude(1)
        expected_v3 = g3 * v1 ** 3 / (4 * g1)
        assert result.magnitude(3) == pytest.approx(expected_v3,
                                                    rel=0.05)

    def test_matches_transient_steady_state(self):
        """HB equals the long-transient steady state of a rectifier."""
        f = 1e3
        net = NonlinearNetwork()
        net.add(Isource("Iin", "v", "0",
                        lambda t: 2e-3 * np.sin(2 * np.pi * f * t)))
        net.add(Resistor("R1", "v", "0", 1e3))
        net.add(Capacitor("C1", "v", "0", 1e-7))
        net.add_device(Diode("D1", "v", "0", i_sat=1e-12))
        system, index = net.assemble_nonlinear()
        hb = harmonic_balance(system, f, harmonics=13)
        # tau = RC = 0.1 periods, so 3 periods reach steady state.
        transient = variable_step_transient(
            system, 4 / f, reltol=1e-6, abstol=1e-9, h0=1e-7,
        )
        # Compare the last period against the HB reconstruction.  The
        # rectified waveform has sharp corners, so the truncated series
        # carries a small Gibbs-style ripple: 2% of the swing.
        mask = transient.times >= 3 / f
        t_tail = transient.times[mask]
        v_tail = transient.states[mask, index.node_index["v"]]
        v_hb = hb.evaluate(t_tail, state=index.node_index["v"])
        swing = np.ptp(v_tail)
        assert np.max(np.abs(v_tail - v_hb)) < 0.02 * swing

    def test_diode_rectifier_has_dc_component(self):
        """Rectification: the diode shifts DC away from zero."""
        f = 1e3
        net = NonlinearNetwork()
        net.add(Isource("Iin", "v", "0",
                        lambda t: 1e-3 * np.sin(2 * np.pi * f * t)))
        net.add(Resistor("R1", "v", "0", 1e4))
        net.add_device(Diode("D1", "v", "0", i_sat=1e-12))
        system, _index = net.assemble_nonlinear()
        result = harmonic_balance(system, f, harmonics=9)
        assert result.harmonic(0).real < -0.5  # negative DC offset

    def test_thd_metric(self):
        result = harmonic_balance(CubicResistorDrive(), 1e3, harmonics=5)
        thd = result.thd()
        assert 0 < thd < 0.2
        ratio = result.magnitude(3) / result.magnitude(1)
        assert thd == pytest.approx(ratio, rel=0.01)


class TestValidation:
    def test_bad_parameters(self):
        system = linear_rc()
        with pytest.raises(SolverError):
            harmonic_balance(system, 0.0)
        with pytest.raises(SolverError):
            harmonic_balance(system, 1e3, harmonics=0)

    def test_thd_requires_fundamental(self):
        # A pure-DC system has no fundamental.
        system = FunctionSystem(
            n=1, static=lambda x, t: np.array([x[0] - 1.0]),
            static_jacobian=lambda x, t: np.array([[1.0]]),
        )
        result = harmonic_balance(system, 1e3, harmonics=2)
        with pytest.raises(SolverError):
            result.thd()
