"""Tests for spectral analysis and time-domain metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    StepResponse,
    ToneAnalysis,
    amplitude_spectrum,
    coherent_tone_frequency,
    convergence_order,
    enob_of_tone,
    estimate_frequency,
    max_error,
    power_spectral_density,
    rms,
    rms_error,
    sndr_of_tone,
    snr_of_tone,
    window,
)


def coherent_sine(fs, n, f_target, amplitude=1.0):
    f = coherent_tone_frequency(fs, n, f_target)
    t = np.arange(n) / fs
    return f, amplitude * np.sin(2 * np.pi * f * t)


class TestSpectrum:
    def test_amplitude_spectrum_peak(self):
        fs, n = 1e6, 4096
        f, x = coherent_sine(fs, n, 10e3, amplitude=0.5)
        freqs, amps = amplitude_spectrum(x, fs)
        peak_bin = np.argmax(amps)
        assert freqs[peak_bin] == pytest.approx(f, abs=fs / n)
        assert amps[peak_bin] == pytest.approx(0.5, rel=0.05)

    def test_psd_integrates_to_variance(self):
        rng = np.random.default_rng(3)
        fs, n = 1e6, 16384
        x = rng.normal(0, 0.3, n)
        freqs, psd = power_spectral_density(x, fs, window_name="rect")
        total = np.trapezoid(psd, freqs)
        assert total == pytest.approx(np.var(x), rel=0.05)

    def test_window_names(self):
        for name in ("rect", "hann", "blackman"):
            w = window(name, 64)
            assert len(w) == 64
        with pytest.raises(ValueError):
            window("kaiser", 64)

    def test_coherent_frequency_is_odd_bin(self):
        fs, n = 1e6, 4096
        f = coherent_tone_frequency(fs, n, 10e3)
        cycles = f * n / fs
        assert cycles == pytest.approx(round(cycles))
        assert round(cycles) % 2 == 1


class TestToneAnalysis:
    def test_pure_tone_has_high_snr(self):
        fs, n = 1e6, 8192
        f, x = coherent_sine(fs, n, 50e3)
        analysis = ToneAnalysis(x, fs)
        assert analysis.tone_frequency == pytest.approx(f, abs=fs / n)
        # Bounded by Hann sidelobe leakage outside the 3-bin aperture.
        assert analysis.snr_db > 90

    def test_known_noise_snr(self):
        fs, n = 1e6, 65536
        rng = np.random.default_rng(11)
        f, x = coherent_sine(fs, n, 37e3, amplitude=1.0)
        noise_rms = 0.01
        noisy = x + rng.normal(0, noise_rms, n)
        expected = 20 * np.log10((1 / np.sqrt(2)) / noise_rms)
        assert snr_of_tone(noisy, fs) == pytest.approx(expected, abs=1.0)

    def test_harmonic_distortion_detected(self):
        fs, n = 1e6, 16384
        f, x = coherent_sine(fs, n, 20e3)
        t = np.arange(n) / fs
        distorted = x + 0.01 * np.sin(2 * np.pi * 2 * f * t) \
            + 0.005 * np.sin(2 * np.pi * 3 * f * t)
        analysis = ToneAnalysis(distorted, fs)
        # THD = sqrt(0.01^2 + 0.005^2) relative to 1.0.
        expected_thd = 10 * np.log10((0.01 ** 2 + 0.005 ** 2) / 2 / 0.5)
        assert analysis.thd_db == pytest.approx(expected_thd, abs=0.5)
        assert analysis.sndr_db < analysis.snr_db

    def test_quantizer_enob_close_to_nominal(self):
        from repro.lib import quantize_midrise

        fs, n, bits = 1e6, 65536, 10
        f, x = coherent_sine(fs, n, 13e3, amplitude=0.99)
        q = np.array([quantize_midrise(v, bits) for v in x])
        enob = enob_of_tone(q, fs)
        assert enob == pytest.approx(bits, abs=0.5)

    def test_explicit_tone_frequency(self):
        fs, n = 1e6, 8192
        f, x = coherent_sine(fs, n, 30e3, amplitude=0.2)
        # A larger interferer elsewhere should not confuse the analysis
        # when the tone frequency is given explicitly.
        t = np.arange(n) / fs
        f2 = coherent_tone_frequency(fs, n, 200e3)
        x = x + 0.5 * np.sin(2 * np.pi * f2 * t)
        analysis = ToneAnalysis(x, fs, tone_frequency=f)
        assert analysis.tone_frequency == pytest.approx(f, abs=fs / n)

    def test_sndr_helper(self):
        fs, n = 1e6, 8192
        _f, x = coherent_sine(fs, n, 10e3)
        assert sndr_of_tone(x, fs) > 90


class TestMetrics:
    def test_rms(self):
        t = np.linspace(0, 1, 100000, endpoint=False)
        x = np.sin(2 * np.pi * 5 * t)
        assert rms(x) == pytest.approx(1 / np.sqrt(2), rel=1e-4)

    def test_error_norms(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.1, 1.9, 3.0])
        assert max_error(a, b) == pytest.approx(0.1)
        assert rms_error(a, b) == pytest.approx(np.sqrt(0.02 / 3))

    def test_convergence_order_fit(self):
        hs = np.array([0.1, 0.05, 0.025, 0.0125])
        errors = 3.0 * hs ** 2
        assert convergence_order(hs, errors) == pytest.approx(2.0, abs=1e-9)

    def test_step_response_first_order(self):
        tau = 1.0
        t = np.linspace(0, 10, 10001)
        v = 1 - np.exp(-t / tau)
        step = StepResponse(t, v, final_value=1.0, initial_value=0.0)
        # 10-90% rise time of a first-order system = tau * ln 9.
        assert step.rise_time == pytest.approx(tau * np.log(9), rel=1e-3)
        assert step.overshoot == pytest.approx(0.0, abs=1e-9)
        # 2% settling at tau * ln 50.
        assert step.settling_time(0.02) == pytest.approx(
            tau * np.log(50), rel=1e-2
        )

    def test_step_response_overshoot(self):
        zeta, w = 0.2, 10.0
        wd = w * np.sqrt(1 - zeta ** 2)
        t = np.linspace(0, 5, 20001)
        v = 1 - np.exp(-zeta * w * t) * (
            np.cos(wd * t) + zeta * w / wd * np.sin(wd * t)
        )
        step = StepResponse(t, v, final_value=1.0, initial_value=0.0)
        expected = np.exp(-np.pi * zeta / np.sqrt(1 - zeta ** 2))
        assert step.overshoot == pytest.approx(expected, rel=1e-2)

    def test_step_zero_swing_rejected(self):
        with pytest.raises(ValueError):
            StepResponse([0, 1], [1.0, 1.0], final_value=1.0,
                         initial_value=1.0)

    def test_estimate_frequency(self):
        fs = 1e5
        t = np.arange(int(1e4)) / fs
        x = np.sin(2 * np.pi * 123.0 * t + 0.3)
        assert estimate_frequency(t, x) == pytest.approx(123.0, rel=1e-3)

    def test_estimate_frequency_needs_crossings(self):
        with pytest.raises(ValueError):
            estimate_frequency([0, 1, 2], [1.0, 2.0, 3.0])


@given(st.floats(min_value=0.2, max_value=0.95),
       st.integers(min_value=1, max_value=2))
@settings(max_examples=30, deadline=None)
def test_snr_scales_with_noise(amplitude, noise_scale):
    """SNR drops ~20 dB per 10x noise increase.

    Parameters are constrained so the scaled SNR stays above ~5 dB —
    below that, noise landing in the signal-band bins biases any
    FFT-based SNR estimate.
    """
    fs, n = 1e6, 16384
    rng = np.random.default_rng(42)
    f = coherent_tone_frequency(fs, n, 41e3)
    t = np.arange(n) / fs
    x = amplitude * np.sin(2 * np.pi * f * t)
    base_rms = 1e-3
    noise = rng.normal(0, base_rms, n)
    snr1 = snr_of_tone(x + noise, fs)
    snr2 = snr_of_tone(x + noise * 10 ** noise_scale, fs)
    assert snr1 - snr2 == pytest.approx(20.0 * noise_scale, abs=2.0)
