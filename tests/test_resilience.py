"""Fault-injection tests for the resilience layer.

Each test injects a specific numerical failure — a singular iteration
matrix, a stiffness-driven step collapse, a Newton-hostile device, a
NaN-emitting source — and asserts the stack *recovers* through the
documented tier (halved step, BDF escalation, gmin/source homotopy) or
*fails diagnosably* (enriched errors, DiagnosticReport artifacts,
checkpoints), never silently.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.campaign import Campaign, CampaignRunner, FixedPoints
from repro.campaign.runner import RunTimeout, _deadline, classify_failure
from repro.core import Module, SimTime, Simulator
from repro.core.errors import (
    ConvergenceError,
    ElaborationError,
    SimulationError,
    SolverError,
)
from repro.ct.linear import LinearDae
from repro.ct.nonlinear import (
    NonlinearStepper,
    NonlinearSystem,
    dc_operating_point,
    newton,
)
from repro.ct.solver_api import (
    LinearTransientSolver,
    NonlinearTransientSolver,
    ScipyIvpSolver,
)
from repro.eln import Capacitor, Network, Resistor, Vsource
from repro.nonlin import Diode, NonlinearNetwork
from repro.resilience import (
    CheckpointManager,
    DiagnosticReport,
    HealthError,
    HealthMonitor,
    ResilientTransientSolver,
    continuation_solve,
    diagnostic_of,
    embedding_solve,
    gmin_stepping,
    source_stepping,
)
from repro.sync import ElnTdfModule
from repro.tdf import TdfIn, TdfModule, TdfOut, TdfSignal

H = 1e-3


def us(x):
    return SimTime(x, "us")


# ---------------------------------------------------------------------------
# fault-injection fixtures
# ---------------------------------------------------------------------------

def stiff_all_singular_dae():
    """Trapezoidal iteration matrix ``2C/h + G`` is singular at h, h/2
    AND h/4: with ``max_halvings=2`` the chain must escalate to BDF."""
    return LinearDae(np.eye(3), -np.diag([2 / H, 4 / H, 8 / H]))


def singular_at_h_dae():
    """Singular at h only: the halved tier recovers without BDF."""
    return LinearDae(np.eye(2), -np.diag([2 / H, 1 / H]))


class FlatExponential(NonlinearSystem):
    """f(v) = exp(40(v - 0.8)) - 1 from guess 0.

    The residual is flat (gradient ~ 40*exp(-32)) until v nears 0.8,
    then explodes: plain damped Newton overflows and cannot converge,
    while the gmin/source-stepping homotopy walks to the root at 0.8.
    """

    def __init__(self):
        super().__init__(1)

    def static(self, x, t):
        z = np.clip(40.0 * (x[0] - 0.8), -700.0, 700.0)
        return np.array([np.exp(z) - 1.0])

    def static_jacobian(self, x, t):
        z = np.clip(40.0 * (x[0] - 0.8), -700.0, 700.0)
        return np.array([[40.0 * np.exp(z)]])


class NanAfterSource(TdfModule):
    """Clean sine until ``t_nan``, NaN afterwards."""

    def __init__(self, name, parent=None, t_nan=2.5e-3):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self.t_nan = t_nan

    def set_attributes(self):
        self.set_timestep(us(10))

    def processing(self):
        t = self.local_time.to_seconds()
        value = np.nan if t >= self.t_nan else np.sin(2e3 * np.pi * t)
        self.out.write(value)


class SineSource(TdfModule):
    def __init__(self, name, parent=None):
        super().__init__(name, parent)
        self.out = TdfOut("out")

    def set_attributes(self):
        self.set_timestep(us(10))

    def processing(self):
        t = self.local_time.to_seconds()
        self.out.write(np.sin(2e3 * np.pi * t))


class Recorder(TdfModule):
    def __init__(self, name, parent=None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.samples = []

    def processing(self):
        self.samples.append(self.inp.read())

    def checkpoint_state(self):
        return {"samples": list(self.samples)}

    def restore_state(self, data):
        if data is not None:
            self.samples = list(data["samples"])


def rc_network():
    net = Network()
    net.add(Vsource("Vin", "in", "0"))
    net.add(Resistor("R1", "in", "out", 1e3))
    net.add(Capacitor("C1", "out", "0", 1e-6))
    return net


class RcTop(Module):
    def __init__(self, source_cls=SineSource, record=True, **eln_kwargs):
        super().__init__("top")
        self.s_in = TdfSignal("s_in")
        self.s_out = TdfSignal("s_out")
        self.src = source_cls("src", self)
        self.rc = ElnTdfModule("rc", rc_network(), parent=self,
                               **eln_kwargs)
        self.src.out(self.s_in)
        self.rc.drive_voltage("Vin")(self.s_in)
        self.rc.sample_voltage("out")(self.s_out)
        self.rec = Recorder("rec", self)
        self.rec.inp(self.s_out)


# campaign targets must be module-level (picklable / fork-resolvable)

def _build_elaboration_bomb(params):
    raise ElaborationError("broken hierarchy")


def _build_flaky(params):
    raise RuntimeError("transient infrastructure failure")


def _build_nan_rc(params):
    return Simulator(RcTop(source_cls=NanAfterSource, resilient=True))


def _nan_rc_metrics(top):
    return {"n": len(top.rec.samples)}


# ---------------------------------------------------------------------------
# fallback chains
# ---------------------------------------------------------------------------

class TestFallbackChain:
    def test_bdf_escalation_is_observable_and_accurate(self):
        solver = ResilientTransientSolver(
            LinearTransientSolver(stiff_all_singular_dae())
        )
        solver.initialize(0.0, np.ones(3))
        for k in range(1, 4):
            x = solver.advance_to(k * H)
        assert solver.metrics()["tiers"] == \
            {"primary": 0, "halved": 0, "bdf": 3}
        expected = np.exp(np.array([2.0, 4.0, 8.0]) * 3)
        np.testing.assert_allclose(x, expected, rtol=1e-4)
        assert solver.metrics()["recovered_intervals"] == 3
        assert [tier for _t, tier in solver.tier_log] == ["bdf"] * 3

    def test_halved_tier_recovers_without_escalation(self):
        solver = ResilientTransientSolver(
            LinearTransientSolver(singular_at_h_dae())
        )
        solver.initialize(0.0, np.ones(2))
        solver.advance_to(H)
        solver.advance_to(2 * H)
        assert solver.metrics()["tiers"] == \
            {"primary": 0, "halved": 2, "bdf": 0}

    def test_healthy_system_stays_on_primary(self):
        dae = LinearDae(np.eye(1), np.array([[1.0]]))  # x' = -x
        solver = ResilientTransientSolver(LinearTransientSolver(dae))
        solver.initialize(0.0, np.array([1.0]))
        for k in range(1, 6):
            x = solver.advance_to(k * 0.1)
        assert solver.metrics()["tiers"] == \
            {"primary": 5, "halved": 0, "bdf": 0}
        assert x[0] == pytest.approx(np.exp(-0.5), rel=1e-2)
        assert solver.metrics()["checked_steps"] >= 5
        assert solver.metrics()["health_violations"] == 0

    def test_exhaustion_raises_with_diagnostic_report(self):
        # 1x1 all-zero system: singular at every step size, and the
        # singular C matrix means no ODE escalation path exists.
        dae = LinearDae(np.zeros((1, 1)), np.zeros((1, 1)))
        solver = ResilientTransientSolver(LinearTransientSolver(dae),
                                          max_halvings=1)
        solver.initialize(0.0, np.array([1.0]))
        with pytest.raises(SolverError) as excinfo:
            solver.advance_to(H)
        report = diagnostic_of(excinfo.value)
        assert isinstance(report, DiagnosticReport)
        assert report.tiers_attempted == ["primary", "halved"]
        assert len(report.error_chain) == 2
        assert report.context["target_time"] == H
        # the report serializes to valid JSON for artifact persistence
        parsed = json.loads(report.to_json())
        assert parsed["error_chain"] == report.error_chain
        # the wrapper stays consistent at the last good state
        assert solver.time == 0.0
        assert solver.state[0] == 1.0

    def test_nonlinear_primary_uses_h_max_for_halved_tier(self):
        # A healthy nonlinear system: verify halved-tier bookkeeping
        # does not corrupt the adaptive controller's configuration.
        class Decay(NonlinearSystem):
            def __init__(self):
                super().__init__(1)

            def charge(self, x):
                return x.copy()

            def charge_jacobian(self, x):
                return np.eye(1)

            def static(self, x, t):
                return x.copy()

            def static_jacobian(self, x, t):
                return np.eye(1)

        primary = NonlinearTransientSolver(Decay())
        solver = ResilientTransientSolver(primary)
        solver.initialize(0.0, np.array([1.0]))
        x = solver.advance_to(1.0)
        assert x[0] == pytest.approx(np.exp(-1.0), rel=1e-3)
        assert primary.h_max is None  # restored, not leaked
        assert solver.metrics()["tiers"]["primary"] == 1

    def test_state_dict_roundtrip(self):
        solver = ResilientTransientSolver(
            LinearTransientSolver(singular_at_h_dae())
        )
        solver.initialize(0.0, np.ones(2))
        solver.advance_to(H)
        data = solver.state_dict()
        other = ResilientTransientSolver(
            LinearTransientSolver(singular_at_h_dae())
        )
        other.load_state_dict(data)
        assert other.time == solver.time
        np.testing.assert_array_equal(other.state, solver.state)
        assert other.tier_counts == solver.tier_counts


# ---------------------------------------------------------------------------
# convergence homotopy
# ---------------------------------------------------------------------------

class TestHomotopy:
    def test_plain_newton_fails_on_flat_exponential(self):
        system = FlatExponential()
        with pytest.raises(ConvergenceError) as excinfo:
            newton(lambda x: system.static(x, 0.0),
                   lambda x: system.static_jacobian(x, 0.0),
                   np.zeros(1))
        error = excinfo.value
        assert error.iterations is not None and error.iterations > 0
        assert error.residual_norm is not None
        assert len(error.residual_history) == error.iterations + 1

    def test_dc_operating_point_recovers_via_homotopy(self):
        x = dc_operating_point(FlatExponential())
        assert x[0] == pytest.approx(0.8, abs=1e-6)

    def test_source_stepping_alone_recovers(self):
        x = dc_operating_point(FlatExponential(), gmin_stepping=False)
        assert x[0] == pytest.approx(0.8, abs=1e-6)
        x2 = source_stepping(FlatExponential(), 0.0, np.zeros(1))
        assert x2[0] == pytest.approx(0.8, abs=1e-6)

    def test_gmin_stepping_alone_recovers(self):
        x = gmin_stepping(FlatExponential(), 0.0, np.zeros(1))
        assert x[0] == pytest.approx(0.8, abs=1e-6)

    def test_continuation_solve_reports_winning_rung(self):
        x, how = continuation_solve(FlatExponential(), 0.0, np.zeros(1))
        assert x[0] == pytest.approx(0.8, abs=1e-6)
        assert how in ("gmin", "source")

    def test_embedding_solve_exact_at_alpha_one(self):
        system = FlatExponential()
        x = embedding_solve(
            lambda v: system.static(v, 0.0),
            lambda v: system.static_jacobian(v, 0.0),
            np.zeros(1),
        )
        assert abs(system.static(x, 0.0)[0]) < 1e-8

    def test_mna_source_scale_protocol(self):
        net = NonlinearNetwork()
        net.add(Vsource("V1", "a", "0", 5.0))
        net.add(Resistor("R1", "a", "b", 1e3))
        net.add_device(Diode("D1", "b", "0"))
        system, _index = net.assemble_nonlinear()
        assert system.source_scale == 1.0
        x = np.zeros(system.n)
        full = system.static(x, 0.0)
        system.source_scale = 0.0
        off = system.static(x, 0.0)
        # scaling removes exactly the independent-source contribution
        assert np.linalg.norm(full - off) > 0
        system.source_scale = 1.0
        solved = dc_operating_point(system)
        assert system.source_scale == 1.0  # restored after homotopy
        # forward-biased diode drop around 0.6-0.8 V
        assert 0.4 < solved[1] < 0.9

    def test_stepper_homotopy_rescues_hostile_step(self):
        system = FlatExponential()
        plain = NonlinearStepper(system, "backward_euler")
        with pytest.raises(ConvergenceError) as excinfo:
            plain.step(np.zeros(1), 0.5, 1e-6)
        assert excinfo.value.time_point == 0.5
        rescued = NonlinearStepper(system, "backward_euler",
                                   homotopy=True)
        x1 = rescued.step(np.zeros(1), 0.5, 1e-6)
        assert x1[0] == pytest.approx(0.8, abs=1e-3)
        assert rescued.homotopy_steps == 1


# ---------------------------------------------------------------------------
# health guards
# ---------------------------------------------------------------------------

class TestHealthMonitor:
    def test_nan_state_raises_health_error_with_report(self):
        monitor = HealthMonitor()
        monitor.after_step(0.5e-3, np.array([1.0, 2.0]))
        with pytest.raises(HealthError) as excinfo:
            monitor.after_step(1e-3, np.array([1.0, np.nan]))
        report = diagnostic_of(excinfo.value)
        assert report is not None
        assert report.time == 1e-3
        assert monitor.violations == 1
        assert monitor.checked_steps == 2

    def test_overflow_limit(self):
        monitor = HealthMonitor(overflow_limit=1e6)
        monitor.after_step(0.0, np.array([1e5]))
        with pytest.raises(HealthError):
            monitor.after_step(1.0, np.array([1e7]))

    def test_condition_estimate_flags_singular_matrix(self):
        monitor = HealthMonitor()
        assert np.isinf(monitor.estimate_condition(np.zeros((2, 2))))
        assert monitor.estimate_condition(np.eye(2)) == \
            pytest.approx(1.0)

    def test_nan_source_in_cluster_fails_diagnosably(self):
        simulator = Simulator(
            RcTop(source_cls=NanAfterSource, resilient=True)
        )
        with pytest.raises(SolverError) as excinfo:
            simulator.run(SimTime(5, "ms"))
        report = diagnostic_of(excinfo.value)
        assert report is not None
        assert "primary" in report.tiers_attempted
        assert any("non-finite" in entry
                   for entry in report.error_chain)

    def test_resilient_module_exposes_metrics(self):
        top = RcTop(resilient=True)
        Simulator(top).run(SimTime(2, "ms"))
        metrics = top.rc.solver_metrics()
        assert metrics["tiers"]["primary"] > 0
        assert metrics["health_violations"] == 0
        # resilient wrapping does not change the trajectory
        reference = RcTop(resilient=False)
        Simulator(reference).run(SimTime(2, "ms"))
        np.testing.assert_array_equal(top.rec.samples,
                                      reference.rec.samples)


# ---------------------------------------------------------------------------
# checkpoint / restart
# ---------------------------------------------------------------------------

class TestCheckpoint:
    def test_manager_prunes_to_keep_last(self):
        manager = CheckpointManager(keep_last=2)
        for k in range(5):
            manager.save({"k": k}, float(k))
        assert len(manager) == 2
        assert manager.latest().payload == {"k": 4}
        assert manager.latest().index == 5

    def test_manager_directory_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt", keep_last=2)
        for k in range(4):
            manager.save({"k": k}, float(k))
        files = sorted((tmp_path / "ckpt").glob("checkpoint_*.pkl"))
        assert len(files) == 2  # pruned on disk too
        # a fresh manager (fresh process) finds the newest snapshot
        revived = CheckpointManager(tmp_path / "ckpt")
        latest = revived.latest_on_disk()
        assert latest.payload == {"k": 3}
        assert latest.time_seconds == 3.0

    def test_bit_identical_resume(self):
        reference_top = RcTop()
        Simulator(reference_top).run(SimTime(4, "ms"))
        reference = np.array(reference_top.rec.samples)

        # run half-way with checkpoints, as if the process then died
        first_top = RcTop()
        first = Simulator(first_top)
        first.run(SimTime(2, "ms"), checkpoint_every=SimTime(1, "ms"))
        checkpoint = first.checkpoint_manager.latest()
        assert checkpoint.time_seconds == pytest.approx(2e-3)
        head = np.array(first_top.rec.samples)

        # resume in a freshly built simulator
        resumed_top = RcTop()
        resumed = Simulator(resumed_top)
        now = resumed.restore_checkpoint(checkpoint.payload)
        assert now.to_seconds() == pytest.approx(2e-3)
        resumed.run(SimTime(2, "ms"))
        tail = np.array(resumed_top.rec.samples)

        # The restored sink carries the pre-checkpoint record, so the
        # resumed run reproduces the uninterrupted record in full.
        np.testing.assert_array_equal(head, reference[:len(head)])
        np.testing.assert_array_equal(tail, reference)

    def test_resume_from_disk_checkpoint(self, tmp_path):
        top = RcTop()
        simulator = Simulator(top)
        simulator.run(
            SimTime(2, "ms"), checkpoint_every=SimTime(1, "ms"),
            checkpoint_manager=CheckpointManager(tmp_path / "ckpt"),
        )
        # "fresh process": reload purely from the checkpoint file
        revived = CheckpointManager(tmp_path / "ckpt").latest_on_disk()
        resumed_top = RcTop()
        resumed = Simulator(resumed_top)
        resumed.restore_checkpoint(revived.payload)
        resumed.run(SimTime(1, "ms"))
        # 201 restored pre-checkpoint samples + 100 new ones: the
        # recorder's record survives the process boundary.
        assert len(resumed_top.rec.samples) == 301

    def test_restore_requires_fresh_simulator(self):
        top = RcTop()
        simulator = Simulator(top)
        simulator.run(SimTime(1, "ms"))
        payload = simulator.capture_checkpoint()
        with pytest.raises(SimulationError):
            simulator.restore_checkpoint(payload)

    def test_checkpoint_every_requires_duration(self):
        simulator = Simulator(RcTop())
        with pytest.raises(SimulationError):
            simulator.run(checkpoint_every=SimTime(1, "ms"))


# ---------------------------------------------------------------------------
# campaign failure classification & artifacts
# ---------------------------------------------------------------------------

class TestCampaignResilience:
    def test_classify_failure(self):
        assert classify_failure(ElaborationError("x")) == "permanent"
        assert classify_failure(TypeError("x")) == "permanent"
        assert classify_failure(RuntimeError("x")) == "retryable"
        assert classify_failure(SolverError("x")) == "retryable"
        assert classify_failure(RunTimeout("x")) == "retryable"

    def test_permanent_failure_fails_fast(self, tmp_path):
        campaign = Campaign(name="broken", space=FixedPoints([{}]),
                            build=_build_elaboration_bomb,
                            duration=SimTime(1, "ms"), seed_key=None)
        runner = CampaignRunner(campaign, use_cache=False,
                                out_dir=tmp_path)
        results = runner.run()
        record = results[0]
        assert record.status == "failed"
        assert record.failure_kind == "permanent"
        assert record.attempts == 1  # not retried
        assert runner.stats["retried"] == 0

    def test_retryable_failure_still_retried_once(self, tmp_path):
        campaign = Campaign(name="flaky", space=FixedPoints([{}]),
                            build=_build_flaky,
                            duration=SimTime(1, "ms"), seed_key=None)
        runner = CampaignRunner(campaign, use_cache=False)
        results = runner.run()
        record = results[0]
        assert record.failure_kind == "retryable"
        assert record.attempts == 2
        assert runner.stats["retried"] == 1

    def test_failed_point_persists_diagnostic_and_checkpoint(
            self, tmp_path):
        campaign = Campaign(name="nan-rc", space=FixedPoints([{}]),
                            build=_build_nan_rc,
                            duration=SimTime(5, "ms"),
                            metrics=_nan_rc_metrics, seed_key=None)
        runner = CampaignRunner(campaign, use_cache=False,
                                out_dir=tmp_path,
                                checkpoint_every=SimTime(1, "ms"))
        results = runner.run()
        record = results[0]
        assert record.status == "failed"
        assert record.failure_kind == "retryable"

        diagnostic_path = tmp_path / "failures" / \
            "run_00000.diagnostic.json"
        checkpoint_path = tmp_path / "failures" / \
            "run_00000.checkpoint.pkl"
        assert diagnostic_path.is_file()
        assert checkpoint_path.is_file()
        diagnostic = json.loads(diagnostic_path.read_text())
        assert diagnostic["failure_kind"] == "retryable"
        assert "tiers_attempted" in diagnostic

        # the persisted checkpoint restarts the failed point
        from repro.resilience.checkpoint import Checkpoint

        checkpoint = Checkpoint.from_bytes(checkpoint_path.read_bytes())
        assert checkpoint.time_seconds == pytest.approx(2e-3)
        resumed = _build_nan_rc({})
        resumed.restore_checkpoint(checkpoint.payload)
        resumed.run(SimTime(0.4, "ms"))  # still before the NaN onset
        assert resumed.now.to_seconds() == pytest.approx(2.4e-3)

        # failure_kind survives the JSONL round-trip
        from repro.campaign.records import CampaignResults

        reloaded = CampaignResults.read_jsonl(tmp_path / "records.jsonl")
        assert reloaded[0].failure_kind == "retryable"

    def test_deadline_is_noop_off_main_thread(self):
        outcome = {}

        def worker():
            try:
                with _deadline(0.01):
                    time.sleep(0.05)
                outcome["ok"] = True
            except BaseException as exc:  # pragma: no cover
                outcome["error"] = exc

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert outcome == {"ok": True}


# ---------------------------------------------------------------------------
# enriched errors
# ---------------------------------------------------------------------------

class TestEnrichedErrors:
    def test_convergence_error_carries_context(self):
        error = ConvergenceError("diverged", iterations=7,
                                 residual_norm=1.5e-2, time_point=1e-3)
        assert error.iterations == 7
        assert error.residual_norm == pytest.approx(1.5e-2)
        assert error.time_point == 1e-3
        message = str(error)
        assert "iterations=7" in message
        assert "t=" in message

    def test_dc_failure_reports_ladder(self):
        class Hopeless(NonlinearSystem):
            """f(x) = 1 + x^2: no real root anywhere on the ladder."""

            def __init__(self):
                super().__init__(1)

            def static(self, x, t):
                return np.array([1.0 + x[0] ** 2])

            def static_jacobian(self, x, t):
                return np.array([[2.0 * x[0]]])

        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(Hopeless())
        assert "ladder exhausted" in str(excinfo.value)

    def test_scipy_adapter_normalizes_value_errors(self):
        solver = ScipyIvpSolver(
            rhs=lambda t, x: np.full_like(x, np.nan), n=1)
        solver.initialize(0.0, np.array([1.0]))
        with pytest.raises(SolverError):
            solver.advance_to(1.0)
