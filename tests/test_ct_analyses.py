"""Tests for AC sweep helpers, noise analysis, threshold crossing
detection, and the external-solver plug-in."""

import numpy as np
import pytest

from repro.core import SolverError
from repro.ct import (
    CrossingDetector,
    LinearDae,
    NoiseSource,
    ScipyIvpSolver,
    ac_sweep,
    corner_frequency,
    flicker_psd,
    integrated_noise,
    linear_crossing,
    magnitude_db,
    output_noise_psd,
    per_source_contributions,
    phase_deg,
    refine_crossing,
    sampled_crossings,
    shot_noise_psd,
    snr_db,
    thermal_current_psd,
    transfer_function,
)
from repro.ct.noise import BOLTZMANN


class TestAcHelpers:
    def setup_method(self):
        self.R, self.C = 1e3, 1e-6
        self.f0 = 1 / (2 * np.pi * self.R * self.C)
        self.Cm = np.array([[self.C]])
        self.Gm = np.array([[1 / self.R]])
        self.b = np.array([1 / self.R])

    def test_transfer_function_matches_analytic(self):
        freqs = np.logspace(0, 5, 41)
        h = transfer_function(self.Cm, self.Gm, self.b, [1.0], freqs)
        expected = 1 / (1 + 1j * freqs / self.f0)
        np.testing.assert_allclose(h, expected, rtol=1e-9)

    def test_magnitude_db_and_phase(self):
        h = np.array([1.0, 1j, -1.0])
        np.testing.assert_allclose(magnitude_db(h), [0.0, 0.0, 0.0],
                                   atol=1e-12)
        phases = phase_deg(h)
        np.testing.assert_allclose(phases, [0.0, 90.0, 180.0], atol=1e-9)

    def test_magnitude_db_floors_zero(self):
        assert magnitude_db(np.array([0.0]))[0] == -400.0

    def test_corner_frequency_rc(self):
        freqs = np.logspace(0, 5, 201)
        h = transfer_function(self.Cm, self.Gm, self.b, [1.0], freqs)
        assert corner_frequency(freqs, h) == pytest.approx(self.f0, rel=1e-2)

    def test_corner_frequency_not_reached(self):
        freqs = np.array([1.0, 2.0])
        with pytest.raises(SolverError):
            corner_frequency(freqs, np.array([1.0, 0.999]))

    def test_ac_sweep_singular_raises(self):
        with pytest.raises(SolverError):
            ac_sweep(np.zeros((1, 1)), np.zeros((1, 1)), [1.0], [1.0])


class TestNoise:
    def test_thermal_psd_value(self):
        psd = thermal_current_psd(1e3, temperature=300.0)
        assert psd == pytest.approx(4 * BOLTZMANN * 300 / 1e3)

    def test_thermal_requires_positive_r(self):
        with pytest.raises(SolverError):
            thermal_current_psd(0.0)

    def test_shot_noise(self):
        assert shot_noise_psd(1e-3) == pytest.approx(2 * 1.602176634e-19 * 1e-3)

    def test_flicker_rolloff(self):
        psd = flicker_psd(1e-12)
        assert psd(10.0) == pytest.approx(1e-13)
        assert psd(100.0) == pytest.approx(1e-14)

    def test_rc_output_noise_integrates_to_kt_over_c(self):
        # The classic result: total output noise of an RC filter driven
        # by the resistor's thermal noise is kT/C, independent of R.
        R, C = 1e4, 1e-9
        Cm, Gm = np.array([[C]]), np.array([[1 / R]])
        source = NoiseSource("R", [1.0], thermal_current_psd(R))
        freqs = np.logspace(0, 9, 4001)
        psd = output_noise_psd(Cm, Gm, [source], [1.0], freqs)
        total = integrated_noise(freqs, psd)
        expected = BOLTZMANN * 300.0 / C
        assert total == pytest.approx(expected, rel=0.02)

    def test_per_source_budget_sums_to_total(self):
        R, C = 1e4, 1e-9
        Cm, Gm = np.array([[C]]), np.array([[1 / R]])
        sources = [
            NoiseSource("a", [1.0], 1e-20),
            NoiseSource("b", [1.0], 3e-20),
        ]
        freqs = np.logspace(1, 6, 31)
        total = output_noise_psd(Cm, Gm, sources, [1.0], freqs)
        parts = per_source_contributions(Cm, Gm, sources, [1.0], freqs)
        np.testing.assert_allclose(parts["a"] + parts["b"], total,
                                   rtol=1e-12)
        np.testing.assert_allclose(parts["b"] / parts["a"], 3.0, rtol=1e-12)

    def test_snr_db(self):
        assert snr_db(1.0, 0.001) == pytest.approx(60.0)
        with pytest.raises(SolverError):
            snr_db(1.0, 0.0)


class TestCrossings:
    def test_linear_crossing_basic(self):
        t = linear_crossing(0.0, -1.0, 1.0, 1.0, 0.0)
        assert t == pytest.approx(0.5)

    def test_direction_filtering(self):
        assert linear_crossing(0, -1, 1, 1, 0, "falling") is None
        assert linear_crossing(0, 1, 1, -1, 0, "falling") == pytest.approx(0.5)
        assert linear_crossing(0, 1, 1, -1, 0, "rising") is None

    def test_no_crossing(self):
        assert linear_crossing(0, 1.0, 1, 2.0, 0.0) is None

    def test_endpoint_hit_counted_once(self):
        # Crossing exactly at t1 reported; then not re-reported from t1.
        det = CrossingDetector(0.0)
        det.feed(0.0, -1.0)
        assert det.feed(1.0, 0.0) == pytest.approx(1.0)
        assert det.feed(2.0, 1.0) is None

    def test_detector_stream(self):
        det = CrossingDetector(0.5, "rising")
        times = np.linspace(0, 1, 101)
        for t in times:
            det.feed(t, np.sin(2 * np.pi * 3 * t))
        assert len(det.crossings) == 3

    def test_sampled_crossings_sine(self):
        t = np.linspace(0, 1, 2001)
        crossings = sampled_crossings(t, np.sin(2 * np.pi * 5 * t),
                                      direction="rising")
        # Rising zero crossings at 0.2, 0.4, 0.6, 0.8 (not the t=0 start).
        np.testing.assert_allclose(crossings, [0.2, 0.4, 0.6, 0.8],
                                   atol=1e-3)

    def test_refine_crossing_bisection(self):
        t = refine_crossing(lambda t: np.cos(t), 1.0, 2.0)
        assert t == pytest.approx(np.pi / 2, abs=1e-9)

    def test_refine_requires_bracket(self):
        with pytest.raises(ValueError):
            refine_crossing(lambda t: 1.0 + t, 0.0, 1.0)

    def test_detector_invalid_direction(self):
        with pytest.raises(ValueError):
            CrossingDetector(0.0, "sideways")

    def test_detector_reset(self):
        det = CrossingDetector(0.0)
        det.feed(0, -1)
        det.feed(1, 1)
        det.reset()
        assert det.crossings == []
        assert det.feed(2, 5) is None  # no stale previous sample


class TestScipyPlugin:
    def test_linear_system_agreement_with_builtin(self):
        from repro.ct import LinearTransientSolver

        R, C = 1e3, 1e-6
        tau = R * C
        dae = LinearDae(
            C=np.array([[C]]), G=np.array([[1 / R]]),
            source=lambda t: np.array([1.0 / R]),
        )
        builtin = LinearTransientSolver(dae, h_internal=tau / 200)
        external = ScipyIvpSolver(linear_system=dae)
        builtin.initialize(x0=np.zeros(1))
        external.initialize(x0=np.zeros(1))
        for k in range(1, 11):
            t = k * tau / 2
            xb = builtin.advance_to(t)
            xe = external.advance_to(t)
            assert xb[0] == pytest.approx(xe[0], abs=1e-4)

    def test_bare_rhs(self):
        solver = ScipyIvpSolver(rhs=lambda t, x: -x, n=1)
        solver.initialize(x0=np.array([1.0]))
        x = solver.advance_to(1.0)
        assert x[0] == pytest.approx(np.exp(-1.0), rel=1e-6)

    def test_requires_exactly_one_spec(self):
        with pytest.raises(SolverError):
            ScipyIvpSolver()
        with pytest.raises(SolverError):
            ScipyIvpSolver(rhs=lambda t, x: x, n=1,
                           linear_system=LinearDae(np.eye(1), np.eye(1)))

    def test_singular_c_rejected(self):
        dae = LinearDae(np.zeros((1, 1)), np.eye(1))
        with pytest.raises(SolverError):
            ScipyIvpSolver(linear_system=dae)

    def test_rhs_requires_n(self):
        with pytest.raises(SolverError):
            ScipyIvpSolver(rhs=lambda t, x: -x)
