"""Tests for baselines: golden models agree with the framework, and the
naive DE chain is measurably less efficient than the TDF cluster."""

import numpy as np
import pytest

from repro.analysis import coherent_tone_frequency
from repro.baselines import (
    golden_pipeline_convert,
    golden_quantize,
    linear_dae_reference,
    ode_reference,
    rc_step_response,
    run_naive_chain,
    run_tdf_chain,
    series_rlc_step_response,
    van_der_pol_reference,
)
from repro.core import SimTime
from repro.ct import LinearDae
from repro.lib import PipelinedAdc, quantize_midrise


class TestScipyReferences:
    def test_rc_reference_matches_framework_transient(self):
        R, C = 1e3, 1e-6
        dae = LinearDae(
            C=np.array([[C]]), G=np.array([[1 / R]]),
            source=lambda t: np.array([1.0 / R]),
        )
        times, states = dae.transient(5e-3, 1e-6, x0=np.zeros(1))
        reference = rc_step_response(R, C, 1.0, times)
        np.testing.assert_allclose(states[:, 0], reference, atol=1e-6)

    def test_rlc_reference_requires_underdamped(self):
        with pytest.raises(ValueError):
            series_rlc_step_response(1e6, 1e-3, 1e-9, 1.0,
                                     np.linspace(0, 1e-6, 10))

    def test_ode_reference_exponential(self):
        times = np.linspace(0, 2, 21)
        trajectory = ode_reference(lambda t, x: -x, [1.0], times)
        np.testing.assert_allclose(trajectory[:, 0], np.exp(-times),
                                   rtol=1e-8)

    def test_linear_dae_reference(self):
        C = np.array([[1e-6]])
        G = np.array([[1e-3]])
        times = np.linspace(0, 5e-3, 11)
        trajectory = linear_dae_reference(
            C, G, lambda t: np.array([1e-3]), np.zeros(1), times
        )
        np.testing.assert_allclose(
            trajectory[:, 0], 1 - np.exp(-times / 1e-3), rtol=1e-6
        )

    def test_van_der_pol_runs(self):
        times = np.linspace(0, 10, 101)
        trajectory = van_der_pol_reference(5.0, [2.0, 0.0], times)
        assert trajectory.shape == (101, 2)
        assert np.max(np.abs(trajectory[:, 0])) < 2.5


class TestGoldenAdc:
    def test_golden_matches_framework_ideal(self):
        fs, n = 1e6, 2048
        f = coherent_tone_frequency(fs, n, 13e3)
        x = 0.9 * np.sin(2 * np.pi * f * np.arange(n) / fs)
        adc = PipelinedAdc(n_stages=6, backend_bits=4)
        framework = adc.convert_array(x)
        golden = golden_pipeline_convert(x, 6, 4)
        np.testing.assert_allclose(framework, golden, atol=1e-12)

    def test_golden_matches_framework_with_gain_errors(self):
        rng = np.random.default_rng(8)
        errors = rng.uniform(-0.02, 0.02, 5).tolist()
        x = rng.uniform(-0.9, 0.9, 500)
        adc = PipelinedAdc(n_stages=5, backend_bits=3,
                           gain_errors=errors)
        for calibrated in (True, False):
            framework = adc.convert_array(x, calibrated=calibrated)
            golden = golden_pipeline_convert(
                x, 5, 3, gain_errors=errors, calibrated=calibrated
            )
            np.testing.assert_allclose(framework, golden, atol=1e-12)

    def test_golden_quantizer_matches(self):
        x = np.linspace(-1.2, 1.2, 1001)
        golden = golden_quantize(x, 6)
        framework = np.array([quantize_midrise(v, 6) for v in x])
        np.testing.assert_allclose(golden, framework, atol=1e-15)


class TestSchedulingBaseline:
    def test_same_numerical_results(self):
        # The naive chain drops the t=0 sample (sin(0)=0 produces no
        # signal change, so nothing propagates); align accordingly.
        naive, _ = run_naive_chain(n_blocks=6, n_samples=40)
        tdf, _ = run_tdf_chain(n_blocks=6, n_samples=40)
        m = min(len(naive), len(tdf) - 1)
        assert m >= 35
        np.testing.assert_allclose(naive[:m], tdf[1:m + 1], atol=1e-12)

    def test_tdf_needs_fewer_kernel_activations(self):
        _, naive_stats = run_naive_chain(n_blocks=16, n_samples=100)
        _, tdf_stats = run_tdf_chain(n_blocks=16, n_samples=100)
        # The naive chain wakes the kernel once per block per sample
        # (plus delta churn); the cluster wakes once per sample.
        assert tdf_stats["kernel_activations"] < \
            naive_stats["kernel_activations"] / 4
        assert tdf_stats["delta_cycles"] < naive_stats["delta_cycles"]

    def test_block_evaluation_counts(self):
        _, naive_stats = run_naive_chain(n_blocks=8, n_samples=50)
        _, tdf_stats = run_tdf_chain(n_blocks=8, n_samples=50)
        # Both execute each block roughly once per sample (the naive
        # chain skips the no-change t=0 sample; the TDF schedule runs
        # one extra period at the end boundary).
        assert abs(tdf_stats["block_evaluations"]
                   - naive_stats["block_evaluations"]) <= 2 * 8
