"""Tests for multi-domain modeling: mechanical, thermal, DC motor."""

import numpy as np
import pytest

from repro.core import ElaborationError
from repro.eln import Network, Resistor, Vsource, dc_analysis, \
    transient_analysis
from repro.multidomain import (
    AmbientTemperature,
    Damper,
    DcMotor,
    ForceSource,
    HeatFlowSource,
    Inertia,
    Mass,
    PositionSensor,
    RotationalDamper,
    Spring,
    ThermalCapacitance,
    ThermalResistance,
)


class TestMechanical:
    def test_mass_spring_damper_resonance(self):
        """Classic MSD: natural frequency and damping ratio."""
        M, k, d = 1.0, 100.0, 2.0
        w0 = np.sqrt(k / M)
        zeta = d / (2 * np.sqrt(k * M))
        net = Network()
        net.add(Mass("m", "v", M))
        net.add(Spring("s", "v", "0", k))
        net.add(Damper("d", "v", "0", d))
        net.add(ForceSource("f", "v", force=1.0))  # step force
        sensor = PositionSensor("pos", net, "v")
        dae, index = net.assemble()
        wd = w0 * np.sqrt(1 - zeta ** 2)
        times, states = dae.transient(10.0, 1e-3,
                                      x0=np.zeros(index.size))
        position = sensor.position_series(index, states)
        # Final position: F/k.
        assert position[-1] == pytest.approx(1.0 / k, rel=1e-2)
        # Damped oscillation frequency.
        from repro.analysis import estimate_frequency

        transient_part = position - 1.0 / k
        f_est = estimate_frequency(times[:5000], transient_part[:5000])
        assert f_est == pytest.approx(wd / (2 * np.pi), rel=0.02)

    def test_velocity_decay_of_free_mass_with_damper(self):
        M, d = 2.0, 4.0
        net = Network()
        net.add(Mass("m", "v", M))
        net.add(Damper("d", "v", "0", d))
        net.add(ForceSource("f", "v", force=0.0))
        dae, index = net.assemble()
        x0 = np.zeros(index.size)
        x0[index.node_index["v"]] = 1.0  # initial velocity
        times, states = dae.transient(3.0, 1e-3, x0=x0)
        v = index.voltage_series(states, "v")
        np.testing.assert_allclose(v, np.exp(-d / M * times), atol=1e-3)

    def test_spring_force_is_branch_current(self):
        # Static: force source pushes against the spring; spring force
        # equals the applied force at rest... at DC the mobility analogy
        # forces velocity = 0 and the spring carries the full force.
        net = Network()
        net.add(Mass("m", "v", 1.0))
        net.add(Spring("s", "v", "0", 50.0))
        net.add(ForceSource("f", "v", force=5.0))
        dc = dc_analysis(net)
        assert dc.current("s") == pytest.approx(5.0)
        assert dc.voltage("v") == pytest.approx(0.0)

    def test_two_mass_mode_split(self):
        """Two identical coupled oscillators show two modal peaks."""
        from repro.eln import ac_analysis
        from repro.multidomain import VelocitySource

        M, k = 1.0, 100.0
        net = Network()
        net.add(Mass("m1", "v1", M))
        net.add(Mass("m2", "v2", M))
        net.add(Spring("s1", "v1", "0", k))
        net.add(Spring("s12", "v1", "v2", k))
        net.add(Spring("s2", "v2", "0", k))
        net.add(ForceSource("f", "v1", force=1.0))
        dae, index = net.assemble()
        freqs = np.linspace(1.0, 4.0, 1201)
        phasors = dae.ac(freqs)
        response = np.abs(phasors[:, index.node_index["v1"]])
        # Modal frequencies: sqrt(k/M) and sqrt(3k/M) rad/s.
        peaks = []
        for k_idx in range(1, len(freqs) - 1):
            if response[k_idx] > response[k_idx - 1] and \
                    response[k_idx] > response[k_idx + 1]:
                peaks.append(freqs[k_idx])
        expected = [np.sqrt(100.0) / (2 * np.pi),
                    np.sqrt(300.0) / (2 * np.pi)]
        assert len(peaks) == 2
        assert peaks[0] == pytest.approx(expected[0], rel=0.02)
        assert peaks[1] == pytest.approx(expected[1], rel=0.02)

    def test_validation(self):
        with pytest.raises(ElaborationError):
            Mass("m", "v", 0.0)
        with pytest.raises(ElaborationError):
            Spring("s", "a", "b", -1.0)
        with pytest.raises(ElaborationError):
            Damper("d", "a", "b", 0.0)
        with pytest.raises(ElaborationError):
            Inertia("j", "w", -2.0)


class TestThermal:
    def test_steady_state_temperature_rise(self):
        """P watts through R_th gives delta-T = P * R_th."""
        net = Network()
        net.add(HeatFlowSource("p", "junction", power=2.0))
        net.add(ThermalResistance("rjc", "junction", "case", 1.5))
        net.add(ThermalResistance("rca", "case", "0", 3.0))
        dc = dc_analysis(net)
        assert dc.voltage("junction") == pytest.approx(2.0 * 4.5)
        assert dc.voltage("case") == pytest.approx(2.0 * 3.0)

    def test_thermal_time_constant(self):
        c_th, r_th = 0.5, 4.0
        tau = r_th * c_th
        net = Network()
        net.add(HeatFlowSource("p", "j", power=1.0))
        net.add(ThermalResistance("r", "j", "0", r_th))
        net.add(ThermalCapacitance("c", "j", c_th))
        result = transient_analysis(net, 5 * tau, tau / 200,
                                    x0=np.zeros(1))
        temperature = result.voltage("j")
        expected = r_th * (1 - np.exp(-result.times / tau))
        np.testing.assert_allclose(temperature, expected, atol=0.02)

    def test_ambient_source(self):
        net = Network()
        net.add(AmbientTemperature("amb", "env", "0", 25.0))
        net.add(ThermalResistance("r", "env", "j", 2.0))
        net.add(HeatFlowSource("p", "j", power=10.0))
        dc = dc_analysis(net)
        assert dc.voltage("j") == pytest.approx(25.0 + 20.0)

    def test_thermal_capacitance_validation(self):
        with pytest.raises(ElaborationError):
            ThermalCapacitance("c", "j", 0.0)


class TestDcMotor:
    def make_motor_rig(self, v_in=12.0, kt=0.05, r_a=1.0, l_a=1e-3,
                       J=1e-3, b=1e-4):
        net = Network()
        net.add(Vsource("Vs", "vin", "0", v_in))
        motor = DcMotor("mot", net, "vin", "0", "w", kt=kt, r_a=r_a,
                        l_a=l_a)
        net.add(Inertia("J", "w", J))
        net.add(RotationalDamper("b", "w", "0", b))
        return net, motor

    def test_steady_state_speed(self):
        """omega_ss = kt*V / (kt*ke + r_a*b)."""
        v_in, kt, r_a, b = 12.0, 0.05, 1.0, 1e-4
        net, motor = self.make_motor_rig(v_in=v_in, kt=kt, r_a=r_a, b=b)
        dc = dc_analysis(net)
        omega = dc.voltage("w")
        expected = kt * v_in / (kt * kt + r_a * b)
        assert omega == pytest.approx(expected, rel=1e-6)

    def test_stall_torque_and_current(self):
        """With the shaft clamped (huge damper), i = V/R."""
        net, motor = self.make_motor_rig(b=1e9)
        dc = dc_analysis(net)
        assert dc.current(motor.current_branch) == pytest.approx(
            12.0 / 1.0, rel=1e-3
        )

    def test_speed_step_response_is_overdamped_rise(self):
        net, motor = self.make_motor_rig(J=1e-4)
        dae, index = net.assemble()
        times, states = dae.transient(1.0, 1e-4,
                                      x0=np.zeros(index.size))
        omega = index.voltage_series(states, "w")
        dc = dc_analysis(net)
        final = dc.voltage("w")
        assert omega[-1] == pytest.approx(final, rel=1e-3)
        assert np.all(np.diff(omega) > -1e-3 * final)  # monotone-ish

    def test_back_emf_reduces_current(self):
        net, motor = self.make_motor_rig()
        dc = dc_analysis(net)
        i_run = dc.current(motor.current_branch)
        assert 0 < i_run < 12.0 / 1.0  # far below stall current

    def test_energy_conservation_of_coupling(self):
        """Electrical power into the EMF equals mechanical power out."""
        net, motor = self.make_motor_rig()
        dc = dc_analysis(net)
        i = dc.current(motor.current_branch)
        omega = dc.voltage("w")
        electrical = motor.ke * omega * i      # EMF voltage * current
        mechanical = motor.kt * i * omega      # torque * speed
        assert electrical == pytest.approx(mechanical, rel=1e-12)

    def test_validation(self):
        net = Network()
        with pytest.raises(ElaborationError):
            DcMotor("m", net, "a", "0", "w", kt=0.0, r_a=1.0, l_a=1e-3)
