"""Tests for DC sweeps with continuation and the Goertzel detector."""

import numpy as np
import pytest

from repro.core import ElaborationError, Module, SimTime, Simulator
from repro.ct import sweep_source
from repro.eln import Resistor, Vsource
from repro.lib import (
    GaussianNoiseSource,
    GoertzelDetector,
    SineSource,
    TdfSink,
    goertzel_magnitude,
)
from repro.nonlin import Diode, NMos, NonlinearNetwork
from repro.tdf import TdfSignal


def us(x):
    return SimTime(x, "us")


class TestDcSweep:
    def test_inverter_vtc_in_one_call(self):
        net = NonlinearNetwork("inverter")
        net.add(Vsource("Vdd", "vdd", "0", 5.0))
        net.add(Vsource("Vin", "g", "0", 0.0))
        net.add(Resistor("Rd", "vdd", "out", 5e3))
        net.add_device(NMos("M1", "out", "g", "0", k_prime=1e-3,
                            vth=0.7))
        vin = np.linspace(0.0, 5.0, 51)
        states, index = sweep_source(net, "Vin", vin)
        vout = states[:, index.node_index["out"]]
        # Monotone falling VTC from Vdd to near ground.
        assert vout[0] == pytest.approx(5.0, abs=1e-9)
        assert vout[-1] < 0.6
        assert np.all(np.diff(vout) <= 1e-9)
        # Below threshold the output is exactly Vdd.
        assert np.all(vout[vin < 0.7] == pytest.approx(5.0, abs=1e-9))

    def test_diode_iv_curve(self):
        net = NonlinearNetwork("diode_iv")
        net.add(Vsource("Vin", "a", "0", 0.0))
        net.add(Resistor("Rs", "a", "d", 10.0))
        net.add_device(Diode("D1", "d", "0"))
        sweep = np.linspace(-1.0, 0.8, 37)
        states, index = sweep_source(net, "Vin", sweep)
        current = -states[:, index.current_index["Vin"]]
        # Reverse region: essentially zero; forward: exponential rise.
        assert np.all(np.abs(current[sweep < 0]) < 1e-9)
        assert current[-1] > 1e-3
        assert np.all(np.diff(current) >= -1e-12)

    def test_unknown_source_rejected(self):
        net = NonlinearNetwork("n")
        net.add(Vsource("V1", "a", "0", 1.0))
        net.add(Resistor("R1", "a", "0", 1.0))
        with pytest.raises(ElaborationError):
            sweep_source(net, "Vnope", np.array([0.0]))


class TestGoertzelFunction:
    def test_on_bin_amplitude(self):
        fs, n = 8000.0, 256
        f = 1000.0  # exactly on a bin (1000 * 256 / 8000 = 32)
        t = np.arange(n) / fs
        x = 0.7 * np.sin(2 * np.pi * f * t)
        assert goertzel_magnitude(x, f, fs) == pytest.approx(0.7,
                                                             rel=1e-6)

    def test_rejects_other_frequencies(self):
        fs, n = 8000.0, 256
        t = np.arange(n) / fs
        x = np.sin(2 * np.pi * 1000.0 * t)
        off = goertzel_magnitude(x, 2000.0, fs)
        assert off < 0.01

    def test_dtmf_pair_discrimination(self):
        """Both tones of a DTMF digit detected; absent tones are not."""
        fs, n = 8000.0, 205  # the ITU-standard DTMF block size
        t = np.arange(n) / fs
        # Digit '5': 770 Hz + 1336 Hz.
        x = 0.5 * np.sin(2 * np.pi * 770 * t) \
            + 0.5 * np.sin(2 * np.pi * 1336 * t)
        rows = {f: goertzel_magnitude(x, f, fs)
                for f in (697, 770, 852, 941)}
        cols = {f: goertzel_magnitude(x, f, fs)
                for f in (1209, 1336, 1477, 1633)}
        assert max(rows, key=rows.get) == 770
        assert max(cols, key=cols.get) == 1336
        assert rows[770] > 3 * rows[697]
        assert cols[1336] > 3 * cols[1209]


class TestGoertzelModule:
    def build(self, tone_on: bool):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                amplitude = 0.5 if tone_on else 0.0
                self.src = SineSource("src", frequency=1000.0,
                                      amplitude=amplitude,
                                      parent=self, timestep=us(125))
                self.noise = GaussianNoiseSource("noise", rms=0.05,
                                                 seed=4, parent=self)
                from repro.lib import Add2

                self.mix = Add2("mix", parent=self)
                self.det = GoertzelDetector("det", frequency=1000.0,
                                            block_size=200,
                                            threshold=0.2, parent=self)
                self.mag_sink = TdfSink("mag_sink", self)
                self.dec_sink = TdfSink("dec_sink", self)
                a, b, c, d, e = (TdfSignal(x) for x in "abcde")
                self.src.out(a)
                self.noise.out(b)
                self.mix.a(a)
                self.mix.b(b)
                self.mix.out(c)
                self.det.inp(c)
                self.det.magnitude(d)
                self.det.detected(e)
                self.mag_sink.inp(d)
                self.dec_sink.inp(e)

        top = Top()
        Simulator(top).run(SimTime(200, "ms"))
        return top

    def test_detects_tone_in_noise(self):
        top = self.build(tone_on=True)
        magnitudes = np.asarray(top.mag_sink.samples)
        assert np.mean(magnitudes) == pytest.approx(0.5, abs=0.05)
        assert all(v == 1.0 for v in top.dec_sink.samples)

    def test_silent_when_no_tone(self):
        top = self.build(tone_on=False)
        magnitudes = np.asarray(top.mag_sink.samples)
        assert np.max(magnitudes) < 0.1
        assert all(v == 0.0 for v in top.dec_sink.samples)

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            GoertzelDetector("g", frequency=1e3, block_size=4)
