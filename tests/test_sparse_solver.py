"""Tests for the solver variants (dense LAPACK / sparse SuperLU /
exact-expm), the h-keyed factorization cache, switch-event
refactorization via ``rebind``, the batched AC sweep, and the solver
metrics surfaced through ``Simulator.metrics_snapshot``."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import Clock, Module, SimTime, Simulator
from repro.core.errors import SolverError
from repro.ct import ScipyIvpSolver
from repro.ct.ac import ac_sweep
from repro.ct.linear import (
    FACTOR_CACHE_SIZE,
    LinearDae,
    LinearStepper,
    ExpmStepper,
    SPARSE_AUTO_THRESHOLD,
    make_stepper,
)
from repro.eln import Capacitor, Isource, Network, Resistor, Switch, Vsource
from repro.lib import SineSource, TdfSink
from repro.sync import ElnTdfModule
from repro.tdf import TdfSignal


def us(x):
    return SimTime(x, "us")


def ladder(nodes, r=1e3, c=1e-9, waveform=0.0):
    """RC ladder driven by a Vsource at n1 (nodes + 1 MNA unknowns)."""
    net = Network("ladder")
    net.add(Vsource("Vin", "n1", "0", voltage=waveform))
    for k in range(1, nodes):
        net.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}", r))
        net.add(Capacitor(f"C{k}", f"n{k + 1}", "0", c))
    return net


def ode_ladder(nodes, r=1e3, c=1e-9, waveform=0.0):
    """Isource-driven ladder with a capacitor on every node: an
    invertible-C pure ODE the expm stepper accepts."""
    net = Network("ode_ladder")
    net.add(Isource("Iin", "n1", "0", current=waveform))
    net.add(Capacitor("C0", "n1", "0", c))
    net.add(Resistor("R0", "n1", "0", r))
    for k in range(1, nodes):
        net.add(Resistor(f"R{k}", f"n{k}", f"n{k + 1}", r))
        net.add(Capacitor(f"C{k}", f"n{k + 1}", "0", c))
    return net


# ---------------------------------------------------------------------------
# variant selection and dense/sparse equivalence


class TestVariantSelection:
    def test_auto_picks_dense_for_small_dense_systems(self):
        dae, _ = ladder(4).assemble()
        stepper = make_stepper(dae, 1e-6)
        assert isinstance(stepper, LinearStepper)
        assert stepper.variant == "dense"

    def test_auto_picks_sparse_for_sparse_assembly(self):
        dae, _ = ladder(4).assemble(sparse=True)
        assert dae.is_sparse
        stepper = make_stepper(dae, 1e-6)
        assert stepper.variant == "sparse"

    def test_auto_picks_sparse_above_threshold(self):
        n = SPARSE_AUTO_THRESHOLD
        dae = LinearDae(np.eye(n), np.eye(n), lambda t: np.zeros(n))
        assert make_stepper(dae, 1e-6).variant == "sparse"

    def test_expm_variant_builds_expm_stepper(self):
        dae, _ = ode_ladder(3).assemble()
        assert isinstance(make_stepper(dae, 1e-6, variant="expm"),
                          ExpmStepper)

    def test_unknown_variant_rejected(self):
        dae, _ = ladder(3).assemble()
        with pytest.raises(SolverError, match="unknown solver variant"):
            make_stepper(dae, 1e-6, variant="cholesky")

    def test_module_rejects_unknown_variant(self):
        from repro.core.errors import ElaborationError

        with pytest.raises(ElaborationError, match="solver_variant"):
            ElnTdfModule("m", ladder(3), solver_variant="bogus")


class TestDenseSparseEquivalence:
    @pytest.mark.parametrize("method", ["trapezoidal", "backward_euler"])
    def test_transient_states_match(self, method):
        h, steps = 1e-6, 400
        wave = lambda t: np.sin(2e4 * np.pi * t)  # noqa: E731
        dense_dae, _ = ladder(40, waveform=wave).assemble()
        sparse_dae, _ = ladder(40, waveform=wave).assemble(sparse=True)
        t_d, x_d = dense_dae.transient(steps * h, h, method=method)
        t_s, x_s = sparse_dae.transient(steps * h, h, method=method)
        np.testing.assert_array_equal(t_d, t_s)
        assert np.max(np.abs(x_d - x_s)) < 1e-9

    def test_dc_matches(self):
        dense_dae, _ = ladder(20, waveform=1.0).assemble()
        sparse_dae, _ = ladder(20, waveform=1.0).assemble(sparse=True)
        np.testing.assert_allclose(dense_dae.dc(), sparse_dae.dc(),
                                   atol=1e-12)

    def test_ac_matches(self):
        dense_dae, _ = ladder(20, waveform=1.0).assemble()
        sparse_dae, _ = ladder(20, waveform=1.0).assemble(sparse=True)
        freqs = np.logspace(2, 6, 7)
        b = np.zeros(dense_dae.n)
        b[0] = 1.0
        np.testing.assert_allclose(
            dense_dae.ac(freqs, b_ac=b), sparse_dae.ac(freqs, b_ac=b),
            atol=1e-12)


# ---------------------------------------------------------------------------
# exact-expm stepping


class TestExpmStepper:
    def test_exact_on_ramp_input(self):
        # x' + a x = beta * t  with  x(0) = 0  has the closed form
        # x(t) = (beta/a) t - beta/a^2 + (beta/a^2) exp(-a t); a ramp
        # is exactly first-order-hold, so expm stepping is exact at the
        # grid points up to roundoff.
        a, beta, h = 3.0e3, 2.0e3, 1e-5
        dae = LinearDae(np.eye(1), np.array([[a]]),
                        lambda t: np.array([beta * t]))
        stepper = make_stepper(dae, h, variant="expm")
        x = np.zeros(1)
        times = (1.0 + np.arange(200)) * h
        for t in times:
            x = stepper.step(x, t - h)
        exact = (beta / a) * times[-1] - beta / a ** 2 \
            + (beta / a ** 2) * np.exp(-a * times[-1])
        assert x[0] == pytest.approx(exact, rel=1e-10)

    def test_singular_c_rejected(self):
        dae, _ = ladder(3).assemble()  # Vsource branch row: C singular
        with pytest.raises(SolverError, match="invertible C"):
            make_stepper(dae, 1e-6, variant="expm")

    def test_matches_dense_for_small_steps(self):
        wave = lambda t: 1e-3 * np.sin(2e4 * np.pi * t)  # noqa: E731
        dae, _ = ode_ladder(6, waveform=wave).assemble()
        h, steps = 1e-8, 200
        expm_st = make_stepper(dae, h, variant="expm")
        dense_st = make_stepper(dae, h, variant="dense")
        x_e = x_d = np.zeros(dae.n)
        for k in range(steps):
            t = k * h
            x_e = expm_st.step(x_e, t)
            x_d = dense_st.step(x_d, t)
        # expm is exact; the trapezoidal comparison carries its own
        # O(h^2) truncation error.
        np.testing.assert_allclose(x_e, x_d, rtol=1e-3, atol=1e-15)

    def test_phi_cache_reuse(self):
        dae, _ = ode_ladder(4).assemble()
        stepper = make_stepper(dae, 1e-6, variant="expm")
        assert stepper.factorizations == 1
        stepper.set_timestep(2e-6)
        assert stepper.factorizations == 2
        stepper.set_timestep(1e-6)  # cached phi for this h
        assert stepper.factorizations == 2
        assert stepper.expm_cache_hits == 1


# ---------------------------------------------------------------------------
# factorization reuse and the LRU cache


class TestFactorizationReuse:
    def test_repeated_h_factorizes_once(self):
        dae, _ = ladder(10).assemble()
        stepper = make_stepper(dae, 1e-6)
        x = np.zeros(dae.n)
        for k in range(500):
            x = stepper.step(x, k * 1e-6)
        assert stepper.factorizations == 1
        assert stepper.refactorizations == 0

    def test_alternating_h_hits_cache(self):
        dae, _ = ladder(10).assemble()
        stepper = make_stepper(dae, 1e-6)
        for h in [2e-6, 1e-6, 2e-6, 1e-6, 2e-6]:
            stepper.set_timestep(h)
        assert stepper.factorizations == 2  # one per distinct h
        assert stepper.cache_hits == 4

    def test_cache_is_bounded(self):
        dae, _ = ladder(10).assemble()
        stepper = make_stepper(dae, 1e-6)
        for k in range(2 * FACTOR_CACHE_SIZE):
            stepper.set_timestep((k + 1) * 1e-7)
        assert len(stepper._cache) <= FACTOR_CACHE_SIZE

    def test_invalidate_counts_refactorization(self):
        dae, _ = ladder(10).assemble()
        stepper = make_stepper(dae, 1e-6)
        stepper.invalidate()
        assert stepper.factorizations == 2
        assert stepper.refactorizations == 1


# ---------------------------------------------------------------------------
# scalar vs block equivalence at the simulator level


class LadderTop(Module):
    def __init__(self, variant):
        super().__init__("top")
        self.s_in = TdfSignal("s_in")
        self.s_out = TdfSignal("s_out")
        self.src = SineSource("src", 10e3, amplitude=1.0, parent=self,
                              timestep=us(1))
        self.line = ElnTdfModule("line", ladder(8), parent=self,
                                 solver_variant=variant)
        self.sink = TdfSink("sink", parent=self)
        self.src.out(self.s_in)
        self.line.drive_voltage("Vin")(self.s_in)
        self.line.sample_voltage("n8")(self.s_out)
        self.sink.inp(self.s_out)


class OdeLadderTop(Module):
    def __init__(self, variant):
        super().__init__("top")
        self.s_in = TdfSignal("s_in")
        self.s_out = TdfSignal("s_out")
        self.src = SineSource("src", 10e3, amplitude=1e-3, parent=self,
                              timestep=us(1))
        self.line = ElnTdfModule("line", ode_ladder(6), parent=self,
                                 solver_variant=variant)
        self.sink = TdfSink("sink", parent=self)
        self.src.out(self.s_in)
        self.line.drive_current("Iin")(self.s_in)
        self.line.sample_voltage("n6")(self.s_out)
        self.sink.inp(self.s_out)


def _run(builder, variant, block, duration=us(3000)):
    top = builder(variant)
    Simulator(top, tdf_block=block).run(duration)
    times, samples = top.sink.as_arrays()
    return np.asarray(times, float), np.asarray(samples, float)


class TestScalarBlockEquivalence:
    @pytest.mark.parametrize("variant", ["dense", "sparse"])
    def test_ladder_bit_identical(self, variant):
        t_ref, x_ref = _run(LadderTop, variant, block=False)
        t_blk, x_blk = _run(LadderTop, variant, block=True)
        np.testing.assert_array_equal(t_ref, t_blk)
        np.testing.assert_array_equal(x_ref, x_blk)

    def test_expm_bit_identical(self):
        t_ref, x_ref = _run(OdeLadderTop, "expm", block=False)
        t_blk, x_blk = _run(OdeLadderTop, "expm", block=True)
        np.testing.assert_array_equal(t_ref, t_blk)
        np.testing.assert_array_equal(x_ref, x_blk)

    def test_variants_agree_closely(self):
        _, x_dense = _run(OdeLadderTop, "dense", block=True)
        _, x_expm = _run(OdeLadderTop, "expm", block=True)
        # Different integration rules: close but not identical.
        np.testing.assert_allclose(x_dense, x_expm, atol=1e-3)


# ---------------------------------------------------------------------------
# checkpoint / restart across variants


class TestCheckpointAcrossVariants:
    @pytest.mark.parametrize("variant", ["dense", "sparse"])
    def test_same_variant_resume_bit_identical(self, variant):
        _, full = _run(LadderTop, variant, block=False)
        head_top = LadderTop(variant)
        head_sim = Simulator(head_top, tdf_block=False)
        head_sim.run(us(1500), checkpoint_every=us(1500))
        checkpoint = head_sim.checkpoint_manager.latest()
        tail_top = LadderTop(variant)
        tail_sim = Simulator(tail_top, tdf_block=False)
        tail_sim.restore_checkpoint(checkpoint.payload)
        tail_sim.run(us(1500))
        _, head = head_top.sink.as_arrays()
        _, tail = tail_top.sink.as_arrays()
        # The restored sink carries the pre-checkpoint record, so the
        # resumed run reproduces the uninterrupted record in full.
        np.testing.assert_array_equal(head, full[:len(head)])
        np.testing.assert_array_equal(tail, full)

    def test_cross_variant_resume_matches(self):
        # A dense-run checkpoint restored into a sparse-solver model:
        # the solver state is variant-independent, so the resumed
        # trajectory agrees to solver tolerance.
        _, full = _run(LadderTop, "dense", block=False)
        head_top = LadderTop("dense")
        head_sim = Simulator(head_top, tdf_block=False)
        head_sim.run(us(1500), checkpoint_every=us(1500))
        checkpoint = head_sim.checkpoint_manager.latest()
        tail_top = LadderTop("sparse")
        tail_sim = Simulator(tail_top, tdf_block=False)
        tail_sim.restore_checkpoint(checkpoint.payload)
        tail_sim.run(us(1500))
        _, head = head_top.sink.as_arrays()
        _, tail = tail_top.sink.as_arrays()
        # The restored sink carries the pre-checkpoint record, so the
        # resumed run reproduces the uninterrupted record in full.
        assert len(tail) == len(full)
        np.testing.assert_allclose(tail, full, atol=1e-9)


# ---------------------------------------------------------------------------
# switch events refactorize in place


class SwitchedTop(Module):
    def __init__(self, variant="auto"):
        super().__init__("top")
        self.s_in = TdfSignal("s_in")
        self.s_out = TdfSignal("s_out")
        self.clk = Clock("clk", period=SimTime(4, "ms"), duty_cycle=0.25,
                         parent=self, start_time=SimTime(1, "ms"))
        self.src = SineSource("src", 0.0, amplitude=0.0, offset=1.0,
                              parent=self, timestep=us(20))
        net = ladder(2, r=1e3, c=1e-7)
        net.add(Switch("S1", "n2", "0", closed=False,
                       r_on=1.0, r_off=1e12))
        self.rc = ElnTdfModule("rc", net, parent=self, oversample=4,
                               solver_variant=variant)
        self.sink = TdfSink("sink", parent=self)
        self.src.out(self.s_in)
        self.rc.drive_voltage("Vin")(self.s_in)
        self.rc.sample_voltage("n2")(self.s_out)
        self.rc.bind_switch("S1", self.clk.signal)
        self.sink.inp(self.s_out)


class TestSwitchRefactorization:
    @pytest.mark.parametrize("variant", ["dense", "sparse"])
    def test_toggle_refactorizes_without_rebuild(self, variant):
        top = SwitchedTop(variant)
        Simulator(top).run(SimTime(4, "ms"))
        assert top.rc.rebuild_count == 2  # close + reopen
        solver = top.rc._solver
        assert solver._stepper.refactorizations == 2
        _, v = top.sink.as_arrays()
        v = np.asarray(v, float)
        t = np.asarray(top.sink.as_arrays()[0], float)
        # Charged before the switch closes, collapsed while closed,
        # recharged after it reopens (behavioral continuity).
        assert v[np.searchsorted(t, 0.9e-3)] == pytest.approx(1.0,
                                                              abs=0.01)
        assert v[np.searchsorted(t, 1.9e-3)] == pytest.approx(0.0,
                                                              abs=0.01)
        assert v[-1] == pytest.approx(1.0, abs=0.01)

    def test_toggle_preserves_solver_object(self):
        top = SwitchedTop()
        sim = Simulator(top)
        sim.elaborate()
        sim.run(SimTime(0.5, "ms"))
        solver_before = top.rc._solver
        sim.run(SimTime(1, "ms"))  # crosses the 1 ms closing edge
        assert top.rc.rebuild_count == 1
        assert top.rc._solver is solver_before


# ---------------------------------------------------------------------------
# batched AC sweep


class TestAcSweep:
    def _system(self, n=5, seed=3):
        rng = np.random.default_rng(seed)
        G = np.eye(n) + 0.1 * rng.standard_normal((n, n))
        C = np.eye(n) * 1e-6 + 1e-7 * rng.standard_normal((n, n))
        b = rng.standard_normal(n)
        return C, G, b

    def test_matches_per_frequency_loop(self):
        C, G, b = self._system()
        freqs = np.logspace(1, 6, 9)
        batched = ac_sweep(C, G, b, freqs)
        for k, f in enumerate(freqs):
            ref = np.linalg.solve(G + 2j * np.pi * f * C, b)
            np.testing.assert_allclose(batched[k], ref, atol=1e-12)

    def test_multi_rhs_columns(self):
        C, G, b = self._system()
        cols = np.column_stack([b, 2.0 * b, np.roll(b, 1)])
        freqs = np.array([1e3, 1e5])
        out = ac_sweep(C, G, cols, freqs)
        assert out.shape == (2, 5, 3)
        for j in range(3):
            np.testing.assert_allclose(
                out[:, :, j], ac_sweep(C, G, cols[:, j], freqs),
                atol=1e-12)

    def test_sparse_matches_dense(self):
        C, G, b = self._system()
        freqs = np.logspace(1, 5, 5)
        np.testing.assert_allclose(
            ac_sweep(sp.csr_matrix(C), sp.csr_matrix(G), b, freqs),
            ac_sweep(C, G, b, freqs), atol=1e-10)

    def test_singular_frequency_named(self):
        # G = 0, C = I: singular exactly at f = 0.
        n = 3
        with pytest.raises(SolverError, match="AC sweep at f=0"):
            ac_sweep(np.eye(n), np.zeros((n, n)), np.ones(n),
                     np.array([0.0]))


# ---------------------------------------------------------------------------
# interop: escalation solver and resilience on sparse systems


class TestSparseInterop:
    def test_scipy_ivp_accepts_sparse_dae(self):
        wave = lambda t: 1e-3  # noqa: E731
        dae, _ = ode_ladder(4, waveform=wave).assemble(sparse=True)
        solver = ScipyIvpSolver(linear_system=dae)
        solver.initialize(0.0)
        x = solver.advance_to(1e-5)
        assert np.all(np.isfinite(x))

    def test_resilient_wrapper_on_sparse_primary(self):
        top = LadderTop("sparse")
        top.line.resilient = True
        Simulator(top, tdf_block=True).run(us(500))
        metrics = top.line.solver_metrics()
        assert metrics["tiers"]["primary"] > 0
        _, x = top.sink.as_arrays()
        assert np.all(np.isfinite(np.asarray(x, float)))

    def test_resilient_matches_plain(self):
        _, plain = _run(LadderTop, "sparse", block=False, duration=us(500))
        top = LadderTop("sparse")
        top.line.resilient = True
        Simulator(top, tdf_block=False).run(us(500))
        _, resilient = top.sink.as_arrays()
        np.testing.assert_array_equal(np.asarray(resilient, float), plain)


# ---------------------------------------------------------------------------
# metrics


class TestSolverMetrics:
    def test_snapshot_exposes_factorization_counters(self):
        top = LadderTop("sparse")
        sim = Simulator(top, tdf_block=True)
        sim.run(us(2000))
        snap = sim.metrics_snapshot()
        assert snap["solver.steps"] >= 1999
        # ULP jitter in the sync times produces a handful of distinct h
        # values; the factor cache keeps the count far below the step
        # count (the pre-cache behavior was one factorization per step).
        assert 1 <= snap["solver.factorizations"] <= 4 * FACTOR_CACHE_SIZE
        assert snap["solver.factorizations"] < 0.05 * snap["solver.steps"]
        assert snap["solver.refactorizations"] == 0
        assert snap["solver.expm_cache_hits"] == 0
        assert snap["solver.factorizations[module=top.line]"] >= 1

    def test_snapshot_counts_switch_refactorizations(self):
        top = SwitchedTop()
        sim = Simulator(top)
        sim.run(SimTime(4, "ms"))
        snap = sim.metrics_snapshot()
        assert snap["solver.refactorizations"] == 2

    def test_snapshot_counts_expm_cache_hits(self):
        top = OdeLadderTop("expm")
        sim = Simulator(top, tdf_block=False)
        sim.run(us(200))
        snap = sim.metrics_snapshot()
        # One phi build, reused every subsequent step.
        assert snap["solver.factorizations[module=top.line]"] >= 1
        assert "solver.expm_cache_hits[module=top.line]" in snap
