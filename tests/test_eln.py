"""Tests for the electrical linear network layer: MNA stamps for every
primitive, DC/AC/transient/noise analyses, classic circuit identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElaborationError, SolverError
from repro.ct import corner_frequency, integrated_noise
from repro.ct.noise import BOLTZMANN
from repro.eln import (
    Capacitor,
    Cccs,
    Ccvs,
    Gyrator,
    IdealOpAmp,
    IdealTransformer,
    Inductor,
    Isource,
    Network,
    Probe,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    Vsource,
    ac_analysis,
    dc_analysis,
    noise_analysis,
    transient_analysis,
)


class TestDcStamps:
    def test_voltage_divider(self):
        net = Network()
        net.add(Vsource("V1", "in", "0", 10.0))
        net.add(Resistor("R1", "in", "out", 1e3))
        net.add(Resistor("R2", "out", "0", 3e3))
        dc = dc_analysis(net)
        assert dc.voltage("out") == pytest.approx(7.5)
        assert dc.current("V1") == pytest.approx(-10.0 / 4e3)

    def test_current_source_into_resistor(self):
        net = Network()
        net.add(Isource("I1", "n1", "0", 2e-3))
        net.add(Resistor("R1", "n1", "0", 1e3))
        dc = dc_analysis(net)
        assert dc.voltage("n1") == pytest.approx(2.0)

    def test_vcvs_amplifier(self):
        net = Network()
        net.add(Vsource("V1", "in", "0", 0.5))
        net.add(Resistor("Rin", "in", "0", 1e6))
        net.add(Vcvs("E1", "out", "0", "in", "0", gain=10.0))
        net.add(Resistor("Rload", "out", "0", 1e3))
        dc = dc_analysis(net)
        assert dc.voltage("out") == pytest.approx(5.0)

    def test_vccs(self):
        net = Network()
        net.add(Vsource("V1", "c", "0", 1.0))
        net.add(Vccs("G1", "0", "out", "c", "0", transconductance=1e-3))
        net.add(Resistor("Rload", "out", "0", 2e3))
        dc = dc_analysis(net)
        # 1 mA pulled from ground into out through G1: i(out->0) via R.
        assert dc.voltage("out") == pytest.approx(2.0)

    def test_ccvs_and_probe(self):
        net = Network()
        net.add(Vsource("V1", "a", "0", 1.0))
        net.add(Resistor("R1", "a", "b", 1e3))
        net.add(Probe("P1", "b", "0"))
        net.add(Ccvs("H1", "out", "0", control="P1", transresistance=2e3))
        net.add(Resistor("Rload", "out", "0", 1e3))
        dc = dc_analysis(net)
        # i(P1) = 1 mA; v(out) = 2e3 * 1e-3 = 2 V.
        assert dc.current("P1") == pytest.approx(1e-3)
        assert dc.voltage("out") == pytest.approx(2.0)

    def test_cccs_current_mirror(self):
        net = Network()
        net.add(Vsource("V1", "a", "0", 1.0))
        net.add(Resistor("R1", "a", "b", 1e3))
        net.add(Probe("P1", "b", "0"))
        net.add(Cccs("F1", "0", "out", control="P1", gain=3.0))
        net.add(Resistor("Rload", "out", "0", 1e3))
        dc = dc_analysis(net)
        # i(P1) = 1 mA; the source conducts 3 mA from p=ground to n=out,
        # pushing 3 mA into the load: v(out) = +3 V.
        assert dc.voltage("out") == pytest.approx(3.0)

    def test_ideal_transformer_voltage_and_power(self):
        net = Network()
        net.add(Vsource("V1", "p", "0", 10.0))
        net.add(IdealTransformer("T1", "p", "0", "s", "0", ratio=2.0))
        net.add(Resistor("Rload", "s", "0", 100.0))
        dc = dc_analysis(net)
        # v1 = ratio * v2 -> v2 = 5 V.
        assert dc.voltage("s") == pytest.approx(5.0)
        # Power conservation: primary current = v2^2/R / v1.
        assert abs(dc.current("V1")) == pytest.approx(5.0 ** 2 / 100 / 10)

    def test_ideal_opamp_follower(self):
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.5))
        net.add(IdealOpAmp("U1", "in", "out", "out"))  # unity follower
        net.add(Resistor("Rload", "out", "0", 1e3))
        dc = dc_analysis(net)
        assert dc.voltage("out") == pytest.approx(1.5)

    def test_ideal_opamp_inverting_amplifier(self):
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "x", 1e3))
        net.add(Resistor("R2", "x", "out", 4.7e3))
        net.add(IdealOpAmp("U1", "0", "x", "out"))
        net.add(Resistor("Rload", "out", "0", 1e4))
        dc = dc_analysis(net)
        assert dc.voltage("out") == pytest.approx(-4.7)
        assert dc.voltage("x") == pytest.approx(0.0, abs=1e-12)

    def test_gyrator_converts_resistance(self):
        net = Network()
        net.add(Vsource("V1", "p", "0", 1.0))
        net.add(Gyrator("G1", "p", "0", "s", "0", conductance=1e-3))
        net.add(Resistor("R1", "s", "0", 1e3))
        dc = dc_analysis(net)
        # Input resistance of gyrator loaded with R: 1/(g^2 R) = 1e3.
        assert abs(dc.current("V1")) == pytest.approx(1e-3)

    def test_switch_states(self):
        def divider_with_switch(closed):
            net = Network()
            net.add(Vsource("V1", "in", "0", 1.0))
            net.add(Resistor("R1", "in", "out", 1e3))
            net.add(Switch("S1", "out", "0", closed=closed,
                           r_on=1e-3, r_off=1e12))
            return dc_analysis(net).voltage("out")

        assert divider_with_switch(True) == pytest.approx(0.0, abs=1e-5)
        assert divider_with_switch(False) == pytest.approx(1.0, rel=1e-6)


class TestTransient:
    def test_rc_charging(self):
        R, C = 1e3, 1e-6
        tau = R * C
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "out", R))
        net.add(Capacitor("C1", "out", "0", C))
        result = transient_analysis(
            net, 5 * tau, tau / 200,
            x0=np.zeros(3),  # v(in), v(out), i(V1) all start at 0
        )
        v_out = result.voltage("out")
        # v(in) jumps to 1 at t=0+; capacitor charges with tau.
        expected = 1 - np.exp(-result.times / tau)
        np.testing.assert_allclose(v_out[1:], expected[1:], atol=5e-3)

    def test_rl_current_rise(self):
        R, L = 10.0, 1e-3
        tau = L / R
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "x", R))
        net.add(Inductor("L1", "x", "0", L))
        result = transient_analysis(net, 5 * tau, tau / 500,
                                    x0=np.zeros(4))
        i_l = result.current("L1")
        expected = (1.0 / R) * (1 - np.exp(-result.times / tau))
        np.testing.assert_allclose(i_l[1:], expected[1:], atol=2e-3 / R)

    def test_lc_resonance_frequency(self):
        L, C = 1e-3, 1e-9  # f0 = 159.2 kHz
        f0 = 1 / (2 * np.pi * np.sqrt(L * C))
        net = Network()
        net.add(Capacitor("C1", "n", "0", C))
        net.add(Inductor("L1", "n", "0", L))
        dae, index = net.assemble()
        # Start with the capacitor charged to 1 V.
        x0 = np.zeros(index.size)
        x0[index.node_index["n"]] = 1.0
        times, states = dae.transient(20 / f0, 1 / (f0 * 400), x0=x0)
        v = states[:, index.node_index["n"]]
        expected = np.cos(2 * np.pi * f0 * times)
        np.testing.assert_allclose(v, expected, atol=0.02)

    def test_rlc_damped_oscillation(self):
        R, L, C = 100.0, 1e-3, 1e-8
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "a", R))
        net.add(Inductor("L1", "a", "b", L))
        net.add(Capacitor("C1", "b", "0", C))
        dae, index = net.assemble()
        alpha = R / (2 * L)
        w0 = 1 / np.sqrt(L * C)
        wd = np.sqrt(w0**2 - alpha**2)
        times, states = dae.transient(
            6.0 / alpha, 0.002 / wd, x0=np.zeros(index.size)
        )
        v = states[:, index.node_index["b"]]
        expected = 1 - np.exp(-alpha * times) * (
            np.cos(wd * times) + alpha / wd * np.sin(wd * times)
        )
        np.testing.assert_allclose(v[1:], expected[1:], atol=0.02)


class TestAc:
    def test_rc_lowpass_corner(self):
        R, C = 1e3, 1e-6
        f0 = 1 / (2 * np.pi * R * C)
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "out", R))
        net.add(Capacitor("C1", "out", "0", C))
        freqs = np.logspace(0, 5, 301)
        ac = ac_analysis(net, freqs, input_source="V1")
        h = ac.voltage("out")
        assert corner_frequency(freqs, h) == pytest.approx(f0, rel=1e-2)
        expected = 1 / (1 + 2j * np.pi * freqs * R * C)
        np.testing.assert_allclose(h, expected, rtol=1e-9)

    def test_rlc_bandpass_peak_at_resonance(self):
        R, L, C = 1e3, 1e-3, 1e-9
        f0 = 1 / (2 * np.pi * np.sqrt(L * C))
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "out", R))
        net.add(Inductor("L1", "out", "0", L))
        net.add(Capacitor("C1", "out", "0", C))
        freqs = np.logspace(4, 7, 601)
        ac = ac_analysis(net, freqs, input_source="V1")
        h = np.abs(ac.voltage("out"))
        f_peak = freqs[np.argmax(h)]
        assert f_peak == pytest.approx(f0, rel=0.02)
        assert np.max(h) == pytest.approx(1.0, abs=0.01)


class TestNoise:
    def test_rc_integrated_noise_is_kt_over_c(self):
        R, C = 1e4, 1e-9
        net = Network()
        net.add(Resistor("R1", "n", "0", R))
        net.add(Capacitor("C1", "n", "0", C))
        freqs = np.logspace(0, 9, 2001)
        psd = noise_analysis(net, freqs, "n")
        total = integrated_noise(freqs, psd)
        assert total == pytest.approx(BOLTZMANN * 300 / C, rel=0.05)

    def test_noise_independent_of_r_total(self):
        totals = []
        for R in (1e3, 1e5):
            net = Network()
            net.add(Resistor("R1", "n", "0", R))
            net.add(Capacitor("C1", "n", "0", 1e-9))
            freqs = np.logspace(-1, 10, 3001)
            psd = noise_analysis(net, freqs, "n")
            totals.append(integrated_noise(freqs, psd))
        assert totals[0] == pytest.approx(totals[1], rel=0.05)


class TestValidation:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add(Resistor("R1", "a", "0", 1.0))
        with pytest.raises(ElaborationError):
            net.add(Resistor("R1", "b", "0", 1.0))

    def test_empty_network_rejected(self):
        with pytest.raises(ElaborationError):
            Network().assemble()

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ElaborationError):
            Resistor("R", "a", "0", 0.0)
        with pytest.raises(ElaborationError):
            Capacitor("C", "a", "0", -1e-9)
        with pytest.raises(ElaborationError):
            Inductor("L", "a", "0", 0.0)
        with pytest.raises(ElaborationError):
            IdealTransformer("T", "a", "0", "b", "0", ratio=0.0)
        with pytest.raises(ElaborationError):
            Switch("S", "a", "0", r_on=0.0)

    def test_floating_node_gives_solver_error(self):
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Capacitor("C1", "x", "y", 1e-9))  # floating island
        dae, _ = net.assemble()
        with pytest.raises(SolverError):
            dae.dc()

    def test_current_lookup_requires_branch(self):
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "0", 1e3))
        dc = dc_analysis(net)
        with pytest.raises(SolverError):
            dc.current("R1")


@given(
    r1=st.floats(min_value=10.0, max_value=1e6),
    r2=st.floats(min_value=10.0, max_value=1e6),
    v=st.floats(min_value=-100.0, max_value=100.0),
)
@settings(max_examples=60, deadline=None)
def test_divider_property(r1, r2, v):
    """Voltage divider identity holds for arbitrary element values."""
    net = Network()
    net.add(Vsource("V1", "in", "0", v))
    net.add(Resistor("R1", "in", "out", r1))
    net.add(Resistor("R2", "out", "0", r2))
    dc = dc_analysis(net)
    assert dc.voltage("out") == pytest.approx(v * r2 / (r1 + r2), rel=1e-9,
                                              abs=1e-12)


@given(
    elements=st.lists(
        st.tuples(st.sampled_from("RC"), st.floats(1.0, 1e3)),
        min_size=2, max_size=6,
    )
)
@settings(max_examples=40, deadline=None)
def test_mna_matrices_symmetric_for_reciprocal_networks(elements):
    """R/C-only ladder networks are reciprocal: G and C are symmetric."""
    net = Network()
    net.add(Resistor("Rtop", "n0", "0", 50.0))
    for k, (kind, value) in enumerate(elements):
        a, b = f"n{k}", f"n{k + 1}"
        if kind == "R":
            net.add(Resistor(f"R{k}", a, b, value))
        else:
            net.add(Capacitor(f"C{k}", a, b, value * 1e-9))
        net.add(Resistor(f"Rg{k}", b, "0", 10.0 * (k + 1)))
    dae, _ = net.assemble()
    np.testing.assert_allclose(dae.G, dae.G.T, atol=1e-12)
    np.testing.assert_allclose(dae.C, dae.C.T, atol=1e-12)
    # Conductance row sums are non-negative diag-dominant (passivity).
    eigenvalues = np.linalg.eigvalsh(dae.G)
    assert np.all(eigenvalues > -1e-9)
