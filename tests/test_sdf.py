"""Tests for the SDF model of computation: balance equations, scheduling,
deadlock detection, actor semantics, and property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElaborationError, SchedulingError
from repro.sdf import (
    Accumulator,
    Actor,
    Add,
    Const,
    Deinterleave,
    Downsample,
    Fir,
    Fork,
    Gain,
    Interleave,
    Map,
    Mul,
    Ramp,
    SdfGraph,
    Sink,
    Source,
    Sub,
    Upsample,
)


def chain_graph(*actors):
    g = SdfGraph()
    for a, b in zip(actors, actors[1:]):
        g.connect(a, "out", b, "in")
    return g


class TestRepetitionVector:
    def test_homogeneous_chain(self):
        src, gain, sink = Ramp("src"), Gain("g", 2.0), Sink("sink")
        g = chain_graph(src, gain, sink)
        r = g.repetition_vector()
        assert r == {src: 1, gain: 1, sink: 1}

    def test_multirate(self):
        src = Ramp("src")
        down = Downsample("down", 4)
        sink = Sink("sink")
        g = SdfGraph()
        g.connect(src, "out", down, "in")
        g.connect(down, "out", sink, "in")
        r = g.repetition_vector()
        assert r[src] == 4
        assert r[down] == 1
        assert r[sink] == 1

    def test_up_down_combination(self):
        src = Ramp("src")
        up = Upsample("up", 3)
        down = Downsample("down", 2)
        sink = Sink("sink")
        g = SdfGraph()
        g.connect(src, "out", up, "in")
        g.connect(up, "out", down, "in")
        g.connect(down, "out", sink, "in")
        r = g.repetition_vector()
        # src:2 up:2 -> 6 tokens -> down:3 -> sink:3
        assert (r[src], r[up], r[down], r[sink]) == (2, 2, 3, 3)

    def test_inconsistent_rates_rejected(self):
        src = Ramp("src", rate=2)
        add = Add("add")
        sink = Sink("sink")
        fork = Fork("fork")
        g = SdfGraph()
        g.connect(src, "out", fork, "in")  # fork rate 1, src rate 2 -> r mismatch around cycle
        g.connect(fork, "a", add, "a")
        up = Upsample("up", 3)
        g.connect(fork, "b", up, "in")
        g.connect(up, "out", add, "b")  # a gets rate 1 while b needs 3x
        g.connect(add, "out", sink, "in")
        with pytest.raises(SchedulingError):
            g.repetition_vector()

    def test_disconnected_components(self):
        a, sa = Ramp("a"), Sink("sa")
        b, sb = Ramp("b"), Sink("sb")
        g = SdfGraph()
        g.connect(a, "out", sa, "in")
        g.connect(b, "out", sb, "in")
        r = g.repetition_vector()
        assert all(v == 1 for v in r.values())

    def test_empty_graph(self):
        assert SdfGraph().repetition_vector() == {}


class TestScheduling:
    def test_schedule_length_equals_repetitions(self):
        src = Ramp("src")
        up = Upsample("up", 3)
        down = Downsample("down", 2)
        sink = Sink("sink")
        g = SdfGraph()
        g.connect(src, "out", up, "in")
        g.connect(up, "out", down, "in")
        g.connect(down, "out", sink, "in")
        order = g.schedule()
        r = g.repetition_vector()
        for actor, reps in r.items():
            assert order.count(actor) == reps

    def test_deadlock_without_initial_tokens(self):
        # a -> b -> a cycle with no initial tokens cannot fire.
        a = Map("a", lambda v: v)
        b = Map("b", lambda v: v)
        g = SdfGraph()
        # Need distinct ports for the cycle: use Add with feedback.
        add = Add("add")
        inc = Map("inc", lambda v: v + 1)
        src = Const("src", 1.0)
        g.connect(src, "out", add, "a")
        g.connect(add, "out", inc, "in")
        g.connect(inc, "out", add, "b")  # feedback, zero delay
        with pytest.raises(SchedulingError):
            g.schedule()

    def test_cycle_with_initial_token_schedules(self):
        add = Add("add")
        inc = Map("inc", lambda v: v)
        src = Const("src", 1.0)
        g = SdfGraph()
        g.connect(src, "out", add, "a")
        g.connect(add, "out", inc, "in")
        g.connect(inc, "out", add, "b", initial_tokens=[0.0])
        order = g.schedule()
        assert len(order) == 3

    def test_feedback_accumulator_behaviour(self):
        # y[n] = x[n] + y[n-1] built from Add + unit delay on feedback edge.
        src = Const("src", 1.0)
        add = Add("add")
        fork = Fork("fork")
        sink = Sink("sink")
        g = SdfGraph()
        g.connect(src, "out", add, "a")
        g.connect(add, "out", fork, "in")
        g.connect(fork, "a", sink, "in")
        g.connect(fork, "b", add, "b", initial_tokens=[0.0])
        g.run(5)
        assert sink.collected == [1.0, 2.0, 3.0, 4.0, 5.0]


class TestActors:
    def test_ramp_and_gain(self):
        src, gain, sink = Ramp("src"), Gain("g", 3.0), Sink("s")
        g = chain_graph(src, gain, sink)
        g.run(4)
        assert sink.collected == [0.0, 3.0, 6.0, 9.0]

    def test_add_sub_mul(self):
        a = Const("a", 5.0)
        b = Const("b", 2.0)
        for actor_cls, expected in ((Add, 7.0), (Sub, 3.0), (Mul, 10.0)):
            op = actor_cls("op")
            sink = Sink("s")
            g = SdfGraph()
            g.connect(a, "out", op, "a")
            g.connect(b, "out", op, "b")
            g.connect(op, "out", sink, "in")
            g.run(1)
            assert sink.collected == [expected]
            a.reset(), b.reset()

    def test_fir_matches_numpy_convolution(self):
        rng = np.random.default_rng(7)
        taps = rng.normal(size=5)
        samples = rng.normal(size=40)
        src = Source("src", lambda i: samples[i])
        fir = Fir("fir", taps)
        sink = Sink("s")
        g = chain_graph(src, fir, sink)
        g.run(len(samples))
        expected = np.convolve(samples, taps)[: len(samples)]
        np.testing.assert_allclose(sink.as_array(), expected, atol=1e-12)

    def test_accumulator(self):
        src = Const("src", 2.0)
        acc = Accumulator("acc", initial=1.0)
        sink = Sink("s")
        g = chain_graph(src, acc, sink)
        g.run(3)
        assert sink.collected == [3.0, 5.0, 7.0]

    def test_interleave_deinterleave_roundtrip(self):
        a = Ramp("a")  # 0, 1, 2, ...
        b = Ramp("b", offset=100.0)
        il = Interleave("il")
        dl = Deinterleave("dl")
        sa, sb = Sink("sa"), Sink("sb")
        g = SdfGraph()
        g.connect(a, "out", il, "a")
        g.connect(b, "out", il, "b")
        g.connect(il, "out", dl, "in")
        g.connect(dl, "a", sa, "in")
        g.connect(dl, "b", sb, "in")
        g.run(4)
        assert sa.collected == [0.0, 1.0, 2.0, 3.0]
        assert sb.collected == [100.0, 101.0, 102.0, 103.0]

    def test_upsample_inserts_fill(self):
        src = Ramp("src", slope=1.0, offset=1.0)
        up = Upsample("up", 3)
        sink = Sink("s")
        g = chain_graph(src, up, sink)
        g.run(2)
        assert sink.collected == [1.0, 0.0, 0.0, 2.0, 0.0, 0.0]

    def test_reset_restores_initial_state(self):
        src = Ramp("src")
        sink = Sink("s")
        g = chain_graph(src, sink)
        g.run(3)
        g.reset()
        g.run(3)
        assert sink.collected == [0.0, 1.0, 2.0]


class TestValidation:
    def test_duplicate_actor_names_rejected(self):
        g = SdfGraph()
        g.add(Const("x", 1.0))
        with pytest.raises(ElaborationError):
            g.add(Const("x", 2.0))

    def test_unknown_port_rejected(self):
        g = SdfGraph()
        with pytest.raises(ElaborationError):
            g.connect(Const("a", 1.0), "nope", Sink("s"), "in")
        with pytest.raises(ElaborationError):
            g.connect(Const("b", 1.0), "out", Sink("t"), "nope")

    def test_double_driven_input_rejected(self):
        g = SdfGraph()
        sink = Sink("s")
        g.connect(Const("a", 1.0), "out", sink, "in")
        with pytest.raises(ElaborationError):
            g.connect(Const("b", 1.0), "out", sink, "in")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ElaborationError):
            Sink("s", rate=0)

    def test_wrong_token_count_detected_at_run(self):
        class Bad(Actor):
            def __init__(self):
                super().__init__("bad", output_rates={"out": 2})

            def fire(self, inputs):
                return {"out": [1.0]}  # declared 2, produced 1

        g = SdfGraph()
        g.connect(Bad(), "out", Sink("s", rate=2), "in")
        with pytest.raises(SchedulingError):
            g.run(1)


# -- property-based invariants ------------------------------------------------

@st.composite
def rate_chains(draw):
    """A random chain src -> up(f1) -> down(f2) -> ... -> sink."""
    factors = draw(st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=6)),
        min_size=1, max_size=5,
    ))
    return factors


@given(rate_chains())
@settings(max_examples=50, deadline=None)
def test_balance_equations_hold_on_random_chains(factors):
    g = SdfGraph()
    prev, prev_port = Ramp("src"), "out"
    for i, (is_up, factor) in enumerate(factors):
        node = Upsample(f"u{i}", factor) if is_up else Downsample(f"d{i}", factor)
        g.connect(prev, prev_port, node, "in")
        prev, prev_port = node, "out"
    sink = Sink("sink")
    g.connect(prev, prev_port, sink, "in")
    r = g.repetition_vector()
    # Balance equations hold edge by edge.
    for e in g.edges:
        assert r[e.src] * e.produce_rate == r[e.dst] * e.consume_rate
    # Repetition vector is minimal: gcd of all counts is 1.
    from math import gcd
    overall = 0
    for count in r.values():
        overall = gcd(overall, count)
    assert overall == 1
    # Schedule contains each actor exactly r times and leaves buffers
    # at their initial occupancy after a full period.
    order = g.schedule()
    for actor, reps in r.items():
        assert order.count(actor) == reps
    g.run(2)
    for e in g.edges:
        assert len(e.tokens) == len(e.initial_tokens)


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_gain_linearity(values, k):
    src = Source("src", lambda i: values[i % len(values)])
    gain = Gain("g", float(k))
    sink = Sink("s")
    g = chain_graph(src, gain, sink)
    g.run(len(values))
    np.testing.assert_allclose(
        sink.as_array(), np.asarray(values) * k, rtol=1e-12
    )


class TestDeadlockDiagnostics:
    def test_zero_delay_cycle_reported(self):
        src = Const("src", 1.0)
        add = Add("add")
        inc = Map("inc", lambda v: v + 1)
        g = SdfGraph("loopy")
        g.connect(src, "out", add, "a")
        g.connect(add, "out", inc, "in")
        g.connect(inc, "out", add, "b")  # zero-delay feedback
        cycles = g.zero_delay_cycles()
        assert ["add", "inc"] in cycles
        with pytest.raises(SchedulingError) as info:
            g.schedule()
        assert "zero-delay cycles" in str(info.value)

    def test_delay_breaks_reported_cycle(self):
        src = Const("src", 1.0)
        add = Add("add")
        inc = Map("inc", lambda v: v)
        g = SdfGraph()
        g.connect(src, "out", add, "a")
        g.connect(add, "out", inc, "in")
        g.connect(inc, "out", add, "b", initial_tokens=[0.0])
        assert g.zero_delay_cycles() == []
        g.schedule()  # no deadlock

    def test_dependency_graph_nodes(self):
        src, sink = Ramp("src"), Sink("sink")
        g = SdfGraph()
        g.connect(src, "out", sink, "in")
        digraph = g.dependency_graph()
        assert set(digraph.nodes) == {"src", "sink"}
        assert digraph.has_edge("src", "sink")
