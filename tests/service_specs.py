"""Campaign spec file submitted to the service under test.

Loaded by reference (``service_specs.py::name``) through
``repro.campaign.loader`` — both by the in-test service process and by
its forked pool workers — so everything here must be module-level and
self-contained.  ``code_version`` is pinned on every campaign: cache
keys must not depend on this file's content hash while the tests
evolve it.
"""

import os
import random
import time
from pathlib import Path

from repro.campaign import Campaign, Sweep
from repro.core import Module, Simulator
from repro.core.time import SimTime
from repro.tdf import TdfModule, TdfOut


def _quick_run(params):
    return {"y": params["x"] * 2.0, "noise": (params["seed"] % 9973) * 1e-9}


QUICK = Campaign(
    name="quick",
    space=Sweep({"x": [0, 1, 2, 3, 4, 5, 6, 7]}),
    run=_quick_run,
    root_seed=101,
    code_version="svc-quick-1",
)


def _slow_run(params):
    # deliberately slow, to give cancel/backpressure tests a window
    time.sleep(params.get("delay", 0.05))  # verify: allow[CODE002]
    return {"y": params["x"] * 3.0}


SLOW = Campaign(
    name="slow",
    space=Sweep({"x": list(range(8)), "delay": [0.05]}),
    run=_slow_run,
    root_seed=202,
    code_version="svc-slow-1",
)

SLOW_SMALL = Campaign(
    name="slow-small",
    space=Sweep({"x": [100, 101], "delay": [0.05]}),
    run=_slow_run,
    root_seed=203,
    code_version="svc-slow-1",
)


def _flaky_run(params):
    """Fails exactly once per point: first attempt drops a marker file
    and raises; the retry sees the marker and succeeds."""
    marker_dir = os.environ["REPRO_TEST_FLAKY_DIR"]  # verify: allow[CODE005]
    marker = Path(marker_dir) / f"attempted_{params['x']}"
    if not marker.exists():
        marker.write_text("1")
        raise RuntimeError("transient flake")
    return {"x2": params["x"] * 2.0}


FLAKY = Campaign(
    name="flaky",
    space=Sweep({"x": [0, 1]}),
    run=_flaky_run,
    root_seed=303,
    code_version="svc-flaky-1",
)


class _UnboundSrc(TdfModule):
    """TDF source whose output port is never bound — the static
    verifier rejects the model (TDF unbound-port rule)."""

    def __init__(self, name, parent=None):
        super().__init__(name, parent)
        self.out = TdfOut("out", rate=1)

    def set_attributes(self):
        self.set_timestep(SimTime(1, "us"))

    def processing(self):
        self.out.write(0.0)


def _broken_build(params):
    top = Module("top")
    _UnboundSrc("src", top)
    return Simulator(top)


BROKEN = Campaign(
    name="broken",
    space=Sweep({"x": [0, 1]}),
    build=_broken_build,
    duration=SimTime(5, "us"),
    metrics=lambda top: {"x": 0.0},
    root_seed=404,
    code_version="svc-broken-1",
)


class _NoisySrc(TdfModule):
    """TDF source whose ``processing`` draws from the process-global
    random state — the behavioral lint (CODE001) rejects the model at
    submit time."""

    def __init__(self, name, parent=None):
        super().__init__(name, parent)
        self.out = TdfOut("out", rate=1)

    def set_attributes(self):
        self.set_timestep(SimTime(1, "us"))

    def processing(self):
        self.out.write(random.random())


def _noisy_build(params):
    top = Module("top")
    _NoisySrc("src", top)
    return Simulator(top)


NOISY = Campaign(
    name="noisy",
    space=Sweep({"x": [0, 1]}),
    build=_noisy_build,
    duration=SimTime(5, "us"),
    metrics=lambda top: {"x": 0.0},
    root_seed=505,
    code_version="svc-noisy-1",
)
