"""Unit tests for the DE kernel: scheduling semantics, delta cycles,
events, signals, processes, clock."""

import pytest

from repro.core import (
    BitSignal,
    Clock,
    Event,
    Module,
    Signal,
    SimTime,
    Simulator,
    Trace,
)


def ns(x):
    return SimTime(x, "ns")


class TestSignalSemantics:
    def test_write_visible_only_after_update(self):
        log = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.sig = Signal("s", initial=0)
                self.thread(self.writer)
                self.method(self.reader, sensitivity=[self.sig],
                            dont_initialize=True)

            def writer(self):
                self.sig.write(42)
                # Within the same evaluation phase the old value is seen.
                log.append(("writer-sees", self.sig.read()))
                yield ns(1)

            def reader(self):
                log.append(("reader-sees", self.sig.read()))

        sim = Simulator(M())
        sim.run(ns(2))
        assert ("writer-sees", 0) in log
        assert ("reader-sees", 42) in log

    def test_same_value_write_generates_no_event(self):
        count = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.sig = Signal("s", initial=5)
                self.thread(self.writer)
                self.method(lambda: count.append(1),
                            sensitivity=[self.sig], dont_initialize=True)

            def writer(self):
                self.sig.write(5)
                yield ns(1)
                self.sig.write(6)
                yield ns(1)

        sim = Simulator(M())
        sim.run(ns(5))
        assert count == [1]

    def test_last_write_wins_within_delta(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.sig = Signal("s", initial=0)
                self.thread(self.writer)

            def writer(self):
                self.sig.write(1)
                self.sig.write(2)
                self.sig.write(3)
                yield ns(1)

        m = M()
        sim = Simulator(m)
        sim.run(ns(2))
        assert m.sig.read() == 3

    def test_pre_simulation_write_applies_directly(self):
        sig = Signal("s", initial=0)
        # No kernel exists in this code path until a Simulator is built.
        from repro.core.kernel import Kernel

        Kernel._current = None
        sig.write(7)
        assert sig.read() == 7


class TestEvents:
    def test_timed_notification_fires_at_right_time(self):
        seen = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.ev = Event("e")
                self.thread(self.notifier)
                self.thread(self.waiter, dont_initialize=False)

            def notifier(self):
                self.ev.notify(ns(5))
                yield ns(100)

            def waiter(self):
                yield self.ev
                seen.append(self_sim.now.ticks)

        m = M()
        self_sim = Simulator(m)
        self_sim.run(ns(20))
        assert seen == [ns(5).ticks]

    def test_earlier_notification_overrides_later(self):
        times = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.ev = Event("e")
                self.thread(self.notifier)
                self.thread(self.waiter)

            def notifier(self):
                self.ev.notify(ns(10))
                self.ev.notify(ns(3))  # earlier: overrides
                self.ev.notify(ns(7))  # later: discarded
                yield ns(100)

            def waiter(self):
                while True:
                    yield self.ev
                    times.append(sim.kernel.now_ticks)

        m = M()
        sim = Simulator(m)
        sim.run(ns(50))
        assert times == [ns(3).ticks]

    def test_cancel(self):
        fired = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.ev = Event("e")
                self.thread(self.driver)
                self.method(lambda: fired.append(1),
                            sensitivity=[self.ev], dont_initialize=True)

            def driver(self):
                self.ev.notify(ns(5))
                yield ns(1)
                self.ev.cancel()
                yield ns(20)

        sim = Simulator(M())
        sim.run(ns(30))
        assert fired == []

    def test_wait_any_of_multiple_events(self):
        woke = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.a = Event("a")
                self.b = Event("b")
                self.thread(self.driver)
                self.thread(self.waiter)

            def driver(self):
                yield ns(2)
                self.b.notify()
                yield ns(10)

            def waiter(self):
                yield (self.a, self.b)
                woke.append(sim.kernel.now_ticks)

        m = M()
        sim = Simulator(m)
        sim.run(ns(20))
        assert woke == [ns(2).ticks]

    def test_immediate_notification_runs_same_evaluation(self):
        order = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.ev = Event("e")
                self.thread(self.first)
                self.method(self.second, sensitivity=[self.ev],
                            dont_initialize=True)

            def first(self):
                order.append("first")
                self.ev.notify_immediate()
                yield ns(1)

            def second(self):
                order.append("second")

        sim = Simulator(M())
        # "second" must run at time 0, same delta as "first".
        sim.run(SimTime(0, "ns"))
        assert order == ["first", "second"]


class TestProcesses:
    def test_method_retriggers_on_each_change(self):
        runs = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.sig = Signal("s", initial=0)
                self.thread(self.stim)
                self.method(lambda: runs.append(self.sig.read()),
                            sensitivity=[self.sig], dont_initialize=True)

            def stim(self):
                for i in range(1, 4):
                    self.sig.write(i)
                    yield ns(1)

        sim = Simulator(M())
        sim.run(ns(10))
        assert runs == [1, 2, 3]

    def test_thread_terminates_and_notifies(self):
        log = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.p = self.thread(self.short)
                self.thread(self.observer)

            def short(self):
                yield ns(1)

            def observer(self):
                yield self.p.terminated_event
                log.append("done")

        sim = Simulator(M())
        sim.run(ns(5))
        assert log == ["done"]

    def test_static_sensitivity_thread(self):
        wakes = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.sig = Signal("s", initial=0)
                self.thread(self.stim)
                self.thread(self.listener, sensitivity=[self.sig],
                            dont_initialize=True)

            def stim(self):
                self.sig.write(1)
                yield ns(1)
                self.sig.write(2)
                yield ns(1)

            def listener(self):
                while True:
                    wakes.append(self.sig.read())
                    yield  # bare yield: wait for static sensitivity again?

        # A bare `yield` (None) is invalid; use explicit event wait instead.
        # This test documents that static sensitivity applies to the *next*
        # trigger after each suspension on the same event.
        class M2(Module):
            def __init__(self):
                super().__init__("m")
                self.sig = Signal("s", initial=0)
                self.thread(self.stim)
                self.thread(self.listener, dont_initialize=True,
                            sensitivity=[self.sig])

            def stim(self):
                self.sig.write(1)
                yield ns(1)
                self.sig.write(2)
                yield ns(1)

            def listener(self):
                while True:
                    wakes.append(self.sig.read())
                    yield self.sig.default_event()

        sim = Simulator(M2())
        sim.run(ns(10))
        assert wakes == [1, 2]


class TestClock:
    def test_clock_edges(self):
        trace = Trace()

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)

        top = Top()
        trace.watch(top.clk.signal, "clk")
        sim = Simulator(top, trace=trace)
        sim.run(ns(35))
        chan = trace["clk"]
        # Initial False, rise at 0, fall at 5, rise at 10, ...
        times = [t for t in chan.times]
        assert ns(0).ticks in times
        assert ns(5).ticks in times
        assert ns(10).ticks in times
        assert chan.value_at(ns(12)) is True
        assert chan.value_at(ns(17)) is False

    def test_duty_cycle(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), duty_cycle=0.3,
                                 parent=self)

        top = Top()
        trace = Trace()
        trace.watch(top.clk.signal, "clk")
        sim = Simulator(top, trace=trace)
        sim.run(ns(20))
        chan = trace["clk"]
        assert chan.value_at(ns(1)) is True
        assert chan.value_at(ns(4)) is False  # falls at 3 ns

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Clock("c", period=SimTime(0, "ns"))
        with pytest.raises(ValueError):
            Clock("c", period=ns(10), duty_cycle=1.5)

    def test_posedge_count(self):
        edges = []

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.method(lambda: edges.append(1),
                            sensitivity=[self.clk.posedge_event()],
                            dont_initialize=True)

        sim = Simulator(Top())
        sim.run(ns(45))
        assert len(edges) == 5  # at 0, 10, 20, 30, 40


class TestBitSignal:
    def test_edge_events(self):
        rises, falls = [], []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.b = BitSignal("b")
                self.thread(self.stim)
                self.method(lambda: rises.append(1),
                            sensitivity=[self.b.posedge_event()],
                            dont_initialize=True)
                self.method(lambda: falls.append(1),
                            sensitivity=[self.b.negedge_event()],
                            dont_initialize=True)

            def stim(self):
                self.b.write(True)
                yield ns(1)
                self.b.write(False)
                yield ns(1)
                self.b.write(True)
                yield ns(1)

        sim = Simulator(M())
        sim.run(ns(10))
        assert len(rises) == 2
        assert len(falls) == 1

    def test_coercion_to_bool(self):
        b = BitSignal("b")
        from repro.core.kernel import Kernel

        Kernel._current = None
        b.write(3)
        assert b.read() is True


class TestSimulatorControl:
    def test_run_in_segments_preserves_time(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.count = 0
                self.thread(self.tick)

            def tick(self):
                while True:
                    self.count += 1
                    yield ns(10)

        m = M()
        sim = Simulator(m)
        sim.run(ns(25))
        assert sim.now == ns(25)
        c1 = m.count
        sim.run(ns(20))
        assert sim.now == ns(45)
        assert m.count > c1

    def test_stop(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.thread(self.tick)

            def tick(self):
                yield ns(5)
                sim.stop()
                yield ns(100)

        m = M()
        sim = Simulator(m)
        sim.run(ns(50))
        assert sim.now == ns(5)

    def test_stop_latches_until_reset(self):
        """run() after stop() must raise instead of silently resuming;
        reset() is the explicit escape hatch."""
        from repro.core import SimulationError

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.count = 0
                self.thread(self.tick)

            def tick(self):
                while True:
                    yield ns(5)
                    self.count += 1
                    if self.count == 2:
                        sim.stop()

        m = M()
        sim = Simulator(m)
        sim.run(ns(100))
        assert sim.now == ns(10)
        assert sim.stopped
        with pytest.raises(SimulationError):
            sim.run(ns(100))
        assert m.count == 2  # nothing resumed behind our back
        sim.reset()
        assert not sim.stopped
        sim.run(ns(5))  # explicit resumption continues from t=10
        assert sim.now == ns(15)
        assert m.count == 3

    def test_simulator_not_picklable(self):
        import pickle

        from repro.core import SimulationError

        sim = Simulator(Module("m"))
        with pytest.raises(SimulationError):
            pickle.dumps(sim)

    def test_duplicate_child_names_rejected(self):
        from repro.core import ElaborationError

        top = Module("top")
        Module("a", parent=top)
        with pytest.raises(ElaborationError):
            Module("a", parent=top)

    def test_hierarchy_walk_and_find(self):
        top = Module("top")
        a = Module("a", parent=top)
        b = Module("b", parent=a)
        assert [m.name for m in top.walk()] == ["top", "a", "b"]
        assert top.find("a.b") is b
        assert b.full_name() == "top.a.b"
