"""Tests for the extension blocks: FSM MoC, LMS echo canceller,
behavioral PLL, and multi-cluster TDF designs."""

import numpy as np
import pytest

from repro.core import (
    BitSignal,
    Clock,
    ElaborationError,
    Module,
    Signal,
    SimTime,
    Simulator,
)
from repro.de import Fsm
from repro.lib import (
    BehavioralPll,
    LmsFilter,
    SineSource,
    TdfSink,
    lms_cancel,
)
from repro.tdf import TdfModule, TdfOut, TdfSignal


def ns(x):
    return SimTime(x, "ns")


def us(x):
    return SimTime(x, "us")


class TestFsm:
    def build(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.start = BitSignal("start")
                self.done = BitSignal("done")
                self.fsm = Fsm("ctrl", self.clk,
                               inputs=[self.start, self.done],
                               parent=self)
                self.fsm.state("IDLE", initial=True,
                               outputs={"busy": 0})
                self.fsm.state("RUN", outputs={"busy": 1})
                self.fsm.state("DONE", outputs={"busy": 0})
                self.fsm.transition("IDLE", "RUN",
                                    lambda start, done: start)
                self.fsm.transition("RUN", "DONE",
                                    lambda start, done: done)
                self.fsm.transition("DONE", "IDLE",
                                    lambda start, done: not start)
                self.thread(self.stim)
                self.trace = []

            def stim(self):
                yield ns(15)
                self.start.write(True)
                yield ns(20)
                self.trace.append(self.fsm.current_state)
                self.done.write(True)
                yield ns(20)
                self.trace.append(self.fsm.current_state)
                self.start.write(False)
                self.done.write(False)
                yield ns(20)
                self.trace.append(self.fsm.current_state)

        return Top()

    def test_state_sequence(self):
        top = self.build()
        Simulator(top).run(ns(100))
        assert top.trace == ["RUN", "DONE", "IDLE"]
        assert top.fsm.transition_count == 3

    def test_moore_outputs_follow_state(self):
        top = self.build()
        busy_changes = []
        busy = top.fsm.output("busy")
        top.method(lambda: busy_changes.append(busy.read()),
                   sensitivity=[busy], dont_initialize=True)
        Simulator(top).run(ns(100))
        assert busy_changes == [1, 0]

    def test_declaration_validation(self):
        clk = Clock("clk", period=ns(10))
        fsm = Fsm("f", clk, inputs=[])
        fsm.state("A", initial=True)
        with pytest.raises(ElaborationError):
            fsm.state("A")
        with pytest.raises(ElaborationError):
            fsm.state("B", initial=True)
        fsm.state("B")
        with pytest.raises(ElaborationError):
            fsm.transition("A", "NOPE", lambda: True)
        with pytest.raises(ElaborationError):
            fsm.transition("NOPE", "A", lambda: True)
        with pytest.raises(ElaborationError):
            fsm.output("nonexistent")

    def test_missing_initial_state_detected(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.fsm = Fsm("f", self.clk, inputs=[], parent=self)
                self.fsm.state("A")

        with pytest.raises(ElaborationError):
            Simulator(Top()).run(ns(10))

    def test_first_matching_transition_wins(self):
        clk_sig_seen = []

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.fsm = Fsm("f", self.clk, inputs=[], parent=self)
                self.fsm.state("A", initial=True)
                self.fsm.state("B")
                self.fsm.state("C")
                self.fsm.transition("A", "B", lambda: True)
                self.fsm.transition("A", "C", lambda: True)

        top = Top()
        Simulator(top).run(ns(15))
        assert top.fsm.current_state == "B"


class TestLms:
    def test_offline_echo_cancellation(self):
        rng = np.random.default_rng(1)
        n = 8000
        reference = rng.normal(size=n)
        echo_path = np.array([0.8, -0.4, 0.2, 0.1])
        echo = np.convolve(reference, echo_path)[:n]
        wanted = 0.1 * np.sin(2 * np.pi * 0.01 * np.arange(n))
        observed = wanted + echo
        # Small mu: the uncancellable 'wanted' component acts as
        # gradient noise whose excess error scales with the step size.
        error, weights = lms_cancel(reference, observed, taps=8,
                                    mu=0.05)
        # Converged weights identify the echo path.
        np.testing.assert_allclose(weights[:4], echo_path, atol=0.02)
        # Residual echo in the tail is tiny: error ~ wanted.
        tail = slice(n - 1000, n)
        residual = error[tail] - wanted[tail]
        assert np.sqrt(np.mean(residual ** 2)) < 0.02

    def test_tdf_module_converges(self):
        rng = np.random.default_rng(2)
        n = 3000
        reference = rng.normal(size=n)
        echo = 0.5 * np.roll(reference, 1)
        echo[0] = 0.0
        observed = echo  # no wanted signal: error should -> 0

        from repro.lib import SampleListSource

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.ref_src = SampleListSource("ref", reference,
                                                parent=self,
                                                timestep=us(1))
                self.obs_src = SampleListSource("obs", observed,
                                                parent=self)
                self.lms = LmsFilter("lms", taps=4, mu=0.5,
                                     parent=self)
                self.sink = TdfSink("sink", self)
                a, b, c, d = (TdfSignal(x) for x in "abcd")
                self.ref_src.out(a)
                self.obs_src.out(b)
                self.lms.reference(a)
                self.lms.desired(b)
                self.lms.out(c)
                self.lms.estimate(d)
                self.sink.inp(c)
                self.est_sink = TdfSink("est_sink", self)
                self.est_sink.inp(d)

        top = Top()
        Simulator(top).run(us(n - 1))
        error = np.asarray(top.sink.samples)
        early = np.sqrt(np.mean(error[:100] ** 2))
        late = np.sqrt(np.mean(error[-500:] ** 2))
        assert late < early / 20
        assert top.lms.weights[1] == pytest.approx(0.5, abs=0.02)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LmsFilter("l", taps=0)
        with pytest.raises(ValueError):
            LmsFilter("l", taps=4, mu=3.0)


class TestPll:
    def run_pll(self, offset_hz, duration_ms=8.0):
        f_ref = 100e3

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.src = SineSource("src", frequency=f_ref + offset_hz,
                                      parent=self, timestep=us(1))
                self.pll = BehavioralPll("pll", center_frequency=f_ref,
                                         loop_bandwidth=4e3,
                                         parent=self)
                self.freq_sink = TdfSink("freq_sink", self)
                self.out_sink = TdfSink("out_sink", self)
                a, b, c, d = (TdfSignal(x) for x in "abcd")
                self.src.out(a)
                self.pll.inp(a)
                self.pll.out(b)
                self.pll.freq(c)
                self.pll.phase_error(d)
                self.out_sink.inp(b)
                self.freq_sink.inp(c)
                self.err_sink = TdfSink("err_sink", self)
                self.err_sink.inp(d)

        top = Top()
        Simulator(top).run(SimTime(duration_ms, "ms"))
        return (np.asarray(top.freq_sink.samples),
                np.asarray(top.err_sink.samples))

    def test_locks_to_offset_carrier(self):
        freq, err = self.run_pll(offset_hz=2e3)
        tail = freq[-1000:]
        assert np.mean(tail) == pytest.approx(102e3, rel=2e-3)
        # Phase error settles near zero (type-II loop).
        assert abs(np.mean(err[-1000:])) < 0.02

    def test_tracks_negative_offset(self):
        freq, _err = self.run_pll(offset_hz=-3e3)
        assert np.mean(freq[-1000:]) == pytest.approx(97e3, rel=3e-3)

    def test_starts_at_center(self):
        freq, _err = self.run_pll(offset_hz=0.0, duration_ms=2.0)
        assert freq[0] == pytest.approx(100e3, rel=1e-3)


class TestMultipleClusters:
    def test_independent_clusters_with_different_periods(self):
        class Src(TdfModule):
            def __init__(self, name, parent, step):
                super().__init__(name, parent)
                self.out = TdfOut("out")
                self._step = step
                self.n = 0

            def set_attributes(self):
                self.set_timestep(self._step)

            def processing(self):
                self.out.write(float(self.n))
                self.n += 1

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.fast_src = Src("fast", self, us(1))
                self.slow_src = Src("slow", self, us(7))
                self.fast_sink = TdfSink("fast_sink", self)
                self.slow_sink = TdfSink("slow_sink", self)
                a, b = TdfSignal("a"), TdfSignal("b")
                self.fast_src.out(a)
                self.fast_sink.inp(a)
                self.slow_src.out(b)
                self.slow_sink.inp(b)

        top = Top()
        sim = Simulator(top)
        sim.run(us(70))
        assert len(top.fast_sink.samples) == 71
        assert len(top.slow_sink.samples) == 11
        registry = sim._tdf_registry
        assert len(registry.clusters) == 2
        periods = sorted(c.period.ticks for c in registry.clusters)
        assert periods == [us(1).ticks, us(7).ticks]
