"""Tests for repro.service: queue/store units, endpoint contracts,
fair-share scheduling, dedup, retries and worker crash recovery.

Server tests boot a real :class:`CampaignService` on a daemon thread
(port 0 → OS-picked) and talk to it over HTTP with the stdlib client,
exactly as a remote user would.  Campaign specs live in
``tests/service_specs.py`` and are always submitted by reference.
"""

import dataclasses
import http.client
import json
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, resolve_spec_ref
from repro.service import (
    ServiceClient,
    ServiceError,
    SharedResultStore,
    execute_chunk_by_ref,
    run_worker,
    start_in_thread,
)
from repro.service.jobs import Chunk, JobRequest, SubmitError
from repro.service.queue import FairShareQueue, QueueFull

SPECS = str(Path(__file__).parent / "service_specs.py")


def ref(name):
    return f"{SPECS}::{name}"


def serial_fingerprint(name, root_seed=None):
    """Fingerprint of a plain single-process CampaignRunner execution —
    the ground truth every service execution must match bit-for-bit."""
    campaign = resolve_spec_ref(ref(name))
    if root_seed is not None:
        campaign = dataclasses.replace(campaign, root_seed=root_seed)
    return CampaignRunner(campaign, workers=1,
                          use_cache=False).run().fingerprint()


@contextmanager
def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 1)
    handle = start_in_thread(**kwargs)
    try:
        yield handle, ServiceClient(handle.url)
    finally:
        handle.stop()


def make_chunk(chunk_id, tenant, priority="normal", points=1,
               job_id="j1"):
    tasks = [(i, {"x": i}, 1) for i in range(points)]
    return Chunk(chunk_id=chunk_id, job_id=job_id, tenant=tenant,
                 priority=priority, tasks=tasks)


# ---------------------------------------------------------------------------
# FairShareQueue units
# ---------------------------------------------------------------------------


class TestFairShareQueue:
    def test_round_robin_between_equal_tenants(self):
        queue = FairShareQueue()
        for i in range(3):
            queue.push(make_chunk(f"a{i}", "a"))
        for i in range(3):
            queue.push(make_chunk(f"b{i}", "b"))
        order = [queue.pop().chunk_id for _ in range(6)]
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]
        assert queue.pop() is None

    def test_weighted_tenant_served_proportionally(self):
        queue = FairShareQueue(weights={"big": 2.0})
        for i in range(20):
            queue.push(make_chunk(f"big{i}", "big"))
            queue.push(make_chunk(f"small{i}", "small"))
        first_nine = [queue.pop().tenant for _ in range(9)]
        # 2:1 service ratio — and the weight-1 tenant is never starved
        assert first_nine.count("big") == 6
        assert first_nine.count("small") == 3

    def test_priority_lanes_within_tenant(self):
        queue = FairShareQueue()
        queue.push(make_chunk("low", "a", priority="low"))
        queue.push(make_chunk("normal", "a", priority="normal"))
        queue.push(make_chunk("high", "a", priority="high"))
        order = [queue.pop().chunk_id for _ in range(3)]
        assert order == ["high", "normal", "low"]

    def test_fifo_within_lane(self):
        queue = FairShareQueue()
        for i in range(4):
            queue.push(make_chunk(f"c{i}", "a"))
        assert [queue.pop().chunk_id for _ in range(4)] \
            == ["c0", "c1", "c2", "c3"]

    def test_backpressure_counts_points_not_chunks(self):
        queue = FairShareQueue(max_depth=5)
        queue.push(make_chunk("c1", "a", points=3))
        assert queue.depth() == 3
        assert queue.has_capacity(2)
        assert not queue.has_capacity(3)
        with pytest.raises(QueueFull) as excinfo:
            queue.push(make_chunk("c2", "a", points=3))
        assert excinfo.value.pending == 3
        assert excinfo.value.requested == 3
        # force bypasses the bound (requeues must never be dropped)
        queue.push(make_chunk("c2", "a", points=3), force=True)
        assert queue.depth() == 6

    def test_pop_skips_cancelled_chunks(self):
        queue = FairShareQueue()
        cancelled = make_chunk("dead", "a")
        cancelled.cancelled = True
        queue.push(cancelled)
        queue.push(make_chunk("live", "a"))
        assert queue.pop().chunk_id == "live"
        assert queue.pop() is None

    def test_discard_job_removes_only_that_job(self):
        queue = FairShareQueue()
        queue.push(make_chunk("c1", "a", points=2, job_id="j1"))
        queue.push(make_chunk("c2", "a", points=3, job_id="j2"))
        assert queue.discard_job("j1") == 2
        assert queue.depth() == 3
        assert queue.pop().chunk_id == "c2"


# ---------------------------------------------------------------------------
# SharedResultStore units
# ---------------------------------------------------------------------------


class TestSharedResultStore:
    def test_single_flight_claim(self, tmp_path):
        store = SharedResultStore(tmp_path)
        assert store.try_claim("k1", owner="alice")
        assert not store.try_claim("k1", owner="bob")
        # re-asserting one's own claim is idempotent
        assert store.try_claim("k1", owner="alice")
        assert store.claimed_elsewhere("k1", "bob")
        assert not store.claimed_elsewhere("k1", "alice")
        store.release("k1", owner="alice")
        assert store.try_claim("k1", owner="bob")

    def test_release_respects_owner(self, tmp_path):
        store = SharedResultStore(tmp_path)
        store.try_claim("k1", owner="alice")
        store.release("k1", owner="bob")  # not bob's claim: no-op
        assert store.claim_info("k1")["owner"] == "alice"

    def test_stale_claim_taken_over(self, tmp_path):
        store = SharedResultStore(tmp_path, claim_ttl=10.0)
        assert store.try_claim("k1", owner="crashed", now=1000.0)
        # within the TTL the claim holds ...
        assert not store.try_claim("k1", owner="next", now=1005.0)
        # ... after it, the next claimant atomically takes over
        assert store.try_claim("k1", owner="next", now=1011.0)
        assert store.claim_info("k1")["owner"] == "next"

    def test_publish_stores_result_and_releases_claim(self, tmp_path):
        from repro.campaign.records import RunRecord

        store = SharedResultStore(tmp_path)
        store.try_claim("k1", owner="alice")
        record = RunRecord(index=0, params={"x": 1, "seed": 7},
                           seed=7, status="ok",
                           metrics={"y": 2.0})
        store.publish("k1", record, owner="alice")
        assert store.claim_info("k1") is None
        hit = store.get("k1")
        assert hit.metrics == {"y": 2.0}
        # published keys can no longer be claimed
        assert not store.try_claim("k1", owner="bob")


# ---------------------------------------------------------------------------
# JobRequest / chunk execution units
# ---------------------------------------------------------------------------


class TestJobRequest:
    def test_requires_spec(self):
        with pytest.raises(SubmitError):
            JobRequest.from_payload({})

    def test_rejects_unknown_priority(self):
        with pytest.raises(SubmitError):
            JobRequest.from_payload({"spec": "s.py", "priority": "max"})

    def test_rejects_bad_numbers(self):
        for field, value in (("limit", 0), ("chunk_size", 0),
                             ("limit", "many"), ("timeout", "soon")):
            with pytest.raises(SubmitError):
                JobRequest.from_payload({"spec": "s.py", field: value})

    def test_defaults_and_coercion(self):
        request = JobRequest.from_payload(
            {"spec": "s.py", "retries": "3", "chunk_size": 4,
             "root_seed": 9})
        assert request.tenant == "default"
        assert request.priority == "normal"
        assert request.retries == 3
        assert request.chunk_size == 4
        assert request.root_seed == 9


def test_execute_chunk_by_ref_runs_points():
    campaign = resolve_spec_ref(ref("quick"))
    from repro.campaign import plan_records

    records = plan_records(campaign)
    tasks = [(r.index, r.params, 1) for r in records[:3]]
    outcomes = execute_chunk_by_ref(ref("quick"), tasks, None)
    assert [o["index"] for o in outcomes] == [0, 1, 2]
    for outcome, record in zip(outcomes, records):
        assert outcome["status"] == "ok"
        assert outcome["metrics"]["y"] == record.params["x"] * 2.0
        json.dumps(outcome)  # wire-safe


# ---------------------------------------------------------------------------
# Endpoint contracts
# ---------------------------------------------------------------------------


def test_submit_stream_results_end_to_end(tmp_path):
    out_dir = tmp_path / "out"
    with serve(workers=1, out_dir=out_dir) as (handle, client):
        assert client.health()["ok"]
        job = client.submit(ref("quick"), tenant="ana")
        assert job["state"] in ("queued", "running")
        assert job["total"] == 8

        streamed = list(client.stream(job["id"]))
        assert len(streamed) == 8
        assert [entry["seq"] for entry in streamed] == list(range(8))
        assert sorted(entry["index"] for entry in streamed) \
            == list(range(8))
        assert all(entry["status"] == "ok" for entry in streamed)
        assert all(entry["source"] == "executed" for entry in streamed)

        status = client.wait(job["id"], timeout=10)
        assert status["state"] == "done"
        assert status["executed"] == 8
        assert status["wait_seconds"] is not None
        assert status["run_seconds"] is not None

        results = client.results(job["id"])
        assert results["fingerprint"] == serial_fingerprint("quick")
        assert results["metrics"]["y"]["count"] == 8
        assert results["metrics"]["y"]["mean"] == pytest.approx(7.0)

        # the job's JSONL record log was written, one line per point
        log = out_dir / "jobs" / job["id"] / "records.jsonl"
        lines = [json.loads(line) for line
                 in log.read_text().splitlines()]
        assert len(lines) == 8

        assert client.jobs(tenant="ana")[0]["id"] == job["id"]
        assert client.jobs(tenant="nobody") == []


def test_resubmit_is_fully_cached(tmp_path):
    with serve(workers=1, store_dir=tmp_path / "store") as (_, client):
        first = client.submit(ref("quick"))
        done = client.wait(first["id"], timeout=10)
        assert done["executed"] == 8

        second = client.submit(ref("quick"))
        done = client.wait(second["id"], timeout=10)
        assert done["cached"] == 8
        assert done["executed"] == 0
        assert client.results(first["id"])["fingerprint"] \
            == client.results(second["id"])["fingerprint"]


def test_error_contracts(tmp_path):
    with serve(workers=1) as (handle, client):
        with pytest.raises(ServiceError) as excinfo:
            client.status("j99999")
        assert excinfo.value.status == 404

        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/jobs", {"tenant": "x"})
        assert excinfo.value.status == 400

        with pytest.raises(ServiceError) as excinfo:
            client.submit(str(tmp_path / "missing.py"))
        assert excinfo.value.status == 400

        with pytest.raises(ServiceError) as excinfo:
            client._request("DELETE", "/v1/jobs")
        assert excinfo.value.status == 405
        assert "POST" in excinfo.value.payload["allowed"]

        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/jobs",
                            {"spec": ref("quick"), "priority": "mega"})
        assert excinfo.value.status == 400


def test_broken_spec_rejected_with_422():
    with serve(workers=1) as (_, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(ref("broken"))
        assert excinfo.value.status == 422
        payload = excinfo.value.payload
        assert payload["campaign"] == "broken"
        diagnostics = json.dumps(payload["diagnostics"])
        assert "src.out" in diagnostics  # names the unbound port
        # nothing was admitted
        assert client.jobs() == []


def test_nondeterministic_spec_rejected_with_422():
    """A model whose processing() draws from the global random state is
    refused at submit time with the behavioral-lint diagnostic."""
    with serve(workers=1) as (_, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(ref("noisy"))
        assert excinfo.value.status == 422
        payload = excinfo.value.payload
        assert payload["campaign"] == "noisy"
        diagnostics = json.dumps(payload["diagnostics"])
        assert "CODE001" in diagnostics
        assert "random.random" in diagnostics
        assert client.jobs() == []


def test_backpressure_returns_429():
    with serve(workers=0, max_pending_points=4) as (_, client):
        accepted = client.submit(ref("quick"), limit=4)
        assert accepted["total"] == 4
        with pytest.raises(ServiceError) as excinfo:
            client.submit(ref("quick"))
        assert excinfo.value.status == 429
        assert excinfo.value.payload["pending"] == 4
        assert excinfo.value.payload["limit"] == 4
        # the first job's 4 in-flight points dedup away; only the 4
        # genuinely new points count against the bound
        assert excinfo.value.payload["requested"] == 4


def test_sse_stream_framing():
    with serve(workers=1) as (handle, client):
        job = client.submit(ref("quick"), chunk_size=8)
        client.wait(job["id"], timeout=10)

        connection = http.client.HTTPConnection(
            handle.service.host, handle.service.port, timeout=10)
        try:
            connection.request(
                "GET", f"/v1/jobs/{job['id']}/stream?sse=1")
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") \
                .startswith("text/event-stream")
            body = response.read().decode()
        finally:
            connection.close()
        events = [block for block in body.split("\n\n") if block]
        assert len(events) == 9  # 8 points + terminator
        assert all(event.startswith("data: ")
                   for event in events[:8])
        assert events[-1].startswith("event: end")
        json.loads(events[0][len("data: "):])


def test_cancel_stops_queued_work():
    with serve(workers=1) as (_, client):
        job = client.submit(ref("slow"), chunk_size=1)
        stream = client.stream(job["id"])
        first = next(stream)  # at least one point computed
        assert first["status"] == "ok"
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        # idempotent
        assert client.cancel(job["id"])["state"] == "cancelled"
        # the stream terminates rather than hanging
        remaining = list(stream)
        status = client.status(job["id"])
        assert status["state"] == "cancelled"
        assert status["completed"] == 1 + len(remaining)
        assert status["completed"] < status["total"]


# ---------------------------------------------------------------------------
# Scheduling behavior over HTTP
# ---------------------------------------------------------------------------


def test_fair_share_small_tenant_finishes_during_big_sweep():
    with serve(workers=1) as (_, client):
        big = client.submit(ref("slow"), tenant="big", chunk_size=1)
        small = client.submit(ref("slow-small"), tenant="small",
                              chunk_size=1)
        done = client.wait(small["id"], timeout=15)
        assert done["state"] == "done"
        # round-robin interleaving: the 2-point tenant finished while
        # the 8-point tenant still has work in flight
        big_status = client.status(big["id"])
        assert big_status["state"] == "running"
        assert big_status["completed"] < big_status["total"]
        client.wait(big["id"], timeout=15)


def test_two_tenants_dedup_computes_each_point_once(tmp_path):
    with serve(workers=1, store_dir=tmp_path / "store",
               out_dir=tmp_path / "out") as (handle, client):
        job_a = client.submit(ref("slow"), tenant="ana", chunk_size=2)
        job_b = client.submit(ref("slow"), tenant="ben", chunk_size=2)
        done_a = client.wait(job_a["id"], timeout=20)
        done_b = client.wait(job_b["id"], timeout=20)

        # the overlapping sweep was computed exactly once fleet-wide
        assert done_a["executed"] == 8
        assert done_b["executed"] == 0
        assert done_b["cached"] + done_b["deduped"] == 8
        assert done_a["ok"] == done_b["ok"] == 8

        expected = serial_fingerprint("slow")
        assert client.results(job_a["id"])["fingerprint"] == expected
        assert client.results(job_b["id"])["fingerprint"] == expected

        metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["service.points.executed"] == 8


def test_retry_recovers_transient_failures(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
    with serve(workers=1) as (_, client):
        job = client.submit(ref("flaky"), retries=1, chunk_size=1)
        done = client.wait(job["id"], timeout=15)
        assert done["state"] == "done"
        assert done["ok"] == 2
        records = list(client.stream(job["id"]))
        assert all(record["attempts"] == 2 for record in records)
        assert client.metrics()["counters"][
            "service.points.retried"] == 2


def test_retries_exhausted_marks_point_failed(tmp_path, monkeypatch):
    # retries=0: the single transient failure is final
    monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
    with serve(workers=1) as (_, client):
        job = client.submit(ref("flaky"), retries=0, chunk_size=1)
        done = client.wait(job["id"], timeout=15)
        assert done["state"] == "done"
        assert done["failed"] == 2
        records = list(client.stream(job["id"]))
        assert all(record["status"] == "failed" for record in records)
        assert all("transient flake" in record["error"]
                   for record in records)


# ---------------------------------------------------------------------------
# Remote worker plane
# ---------------------------------------------------------------------------


def test_remote_worker_executes_and_crash_is_recovered(tmp_path):
    with serve(workers=0, store_dir=tmp_path / "store",
               lease_timeout=0.75) as (handle, client):
        job = client.submit(ref("quick"), chunk_size=4)

        # a "crashed" worker: leases one chunk and never completes it
        crashed = client.lease("crasher")
        assert crashed is not None
        assert crashed["job_id"] == job["id"]
        assert len(crashed["tasks"]) == 4

        # a real worker drains everything, including the re-queued
        # chunk once its lease expires
        worker = threading.Thread(
            target=run_worker,
            args=(handle.url,),
            kwargs={"worker_id": "real", "poll": 0.05, "max_idle": 4.0},
            daemon=True)
        worker.start()
        done = client.wait(job["id"], timeout=20)
        worker.join(timeout=10)

        # no lost and no duplicated points
        assert done["state"] == "done"
        assert done["executed"] == 8
        assert done["completed"] == 8
        assert client.results(job["id"])["fingerprint"] \
            == serial_fingerprint("quick")
        counters = client.metrics()["counters"]
        assert counters["service.chunks.requeued"] >= 1


def test_duplicate_chunk_completion_is_dropped():
    with serve(workers=0) as (_, client):
        job = client.submit(ref("quick"), chunk_size=8)
        lease = client.lease("w1")
        outcomes = execute_chunk_by_ref(
            lease["spec"], [tuple(task) for task in lease["tasks"]],
            lease.get("timeout"))
        first = client.complete("w1", lease["job_id"],
                                lease["chunk_id"], outcomes)
        assert first["accepted"]
        second = client.complete("w1", lease["job_id"],
                                 lease["chunk_id"], outcomes)
        assert not second["accepted"]
        done = client.wait(job["id"], timeout=10)
        assert done["executed"] == 8
        assert done["completed"] == 8

        # idle queue → 204 → None
        assert client.lease("w1") is None


def test_service_metrics_expose_queue_and_job_timings(tmp_path):
    with serve(workers=1, store_dir=tmp_path / "store") as (_, client):
        job = client.submit(ref("quick"))
        client.wait(job["id"], timeout=10)
        metrics = client.metrics()
        assert "queue.depth" in metrics["gauges"]
        histograms = metrics["histograms"]
        assert histograms["job.wait_seconds"]["count"] >= 1
        assert histograms["job.run_seconds"]["count"] >= 1
        assert metrics["counters"]["service.jobs.completed"] == 1


# ---------------------------------------------------------------------------
# fleet observability: stitched traces, /metrics, per-tenant usage
# ---------------------------------------------------------------------------


def prom_value(text, line_prefix):
    """The sample value for an exact series prefix, or None."""
    for line in text.splitlines():
        if line.startswith(line_prefix + " "):
            return float(line.split()[-1])
    return None


class TestFleetObservability:
    def test_two_process_job_one_stitched_trace(self, tmp_path):
        from repro.observe import validate_chrome_trace
        from repro.observe.fleet import TraceContext

        with serve(workers=1) as (handle, client):
            job = client.submit(ref("slow"), tenant="ana",
                                chunk_size=1)
            stop = threading.Event()
            worker = threading.Thread(
                target=run_worker, args=(handle.url,),
                kwargs={"worker_id": "pull-1", "poll": 0.02,
                        "stop_when": stop.is_set}, daemon=True)
            worker.start()
            try:
                done = client.wait(job["id"], timeout=30)
            finally:
                stop.set()
                worker.join(timeout=10)
            assert done["state"] == "done"

            trace = client.job_trace(job["id"])
            assert validate_chrome_trace(trace) == []

            other = trace["otherData"]
            # one job, one trace id, carried across every boundary
            context = TraceContext.parse(other["traceparent"])
            assert len(context.trace_id) == 32
            # spans from at least two processes (the server plus an
            # executor; with both planes active, three)
            assert other["processes"] >= 2
            process_names = {
                event["args"]["name"]
                for event in trace["traceEvents"]
                if event.get("ph") == "M"
                and event["name"] == "process_name"}
            assert any(name.startswith("server")
                       for name in process_names)
            assert any(not name.startswith("server")
                       for name in process_names)

            names = {event["name"]
                     for event in trace["traceEvents"]
                     if event.get("ph") in ("X", "i")}
            # the documented service span taxonomy (TUTORIAL §12)
            assert {"job.submit", "job.run", "queue.wait",
                    "chunk.run", "point.run"} <= names

            # the worker plane contributed real point spans
            point_spans = [event for event in trace["traceEvents"]
                           if event.get("ph") == "X"
                           and event["name"] == "point.run"]
            assert len(point_spans) == 8
            assert all(event["dur"] >= 0 for event in point_spans)

    def test_lease_carries_job_trace_context(self):
        from repro.observe.fleet import TraceContext

        with serve(workers=0) as (_, client):
            job = client.submit(ref("quick"), chunk_size=4)
            lease = client.lease("w1")
            context = TraceContext.parse(lease["traceparent"])
            trace = client.job_trace(job["id"])
            job_context = TraceContext.parse(
                trace["otherData"]["traceparent"])
            # chunk context is a child: same trace, different span
            assert context.trace_id == job_context.trace_id
            assert context.span_id != job_context.span_id

    def test_prometheus_reconciles_with_job_records(self, tmp_path):
        from repro.observe import validate_prometheus_text

        out_dir = tmp_path / "out"
        with serve(workers=1, out_dir=out_dir) as (_, client):
            job = client.submit(ref("quick"), tenant="ana")
            done = client.wait(job["id"], timeout=10)
            assert done["state"] == "done"

            log = out_dir / "jobs" / job["id"] / "records.jsonl"
            records = [json.loads(line)
                       for line in log.read_text().splitlines()]
            executed = sum(1 for record in records
                           if record["source"] == "executed")

            text = client.prometheus()
            assert validate_prometheus_text(text) == []
            assert prom_value(
                text, 'service_points_total{kind="executed"}') \
                == executed
            assert prom_value(
                text, 'service_points_total'
                '{kind="executed",tenant="ana"}') == executed
            assert prom_value(
                text, 'service_jobs_total{event="completed"}') == 1
            assert prom_value(
                text, 'service_point_seconds_count{tenant="ana"}') \
                == executed

    def test_usage_endpoint_accounts_per_tenant(self, tmp_path):
        with serve(workers=1,
                   store_dir=tmp_path / "store") as (_, client):
            first = client.submit(ref("quick"), tenant="ana")
            client.wait(first["id"], timeout=10)
            second = client.submit(ref("quick"), tenant="ana")
            client.wait(second["id"], timeout=10)

            usage = client.usage("ana")
            assert usage["tenant"] == "ana"
            assert usage["jobs"]["total"] == 2
            assert usage["points"]["executed"] == 8
            assert usage["points"]["cached"] == 8
            assert usage["points"]["failed"] == 0
            assert usage["cache_hit_ratio"] == pytest.approx(0.5)
            # the cached job never queued a chunk, so only the first
            # job's dispatch contributes queue-wait observations
            assert usage["queue_wait_seconds"]["count"] >= 1
            assert usage["point_seconds"]["count"] == 8

            with pytest.raises(ServiceError) as excinfo:
                client.usage("nobody")
            assert excinfo.value.status == 404

    def test_usage_counts_failures_by_kind(self, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
        with serve(workers=1) as (_, client):
            job = client.submit(ref("flaky"), tenant="bob",
                                retries=0, chunk_size=1)
            done = client.wait(job["id"], timeout=15)
            assert done["failed"] == 2
            usage = client.usage("bob")
            assert usage["points"]["failed"] == 2
            assert sum(usage["failure_kinds"].values()) \
                == usage["points"]["failed"]

    def test_observe_off_serverwide_disables_tracing(self):
        with serve(workers=1, observe="off") as (_, client):
            job = client.submit(ref("quick"))
            client.wait(job["id"], timeout=10)
            with pytest.raises(ServiceError) as excinfo:
                client.job_trace(job["id"])
            assert excinfo.value.status == 404
            # lease/complete still work untraced, and /metrics still
            # serves the server's own registry
            assert "service_jobs_total" in client.prometheus()

    def test_observe_off_per_job(self):
        with serve(workers=0) as (_, client):
            job = client.submit(ref("quick"), chunk_size=8,
                                observe=False)
            lease = client.lease("w1")
            assert lease.get("traceparent") is None
            outcomes = execute_chunk_by_ref(
                lease["spec"],
                [tuple(task) for task in lease["tasks"]],
                lease.get("timeout"))
            client.complete("w1", lease["job_id"],
                            lease["chunk_id"], outcomes)
            client.wait(job["id"], timeout=10)
            with pytest.raises(ServiceError) as excinfo:
                client.job_trace(job["id"])
            assert excinfo.value.status == 404

    def test_traced_overhead_within_documented_bound(self):
        import time as time_module

        def timed_run(observe, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                with serve(workers=1,
                           observe=observe) as (_, client):
                    start = time_module.perf_counter()
                    job = client.submit(ref("quick"))
                    client.wait(job["id"], timeout=10, poll=0.02)
                    best = min(best,
                               time_module.perf_counter() - start)
            return best

        # Same contract as tests/test_observe.py::TestOverhead, at
        # the service tier: tracing every chunk and shipping segments
        # stays within 2x of the untraced service (absolute floor
        # absorbs scheduler/poll jitter on a sub-second job).
        disabled = timed_run("off")
        enabled = timed_run("on")
        assert enabled <= max(2.0 * disabled, disabled + 0.25), (
            f"fleet telemetry overhead too high: {enabled:.4f}s vs "
            f"{disabled:.4f}s untraced")
