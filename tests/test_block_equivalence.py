"""Scalar <-> block execution equivalence (PR 3 acceptance).

The compiled-schedule / batched TDF engine must be *observationally
identical* to the scalar reference engine: every output stream
bit-for-bit equal, and checkpoints interchangeable between the two
modes.  These tests cover the tier-1 model shapes: a TDF-heavy ADC
chain, the bench_e4 pipelined-ADC testbench (shared RNG stream), the
bench_e1 ADSL virtual prototype (DE-coupled clusters), multirate and
mixed block/scalar clusters, feedback delay loops, a CT-embedding
cluster, and object-mode (non-float payload) fallbacks.
"""

import numpy as np
import pytest

from repro.adsl import REG_HOOK_STATUS, REG_LINE_LEVEL, AdslSystem
from repro.core import Module, SimTime, Simulator
from repro.eln import Capacitor, Network, Resistor, Vsource
from repro.lib import (
    Add2,
    FirFilter,
    GaussianNoiseSource,
    IdealAdc,
    IirFilter,
    PipelinedAdc,
    PipelinedAdcModule,
    SampleHold,
    SaturatingAmp,
    SineSource,
    TdfSink,
    butterworth_lowpass_sections,
    fir_lowpass,
)
from repro.sync import ElnTdfModule
from repro.tdf import TdfIn, TdfModule, TdfOut, TdfSignal


def us(x):
    return SimTime(x, "us")


#: (tdf_batch, tdf_compact_every) block configurations under test —
#: a tiny batch (forces many partial runs), the default, and a large
#: batch crossing several compaction intervals.
BLOCK_CONFIGS = [(4, 16), (16, 64), (256, 1024)]


def run_sim(build, duration, *, block, batch=16, compact=64):
    top = build()
    Simulator(top, tdf_block=block, tdf_batch=batch,
              tdf_compact_every=compact).run(duration)
    return top


def assert_streams_equal(ref: TdfSink, got: TdfSink):
    np.testing.assert_array_equal(np.asarray(ref.times),
                                  np.asarray(got.times))
    np.testing.assert_array_equal(np.asarray(ref.samples),
                                  np.asarray(got.samples))


# -- TDF-heavy chain ----------------------------------------------------------


class ChainTop(Module):
    """sine+noise -> add -> tanh amp -> FIR -> ADC -> IIR -> sink."""

    def __init__(self):
        super().__init__("chain")
        fs = 1e6
        names = ["s_tone", "s_noise", "s_sum", "s_amp", "s_fir",
                 "s_adc", "s_iir"]
        for n in names:
            setattr(self, n, TdfSignal(n))
        self.tone = SineSource("tone", 13e3, amplitude=0.6,
                               parent=self, timestep=us(1))
        self.noise = GaussianNoiseSource("noise", rms=5e-3, seed=3,
                                         parent=self)
        self.add = Add2("add", parent=self)
        self.amp = SaturatingAmp("amp", gain=1.5, limit=1.0,
                                 parent=self)
        self.fir = FirFilter("fir", fir_lowpass(31, 60e3, fs),
                             parent=self)
        self.adc = IdealAdc("adc", bits=8, parent=self)
        self.iir = IirFilter(
            "iir", butterworth_lowpass_sections(3, 80e3, fs),
            parent=self)
        self.sink = TdfSink("sink", parent=self)
        self.tone.out(self.s_tone)
        self.noise.out(self.s_noise)
        self.add.a(self.s_tone)
        self.add.b(self.s_noise)
        self.add.out(self.s_sum)
        self.amp.inp(self.s_sum)
        self.amp.out(self.s_amp)
        self.fir.inp(self.s_amp)
        self.fir.out(self.s_fir)
        self.adc.inp(self.s_fir)
        self.adc.out(self.s_adc)
        self.iir.inp(self.s_adc)
        self.iir.out(self.s_iir)
        self.sink.inp(self.s_iir)


class TestAdcChain:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_sim(ChainTop, us(4000), block=False)

    @pytest.mark.parametrize("batch,compact", BLOCK_CONFIGS)
    def test_bit_identical(self, reference, batch, compact):
        top = run_sim(ChainTop, us(4000), block=True, batch=batch,
                      compact=compact)
        assert_streams_equal(reference.sink, top.sink)

    def test_checkpoint_payloads_match(self):
        def payload(block):
            top = ChainTop()
            sim = Simulator(top, tdf_block=block)
            sim.run(us(2000))
            return sim.capture_checkpoint()
        assert _normalize(payload(False)) == _normalize(payload(True))

    def test_cross_mode_resume(self):
        reference = run_sim(ChainTop, us(4000), block=False)
        # Run half in scalar mode, checkpoint, resume in block mode.
        head_top = ChainTop()
        head_sim = Simulator(head_top, tdf_block=False)
        head_sim.run(us(2000), checkpoint_every=us(2000))
        checkpoint = head_sim.checkpoint_manager.latest()
        tail_top = ChainTop()
        tail_sim = Simulator(tail_top, tdf_block=True)
        tail_sim.restore_checkpoint(checkpoint.payload)
        tail_sim.run(us(2000))
        head = np.asarray(head_top.sink.samples)
        tail = np.asarray(tail_top.sink.samples)
        full = np.asarray(reference.sink.samples)
        # The sink's record is part of the checkpoint: the resumed
        # run's complete record must be bit-identical to the
        # uninterrupted run, not just the post-restore suffix.
        np.testing.assert_array_equal(head, full[:len(head)])
        np.testing.assert_array_equal(tail, full)


def _normalize(value):
    """Checkpoint payloads with numpy members -> comparable builtins."""
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


# -- bench_e4: pipelined ADC testbench ---------------------------------------


class PipelinedTop(Module):
    """Coherent tone through the noisy pipelined ADC (both outputs)."""

    def __init__(self):
        super().__init__("e4")
        self.s_in = TdfSignal("s_in")
        self.s_cal = TdfSignal("s_cal")
        self.s_raw = TdfSignal("s_raw")
        adc = PipelinedAdc(
            n_stages=7, backend_bits=3,
            gain_errors=[0.01, -0.008, 0.012, 0.0, -0.01, 0.006, 0.0],
            comparator_offsets=[0.02, -0.01, 0.0, 0.015, 0.0, 0.0, 0.01],
            noise_rms=1e-3, seed=11,
        )
        self.src = SineSource("src", 17e3, amplitude=0.9,
                              parent=self, timestep=us(1))
        self.adc = PipelinedAdcModule("adc", adc, parent=self)
        self.sink_cal = TdfSink("sink_cal", parent=self)
        self.sink_raw = TdfSink("sink_raw", parent=self)
        self.src.out(self.s_in)
        self.adc.inp(self.s_in)
        self.adc.out(self.s_cal)
        self.adc.out_raw(self.s_raw)
        self.sink_cal.inp(self.s_cal)
        self.sink_raw.inp(self.s_raw)


@pytest.mark.parametrize("batch,compact", BLOCK_CONFIGS)
def test_pipelined_adc_bit_identical(batch, compact):
    """The batched noise draws must consume the exact scalar RNG stream."""
    ref = run_sim(PipelinedTop, us(3000), block=False)
    got = run_sim(PipelinedTop, us(3000), block=True, batch=batch,
                  compact=compact)
    assert_streams_equal(ref.sink_cal, got.sink_cal)
    assert_streams_equal(ref.sink_raw, got.sink_raw)


def test_pipelined_adc_cross_mode_resume():
    """Block-mode checkpoint (including the RNG stream position)
    resumed by the scalar engine."""
    reference = run_sim(PipelinedTop, us(2000), block=False)
    head_top = PipelinedTop()
    head_sim = Simulator(head_top, tdf_block=True)
    head_sim.run(us(1000), checkpoint_every=us(1000))
    checkpoint = head_sim.checkpoint_manager.latest()
    tail_top = PipelinedTop()
    tail_sim = Simulator(tail_top, tdf_block=False)
    tail_sim.restore_checkpoint(checkpoint.payload)
    tail_sim.run(us(1000))
    for sink in ("sink_cal", "sink_raw"):
        head = np.asarray(getattr(head_top, sink).samples)
        tail = np.asarray(getattr(tail_top, sink).samples)
        full = np.asarray(getattr(reference, sink).samples)
        # The restored sink carries the pre-checkpoint record, so the
        # resumed run reproduces the uninterrupted record in full.
        np.testing.assert_array_equal(head, full[:len(head)])
        np.testing.assert_array_equal(tail, full)


# -- bench_e1: ADSL virtual prototype ----------------------------------------


def test_adsl_system_bit_identical():
    """The full mixed-signal prototype (DE software, converter ports,
    CT line model, decimating RX path) matches in both modes."""
    ref = AdslSystem()
    Simulator(ref, tdf_block=False).run(SimTime(6, "ms"))
    got = AdslSystem()
    Simulator(got, tdf_block=True).run(SimTime(6, "ms"))
    np.testing.assert_array_equal(ref.rx_output(), got.rx_output())
    np.testing.assert_array_equal(np.asarray(ref.hook_sink.samples),
                                  np.asarray(got.hook_sink.samples))
    for reg in (REG_LINE_LEVEL, REG_HOOK_STATUS):
        assert ref.registers.peek(reg) == got.registers.peek(reg)


# -- multirate + mixed block/scalar cluster ----------------------------------


class ScalarGain(TdfModule):
    """Deliberately block-incapable: forces a scalar run inside an
    otherwise compiled schedule."""

    def __init__(self, name, gain, parent=None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.gain = gain

    def processing(self):
        self.out.write(self.gain * self.inp.read())


class MultirateTop(Module):
    """rate-2 source -> FIR (rate 1) -> scalar-only gain -> S&H(2) -> sink."""

    def __init__(self):
        super().__init__("multirate")
        for n in ["s_src", "s_fir", "s_gain", "s_sh"]:
            setattr(self, n, TdfSignal(n))
        self.src = SineSource("src", 9e3, amplitude=0.8, parent=self,
                              timestep=us(2), rate=2)
        self.fir = FirFilter("fir", fir_lowpass(15, 100e3, 1e6),
                             parent=self)
        self.gain = ScalarGain("gain", 0.5, parent=self)
        self.sh = SampleHold("sh", factor=2, parent=self)
        self.sink = TdfSink("sink", parent=self, rate=2)
        self.src.out(self.s_src)
        self.fir.inp(self.s_src)
        self.fir.out(self.s_fir)
        self.gain.inp(self.s_fir)
        self.gain.out(self.s_gain)
        self.sh.inp(self.s_gain)
        self.sh.out(self.s_sh)
        self.sink.inp(self.s_sh)


@pytest.mark.parametrize("batch,compact", BLOCK_CONFIGS)
def test_multirate_mixed_cluster(batch, compact):
    ref = run_sim(MultirateTop, us(3000), block=False)
    got = run_sim(MultirateTop, us(3000), block=True, batch=batch,
                  compact=compact)
    assert_streams_equal(ref.sink, got.sink)


# -- feedback through a delay port -------------------------------------------


class FeedbackTop(Module):
    """Accumulator: y[n] = x[n] + y[n-1] via a 1-sample feedback delay.

    The self-loop keeps the adder's run non-fusable; the rest of the
    cluster still compiles to block runs.
    """

    def __init__(self):
        super().__init__("feedback")
        self.s_x = TdfSignal("s_x")
        self.s_y = TdfSignal("s_y")
        self.src = SineSource("src", 11e3, amplitude=0.1, parent=self,
                              timestep=us(1))
        self.add = Add2("add", wa=1.0, wb=0.995, parent=self)
        self.sink = TdfSink("sink", parent=self)
        self.src.out(self.s_x)
        self.add.a(self.s_x)
        self.add.b.set_delay(1)
        self.add.b(self.s_y)
        self.add.out(self.s_y)
        self.sink.inp(self.s_y)


@pytest.mark.parametrize("batch,compact", BLOCK_CONFIGS)
def test_feedback_delay_loop(batch, compact):
    ref = run_sim(FeedbackTop, us(3000), block=False)
    got = run_sim(FeedbackTop, us(3000), block=True, batch=batch,
                  compact=compact)
    assert_streams_equal(ref.sink, got.sink)


# -- CT-embedding cluster -----------------------------------------------------


class RcTop(Module):
    def __init__(self):
        super().__init__("rc_top")
        net = Network("rc")
        net.add(Vsource("Vin", "in", "0"))
        net.add(Resistor("R1", "in", "out", 1e3))
        net.add(Capacitor("C1", "out", "0", 1e-9))
        self.s_in = TdfSignal("s_in")
        self.s_out = TdfSignal("s_out")
        self.src = SineSource("src", 40e3, parent=self, timestep=us(1))
        self.rc = ElnTdfModule("rc", net, parent=self)
        self.sink = TdfSink("sink", parent=self)
        self.src.out(self.s_in)
        self.rc.drive_voltage("Vin")(self.s_in)
        self.rc.sample_voltage("out")(self.s_out)
        self.sink.inp(self.s_out)


@pytest.mark.parametrize("batch,compact", BLOCK_CONFIGS)
def test_ct_embedded_cluster(batch, compact):
    ref = run_sim(RcTop, us(2000), block=False)
    got = run_sim(RcTop, us(2000), block=True, batch=batch,
                  compact=compact)
    assert_streams_equal(ref.sink, got.sink)


# -- object-mode (non-float payload) fallback --------------------------------


class TokenSource(TdfModule):
    """Writes alternating int / float payloads (scalar only)."""

    def __init__(self, name, parent=None, timestep=None):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self._timestep = timestep
        self._n = 0

    def set_attributes(self):
        if self._timestep is not None:
            self.set_timestep(self._timestep)

    def processing(self):
        value = self._n if self._n % 2 else float(self._n)
        self.out.write(value)
        self._n += 1


class ObjectModeTop(Module):
    def __init__(self):
        super().__init__("objmode")
        self.s = TdfSignal("s")
        self.src = TokenSource("src", parent=self, timestep=us(1))
        self.sink = TdfSink("sink", parent=self)
        self.src.out(self.s)
        self.sink.inp(self.s)


def test_object_mode_payloads_preserved():
    """A demoted (object-mode) stream must reach the sink with its
    original payload types in both engines."""
    ref = run_sim(ObjectModeTop, us(200), block=False)
    got = run_sim(ObjectModeTop, us(200), block=True)
    assert ref.sink.samples == got.sink.samples
    assert [type(v) for v in ref.sink.samples] \
        == [type(v) for v in got.sink.samples]
    assert any(type(v) is int for v in got.sink.samples)
