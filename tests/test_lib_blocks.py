"""Tests for library sources, amplifiers, mixers, comparators, filters."""

import numpy as np
import pytest

from repro.analysis import estimate_frequency, rms
from repro.core import Module, SimTime, Simulator
from repro.lib import (
    Add2,
    Biquad,
    Comparator,
    DeadbandBlock,
    FirFilter,
    FunctionSource,
    GaussianNoiseSource,
    IirFilter,
    LinearAmp,
    MapBlock,
    Mixer,
    PrbsSource,
    PulseSource,
    QuadratureOscillator,
    SampleHold,
    SaturatingAmp,
    SineSource,
    TdfSink,
    Vga,
    butterworth_lowpass_sections,
    cascade_response,
    filter_samples,
    fir_bandpass,
    fir_frequency_response,
    fir_highpass,
    fir_lowpass,
)
from repro.tdf import TdfSignal


def us(x):
    return SimTime(x, "us")


def run_chain(*modules, duration_us=1000, wiring=None):
    """Wire modules in a simple chain under a fresh top and simulate."""

    class Top(Module):
        def __init__(self):
            super().__init__("top")
            for m in modules:
                m.parent = self
                self._add_child(m)
            wiring(self)

    top = Top()
    Simulator(top).run(us(duration_us))
    return top


class TestSources:
    def test_sine_source_frequency(self):
        src = SineSource("src", frequency=10e3, timestep=us(1))
        sink = TdfSink("sink")

        def wire(top):
            sig = TdfSignal("s")
            src.out(sig)
            sink.inp(sig)

        run_chain(src, sink, duration_us=2000, wiring=wire)
        t, x = sink.as_arrays()
        assert estimate_frequency(t, x) == pytest.approx(10e3, rel=1e-3)
        assert rms(x) == pytest.approx(1 / np.sqrt(2), rel=0.01)

    def test_pulse_source_duty(self):
        src = PulseSource("src", period=100e-6, duty=0.25,
                          timestep=us(1))
        sink = TdfSink("sink")

        def wire(top):
            sig = TdfSignal("s")
            src.out(sig)
            sink.inp(sig)

        run_chain(src, sink, duration_us=999, wiring=wire)
        x = np.asarray(sink.samples)
        assert np.mean(x > 0.5) == pytest.approx(0.25, abs=0.02)

    def test_noise_source_rms_and_reproducibility(self):
        out = []
        for _ in range(2):
            src = GaussianNoiseSource("src", rms=0.5, seed=9,
                                      timestep=us(1))
            sink = TdfSink("sink")

            def wire(top, src=src, sink=sink):
                sig = TdfSignal("s")
                src.out(sig)
                sink.inp(sig)

            run_chain(src, sink, duration_us=5000, wiring=wire)
            out.append(np.asarray(sink.samples))
        np.testing.assert_array_equal(out[0], out[1])
        assert rms(out[0]) == pytest.approx(0.5, rel=0.05)

    def test_prbs_is_binary_and_balanced(self):
        src = PrbsSource("src", amplitude=2.0, timestep=us(1))
        sink = TdfSink("sink")

        def wire(top):
            sig = TdfSignal("s")
            src.out(sig)
            sink.inp(sig)

        run_chain(src, sink, duration_us=4000, wiring=wire)
        x = np.asarray(sink.samples)
        assert set(np.unique(x)) == {-2.0, 2.0}
        assert abs(np.mean(x)) < 0.2

    def test_function_source(self):
        src = FunctionSource("src", lambda t: t * 1e3, timestep=us(1))
        sink = TdfSink("sink")

        def wire(top):
            sig = TdfSignal("s")
            src.out(sig)
            sink.inp(sig)

        run_chain(src, sink, duration_us=10, wiring=wire)
        np.testing.assert_allclose(
            sink.samples, np.arange(len(sink.samples)) * 1e-3, atol=1e-12
        )


class TestAmplifiers:
    def test_linear_amp(self):
        src = SineSource("src", frequency=1e3, timestep=us(10))
        amp = LinearAmp("amp", gain=-3.0, offset=0.5)
        sink = TdfSink("sink")

        def wire(top):
            a, b = TdfSignal("a"), TdfSignal("b")
            src.out(a)
            amp.inp(a)
            amp.out(b)
            sink.inp(b)

        run_chain(src, amp, sink, duration_us=2000, wiring=wire)
        x = np.asarray(sink.samples)
        assert np.max(x) == pytest.approx(3.5, abs=0.01)
        assert np.min(x) == pytest.approx(-2.5, abs=0.01)

    def test_saturating_amp_hard_clip(self):
        src = SineSource("src", frequency=1e3, amplitude=2.0,
                         timestep=us(10))
        amp = SaturatingAmp("amp", gain=1.0, limit=1.0, mode="hard")
        sink = TdfSink("sink")

        def wire(top):
            a, b = TdfSignal("a"), TdfSignal("b")
            src.out(a)
            amp.inp(a)
            amp.out(b)
            sink.inp(b)

        run_chain(src, amp, sink, duration_us=3000, wiring=wire)
        x = np.asarray(sink.samples)
        assert np.max(x) == pytest.approx(1.0)
        assert np.min(x) == pytest.approx(-1.0)

    def test_tanh_mode_produces_odd_harmonics(self):
        from repro.analysis import ToneAnalysis, coherent_tone_frequency

        fs, n = 1e6, 8192
        f = coherent_tone_frequency(fs, n, 10e3)
        t = np.arange(n) / fs
        x = 0.9 * np.sin(2 * np.pi * f * t)
        y = 1.0 * np.tanh(2.0 * x / 1.0)
        analysis = ToneAnalysis(y, fs, tone_frequency=f)
        assert analysis.thd_db > -40  # heavy compression distorts

    def test_invalid_modes(self):
        with pytest.raises(ValueError):
            SaturatingAmp("a", gain=1.0, limit=1.0, mode="soft")
        with pytest.raises(ValueError):
            SaturatingAmp("a", gain=1.0, limit=0.0)

    def test_vga(self):
        src = SineSource("src", frequency=1e3, timestep=us(10))
        gain_src = FunctionSource("gain", lambda t: 20.0)  # +20 dB
        vga = Vga("vga")
        sink = TdfSink("sink")

        def wire(top):
            a, g, b = TdfSignal("a"), TdfSignal("g"), TdfSignal("b")
            src.out(a)
            gain_src.out(g)
            vga.inp(a)
            vga.gain_db(g)
            vga.out(b)
            sink.inp(b)

        run_chain(src, gain_src, vga, sink, duration_us=2000, wiring=wire)
        assert np.max(np.abs(sink.samples)) == pytest.approx(10.0,
                                                             rel=0.01)


class TestMixing:
    def test_mixer_downconversion(self):
        """RF at 110 kHz mixed with 100 kHz LO gives 10 kHz + 210 kHz."""
        rf = SineSource("rf", frequency=110e3, timestep=us(1))
        osc = QuadratureOscillator("osc", frequency=100e3)
        mixer = Mixer("mix", gain=2.0)
        sink = TdfSink("sink")

        def wire(top):
            a, lo_q, b = TdfSignal("a"), TdfSignal("q"), TdfSignal("b")
            lo_i = TdfSignal("i")
            rf.out(a)
            osc.i_out(lo_i)
            osc.q_out(lo_q)
            mixer.rf(a)
            mixer.lo(lo_q)
            mixer.out(b)
            sink.inp(b)
            # A sink for the unused I output keeps the graph connected.
            top.i_sink = TdfSink("i_sink", top)
            top.i_sink.inp(lo_i)

        run_chain(rf, osc, mixer, sink, duration_us=3000, wiring=wire)
        t, x = sink.as_arrays()
        from repro.analysis import amplitude_spectrum

        # 2000 samples at 1 MHz: 10/110/210 kHz are all coherent.
        freqs, amps = amplitude_spectrum(x[-2000:], 1e6)
        # Difference product at 10 kHz with amplitude gain*1/2 = 1.
        k10 = np.argmin(np.abs(freqs - 10e3))
        k210 = np.argmin(np.abs(freqs - 210e3))
        assert amps[k10] == pytest.approx(1.0, rel=0.1)
        assert amps[k210] == pytest.approx(1.0, rel=0.1)


class TestComparatorAndSampling:
    def test_comparator_hysteresis(self):
        src = SineSource("src", frequency=1e3, timestep=us(10))
        comp = Comparator("comp", threshold=0.0, hysteresis=0.5)
        sink = TdfSink("sink")

        def wire(top):
            a, b = TdfSignal("a"), TdfSignal("b")
            src.out(a)
            comp.inp(a)
            comp.out(b)
            sink.inp(b)

        run_chain(src, comp, sink, duration_us=3000, wiring=wire)
        t, x = sink.as_arrays()
        # Square wave at the input frequency.
        transitions = np.sum(np.abs(np.diff(x)) > 0.5)
        assert transitions == pytest.approx(6, abs=1)

    def test_comparator_noise_rejection_via_hysteresis(self):
        def noisy_ramp(t):
            rng = np.random.default_rng(int(t * 1e7) % 100000)
            return 2.0 * t * 1e3 - 1.0 + rng.normal(0, 0.05)

        def count_transitions(hysteresis):
            src = FunctionSource("src", noisy_ramp, timestep=us(1))
            comp = Comparator("comp", hysteresis=hysteresis)
            sink = TdfSink("sink")

            def wire(top):
                a, b = TdfSignal("a"), TdfSignal("b")
                src.out(a)
                comp.inp(a)
                comp.out(b)
                sink.inp(b)

            run_chain(src, comp, sink, duration_us=1000, wiring=wire)
            return int(np.sum(np.abs(np.diff(sink.samples)) > 0.5))

        assert count_transitions(0.5) < count_transitions(0.0)

    def test_sample_hold_decimation(self):
        src = FunctionSource("src", lambda t: t * 1e6, timestep=us(1))
        sh = SampleHold("sh", factor=4)
        sink = TdfSink("sink")

        def wire(top):
            a, b = TdfSignal("a"), TdfSignal("b")
            src.out(a)
            sh.inp(a)
            sh.out(b)
            sink.inp(b)

        run_chain(src, sh, sink, duration_us=16, wiring=wire)
        x = np.asarray(sink.samples)
        # Held over groups of 4.
        assert np.all(x[0:4] == x[0])
        assert np.all(x[4:8] == x[4])

    def test_sample_hold_validation(self):
        with pytest.raises(ValueError):
            SampleHold("sh", factor=0)


class TestMiscBlocks:
    def test_deadband(self):
        src = FunctionSource("src", lambda t: np.sin(2 * np.pi * 1e3 * t),
                             timestep=us(10))
        db = DeadbandBlock("db", width=1.0)
        sink = TdfSink("sink")

        def wire(top):
            a, b = TdfSignal("a"), TdfSignal("b")
            src.out(a)
            db.inp(a)
            db.out(b)
            sink.inp(b)

        run_chain(src, db, sink, duration_us=2000, wiring=wire)
        x = np.asarray(sink.samples)
        assert np.max(x) == pytest.approx(0.5, abs=0.01)
        assert np.mean(np.asarray(x) == 0.0) > 0.2

    def test_deadband_validation(self):
        with pytest.raises(ValueError):
            DeadbandBlock("db", width=-1.0)

    def test_map_and_add(self):
        s1 = FunctionSource("s1", lambda t: 2.0, timestep=us(1))
        s2 = FunctionSource("s2", lambda t: 3.0)
        sq = MapBlock("sq", lambda v: v * v)
        add = Add2("add", wa=1.0, wb=-1.0)
        sink = TdfSink("sink")

        def wire(top):
            a, b, c, d = (TdfSignal(n) for n in "abcd")
            s1.out(a)
            sq.inp(a)
            sq.out(b)
            s2.out(c)
            add.a(b)
            add.b(c)
            add.out(d)
            sink.inp(d)

        run_chain(s1, s2, sq, add, sink, duration_us=5, wiring=wire)
        assert sink.samples[0] == pytest.approx(1.0)  # 4 - 3


class TestFirDesign:
    def test_lowpass_response(self):
        fs = 1e6
        taps = fir_lowpass(101, 50e3, fs)
        freqs = np.array([1e3, 50e3, 200e3])
        h = np.abs(fir_frequency_response(taps, freqs, fs))
        assert h[0] == pytest.approx(1.0, abs=0.01)
        assert h[1] == pytest.approx(0.5, abs=0.05)  # -6 dB at cutoff
        assert h[2] < 0.01

    def test_highpass_response(self):
        fs = 1e6
        taps = fir_highpass(101, 100e3, fs)
        freqs = np.array([1e3, 400e3])
        h = np.abs(fir_frequency_response(taps, freqs, fs))
        assert h[0] < 0.01
        assert h[1] == pytest.approx(1.0, abs=0.02)

    def test_bandpass_response(self):
        fs = 1e6
        taps = fir_bandpass(201, 50e3, 150e3, fs)
        h = np.abs(fir_frequency_response(
            taps, np.array([1e3, 100e3, 400e3]), fs))
        assert h[0] < 0.02
        assert h[1] == pytest.approx(1.0, abs=0.05)
        assert h[2] < 0.02

    def test_design_validation(self):
        with pytest.raises(ValueError):
            fir_lowpass(101, 600e3, 1e6)
        with pytest.raises(ValueError):
            fir_lowpass(2, 10e3, 1e6)
        with pytest.raises(ValueError):
            fir_highpass(100, 10e3, 1e6)  # even tap count
        with pytest.raises(ValueError):
            fir_bandpass(101, 200e3, 100e3, 1e6)

    def test_fir_module_matches_convolution(self):
        fs = 1e6
        taps = fir_lowpass(21, 100e3, fs)
        rng = np.random.default_rng(1)
        data = rng.normal(size=64)
        from repro.lib import SampleListSource

        src = SampleListSource("src", data, timestep=us(1))
        filt = FirFilter("fir", taps)
        sink = TdfSink("sink")

        def wire(top):
            a, b = TdfSignal("a"), TdfSignal("b")
            src.out(a)
            filt.inp(a)
            filt.out(b)
            sink.inp(b)

        run_chain(src, filt, sink, duration_us=63, wiring=wire)
        expected = np.convolve(data, taps)[:64]
        np.testing.assert_allclose(sink.samples, expected, atol=1e-12)


class TestButterworth:
    def test_corner_at_minus_3db(self):
        fs = 1e6
        for order in (1, 2, 3, 4, 5):
            sections = butterworth_lowpass_sections(order, 50e3, fs)
            h = np.abs(cascade_response(sections, np.array([50e3]), fs))
            assert h[0] == pytest.approx(1 / np.sqrt(2), rel=1e-6), order

    def test_rolloff_slope(self):
        fs = 1e6
        order = 4
        sections = butterworth_lowpass_sections(order, 10e3, fs)
        h = np.abs(cascade_response(sections,
                                    np.array([40e3, 80e3]), fs))
        slope_db_per_octave = 20 * np.log10(h[1] / h[0])
        assert slope_db_per_octave == pytest.approx(-6.02 * order, abs=1.5)

    def test_dc_gain_unity(self):
        sections = butterworth_lowpass_sections(3, 10e3, 1e6)
        h = np.abs(cascade_response(sections, np.array([1.0]), 1e6))
        assert h[0] == pytest.approx(1.0, abs=1e-6)

    def test_filter_samples_step(self):
        fs = 1e6
        sections = butterworth_lowpass_sections(2, 10e3, fs)
        out = filter_samples(sections, np.ones(2000))
        assert out[-1] == pytest.approx(1.0, abs=1e-3)
        assert out[0] < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            butterworth_lowpass_sections(0, 1e3, 1e6)
        with pytest.raises(ValueError):
            butterworth_lowpass_sections(2, 6e5, 1e6)

    def test_iir_module_matches_offline(self):
        fs = 1e6
        sections = butterworth_lowpass_sections(3, 50e3, fs)
        rng = np.random.default_rng(2)
        data = rng.normal(size=64)
        from repro.lib import SampleListSource

        src = SampleListSource("src", data, timestep=us(1))
        filt = IirFilter("iir", butterworth_lowpass_sections(3, 50e3, fs))
        sink = TdfSink("sink")

        def wire(top):
            a, b = TdfSignal("a"), TdfSignal("b")
            src.out(a)
            filt.inp(a)
            filt.out(b)
            sink.inp(b)

        run_chain(src, filt, sink, duration_us=63, wiring=wire)
        expected = filter_samples(sections, data)
        np.testing.assert_allclose(sink.samples, expected, atol=1e-12)
