"""Tests for nonlinear networks: device stamps, DC, transient, AC
linearization, classic circuits (rectifier, clipper, inverter)."""

import numpy as np
import pytest

from repro.core import ElaborationError
from repro.ct import (
    ac_sweep,
    dc_operating_point,
    linearize,
    variable_step_transient,
)
from repro.eln import Capacitor, Isource, Resistor, Vsource
from repro.nonlin import (
    Diode,
    NMos,
    NonlinearCapacitor,
    NonlinearConductor,
    NonlinearNetwork,
)


def diode_resistor(v_supply=5.0, R=1e3):
    net = NonlinearNetwork()
    net.add(Vsource("V1", "in", "0", v_supply))
    net.add(Resistor("R1", "in", "d", R))
    net.add_device(Diode("D1", "d", "0"))
    return net


class TestDiodeCircuits:
    def test_dc_forward_drop(self):
        system, index = diode_resistor().assemble_nonlinear()
        x = dc_operating_point(system)
        vd = index.voltage(x, "d")
        assert 0.5 < vd < 0.8
        # KCL: diode current equals resistor current.
        i_r = (5.0 - vd) / 1e3
        i_d = 1e-14 * (np.exp(vd / 0.02585) - 1)
        assert i_d == pytest.approx(i_r, rel=1e-6)

    def test_reverse_bias_blocks(self):
        system, index = diode_resistor(v_supply=-5.0).assemble_nonlinear()
        x = dc_operating_point(system)
        assert index.voltage(x, "d") == pytest.approx(-5.0, abs=1e-6)

    def test_half_wave_rectifier_transient(self):
        net = NonlinearNetwork()
        f = 1e3
        net.add(Vsource("V1", "in", "0",
                        lambda t: 5.0 * np.sin(2 * np.pi * f * t)))
        net.add(Resistor("Rload", "out", "0", 10e3))
        net.add(Capacitor("Cload", "out", "0", 1e-6))
        net.add_device(Diode("D1", "in", "out"))
        system, index = net.assemble_nonlinear()
        result = variable_step_transient(
            system, 5e-3, x0=np.zeros(system.n),
            reltol=1e-4, abstol=1e-7, h0=1e-6,
        )
        v_out = result.states[:, index.node_index["out"]]
        # Peak-rectified: close to 5 V minus a diode drop; ripple small.
        assert np.max(v_out) > 4.0
        second_half = v_out[result.times > 2.5e-3]
        assert np.min(second_half) > 3.0  # held up by the capacitor

    def test_diode_clipper_ac_small_signal(self):
        # Linearized diode at a DC bias behaves as a resistor r_d = nVt/I.
        net = NonlinearNetwork()
        net.add(Isource("I1", "d", "0", 1e-3))  # 1 mA bias
        net.add(Resistor("Rbig", "d", "0", 1e9))  # keeps DC solvable
        net.add_device(Diode("D1", "d", "0"))
        system, index = net.assemble_nonlinear()
        x_op = dc_operating_point(system)
        C, G = linearize(system, x_op)
        # Small-signal resistance at the diode node.
        b = index.injection_vector("d")
        phasor = ac_sweep(C, G, b, np.array([1.0]))[0]
        r_d = abs(phasor[index.node_index["d"]])
        expected = 0.02585 / 1e-3
        assert r_d == pytest.approx(expected, rel=0.01)

    def test_junction_capacitance_slows_switching(self):
        def switch_time(junction_cap):
            net = NonlinearNetwork()
            net.add(Vsource("V1", "in", "0",
                            lambda t: -5.0 if t < 1e-6 else 5.0))
            net.add(Resistor("R1", "in", "d", 1e4))
            net.add_device(Diode("D1", "d", "0",
                                 junction_cap=junction_cap))
            system, index = net.assemble_nonlinear()
            result = variable_step_transient(
                system, 10e-6, reltol=1e-5, abstol=1e-8, h0=1e-9,
            )
            v = result.states[:, index.node_index["d"]]
            above = result.times[v > 0.4]
            return above[0] if len(above) else np.inf

        fast = switch_time(1e-12)
        slow = switch_time(1e-9)
        assert slow > fast * 2

    def test_validation(self):
        with pytest.raises(ElaborationError):
            Diode("D", "a", "0", i_sat=0.0)
        net = NonlinearNetwork()
        net.add_device(Diode("D1", "a", "0"))
        with pytest.raises(ElaborationError):
            net.add_device(Diode("D1", "b", "0"))
        with pytest.raises(ElaborationError):
            net.assemble_nonlinear()  # no linear anchor


class TestMosCircuits:
    def test_saturation_current(self):
        net = NonlinearNetwork()
        net.add(Vsource("Vdd", "vdd", "0", 5.0))
        net.add(Vsource("Vg", "g", "0", 1.7))
        net.add(Resistor("Rd", "vdd", "d", 1e3))
        net.add_device(NMos("M1", "d", "g", "0", k_prime=2e-3, vth=0.7))
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system)
        # Ids = 0.5 * k * (vgs - vth)^2 = 0.5 * 2e-3 * 1 = 1 mA.
        vd = index.voltage(x, "d")
        assert vd == pytest.approx(5.0 - 1e3 * 1e-3, rel=1e-3)

    def test_cutoff(self):
        net = NonlinearNetwork()
        net.add(Vsource("Vdd", "vdd", "0", 5.0))
        net.add(Vsource("Vg", "g", "0", 0.3))  # below threshold
        net.add(Resistor("Rd", "vdd", "d", 1e3))
        net.add_device(NMos("M1", "d", "g", "0"))
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system)
        assert index.voltage(x, "d") == pytest.approx(5.0, abs=1e-9)

    def test_triode_region(self):
        net = NonlinearNetwork()
        net.add(Vsource("Vdd", "vdd", "0", 5.0))
        net.add(Vsource("Vg", "g", "0", 5.0))  # strongly on
        net.add(Resistor("Rd", "vdd", "d", 10e3))
        net.add_device(NMos("M1", "d", "g", "0", k_prime=5e-3, vth=0.7))
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system)
        vd = index.voltage(x, "d")
        assert vd < 0.5  # deep triode: near ground
        # Verify against the triode equation.
        vov = 5.0 - 0.7
        ids = 5e-3 * (vov * vd - 0.5 * vd * vd)
        assert ids == pytest.approx((5.0 - vd) / 10e3, rel=1e-6)

    def test_inverter_transfer_curve(self):
        """Resistive-load NMOS inverter: monotonically falling VTC."""
        outputs = []
        for vin in (0.0, 0.7, 1.2, 2.0, 3.0, 5.0):
            net = NonlinearNetwork()
            net.add(Vsource("Vdd", "vdd", "0", 5.0))
            net.add(Vsource("Vin", "g", "0", vin))
            net.add(Resistor("Rd", "vdd", "out", 5e3))
            net.add_device(NMos("M1", "out", "g", "0", k_prime=1e-3,
                                vth=0.7))
            system, index = net.assemble_nonlinear()
            x = dc_operating_point(system)
            outputs.append(index.voltage(x, "out"))
        assert outputs[0] == pytest.approx(5.0, abs=1e-9)
        assert all(a >= b - 1e-9 for a, b in zip(outputs, outputs[1:]))
        assert outputs[-1] < 1.0

    def test_reverse_conduction_symmetry(self):
        # Drain below source: device conducts backwards.
        net = NonlinearNetwork()
        net.add(Vsource("Vs", "s", "0", 5.0))
        net.add(Vsource("Vg", "g", "0", 5.7))
        net.add(Resistor("Rd", "d", "0", 1e3))
        net.add_device(NMos("M1", "d", "g", "s", k_prime=2e-3, vth=0.7))
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system)
        # Current flows source->drain, pulling d up from ground.
        assert index.voltage(x, "d") > 1.0

    def test_mos_validation(self):
        with pytest.raises(ElaborationError):
            NMos("M", "d", "g", "s", k_prime=0.0)


class TestArbitraryDevices:
    def test_nonlinear_conductor_cubic(self):
        # i = v^3: with 1 A forced in, v = 1.
        net = NonlinearNetwork()
        net.add(Isource("I1", "n", "0", 1.0))
        net.add(Resistor("Rleak", "n", "0", 1e9))
        net.add_device(NonlinearConductor(
            "G1", "n", "0",
            current=lambda v: v ** 3,
            conductance=lambda v: 3 * v ** 2,
        ))
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system, x0=np.full(system.n, 0.5))
        assert index.voltage(x, "n") == pytest.approx(1.0, rel=1e-6)

    def test_finite_difference_conductance(self):
        net = NonlinearNetwork()
        net.add(Isource("I1", "n", "0", 8.0))
        net.add(Resistor("Rleak", "n", "0", 1e9))
        net.add_device(NonlinearConductor(
            "G1", "n", "0", current=lambda v: v ** 3,
        ))
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system, x0=np.full(system.n, 1.0))
        assert index.voltage(x, "n") == pytest.approx(2.0, rel=1e-5)

    def test_nonlinear_capacitor_varactor(self):
        # q(v) = c0*v + c1*v^2/2: small-signal capacitance c0 + c1*v.
        c0, c1 = 1e-9, 5e-10
        net = NonlinearNetwork()
        net.add(Vsource("V1", "n", "0", 2.0))
        net.add_device(NonlinearCapacitor(
            "C1", "n", "0",
            charge=lambda v: c0 * v + 0.5 * c1 * v * v,
            capacitance=lambda v: c0 + c1 * v,
        ))
        system, index = net.assemble_nonlinear()
        x_op = dc_operating_point(system)
        C, G = linearize(system, x_op)
        n_idx = index.node_index["n"]
        assert C[n_idx, n_idx] == pytest.approx(c0 + c1 * 2.0, rel=1e-9)

    def test_rc_with_nonlinear_cap_transient(self):
        net = NonlinearNetwork()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "n", 1e3))
        net.add_device(NonlinearCapacitor(
            "C1", "n", "0", charge=lambda v: 1e-6 * v,
        ))
        system, index = net.assemble_nonlinear()
        result = variable_step_transient(
            system, 5e-3, x0=np.zeros(system.n),
            reltol=1e-6, abstol=1e-9,
        )
        v = result.states[:, index.node_index["n"]]
        expected = 1 - np.exp(-result.times / 1e-3)
        np.testing.assert_allclose(v, expected, atol=1e-3)
