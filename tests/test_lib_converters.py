"""Tests for the data-converter library: quantizers, flash ADC,
pipelined ADC with digital noise cancellation, DACs, sigma-delta."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import coherent_tone_frequency, enob_of_tone
from repro.lib import (
    PipelinedAdc,
    cic_decimate,
    quantize_code,
    quantize_midrise,
    sigma_delta1_bitstream,
    sigma_delta2_bitstream,
)


class TestQuantizers:
    def test_midrise_levels(self):
        # 2-bit midrise over [-1, 1]: levels at -0.75, -0.25, 0.25, 0.75.
        assert quantize_midrise(-0.9, 2) == pytest.approx(-0.75)
        assert quantize_midrise(-0.3, 2) == pytest.approx(-0.25)
        assert quantize_midrise(0.1, 2) == pytest.approx(0.25)
        assert quantize_midrise(0.9, 2) == pytest.approx(0.75)

    def test_midrise_clipping(self):
        assert quantize_midrise(5.0, 2) == pytest.approx(0.75)
        assert quantize_midrise(-5.0, 2) == pytest.approx(-0.75)

    def test_code_range(self):
        assert quantize_code(-2.0, 4) == 0
        assert quantize_code(2.0, 4) == 15
        assert quantize_code(0.0, 4) == 8

    @given(st.floats(-0.999, 0.999), st.integers(2, 14))
    @settings(max_examples=100, deadline=None)
    def test_quantization_error_bounded(self, v, bits):
        step = 2.0 / 2 ** bits
        q = quantize_midrise(v, bits)
        assert abs(q - v) <= step / 2 + 1e-12


class TestPipelinedAdc:
    def make_input(self, n=8192, fs=1e6):
        f = coherent_tone_frequency(fs, n, 17e3)
        t = np.arange(n) / fs
        return fs, 0.95 * np.sin(2 * np.pi * f * t)

    def test_ideal_pipeline_reaches_nominal_enob(self):
        fs, x = self.make_input()
        adc = PipelinedAdc(n_stages=7, backend_bits=3)
        out = adc.convert_array(x)
        enob = enob_of_tone(out, fs)
        assert enob > adc.nominal_bits - 1.2

    def test_gain_error_degrades_uncalibrated(self):
        fs, x = self.make_input()
        adc = PipelinedAdc(n_stages=7, backend_bits=3,
                           gain_errors=[0.02] * 7)
        raw = adc.convert_array(x, calibrated=False)
        cal = adc.convert_array(x, calibrated=True)
        enob_raw = enob_of_tone(raw, fs)
        enob_cal = enob_of_tone(cal, fs)
        # Digital noise cancellation recovers >= 2 ENOB (Bonnerud's
        # qualitative claim, E4).
        assert enob_cal - enob_raw >= 2.0
        assert enob_cal > 8.5

    def test_calibration_exact_without_noise(self):
        # With known gains and no noise the calibrated reconstruction
        # equals the ideal pipeline up to backend quantization.
        fs, x = self.make_input(n=2048)
        rng = np.random.default_rng(5)
        errors = rng.uniform(-0.02, 0.02, 6).tolist()
        adc = PipelinedAdc(n_stages=6, backend_bits=4,
                           gain_errors=errors)
        out = adc.convert_array(x, calibrated=True)
        # Worst-case backend LSB referred to the input shrinks by the
        # actual gain product.
        gains = np.prod([2 * (1 + e) for e in errors])
        lsb_in = (2.0 / 2 ** 4) / gains
        assert np.max(np.abs(out - x)) < 4 * lsb_in

    def test_thermal_noise_limits_enob(self):
        fs, x = self.make_input()
        quiet = PipelinedAdc(n_stages=7, backend_bits=3, seed=1)
        noisy = PipelinedAdc(n_stages=7, backend_bits=3,
                             noise_rms=2e-3, seed=1)
        enob_quiet = enob_of_tone(quiet.convert_array(x), fs)
        enob_noisy = enob_of_tone(noisy.convert_array(x), fs)
        assert enob_noisy < enob_quiet - 0.5

    def test_comparator_offset_tolerated_by_redundancy(self):
        # 1.5-bit redundancy absorbs comparator offsets up to Vref/4.
        fs, x = self.make_input()
        adc = PipelinedAdc(n_stages=7, backend_bits=3,
                           comparator_offsets=[0.1] * 7)
        enob = enob_of_tone(adc.convert_array(x), fs)
        assert enob > 8.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PipelinedAdc(n_stages=4, gain_errors=[0.0] * 3)

    def test_sample_consistency(self):
        adc = PipelinedAdc(n_stages=6, backend_bits=4)
        decisions, backend = adc.convert(0.3)
        value = adc.reconstruct(decisions, backend, calibrated=True)
        assert value == pytest.approx(0.3, abs=2.0 / 2 ** 10)


class TestSigmaDelta:
    def test_first_order_dc_tracking(self):
        # Mean of the bitstream approximates the DC input.
        bits = sigma_delta1_bitstream(np.full(4096, 0.3))
        assert np.mean(bits) == pytest.approx(0.3, abs=0.01)

    def test_second_order_dc_tracking(self):
        bits = sigma_delta2_bitstream(np.full(8192, -0.45))
        assert np.mean(bits) == pytest.approx(-0.45, abs=0.01)

    def test_bitstream_is_binary(self):
        bits = sigma_delta2_bitstream(np.random.default_rng(0)
                                      .uniform(-0.5, 0.5, 1000))
        assert set(np.unique(bits)) <= {-1.0, 1.0}

    def test_noise_shaping_order(self):
        """2nd-order modulator gains more ENOB from oversampling.

        The tone is chosen coherent in the *decimated* analysis record
        (the second half, past the CIC startup transient).
        """
        fs, n, osr = 1e6, 1 << 16, 64
        fs_dec = fs / osr
        f = coherent_tone_frequency(fs_dec, 512, 1.2e3)
        t = np.arange(n) / fs
        x = 0.5 * np.sin(2 * np.pi * f * t)
        out1 = cic_decimate(sigma_delta1_bitstream(x), osr, order=2)
        out2 = cic_decimate(sigma_delta2_bitstream(x), osr, order=3)
        enob1 = enob_of_tone(out1[512:], fs_dec, tone_frequency=f)
        enob2 = enob_of_tone(out2[512:], fs_dec, tone_frequency=f)
        assert enob1 > 7.0    # 1st order at OSR 64
        assert enob2 > 10.5   # 2nd order: much stronger shaping
        assert enob2 > enob1 + 2.0

    def test_cic_dc_gain_unity(self):
        out = cic_decimate(np.ones(1024), 16, order=2)
        np.testing.assert_allclose(out[4:], 1.0, atol=1e-12)

    def test_cic_decimation_length(self):
        out = cic_decimate(np.zeros(1024), 8, order=1)
        assert len(out) == 128


class TestTdfConverterModules:
    def test_pipelined_module_in_cluster(self):
        from repro.core import Module, SimTime, Simulator
        from repro.lib import PipelinedAdcModule, SineSource, TdfSink
        from repro.tdf import TdfSignal

        fs = 1e6
        n = 4096
        f = coherent_tone_frequency(fs, n, 17e3)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.s_raw = TdfSignal("s_raw")
                self.src = SineSource("src", frequency=f, amplitude=0.95,
                                      parent=self,
                                      timestep=SimTime(1, "us"))
                adc = PipelinedAdc(n_stages=7, backend_bits=3,
                                   gain_errors=[0.01] * 7)
                self.adc = PipelinedAdcModule("adc", adc, parent=self)
                self.sink = TdfSink("sink", self)
                self.sink_raw = TdfSink("sink_raw", self)
                self.src.out(self.s_in)
                self.adc.inp(self.s_in)
                self.adc.out(self.s_out)
                self.adc.out_raw(self.s_raw)
                self.sink.inp(self.s_out)
                self.sink_raw.inp(self.s_raw)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(n, "us"))
        cal = np.asarray(top.sink.samples)
        raw = np.asarray(top.sink_raw.samples)
        assert len(cal) >= n
        enob_cal = enob_of_tone(cal[:n], fs)
        enob_raw = enob_of_tone(raw[:n], fs)
        assert enob_cal - enob_raw >= 2.0

    def test_flash_adc_module(self):
        from repro.core import Module, SimTime, Simulator
        from repro.lib import FlashAdc, RampSource, TdfSink
        from repro.tdf import TdfSignal

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.src = RampSource("src", slope=2.0 / 1e-3,
                                      offset=-1.0, parent=self,
                                      timestep=SimTime(1, "us"))
                self.adc = FlashAdc("adc", bits=4, parent=self)
                self.sink = TdfSink("sink", self)
                self.src.out(self.s_in)
                self.adc.inp(self.s_in)
                self.adc.out(self.s_out)
                self.sink.inp(self.s_out)

        top = Top()
        Simulator(top).run(SimTime(999, "us"))
        out = np.asarray(top.sink.samples)
        # Ramp from -1 to +1 exercises all 16 codes monotonically.
        levels = np.unique(out)
        assert len(levels) == 16
        assert np.all(np.diff(out) >= 0)


class TestDacs:
    def test_ideal_dac_levels(self):
        from repro.core import Module, SimTime, Simulator
        from repro.lib import IdealDac, SampleListSource, TdfSink
        from repro.tdf import TdfSignal

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.src = SampleListSource("src", [0, 7, 15], parent=self,
                                            timestep=SimTime(1, "us"))
                self.dac = IdealDac("dac", bits=4, parent=self)
                self.sink = TdfSink("sink", self)
                self.src.out(self.s_in)
                self.dac.inp(self.s_in)
                self.dac.out(self.s_out)
                self.sink.inp(self.s_out)

        top = Top()
        Simulator(top).run(SimTime(2, "us"))
        assert top.sink.samples[0] == pytest.approx(-1.0 + 0.5 * 0.125)
        assert top.sink.samples[1] == pytest.approx(-1.0 + 7.5 * 0.125)
        assert top.sink.samples[2] == pytest.approx(-1.0 + 15.5 * 0.125)

    def test_switched_cap_dac_mismatch_inl(self):
        from repro.lib import SwitchedCapDac

        ideal = SwitchedCapDac("d0", bits=10, mismatch_rms=0.0)
        assert np.max(np.abs(ideal.inl())) < 1e-9
        mismatched = SwitchedCapDac("d1", bits=10, mismatch_rms=0.01,
                                    seed=3)
        inl = np.max(np.abs(mismatched.inl()))
        assert 0.01 < inl < 10.0

    def test_switched_cap_settling_validated(self):
        from repro.lib import SwitchedCapDac

        with pytest.raises(ValueError):
            SwitchedCapDac("d", bits=8, settling=0.0)
        with pytest.raises(ValueError):
            SwitchedCapDac("d", bits=8, settling=1.5)


class TestSeeding:
    """The SeedLike convention: library modules accept int seeds,
    SeedSequences, or injected Generators (campaign workers)."""

    def test_spawn_rngs_deterministic(self):
        from repro.lib import spawn_rngs

        a = spawn_rngs(42, 4)
        b = spawn_rngs(42, 4)
        assert len(a) == 4
        draws_a = [rng.normal() for rng in a]
        draws_b = [rng.normal() for rng in b]
        assert draws_a == draws_b
        # children are mutually independent streams
        assert len(set(draws_a)) == 4

    def test_spawn_index_stability(self):
        from repro.lib import spawn_rngs

        few = spawn_rngs(7, 2)
        many = spawn_rngs(7, 5)
        assert few[0].normal() == many[0].normal()
        assert few[1].normal() == many[1].normal()

    def test_as_generator_passthrough_and_coercion(self):
        from repro.lib import as_generator

        rng = np.random.default_rng(5)
        assert as_generator(rng) is rng
        from_int = as_generator(5)
        from_seq = as_generator(np.random.SeedSequence(5))
        assert from_int.normal() == np.random.default_rng(5).normal()
        assert from_seq.normal() == np.random.default_rng(
            np.random.SeedSequence(5)).normal()

    def test_seed_to_int_roundtrip(self):
        from repro.lib import seed_to_int, spawn_seed_sequences

        children = spawn_seed_sequences(3, 2)
        ints = [seed_to_int(c) for c in children]
        assert all(0 <= i < 2 ** 64 for i in ints)
        assert ints[0] != ints[1]
        assert ints == [seed_to_int(c)
                        for c in spawn_seed_sequences(3, 2)]

    def test_modules_accept_generators(self):
        from repro.lib import (
            FlashAdc,
            GaussianNoiseSource,
            PipelinedAdc,
            SampleHold,
            SwitchedCapDac,
            spawn_rngs,
        )

        rngs = spawn_rngs(11, 5)
        flash = FlashAdc("f", bits=4, offset_rms=0.01, seed=rngs[0])
        flash_int = FlashAdc("f2", bits=4, offset_rms=0.01, seed=11)
        assert flash.thresholds.shape == flash_int.thresholds.shape
        adc = PipelinedAdc(n_stages=4, noise_rms=1e-4, seed=rngs[1])
        assert np.isfinite(adc.sample(0.3))
        dac = SwitchedCapDac("d", bits=6, mismatch_rms=0.01,
                             seed=rngs[2])
        assert dac.weights.shape == (6,)
        GaussianNoiseSource("n", rms=0.1, seed=rngs[3])
        SampleHold("sh", factor=2, jitter_rms=0.1, seed=rngs[4])

    def test_generator_injection_shares_stream(self):
        """Two modules given the same Generator draw from one stream
        (documented sharing semantics), unlike equal int seeds."""
        from repro.lib import FlashAdc, as_generator

        shared = as_generator(9)
        first = FlashAdc("a", bits=4, offset_rms=0.01, seed=shared)
        second = FlashAdc("b", bits=4, offset_rms=0.01, seed=shared)
        assert not np.allclose(first.thresholds, second.thresholds)
        same_a = FlashAdc("c", bits=4, offset_rms=0.01, seed=9)
        same_b = FlashAdc("d", bits=4, offset_rms=0.01, seed=9)
        assert np.allclose(same_a.thresholds, same_b.thresholds)
