"""Extra coverage for TDF library modules: ΣΔ modules in clusters, CIC
module, DAC settling, flash offsets, ADC/DAC round trips."""

import numpy as np
import pytest

from repro.analysis import ToneAnalysis, coherent_tone_frequency
from repro.core import Module, SimTime, Simulator
from repro.lib import (
    CicDecimator,
    FlashAdc,
    IdealAdc,
    IdealDac,
    MapBlock,
    SampleListSource,
    SigmaDelta1,
    SigmaDelta2,
    SineSource,
    SwitchedCapDac,
    TdfSink,
    quantize_code,
)
from repro.tdf import TdfSignal


def us(x):
    return SimTime(x, "us")


def run_chain(modules, wires, duration_us):
    class Top(Module):
        def __init__(self):
            super().__init__("top")
            for m in modules:
                m.parent = self
                self._add_child(m)
            signals = {}
            for src_port, dst_port, name in wires:
                sig = signals.get(name)
                if sig is None:
                    sig = TdfSignal(name)
                    signals[name] = sig
                    src_port(sig)
                dst_port(sig)

    top = Top()
    Simulator(top).run(us(duration_us))
    return top


class TestSigmaDeltaModules:
    def test_sd2_module_in_cluster_matches_array_model(self):
        from repro.lib import sigma_delta2_bitstream

        n = 2000
        rng = np.random.default_rng(0)
        data = rng.uniform(-0.6, 0.6, n)
        src = SampleListSource("src", data, timestep=us(1))
        sd = SigmaDelta2("sd")
        sink = TdfSink("sink")
        run_chain([src, sd, sink],
                  [(src.out, sd.inp, "a"), (sd.out, sink.inp, "b")],
                  n - 1)
        expected = sigma_delta2_bitstream(data)
        np.testing.assert_array_equal(sink.samples, expected[:n])

    def test_sd1_module_dc_tracking(self):
        src = SampleListSource("src", [0.25], timestep=us(1))
        sd = SigmaDelta1("sd")
        sink = TdfSink("sink")
        run_chain([src, sd, sink],
                  [(src.out, sd.inp, "a"), (sd.out, sink.inp, "b")],
                  4000)
        assert np.mean(sink.samples) == pytest.approx(0.25, abs=0.01)

    def test_full_adc_chain_enob(self):
        """Σ∆2 + CIC in one cluster: ENOB of the decimated output."""
        fs, osr = 1e6, 32
        fs_dec = fs / osr
        f = coherent_tone_frequency(fs_dec, 256, 1.3e3)
        src = SineSource("src", frequency=f, amplitude=0.5,
                         timestep=us(1))
        sd = SigmaDelta2("sd")
        cic = CicDecimator("cic", factor=osr, order=3)
        sink = TdfSink("sink")
        top = run_chain(
            [src, sd, cic, sink],
            [(src.out, sd.inp, "a"), (sd.out, cic.inp, "b"),
             (cic.out, sink.inp, "c")],
            int(512 * osr),
        )
        out = np.asarray(sink.samples)
        tail = out[len(out) - 256:]
        enob = ToneAnalysis(tail, fs_dec, tone_frequency=f).enob
        assert enob > 9.0

    def test_cic_validation(self):
        with pytest.raises(ValueError):
            CicDecimator("c", factor=1)
        with pytest.raises(ValueError):
            CicDecimator("c", factor=8, order=0)


class TestDacModules:
    def test_switched_cap_settling_dynamics(self):
        """settling < 1 leaves inter-sample memory (a one-pole step)."""
        codes = [0, 255, 255, 255, 255]
        src = SampleListSource("src", codes, timestep=us(1))
        dac = SwitchedCapDac("dac", bits=8, settling=0.5)
        sink = TdfSink("sink")
        run_chain([src, dac, sink],
                  [(src.out, dac.inp, "a"), (dac.out, sink.inp, "b")],
                  4)
        out = np.asarray(sink.samples)
        full = dac.level(255)
        # Approaches the final level geometrically: 50% closer each step.
        gaps = np.abs(out - full)
        assert gaps[2] == pytest.approx(gaps[1] * 0.5, rel=1e-9)
        assert gaps[3] == pytest.approx(gaps[2] * 0.5, rel=1e-9)

    def test_adc_dac_roundtrip(self):
        """Quantize then reconstruct: error bounded by half an LSB."""
        fs = 1e6
        bits = 8
        f = coherent_tone_frequency(fs, 1024, 10e3)
        src = SineSource("src", frequency=f, amplitude=0.9,
                         timestep=us(1))
        adc = IdealAdc("adc", bits=bits)
        code = MapBlock("code", lambda v: quantize_code(v, bits))

        class Probe(Module):
            pass

        dac = IdealDac("dac", bits=bits)
        sink_in = TdfSink("sink_in")
        sink_out = TdfSink("sink_out")
        run_chain(
            [src, code, dac, sink_in, sink_out],
            [(src.out, code.inp, "a"), (src.out, sink_in.inp, "a"),
             (code.out, dac.inp, "b"), (dac.out, sink_out.inp, "c")],
            1023,
        )
        original = np.asarray(sink_in.samples)
        reconstructed = np.asarray(sink_out.samples)
        lsb = 2.0 / 2 ** bits
        assert np.max(np.abs(original - reconstructed)) <= lsb / 2 + 1e-12


class TestFlashOffsets:
    def test_offsets_degrade_linearity(self):
        fs = 1e6
        f = coherent_tone_frequency(fs, 4096, 10e3)

        def sndr(offset_rms):
            src = SineSource("src", frequency=f, amplitude=0.9,
                             timestep=us(1))
            adc = FlashAdc("adc", bits=6, offset_rms=offset_rms, seed=7)
            sink = TdfSink("sink")
            run_chain([src, adc, sink],
                      [(src.out, adc.inp, "a"),
                       (adc.out, sink.inp, "b")], 4095)
            return ToneAnalysis(np.asarray(sink.samples), fs,
                                tone_frequency=f).sndr_db

        clean = sndr(0.0)
        dirty = sndr(0.02)  # ~1.3 LSB RMS offsets
        assert clean > 37.0          # ideal 6-bit: ~37.9 dB
        assert dirty < clean - 3.0   # offsets visibly degrade linearity
