"""Additional coverage for core APIs: kernel introspection, port
varieties, event cancellation, hierarchy queries, time callbacks."""

import pytest

from repro.core import (
    BindingError,
    ElaborationError,
    Event,
    InOutPort,
    InPort,
    Module,
    OutPort,
    Signal,
    SimTime,
    Simulator,
)


def ns(x):
    return SimTime(x, "ns")


class TestKernelIntrospection:
    def test_pending_activity_and_next_ticks(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.thread(self.proc)

            def proc(self):
                yield ns(100)
                yield ns(100)

        sim = Simulator(M())
        sim.run(ns(50))
        assert sim.kernel.pending_activity()
        assert sim.kernel.next_activity_ticks() == ns(100).ticks
        sim.run(ns(500))
        assert not sim.kernel.pending_activity()
        assert sim.kernel.next_activity_ticks() is None

    def test_time_callbacks_invoked(self):
        ticks_seen = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.thread(self.proc)

            def proc(self):
                yield ns(10)
                yield ns(10)

        sim = Simulator(M())
        sim.elaborate()
        sim.kernel.add_time_callback(ticks_seen.append)
        sim.run(ns(50))
        assert ns(10).ticks in ticks_seen
        assert ns(20).ticks in ticks_seen

    def test_activation_count_advances(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.thread(self.proc)

            def proc(self):
                for _ in range(5):
                    yield ns(1)

        sim = Simulator(M())
        sim.run(ns(10))
        assert sim.kernel.activation_count >= 5


class TestPorts:
    def test_inout_port_read_write(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.sig = Signal("s", initial=1)
                self.io = InOutPort("io")
                self.io.bind(self.sig)
                self.seen = []
                self.thread(self.proc)

            def proc(self):
                self.seen.append(self.io.read())
                self.io.write(9)
                yield ns(1)
                self.seen.append(self.io.read())

        m = M()
        Simulator(m).run(ns(5))
        assert m.seen == [1, 9]

    def test_port_to_port_binding_chain(self):
        sig = Signal("s", initial=42)
        inner = InPort("inner")
        outer = InPort("outer")
        inner.bind(outer)
        outer.bind(sig)
        assert inner.resolve() is sig
        assert inner.read() == 42

    def test_binding_cycle_detected(self):
        a, b = InPort("a"), InPort("b")
        a.bind(b)
        b.bind(a)
        with pytest.raises(BindingError):
            a.resolve()

    def test_double_bind_rejected(self):
        p = OutPort("p")
        p.bind(Signal("s1"))
        with pytest.raises(BindingError):
            p.bind(Signal("s2"))

    def test_bad_bind_target(self):
        with pytest.raises(BindingError):
            InPort("p").bind(42)

    def test_unbound_read_raises(self):
        with pytest.raises(BindingError):
            InPort("p").read()

    def test_bound_property(self):
        p = InPort("p")
        assert not p.bound
        p.bind(Signal("s"))
        assert p.bound


class TestEvents:
    def test_cancel_timed_notification(self):
        fired = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.ev = Event("e")
                self.method(lambda: fired.append(1),
                            sensitivity=[self.ev], dont_initialize=True)
                self.thread(self.proc)

            def proc(self):
                self.ev.notify(ns(100))
                yield ns(10)
                self.ev.cancel()
                yield ns(200)

        Simulator(M()).run(ns(400))
        assert fired == []

    def test_cancel_without_kernel_is_safe(self):
        ev = Event("lonely")
        ev.cancel()  # must not raise

    def test_notify_without_kernel_raises(self):
        from repro.core.kernel import Kernel

        old = Kernel._current
        Kernel._current = None
        try:
            with pytest.raises(RuntimeError):
                Event("e").notify()
        finally:
            Kernel._current = old


class TestHierarchy:
    def test_find_missing_raises_keyerror(self):
        top = Module("top")
        Module("a", parent=top)
        with pytest.raises(KeyError):
            top.find("a.nope")

    def test_ports_listing(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.a = InPort("a")
                self.b = OutPort("b")
                self.not_a_port = 42

        m = M()
        assert len(m.ports()) == 2

    def test_check_bindings_raises_for_unbound(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.a = InPort("a")

        with pytest.raises(BindingError):
            M().check_bindings()

    def test_duplicate_top_level_names_allowed(self):
        # Separate hierarchies may reuse names.
        a = Module("same")
        b = Module("same")
        assert a.full_name() == b.full_name()


class TestSimulatorEdgeCases:
    def test_elaborate_idempotent(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.thread(self.proc)

            def proc(self):
                yield ns(1)

        sim = Simulator(M())
        sim.elaborate()
        sim.elaborate()  # no-op
        sim.run(ns(5))

    def test_run_with_no_processes(self):
        sim = Simulator(Module("empty"))
        end = sim.run(ns(100))
        # No activity: the kernel stops immediately (time unchanged).
        assert end.ticks in (0, ns(100).ticks)

    def test_elaboration_hook_order(self):
        calls = []

        class M(Module):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)

            def end_of_elaboration(self):
                calls.append(("eoe", self.name))

            def start_of_simulation(self):
                calls.append(("sos", self.name))

        top = M("top")
        M("child", parent=top)
        Simulator(top).elaborate()
        assert calls == [("eoe", "top"), ("eoe", "child"),
                         ("sos", "top"), ("sos", "child")]
