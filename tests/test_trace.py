"""Tests for waveform tracing and the VCD writer."""

import io

import numpy as np
import pytest

from repro.core import (
    BitSignal,
    Clock,
    Module,
    Signal,
    SimTime,
    Simulator,
    Trace,
    VcdWriter,
)
from repro.core.trace import TraceChannel


def ns(x):
    return SimTime(x, "ns")


class TestTraceChannel:
    def test_record_and_arrays(self):
        chan = TraceChannel("x")
        chan.record(0, 1.0)
        chan.record(1000, 2.0)
        t, v = chan.as_arrays()
        np.testing.assert_allclose(t, [0.0, 1e-12])
        np.testing.assert_allclose(v, [1.0, 2.0])

    def test_same_time_overwrites(self):
        chan = TraceChannel("x")
        chan.record(5, 1.0)
        chan.record(5, 3.0)
        assert len(chan) == 1
        assert chan.values == [3.0]

    def test_value_at_semantics(self):
        chan = TraceChannel("x")
        chan.record(0, 10)
        chan.record(100, 20)
        assert chan.value_at(SimTime.from_ticks(50)) == 10
        assert chan.value_at(SimTime.from_ticks(100)) == 20
        assert chan.value_at(SimTime.from_ticks(500)) == 20

    def test_value_before_first_sample_raises(self):
        chan = TraceChannel("x")
        chan.record(100, 1)
        with pytest.raises(ValueError):
            chan.value_at(SimTime.from_ticks(50))


class TestTraceIntegration:
    def build(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = Signal("data", initial=0)
                self.bit = BitSignal("flag")
                self.thread(self.stim)

            def stim(self):
                for k in range(1, 4):
                    self.sig.write(k)
                    self.bit.write(k % 2 == 1)
                    yield ns(10)

        return Top()

    def test_watch_records_changes(self):
        top = self.build()
        trace = Trace()
        trace.watch(top.sig, "data")
        sim = Simulator(top, trace=trace)
        sim.run(ns(50))
        chan = trace["data"]
        # The stimulus writes 1 at t=0, overwriting the initial
        # snapshot at the same tick (last write at a time wins).
        assert chan.values[0] == 1
        assert chan.values[-1] == 3
        assert len(chan) == 3
        assert "data" in trace

    def test_explicit_sampling(self):
        trace = Trace()
        trace.sample("analog", 0, 0.0)
        trace.sample("analog", 1000, 0.5)
        assert len(trace["analog"]) == 2

    def test_channel_auto_creation(self):
        trace = Trace()
        chan = trace.channel("new")
        assert chan is trace.channel("new")


class TestVcdWriter:
    def test_vcd_output_structure(self):
        top_trace = Trace()
        top_trace.sample("v_real", 0, 0.0)
        top_trace.sample("v_real", 1000, 1.5)
        top_trace.sample("count", 0, 0)
        top_trace.sample("count", 1000, 7)
        top_trace.sample("flag", 0, False)
        top_trace.sample("flag", 500, True)
        stream = io.StringIO()
        VcdWriter(top_trace).write(stream)
        text = stream.getvalue()
        assert "$timescale 1 fs $end" in text
        assert "$var real 64" in text
        assert "$var integer 32" in text
        assert "$var wire 1" in text
        assert "#0" in text and "#500" in text and "#1000" in text
        assert "r1.5 " in text

    def test_vcd_from_simulation(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)

        top = Top()
        trace = Trace()
        trace.watch(top.clk.signal, "clk")
        Simulator(top, trace=trace).run(ns(35))
        stream = io.StringIO()
        VcdWriter(trace).write(stream)
        text = stream.getvalue()
        # Toggles at 0, 5, 10, ... -> one change line per toggle.
        assert text.count("\n#") >= 7

    def test_identifier_uniqueness(self):
        trace = Trace()
        for k in range(200):
            trace.sample(f"sig{k}", 0, float(k))
        stream = io.StringIO()
        VcdWriter(trace).write(stream)
        text = stream.getvalue()
        idents = [line.split()[3] for line in text.splitlines()
                  if line.startswith("$var")]
        assert len(set(idents)) == 200
