"""Tests for the linear signal-flow layer: block semantics, transfer
functions, state-space, feedback loops, AC analysis, validation."""

import numpy as np
import pytest

from repro.core import ElaborationError, SolverError
from repro.ct import corner_frequency, magnitude_db
from repro.lsf import (
    LsfAdd,
    LsfDot,
    LsfGain,
    LsfInteg,
    LsfLtfNd,
    LsfLtfZp,
    LsfNetwork,
    LsfSource,
    LsfStateSpace,
    LsfSub,
    lsf_ac,
    lsf_transient,
)


class TestBasicBlocks:
    def test_source_and_gain(self):
        net = LsfNetwork()
        u = net.signal("u")
        y = net.signal("y")
        net.add(LsfSource("src", u, waveform=lambda t: np.sin(t)))
        net.add(LsfGain("g", u, y, gain=2.5))
        res = lsf_transient(net, 1.0, 1e-3)
        np.testing.assert_allclose(res[y], 2.5 * np.sin(res.times),
                                   atol=1e-12)

    def test_add_with_weights(self):
        net = LsfNetwork()
        a, b, y = net.signal("a"), net.signal("b"), net.signal("y")
        net.add(LsfSource("sa", a, waveform=2.0))
        net.add(LsfSource("sb", b, waveform=3.0))
        net.add(LsfAdd("add", [a, b], y, weights=[1.0, -2.0]))
        res = lsf_transient(net, 0.01, 1e-3)
        np.testing.assert_allclose(res[y], -4.0)

    def test_sub(self):
        net = LsfNetwork()
        a, b, y = net.signal("a"), net.signal("b"), net.signal("y")
        net.add(LsfSource("sa", a, waveform=5.0))
        net.add(LsfSource("sb", b, waveform=2.0))
        net.add(LsfSub("sub", a, b, y))
        res = lsf_transient(net, 0.01, 1e-3)
        np.testing.assert_allclose(res[y], 3.0)

    def test_integrator_ramp(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=2.0))
        net.add(LsfInteg("int", u, y, gain=1.0, initial=1.0))
        res = lsf_transient(net, 1.0, 1e-3)
        np.testing.assert_allclose(res[y], 1.0 + 2.0 * res.times,
                                   atol=1e-9)

    def test_differentiator_of_ramp(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=lambda t: 3.0 * t))
        net.add(LsfDot("dot", u, y))
        # Backward Euler: the trapezoidal rule rings forever on a
        # differentiator whose initial output is inconsistent.
        res = lsf_transient(net, 1.0, 1e-3, method="backward_euler")
        np.testing.assert_allclose(res[y][1:], 3.0, atol=1e-6)


class TestTransferFunctions:
    def test_first_order_lowpass_step(self):
        tau = 1e-3
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfLtfNd("filt", u, y, num=[1.0], den=[1.0, tau]))
        res = lsf_transient(net, 5 * tau, tau / 200)
        expected = 1 - np.exp(-res.times / tau)
        np.testing.assert_allclose(res[y], expected, atol=1e-4)

    def test_second_order_resonant_step(self):
        # H(s) = w0^2 / (s^2 + 2*zeta*w0*s + w0^2)
        w0, zeta = 2 * np.pi * 1e3, 0.3
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfLtfNd("filt", u, y,
                         num=[w0 ** 2],
                         den=[w0 ** 2, 2 * zeta * w0, 1.0]))
        res = lsf_transient(net, 10 / w0 * 2 * np.pi, 1e-7)
        wd = w0 * np.sqrt(1 - zeta ** 2)
        t = res.times
        expected = 1 - np.exp(-zeta * w0 * t) * (
            np.cos(wd * t) + zeta * w0 / wd * np.sin(wd * t)
        )
        np.testing.assert_allclose(res[y], expected, atol=2e-3)

    def test_feedthrough_highpass(self):
        # H(s) = s*tau / (1 + s*tau): feedthrough at equal degrees.
        tau = 1e-3
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfLtfNd("hp", u, y, num=[0.0, tau], den=[1.0, tau]))
        res = lsf_transient(net, 5 * tau, tau / 500)
        expected = np.exp(-res.times / tau)
        # The step at t=0 passes through instantly.
        np.testing.assert_allclose(res[y][1:], expected[1:], atol=2e-3)

    def test_zero_pole_form_matches_nd(self):
        p = -2 * np.pi * 100.0
        net = LsfNetwork()
        u, y1, y2 = net.signal("u"), net.signal("y1"), net.signal("y2")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfLtfZp("zp", u, y1, zeros=[], poles=[p], gain=-p))
        net.add(LsfLtfNd("nd", u, y2, num=[-p], den=[-p, 1.0]))
        res = lsf_transient(net, 0.01, 1e-6)
        np.testing.assert_allclose(res[y1], res[y2], atol=1e-10)

    def test_conjugate_pole_pair(self):
        w0 = 2 * np.pi * 50.0
        poles = [complex(-w0 * 0.1, w0), complex(-w0 * 0.1, -w0)]
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0, ac=1.0))
        gain = abs(poles[0]) ** 2
        net.add(LsfLtfZp("zp", u, y, zeros=[], poles=poles, gain=gain))
        freqs = np.logspace(0, 4, 201)
        h = lsf_ac(net, freqs, y)
        assert abs(h[0]) == pytest.approx(1.0, rel=1e-3)  # unity DC gain
        # Resonant peak near w0.
        f_peak = freqs[np.argmax(np.abs(h))]
        assert f_peak == pytest.approx(abs(poles[0]) / (2 * np.pi), rel=0.05)

    def test_improper_rejected(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        with pytest.raises(ElaborationError):
            LsfLtfNd("bad", u, y, num=[0.0, 0.0, 1.0], den=[1.0, 1.0])

    def test_static_denominator_rejected(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        with pytest.raises(ElaborationError):
            LsfLtfNd("bad", u, y, num=[1.0], den=[2.0])

    def test_unpaired_complex_pole_rejected(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        with pytest.raises(ElaborationError):
            LsfLtfZp("bad", u, y, zeros=[], poles=[complex(-1, 5)])


class TestFeedbackLoops:
    def test_first_order_closed_loop(self):
        # Closed loop: y = integ(k * (u - y)) -> y/u = 1/(1 + s/k).
        k = 1000.0
        net = LsfNetwork()
        u, e, y = net.signal("u"), net.signal("e"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfSub("err", u, y, e))
        net.add(LsfInteg("int", e, y, gain=k))
        res = lsf_transient(net, 5 / k, 1 / (k * 200))
        expected = 1 - np.exp(-k * res.times)
        np.testing.assert_allclose(res[y], expected, atol=1e-4)

    def test_pi_controller_tracks_step(self):
        # Plant 1/(1+s*tau) with PI controller: zero steady-state error.
        tau, kp, ki = 1e-2, 2.0, 50.0
        net = LsfNetwork()
        r = net.signal("r")
        e = net.signal("e")
        up = net.signal("up")
        ui = net.signal("ui")
        u = net.signal("u")
        y = net.signal("y")
        net.add(LsfSource("ref", r, waveform=1.0))
        net.add(LsfSub("err", r, y, e))
        net.add(LsfGain("kp", e, up, gain=kp))
        net.add(LsfInteg("ki", e, ui, gain=ki))
        net.add(LsfAdd("sum", [up, ui], u))
        net.add(LsfLtfNd("plant", u, y, num=[1.0], den=[1.0, tau]))
        res = lsf_transient(net, 1.0, 1e-4)
        assert res[y][-1] == pytest.approx(1.0, abs=1e-3)
        assert abs(res[e][-1]) < 1e-3


class TestStateSpace:
    def test_siso_first_order(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfStateSpace("ss", [u], [y],
                              A=[[-10.0]], B=[[10.0]], C=[[1.0]]))
        res = lsf_transient(net, 0.5, 1e-4)
        expected = 1 - np.exp(-10 * res.times)
        np.testing.assert_allclose(res[y], expected, atol=1e-5)

    def test_initial_condition(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=0.0))
        net.add(LsfStateSpace("ss", [u], [y],
                              A=[[-1.0]], B=[[1.0]], C=[[1.0]],
                              initial=[2.0]))
        res = lsf_transient(net, 3.0, 1e-3)
        np.testing.assert_allclose(res[y], 2 * np.exp(-res.times),
                                   atol=1e-4)

    def test_mimo_shapes_validated(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        with pytest.raises(ElaborationError):
            LsfStateSpace("bad", [u], [y], A=[[0, 1]], B=[[1]], C=[[1]])
        with pytest.raises(ElaborationError):
            LsfStateSpace("bad2", [u], [y], A=[[0]], B=[[1], [2]], C=[[1]])

    def test_two_output_block(self):
        net = LsfNetwork()
        u = net.signal("u")
        y1, y2 = net.signal("y1"), net.signal("y2")
        net.add(LsfSource("src", u, waveform=1.0))
        # Double integrator chain: y1 = position, y2 = velocity.
        net.add(LsfStateSpace(
            "ss", [u], [y1, y2],
            A=[[0.0, 1.0], [0.0, 0.0]], B=[[0.0], [1.0]],
            C=[[1.0, 0.0], [0.0, 1.0]],
        ))
        res = lsf_transient(net, 1.0, 1e-4)
        np.testing.assert_allclose(res[y2], res.times, atol=1e-8)
        np.testing.assert_allclose(res[y1], res.times ** 2 / 2, atol=1e-6)


class TestAcAnalysis:
    def test_lowpass_bode(self):
        tau = 1e-4
        f0 = 1 / (2 * np.pi * tau)
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=0.0, ac=1.0))
        net.add(LsfLtfNd("filt", u, y, num=[1.0], den=[1.0, tau]))
        freqs = np.logspace(1, 6, 201)
        h = lsf_ac(net, freqs, y)
        assert corner_frequency(freqs, h) == pytest.approx(f0, rel=1e-2)
        # -20 dB/decade rolloff well above the corner.
        mags = magnitude_db(h)
        k1 = np.searchsorted(freqs, f0 * 30)
        k2 = np.searchsorted(freqs, f0 * 300)
        slope = (mags[k2] - mags[k1]) / np.log10(freqs[k2] / freqs[k1])
        assert slope == pytest.approx(-20.0, abs=0.5)

    def test_ac_without_excitation_raises(self):
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, waveform=1.0))
        net.add(LsfGain("g", u, y, gain=1.0))
        with pytest.raises(SolverError):
            lsf_ac(net, np.array([10.0]), y)


class TestValidation:
    def test_undriven_signal_rejected(self):
        net = LsfNetwork()
        u = net.signal("u")
        y = net.signal("y")
        net.add(LsfSource("src", u))
        with pytest.raises(ElaborationError):
            net.assemble()

    def test_double_driven_signal_rejected(self):
        net = LsfNetwork()
        u = net.signal("u")
        net.add(LsfSource("a", u))
        with pytest.raises(ElaborationError):
            net.add(LsfSource("b", u))

    def test_duplicate_names_rejected(self):
        net = LsfNetwork()
        net.signal("u")
        with pytest.raises(ElaborationError):
            net.signal("u")
        a = net.signal("a")
        b = net.signal("b")
        net.add(LsfSource("s", a))
        with pytest.raises(ElaborationError):
            net.add(LsfSource("s", b))

    def test_weight_count_mismatch(self):
        net = LsfNetwork()
        a, b, y = net.signal("a"), net.signal("b"), net.signal("y")
        with pytest.raises(ElaborationError):
            LsfAdd("add", [a, b], y, weights=[1.0])

    def test_algebraic_loop_detected_at_init(self):
        # y = 2*y has only the trivial solution under G singularity...
        # Actually y = gain*y with gain=1 makes G singular.
        net = LsfNetwork()
        y = net.signal("y")
        z = net.signal("z")
        net.add(LsfGain("g1", y, z, gain=1.0))
        net.add(LsfGain("g2", z, y, gain=1.0))
        dae, index = net.assemble()
        with pytest.raises(SolverError):
            index.initial_state()
