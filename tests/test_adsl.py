"""Integration tests for the Figure 1 ADSL SLIC/codec virtual prototype.

These exercise every layer at once: DE software + bus, RTL register
file, TDF dataflow, ΣΔ converters, LSF filters, the ELN subscriber line,
and the synchronization between them.
"""

import numpy as np
import pytest

from repro.adsl import (
    REG_HOOK_STATUS,
    REG_LINE_LEVEL,
    REG_TX_ENABLE,
    AdslConfig,
    AdslSystem,
    antialias_transfer,
    end_to_end_analog_transfer,
    line_output_noise,
    line_transfer,
    smoothing_transfer,
)
from repro.core import SimTime, Simulator


@pytest.fixture(scope="module")
def ran_system():
    """One 20 ms run shared by the assertions below (expensive)."""
    system = AdslSystem()
    simulator = Simulator(system)
    simulator.run(SimTime(20, "ms"))
    return system


class TestEndToEnd:
    def test_tone_reaches_dsp_with_good_sndr(self, ran_system):
        assert ran_system.rx_snr_db() > 40.0

    def test_software_enabled_transmission(self, ran_system):
        assert ("tx_enabled", None) in ran_system.software_log
        # Before TX enable the line is quiet; afterwards it carries the
        # tone: the first transmitted samples are zero.
        drive = np.asarray(ran_system.tap_drive.samples)
        assert abs(drive[0]) < 1e-9
        assert np.max(np.abs(drive)) > 2.0

    def test_level_meter_reported_to_software(self, ran_system):
        polls = [entry for entry in ran_system.software_log
                 if entry[0] == "poll"]
        assert len(polls) > 10
        final_level = polls[-1][1][0]
        # RMS in milli-units: tone of ~0.3 RMS at the FIR output.
        assert 100 < final_level < 600

    def test_hook_detector_trips(self, ran_system):
        # Loop current exceeds the off-hook threshold at tone peaks;
        # the DE status register must have seen it.
        polls = [entry[1][1] for entry in ran_system.software_log
                 if entry[0] == "poll"]
        assert any(polls), "hook status never reported high"

    def test_subscriber_voltage_is_high_voltage(self, ran_system):
        sub = np.asarray(ran_system.tap_sub.samples)
        assert np.max(np.abs(sub)) > 2.0  # several volts on the line

    def test_decimation_rate(self, ran_system):
        base = len(ran_system.tap_sub.samples)
        decimated = len(ran_system.rx_output())
        assert decimated == pytest.approx(
            base / ran_system.config.decimation, abs=2
        )


class TestFrequencyDomainViews:
    def test_line_transfer_passband_and_rolloff(self):
        cfg = AdslConfig()
        freqs = np.array([1e2, 1e3, 1e4, 1e6])
        h = np.abs(line_transfer(cfg, freqs))
        dc_expected = cfg.subscriber_r / (
            cfg.subscriber_r + cfg.protection_r + 2 * cfg.line_series_r
        )
        assert h[0] == pytest.approx(dc_expected, rel=1e-3)
        assert h[-1] < 1e-2  # ladder cuts off well below 1 MHz

    def test_smoothing_filter_unity_dc(self):
        cfg = AdslConfig()
        h = np.abs(smoothing_transfer(cfg, np.array([1.0, 1e6])))
        assert h[0] == pytest.approx(1.0, rel=1e-3)
        assert h[1] < 1e-3

    def test_antialias_corner(self):
        from repro.ct import corner_frequency

        cfg = AdslConfig()
        freqs = np.logspace(2, 6, 401)
        h = antialias_transfer(cfg, freqs)
        corner = corner_frequency(freqs, h)
        assert corner == pytest.approx(cfg.antialias_corner, rel=0.1)

    def test_end_to_end_transfer_passes_tone_band(self):
        cfg = AdslConfig()
        h_tone = np.abs(end_to_end_analog_transfer(
            cfg, np.array([cfg.tone_frequency])
        ))[0]
        h_high = np.abs(end_to_end_analog_transfer(
            cfg, np.array([500e3])
        ))[0]
        assert h_tone > 1.0   # driver gain dominates in-band
        assert h_high < 1e-2

    def test_line_noise_psd_reasonable(self):
        cfg = AdslConfig()
        freqs = np.logspace(2, 5, 31)
        psd = line_output_noise(cfg, freqs)
        assert np.all(psd > 0)
        # Thermal noise of a few-hundred-ohm network: nV/sqrt(Hz) scale.
        assert np.all(np.sqrt(psd) < 1e-7)


class TestDuplexEchoCancellation:
    """Far-end reception under near-end TX echo (the hybrid-leak
    scenario of a real line card), with and without the DSP's LMS
    echo canceller."""

    @pytest.fixture(scope="class")
    def duplex_runs(self):
        results = {}
        for ec in (False, True):
            cfg = AdslConfig(far_end_amplitude=2.0,
                             echo_cancellation=ec)
            system = AdslSystem(cfg)
            Simulator(system).run(SimTime(20, "ms"))
            results[ec] = system
        return results

    def test_echo_dominates_without_canceller(self, duplex_runs):
        system = duplex_runs[False]
        # The near-end echo buries the far-end tone.
        assert system.far_end_snr_db() < 0.0
        assert system.rx_snr_db() > 10.0

    def test_canceller_recovers_far_end(self, duplex_runs):
        without = duplex_runs[False].far_end_snr_db()
        with_ec = duplex_runs[True].far_end_snr_db()
        assert with_ec > 30.0
        assert with_ec - without > 30.0  # tens of dB of echo rejection

    def test_canceller_suppresses_echo_tone(self, duplex_runs):
        # After cancellation, the TX tone is far below the far-end tone.
        system = duplex_runs[True]
        assert system.rx_snr_db() < -30.0

    def test_echo_estimate_converges(self, duplex_runs):
        system = duplex_runs[True]
        estimate = np.asarray(system.echo_est_sink.samples)
        assert np.max(np.abs(estimate[-100:])) > 0.01  # actively canceling
        weights = system.echo_canceller.weights
        assert np.max(np.abs(weights)) > 0.01


class TestConfigurability:
    def test_custom_program(self):
        events = []

        def program(system):
            yield from system.cpu.write(REG_TX_ENABLE, 1)
            events.append("enabled")
            yield from system.cpu.idle(10)
            value = yield from system.cpu.read(REG_TX_ENABLE)
            events.append(value)

        system = AdslSystem(software_program=program)
        Simulator(system).run(SimTime(1, "ms"))
        assert events == ["enabled", 1]

    def test_gain_register_controls_rx_amplitude(self):
        def measure(gain_db):
            cfg = AdslConfig(rx_gain_db=gain_db)
            system = AdslSystem(cfg)
            Simulator(system).run(SimTime(8, "ms"))
            tail = system.rx_output()[120:]
            return float(np.sqrt(np.mean(tail ** 2)))

        low = measure(-24.0)
        high = measure(-18.0)
        assert high / low == pytest.approx(10 ** (6 / 20), rel=0.1)
