"""Tests for the campaign engine (`repro.campaign`).

Covers the acceptance criteria of the campaign subsystem: declarative
parameter spaces, bit-identical serial vs. multi-process execution of
a 16-point Monte Carlo ADC campaign, cache hit/miss behavior across
invocations, failure handling (retry once, then ``status="failed"``
without killing the campaign), per-run timeouts, the aggregation API,
and the ``python -m repro.campaign`` CLI.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    Campaign,
    CampaignResults,
    CampaignRunner,
    Corners,
    FixedPoints,
    MonteCarlo,
    RunRecord,
    Sweep,
    cache_key,
    run_campaign,
)
from repro.lib import PipelinedAdc, as_generator

REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------
# model under test: a fast Monte Carlo sample of the pipelined ADC
# (module-level so it pickles into worker processes)
# ---------------------------------------------------------------------------

def adc_mc_run(params):
    """Tiny pipelined-ADC mismatch sample: conversion RMS error with
    and without digital calibration."""
    rng = as_generator(params["seed"])
    n_stages = int(params.get("n_stages", 6))
    gain_errors = rng.normal(0.0, params.get("mismatch_rms", 0.01),
                             n_stages)
    adc = PipelinedAdc(n_stages=n_stages, backend_bits=3,
                       gain_errors=gain_errors.tolist(),
                       noise_rms=1e-5, seed=rng)
    x = 0.9 * np.sin(2 * np.pi * 0.0371 * np.arange(128))
    cal = adc.convert_array(x, calibrated=True)
    raw = adc.convert_array(x, calibrated=False)
    return {
        "rms_err_cal": float(np.sqrt(np.mean((cal - x) ** 2))),
        "rms_err_raw": float(np.sqrt(np.mean((raw - x) ** 2))),
        "max_gain_error": float(np.max(np.abs(gain_errors))),
    }


def crashing_run(params):
    if params["mc_index"] == 1:
        raise RuntimeError("deliberate crash")
    return {"value": params["mc_index"] * 10.0}


def slow_run(params):
    time.sleep(params.get("sleep", 5.0))
    return {"slept": params.get("sleep", 5.0)}


def busy_run(params):
    # ~0.25 s of real CPU+sleep work per run for the speedup check.
    deadline = time.perf_counter() + 0.25
    acc = 0.0
    while time.perf_counter() < deadline:
        acc += float(np.sum(np.random.default_rng(0).normal(size=256)))
        time.sleep(0.005)
    return {"acc": acc}


def adc_campaign(n=16, **kwargs):
    return Campaign(
        name="adc-mc",
        space=MonteCarlo(n, base={"mismatch_rms": 0.01}),
        run=adc_mc_run,
        root_seed=42,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# parameter spaces
# ---------------------------------------------------------------------------

def test_sweep_grid():
    sweep = Sweep({"a": [1, 2, 3], "b": [10, 20]})
    points = sweep.points()
    assert len(points) == len(sweep) == 6
    assert points[0] == {"a": 1, "b": 10}
    assert points[-1] == {"a": 3, "b": 20}
    assert len({tuple(sorted(p.items())) for p in points}) == 6


def test_corners_and_montecarlo():
    corners = Corners({"slow": {"r": 120.0}, "fast": {"r": 20.0}})
    assert {p["corner"] for p in corners.points()} == {"slow", "fast"}
    mc = MonteCarlo(3, base={"sigma": 0.01})
    assert [p["mc_index"] for p in mc.points()] == [0, 1, 2]
    assert all(p["sigma"] == 0.01 for p in mc.points())


def test_space_composition():
    product = Sweep({"g": [1, 2]}) * MonteCarlo(3)
    assert len(product) == 6
    combined = product + FixedPoints([{"g": 99}])
    assert len(combined) == 7
    assert combined.points()[-1] == {"g": 99}


def test_campaign_validation():
    with pytest.raises(ValueError):
        Campaign(name="x", space=MonteCarlo(1))  # neither run nor build
    with pytest.raises(ValueError):
        Campaign(name="x", space=MonteCarlo(1), run=adc_mc_run,
                 build=lambda p: None)  # both
    with pytest.raises(ValueError):
        Campaign(name="x", space=MonteCarlo(1),
                 build=lambda p: None)  # build without duration


# ---------------------------------------------------------------------------
# determinism: serial vs. multi-process
# ---------------------------------------------------------------------------

def test_serial_vs_parallel_bit_identical(tmp_path):
    """16-point Monte Carlo ADC campaign: a serial run and a 4-worker
    run produce identical JSONL records (volatile fields excluded)."""
    serial = CampaignRunner(adc_campaign(16), workers=1,
                            use_cache=False,
                            out_dir=tmp_path / "serial").run()
    parallel = CampaignRunner(adc_campaign(16), workers=4,
                              use_cache=False,
                              out_dir=tmp_path / "parallel").run()
    assert len(serial) == len(parallel) == 16
    assert all(r.status == "ok" for r in serial)
    assert serial.fingerprint() == parallel.fingerprint()

    read_s = CampaignResults.read_jsonl(tmp_path / "serial"
                                        / "records.jsonl")
    read_p = CampaignResults.read_jsonl(tmp_path / "parallel"
                                        / "records.jsonl")
    assert [r.deterministic_dict() for r in read_s] == \
           [r.deterministic_dict() for r in read_p]
    # per-run seeds are spawned from the root and all distinct
    seeds = [r.seed for r in serial]
    assert len(set(seeds)) == 16


def test_deterministic_across_invocations():
    first = run_campaign(adc_campaign(8), use_cache=False)
    second = run_campaign(adc_campaign(8), use_cache=False)
    assert first.fingerprint() == second.fingerprint()


def test_seed_key_disabled():
    campaign = Campaign(name="fixed", space=MonteCarlo(3),
                        run=crashing_run, seed_key=None, root_seed=0)
    results = run_campaign(campaign, use_cache=False, retries=0)
    assert all("seed" not in r.params for r in results)
    assert all(r.seed is None for r in results)


# ---------------------------------------------------------------------------
# caching
# ---------------------------------------------------------------------------

def test_cache_hit_miss_across_invocations(tmp_path):
    """Second invocation of an identical campaign: 100% cache hits,
    zero simulator executions."""
    first = CampaignRunner(adc_campaign(6), workers=1,
                           cache_dir=tmp_path / "cache")
    results_1 = first.run()
    assert first.stats == {"total": 6, "cached": 0, "executed": 6,
                           "retried": 0, "static": 0, "failed": 0}

    second = CampaignRunner(adc_campaign(6), workers=1,
                            cache_dir=tmp_path / "cache")
    results_2 = second.run()
    assert second.stats["executed"] == 0
    assert second.stats["cached"] == 6
    assert all(r.cached for r in results_2)
    assert results_1.fingerprint() == results_2.fingerprint()


def test_cache_only_executes_changed_points(tmp_path):
    base = Campaign(name="grow", space=MonteCarlo(4),
                    run=adc_mc_run, root_seed=7)
    runner = CampaignRunner(base, cache_dir=tmp_path / "cache")
    runner.run()
    # grow the campaign: 4 old points + 2 new ones
    grown = Campaign(name="grow", space=MonteCarlo(6),
                     run=adc_mc_run, root_seed=7)
    runner_2 = CampaignRunner(grown, cache_dir=tmp_path / "cache")
    results = runner_2.run()
    assert runner_2.stats["cached"] == 4
    assert runner_2.stats["executed"] == 2
    assert len(results) == 6


def test_cache_keys_on_params_and_code():
    params = {"a": 1, "seed": 5}
    base = cache_key("c", params, "v1")
    assert cache_key("c", params, "v1") == base
    assert cache_key("c", {"a": 2, "seed": 5}, "v1") != base
    assert cache_key("c", params, "v2") != base
    assert cache_key("other", params, "v1") != base


def test_code_version_change_invalidates(tmp_path):
    campaign = adc_campaign(3, code_version="v1")
    runner = CampaignRunner(campaign, cache_dir=tmp_path / "cache")
    runner.run()
    bumped = adc_campaign(3, code_version="v2")
    runner_2 = CampaignRunner(bumped, cache_dir=tmp_path / "cache")
    runner_2.run()
    assert runner_2.stats["executed"] == 3  # all misses


# ---------------------------------------------------------------------------
# failure handling
# ---------------------------------------------------------------------------

def test_failed_run_retried_once_then_recorded(tmp_path):
    campaign = Campaign(name="crashy", space=MonteCarlo(4),
                        run=crashing_run, root_seed=0)
    runner = CampaignRunner(campaign, workers=2,
                            cache_dir=tmp_path / "cache")
    results = runner.run()
    assert len(results) == 4  # the campaign survived the crash
    failed = [r for r in results if r.status == "failed"]
    assert len(failed) == 1
    assert failed[0].params["mc_index"] == 1
    assert failed[0].attempts == 2           # retried once
    assert "deliberate crash" in failed[0].error
    assert failed[0].metrics == {}
    assert [r.params["mc_index"] for r in results.ok()] == [0, 2, 3]
    assert runner.stats["retried"] == 1
    assert runner.stats["failed"] == 1
    # failures are not cached: a rerun re-executes only the bad point
    runner_2 = CampaignRunner(campaign, workers=1,
                              cache_dir=tmp_path / "cache")
    runner_2.run()
    assert runner_2.stats["cached"] == 3
    assert runner_2.stats["executed"] == 2   # 1 point × (1 + 1 retry)


@pytest.mark.skipif(not hasattr(__import__("signal"), "SIGALRM"),
                    reason="needs SIGALRM")
def test_per_run_timeout():
    campaign = Campaign(
        name="slow",
        space=FixedPoints([{"sleep": 5.0}, {"sleep": 0.0}]),
        run=slow_run, root_seed=0)
    runner = CampaignRunner(campaign, workers=1, timeout=0.3,
                            retries=0, use_cache=False)
    start = time.perf_counter()
    results = runner.run()
    assert time.perf_counter() - start < 4.0  # did not sleep 5 s
    assert results[0].status == "failed"
    assert "RunTimeout" in results[0].error
    assert results[1].status == "ok"


# ---------------------------------------------------------------------------
# aggregation API
# ---------------------------------------------------------------------------

def test_results_aggregation():
    records = [
        RunRecord(index=0, params={"g": 1}, seed=1,
                  metrics={"snr": 40.0}),
        RunRecord(index=1, params={"g": 2}, seed=2,
                  metrics={"snr": 50.0}),
        RunRecord(index=2, params={"g": 2}, seed=3,
                  metrics={"snr": 60.0}),
        RunRecord(index=3, params={"g": 3}, seed=4, status="failed",
                  error="x"),
    ]
    results = CampaignResults(records)
    assert results.mean("snr") == 50.0
    assert results.min("snr") == 40.0
    assert results.max("snr") == 60.0
    assert results.percentile("snr", 50) == 50.0
    assert results.where(g=2).mean("snr") == 55.0
    assert results.yield_fraction(lambda m: m["snr"] >= 50.0) \
        == pytest.approx(2 / 3)
    assert len(results.failed()) == 1

    headers, rows = results.to_table()
    assert headers == ["run", "status", "g", "snr"]
    assert len(rows) == 4
    assert rows[3][1] == "failed"
    table = results.format_table()
    assert "snr" in table and "failed" in table

    summary = results.summary()
    assert summary["runs"] == 4
    assert summary["ok"] == 3
    assert summary["failed"] == 1


def test_jsonl_roundtrip(tmp_path):
    results = run_campaign(adc_campaign(4), use_cache=False)
    path = tmp_path / "records.jsonl"
    results.write_jsonl(path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 4
    assert all(isinstance(json.loads(line), dict) for line in lines)
    loaded = CampaignResults.read_jsonl(path)
    assert loaded.fingerprint() == results.fingerprint()
    assert [r.to_dict() for r in loaded] == \
           [r.to_dict() for r in results]


# ---------------------------------------------------------------------------
# parallel speedup (acceptance: >= 2x with 4 workers on >= 4 cores)
# ---------------------------------------------------------------------------

@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="needs a 4-core machine")
def test_parallel_speedup_4_workers():
    campaign = Campaign(name="busy", space=MonteCarlo(8),
                        run=busy_run, root_seed=0)
    start = time.perf_counter()
    run_campaign(campaign, workers=1, use_cache=False)
    serial_time = time.perf_counter() - start
    start = time.perf_counter()
    run_campaign(campaign, workers=4, use_cache=False)
    parallel_time = time.perf_counter() - start
    assert serial_time / parallel_time >= 2.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

CLI_SPEC = """
from repro.campaign import Campaign, Sweep

def run(params):
    return {"double": params["x"] * 2.0}

CAMPAIGN = Campaign(name="cli-smoke",
                    space=Sweep({"x": [1.0, 2.0, 3.0, 4.0]}),
                    run=run, root_seed=0)
"""


def _cli(args, tmp_path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.campaign", *args],
        capture_output=True, text=True, env=env, cwd=tmp_path,
        timeout=120)


def test_cli_runs_spec_and_writes_records(tmp_path):
    spec = tmp_path / "spec.py"
    spec.write_text(CLI_SPEC)
    out = tmp_path / "out"
    result = _cli([str(spec), "--workers", "2", "--out", str(out)],
                  tmp_path)
    assert result.returncode == 0, result.stderr
    assert "4 runs" in result.stdout
    assert "cli-smoke" in result.stdout
    records = CampaignResults.read_jsonl(out / "records.jsonl")
    assert sorted(r.metrics["double"] for r in records) \
        == [2.0, 4.0, 6.0, 8.0]
    # second CLI invocation: all four points served from cache
    rerun = _cli([str(spec), "--workers", "2", "--out", str(out)],
                 tmp_path)
    assert rerun.returncode == 0, rerun.stderr
    assert "4 cached, 0 executed" in rerun.stdout


def test_cli_list_and_limit(tmp_path):
    spec = tmp_path / "spec.py"
    spec.write_text(CLI_SPEC)
    listing = _cli([str(spec), "--list"], tmp_path)
    assert listing.returncode == 0, listing.stderr
    assert "cli-smoke: 4 points" in listing.stdout
    limited = _cli([str(spec), "--limit", "2", "--no-cache"],
                   tmp_path)
    assert limited.returncode == 0, limited.stderr
    assert "2 runs" in limited.stdout


# ---------------------------------------------------------------------------
# build= factory style
# ---------------------------------------------------------------------------

def _build_tone_sim(params):
    from repro.core import SimTime, Simulator
    from repro.core.module import Module
    from repro.lib import SineSource, TdfSink

    class Top(Module):
        def __init__(self):
            super().__init__("top")
            from repro.tdf.signal import TdfSignal
            self.src = SineSource(
                "src", frequency=params["freq"], amplitude=1.0,
                parent=self, timestep=SimTime(100, "us"))
            self.sink = TdfSink("sink", parent=self)
            sig = TdfSignal("sig")
            self.src.out(sig)
            self.sink.inp(sig)

        def metrics(self):
            samples = np.asarray(self.sink.samples)
            return {"rms": float(np.sqrt(np.mean(samples ** 2))),
                    "n": int(len(samples))}

    return Simulator(Top())


def test_build_factory_campaign():
    from repro.core import SimTime

    campaign = Campaign(
        name="tone", space=Sweep({"freq": [50.0, 100.0]}),
        build=_build_tone_sim, duration=SimTime(100, "ms"),
        seed_key=None)
    results = run_campaign(campaign, workers=2, use_cache=False)
    assert all(r.status == "ok" for r in results)
    for record in results:
        assert record.metrics["n"] >= 1000
        assert record.metrics["rms"] == pytest.approx(np.sqrt(0.5),
                                                      rel=0.01)


# ---------------------------------------------------------------------------
# concurrent cache writers and torn-line-free JSONL appends
# (regression tests for the service-grade hardening of the cache)
# ---------------------------------------------------------------------------

def _cache_hammer(directory, worker_tag, iterations):
    """Hammer one cache dir: interleaved puts and gets over a small,
    deliberately colliding key set.  Any exception (torn read, partial
    file, JSON error) fails the process."""
    from repro.campaign.cache import ResultCache

    cache = ResultCache(directory)
    keys = [f"deadbeef{i:02d}" for i in range(5)]
    for step in range(iterations):
        key = keys[step % len(keys)]
        cache.put(key, RunRecord(
            index=step, params={"x": step, "seed": step}, seed=step,
            status="ok",
            metrics={"y": float(step), "who": float(worker_tag)}))
        hit = cache.get(keys[(step * 7 + worker_tag) % len(keys)])
        if hit is not None:
            # an entry is visible fully or not at all — never torn
            assert hit.status == "ok"
            assert "y" in hit.metrics


def test_cache_survives_two_process_hammer(tmp_path):
    import multiprocessing

    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(target=_cache_hammer,
                        args=(tmp_path, tag, 300))
        for tag in (1, 2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0
    # no staging litter left behind, and every entry parses
    leftovers = [p for p in tmp_path.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []
    from repro.campaign.cache import ResultCache

    cache = ResultCache(tmp_path)
    for i in range(5):
        record = cache.get(f"deadbeef{i:02d}")
        assert record is not None
        assert record.status == "ok"


def _jsonl_hammer(path, tag, count):
    from repro.campaign.records import JsonlAppender

    appender = JsonlAppender(path)
    for i in range(count):
        appender.append({"tag": tag, "i": i, "pad": "x" * 256})
    appender.close()


def test_jsonl_appends_are_atomic_across_processes(tmp_path):
    import multiprocessing

    path = tmp_path / "records.jsonl"
    context = multiprocessing.get_context("fork")
    writers = [
        context.Process(target=_jsonl_hammer, args=(path, tag, 400))
        for tag in (1, 2)
    ]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(timeout=60)
        assert writer.exitcode == 0
    lines = path.read_text().splitlines()
    assert len(lines) == 800
    seen = {1: set(), 2: set()}
    for line in lines:
        entry = json.loads(line)  # no torn or interleaved lines
        seen[entry["tag"]].add(entry["i"])
    assert seen[1] == set(range(400))
    assert seen[2] == set(range(400))


def test_jsonl_appender_fsync_and_close(tmp_path):
    from repro.campaign.records import JsonlAppender

    path = tmp_path / "records.jsonl"
    appender = JsonlAppender(path, fsync=True)
    appender.append({"a": 1})
    appender.append(RunRecord(index=0, params={"seed": 1}, seed=1,
                              status="ok", metrics={"m": 1.0}))
    appender.close()
    appender.close()  # idempotent
    with pytest.raises(ValueError):
        appender.append({"late": True})
    lines = [json.loads(line)
             for line in path.read_text().splitlines()]
    assert lines[0] == {"a": 1}
    assert lines[1]["metrics"] == {"m": 1.0}


def test_jsonl_appender_truncate_vs_append(tmp_path):
    from repro.campaign.records import JsonlAppender

    path = tmp_path / "records.jsonl"
    first = JsonlAppender(path)
    first.append({"run": 1})
    first.close()
    resumed = JsonlAppender(path)
    resumed.append({"run": 2})
    resumed.close()
    assert len(path.read_text().splitlines()) == 2
    fresh = JsonlAppender(path, truncate=True)
    fresh.append({"run": 3})
    fresh.close()
    assert [json.loads(line) for line
            in path.read_text().splitlines()] == [{"run": 3}]
