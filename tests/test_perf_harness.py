"""Plumbing tests for the perf harness (benchmarks/perf/run_perf.py):
measurement dict shape, equivalence detection, the JSON baseline
round-trip, and the regression gate's pass/fail logic."""

import json
import pathlib
import sys

import pytest

PERF_DIR = pathlib.Path(__file__).resolve().parents[1] \
    / "benchmarks" / "perf"
if str(PERF_DIR) not in sys.path:
    sys.path.insert(0, str(PERF_DIR))

import run_perf  # noqa: E402
from models import MODELS, build_adc_chain  # noqa: E402


TINY_US = 400.0


def test_models_registry_shape():
    assert set(MODELS) == {"adc_chain", "mixed_chain", "eln_ladder"}
    for builder, full_us, quick_us in MODELS.values():
        assert callable(builder)
        assert full_us > quick_us > 0


def test_run_model_returns_streams():
    wall, cpu, times, samples, sim = run_perf.run_model(
        build_adc_chain, TINY_US, block=True)
    assert wall > 0 and cpu >= 0
    assert len(times) == len(samples) == 401
    assert sim.now.to_seconds() == pytest.approx(TINY_US * 1e-6)


def test_measure_reports_equivalent_speedup():
    result = run_perf.measure("adc_chain", build_adc_chain, TINY_US,
                              repeats=1)
    assert result["equivalent"] is True
    assert result["samples"] == 401
    assert result["speedup"] > 1.0
    assert result["scalar_samples_per_sec"] > 0
    assert result["block_samples_per_sec"] > 0


def test_profile_model_attributes_time():
    profile = run_perf.profile_model(build_adc_chain, TINY_US)
    assert profile
    assert all(name.startswith("adc_chain.") for name in profile)
    assert all(seconds >= 0 for seconds in profile.values())


def _report(speedup=10.0, equivalent=True, mode="quick"):
    return {
        "schema": "repro-perf/1",
        "mode": mode,
        "benchmarks": {
            "adc_chain": {"speedup": speedup, "equivalent": equivalent},
        },
    }


def _baseline_file(tmp_path, speedup=10.0, mode="quick"):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(
        {"runs": {mode: _report(speedup=speedup, mode=mode)}}
    ))
    return str(path)


class TestRegressionGate:
    def test_passes_within_threshold(self, tmp_path):
        baseline = _baseline_file(tmp_path, speedup=10.0)
        failures = run_perf.check_regression(
            _report(speedup=9.0), baseline, threshold=0.20)
        assert failures == []

    def test_fails_on_speedup_regression(self, tmp_path):
        baseline = _baseline_file(tmp_path, speedup=10.0)
        failures = run_perf.check_regression(
            _report(speedup=7.0), baseline, threshold=0.20)
        assert any("fell more than" in f for f in failures)

    def test_fails_on_equivalence_failure(self, tmp_path):
        baseline = _baseline_file(tmp_path, speedup=10.0)
        failures = run_perf.check_regression(
            _report(speedup=12.0, equivalent=False), baseline,
            threshold=0.20)
        assert any("diverges" in f for f in failures)

    def test_fails_on_mode_mismatch(self, tmp_path):
        baseline = _baseline_file(tmp_path, mode="full")
        failures = run_perf.check_regression(
            _report(mode="quick"), baseline, threshold=0.20)
        assert any("no 'quick'-mode section" in f for f in failures)

    def test_fails_on_missing_baseline(self, tmp_path):
        failures = run_perf.check_regression(
            _report(), str(tmp_path / "nope.json"), threshold=0.20)
        assert any("not readable" in f for f in failures)


def test_main_end_to_end(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        run_perf, "MODELS",
        {"adc_chain": (build_adc_chain, TINY_US, TINY_US)},
    )
    out = tmp_path / "report.json"
    assert run_perf.main(["--quick", "--output", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["mode"] == "quick"
    assert report["benchmarks"]["adc_chain"]["equivalent"] is True
    # gate the fresh report against itself: must pass
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"runs": {"quick": report}}))
    assert run_perf.main(["--quick",
                          "--check-regression", str(baseline)]) == 0
