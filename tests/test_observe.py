"""Tests for `repro.observe`: tracer, metrics registry, exporters,
simulator/campaign integration, and the satellite guarantees (VCD
writer behavior, `Trace.watch` channel ownership, disabled-path
overhead)."""

import io
import json
import time

import numpy as np
import pytest

from repro.campaign import Campaign, RunRecord, Sweep, run_campaign
from repro.campaign.records import (
    SCHEMA_VERSION,
    CampaignResults,
    VOLATILE_FIELDS,
)
from repro.core import (
    Module,
    Signal,
    SimTime,
    Simulator,
    Trace,
    VcdWriter,
)
from repro.core.errors import SimulationError
from repro.eln import Capacitor, Network, Resistor, Vsource
from repro.lib import SineSource, TdfSink
from repro.observe import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    chrome_trace_events,
    find_non_finite,
    metric_key,
    summarize,
    validate_chrome_trace,
    validate_metrics,
    write_trace_jsonl,
)
from repro.observe.tracer import NULL_SPAN
from repro.sync import ElnTdfModule
from repro.tdf import TdfSignal


def us(x):
    return SimTime(x, "us")


def ms(x):
    return SimTime(x, "ms")


class ToneTop(Module):
    """Minimal all-TDF system: sine source into a recording sink."""

    def __init__(self, timestep=us(100)):
        super().__init__("top")
        self.src = SineSource("src", frequency=1e3, parent=self,
                              timestep=timestep)
        self.sink = TdfSink("sink", parent=self)
        sig = TdfSignal("sig")
        self.src.out(sig)
        self.sink.inp(sig)

    def metrics(self):
        samples = np.asarray(self.sink.samples)
        return {"rms": float(np.sqrt(np.mean(samples ** 2)))}


class RcTop(Module):
    """TDF source driving an ELN RC network (embedded CT solver)."""

    def __init__(self):
        super().__init__("top")
        net = Network()
        net.add(Vsource("Vin", "in", "0"))
        net.add(Resistor("R1", "in", "out", 1e3))
        net.add(Capacitor("C1", "out", "0", 1e-6))
        self.src = SineSource("src", frequency=1e3, parent=self,
                              timestep=us(10))
        self.rc = ElnTdfModule("rc", net, parent=self)
        self.sink = TdfSink("sink", parent=self)
        s_in, s_out = TdfSignal("s_in"), TdfSignal("s_out")
        self.src.out(s_in)
        self.rc.drive_voltage("Vin")(s_in)
        self.rc.sample_voltage("out")(s_out)
        self.sink.inp(s_out)


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        with tracer.span("work", track="kernel", size=3):
            pass
        assert len(tracer) == 1
        spans = tracer.spans_named("work")
        assert len(spans) == 1
        _start, duration, attrs = spans[0]
        assert duration >= 0.0
        assert attrs == {"size": 3}
        assert tracer.open_spans() == []

    def test_nested_spans_and_tracks(self):
        tracer = Tracer()
        with tracer.span("outer", track="a"):
            with tracer.span("inner", track="b"):
                pass
        # Inner closes (and records) first; both tracks are visible.
        assert [e[1] for e in tracer.events] == ["inner", "outer"]
        assert set(tracer.tracks()) == {"a", "b"}

    def test_complete_hot_path_form(self):
        tracer = Tracer()
        start = time.perf_counter()
        tracer.complete("step", start, 0.25, track="solver.rc",
                        attrs={"t": 1.0})
        (_kind, name, track, _ts, duration, attrs), = tracer.events
        assert (name, track, duration) == ("step", "solver.rc", 0.25)
        assert attrs == {"t": 1.0}

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("escalation", track="resilience", tier="bdf")
        (kind, name, _track, _ts, duration, attrs), = tracer.events
        assert (kind, name, duration) == ("instant", "escalation", 0.0)
        assert attrs == {"tier": "bdf"}

    def test_max_events_cap_counts_dropped(self):
        tracer = Tracer(max_events=3)
        for k in range(10):
            tracer.instant(f"e{k}")
        assert len(tracer.events) == 3
        assert tracer.dropped == 7

    def test_open_spans_reported(self):
        tracer = Tracer()
        handle = tracer.span("leaky")
        assert tracer.open_spans() == ["leaky"]
        handle.close()
        assert tracer.open_spans() == []
        handle.close()  # double-close is harmless
        assert len(tracer.events) == 1

    def test_span_records_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (_k, _n, _t, _ts, _d, attrs), = tracer.events
        assert attrs["error"] == "RuntimeError"

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("x")
        assert span is NULL_SPAN
        with span:
            span.set(a=1)
        tracer.instant("y")
        tracer.complete("z", 0.0, 1.0)
        assert len(tracer.events) == 0


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("solver.steps")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0
        assert registry.counter("solver.steps") is counter

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        assert gauge.value == 9.0

    def test_histogram_statistics(self):
        hist = MetricsRegistry().histogram("batch")
        for value in (1, 1, 2, 4, 8):
            hist.observe(value)
        assert hist.count == 5
        assert hist.total == 16.0
        assert hist.mean == pytest.approx(3.2)
        assert hist.minimum == 1.0 and hist.maximum == 8.0
        dump = hist.to_dict()
        assert dump["count"] == 5 and dump["max"] == 8.0
        assert 0.0 <= dump["p50"] <= dump["p95"] <= 8.0

    def test_metric_key_sorts_labels(self):
        assert metric_key("a", {}) == "a"
        assert metric_key("a", {"z": 1, "b": "x"}) == "a[b=x,z=1]"

    def test_registry_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("n", cluster="c0")
        with pytest.raises(TypeError):
            registry.gauge("n", cluster="c0")
        # same name, different labels is a different metric
        registry.gauge("n", cluster="c1")

    def test_scalars_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(2.0)
        flat = registry.scalars()
        assert flat["c"] == 3.0
        assert flat["h.count"] == 1.0 and flat["h.sum"] == 2.0
        assert "h.p95" in flat

    def test_update_scalars_merges(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.update_scalars({"c": 10.0, "new.gauge": 4.0})
        assert registry.counter("c").value == 10.0
        assert registry.gauge("new.gauge").value == 4.0

    def test_find_non_finite(self):
        dump = {"gauges": {"ok": 1.0, "bad": float("nan")},
                "histograms": {"h": {"sum": float("inf")}}}
        bad = find_non_finite(dump)
        assert "gauges.bad" in bad
        assert "histograms.h.sum" in bad
        assert not find_non_finite({"gauges": {"ok": 0.0}})


# ---------------------------------------------------------------------------
# exporters and validators
# ---------------------------------------------------------------------------

class TestExporters:
    def _tracer(self):
        tracer = Tracer()
        with tracer.span("outer", track="kernel"):
            with tracer.span("inner", track="kernel"):
                pass
        tracer.instant("mark", track="resilience")
        return tracer

    def test_chrome_trace_structure(self):
        events = chrome_trace_events(self._tracer())
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["args"]["name"] for m in metadata} == \
            {"kernel", "resilience"}
        assert {s["name"] for s in spans} == {"outer", "inner"}
        assert all(s["dur"] >= 0 for s in spans)
        assert len(instants) == 1
        body = [e for e in events if e["ph"] != "M"]
        assert body == sorted(body, key=lambda e: (e["tid"], e["ts"]))

    def test_unclosed_span_flagged(self):
        tracer = Tracer()
        tracer.span("leaky", track="kernel")  # never closed
        payload = {"traceEvents": chrome_trace_events(tracer)}
        problems = validate_chrome_trace(payload)
        assert any("leaky" in p for p in problems)

    def test_validate_chrome_trace_accepts_valid(self):
        payload = {"traceEvents": chrome_trace_events(self._tracer())}
        assert validate_chrome_trace(payload) == []
        assert validate_chrome_trace([]) != []  # wrong top-level shape

    def test_validate_metrics_flags_nan(self):
        assert validate_metrics({"gauges": {"x": 1.0}}) == []
        problems = validate_metrics({"gauges": {"x": float("nan")}})
        assert problems and "x" in problems[0]

    def test_trace_jsonl_roundtrip(self):
        buffer = io.StringIO()
        write_trace_jsonl(self._tracer(), buffer)
        records = [json.loads(line) for line
                   in buffer.getvalue().splitlines()]
        assert len(records) == 3
        assert {r["kind"] for r in records} == {"span", "instant"}
        assert all({"name", "track", "ts", "dur"} <= r.keys()
                   for r in records)

    def test_summarize_mentions_span_and_metric_names(self):
        registry = MetricsRegistry()
        registry.counter("tdf.periods").inc(5)
        text = summarize(self._tracer(), registry,
                         extra={"solver.steps": 12.0})
        assert "outer" in text
        assert "tdf.periods" in text
        assert "solver.steps" in text


# ---------------------------------------------------------------------------
# the Telemetry hub
# ---------------------------------------------------------------------------

class TestTelemetry:
    def test_coerce_off(self):
        assert Telemetry.coerce(None) is None
        assert Telemetry.coerce(False) is None

    def test_coerce_modes(self):
        on = Telemetry.coerce(True)
        assert on.spans and on.detail == "normal" and not on.fine
        assert Telemetry.coerce("on").spans
        metrics_only = Telemetry.coerce("metrics")
        assert not metrics_only.spans
        fine = Telemetry.coerce("fine")
        assert fine.fine
        hub = Telemetry()
        assert Telemetry.coerce(hub) is hub

    def test_coerce_invalid_raises(self):
        with pytest.raises(ValueError):
            Telemetry.coerce("verbose")
        with pytest.raises(ValueError):
            Telemetry(detail="extreme")

    def test_export_writes_three_valid_files(self, tmp_path):
        hub = Telemetry()
        with hub.tracer.span("s", track="kernel"):
            pass
        hub.metrics.counter("c").inc()
        paths = hub.export(tmp_path / "out", extra_metrics={"x": 1.0})
        for key in ("chrome", "jsonl", "metrics"):
            assert paths[key].exists()
        with open(paths["chrome"]) as handle:
            assert validate_chrome_trace(json.load(handle)) == []
        with open(paths["metrics"]) as handle:
            dump = json.load(handle)
        assert validate_metrics(dump) == []
        assert dump["counters"]["c"] == 1.0
        assert dump["gauges"]["x"] == 1.0

    def test_ambient_install_and_restore(self):
        from repro.observe import current

        assert current() is None
        hub = Telemetry()
        with hub.ambient():
            assert current() is hub
        assert current() is None


# ---------------------------------------------------------------------------
# simulator integration
# ---------------------------------------------------------------------------

class TestSimulatorIntegration:
    def test_observe_disabled_installs_nothing(self):
        simulator = Simulator(ToneTop())
        simulator.run(ms(10))
        assert simulator.telemetry is None
        assert simulator.kernel.telemetry is None
        assert simulator.kernel._h_events_per_delta is None
        for cluster in simulator._tdf_registry.clusters:
            assert cluster.telemetry is None
        for module in simulator.top.walk():
            assert getattr(module, "_telemetry", None) is None

    def test_tdf_run_records_spans_and_metrics(self):
        simulator = Simulator(ToneTop(), observe=True)
        simulator.run(ms(10))
        tracer = simulator.telemetry.tracer
        assert tracer.open_spans() == []
        names = {event[1] for event in tracer.events}
        assert {"elaborate", "simulate.run", "cluster.activate"} <= names
        assert any(track.startswith("tdf.") for track in tracer.tracks())
        flat = simulator.telemetry.metrics.scalars()
        assert flat["tdf.periods[cluster=cluster0]"] > 0
        assert flat["moc.tdf.seconds"] > 0
        assert flat["simulate.run.seconds"] > 0
        payload = {"traceEvents": chrome_trace_events(tracer)}
        assert validate_chrome_trace(payload) == []

    def test_fine_detail_records_delta_spans(self):
        simulator = Simulator(ToneTop(), observe="fine")
        simulator.run(ms(2))
        tracer = simulator.telemetry.tracer
        assert tracer.spans_named("kernel.delta")
        assert "kernel" in tracer.tracks()

    def test_metrics_only_mode_records_no_spans(self):
        simulator = Simulator(ToneTop(), observe="metrics")
        simulator.run(ms(2))
        assert len(simulator.telemetry.tracer.events) == 0
        flat = simulator.telemetry.metrics.scalars()
        assert flat["tdf.periods[cluster=cluster0]"] > 0

    def test_metrics_snapshot_without_telemetry(self):
        simulator = Simulator(RcTop())
        simulator.run(ms(2))
        snap = simulator.metrics_snapshot()
        assert snap["kernel.delta_cycles"] > 0
        assert snap["tdf.activations"] > 0
        assert snap["solver.steps"] > 0
        assert snap["solver.steps[module=top.rc]"] > 0
        # tier keys are zero-defaulted so dashboards can rely on them
        for tier in ("primary", "halved", "bdf"):
            assert f"resilience.tier.{tier}" in snap
        assert not any(np.isnan(v) for v in snap.values())

    def test_eln_solver_telemetry(self):
        simulator = Simulator(RcTop(), observe=True)
        simulator.run(ms(2))
        snap = simulator.metrics_snapshot()
        assert snap["moc.eln.seconds"] > 0
        assert snap["moc.tdf.seconds"] >= snap["moc.eln.seconds"]
        # a plain linear solve never escalates, but the tier keys are
        # still present (zero-defaulted)
        assert snap["resilience.tier.primary"] == 0.0
        assert simulator.telemetry.tracer.open_spans() == []

    def test_export_telemetry_files(self, tmp_path):
        simulator = Simulator(ToneTop(), observe=True)
        simulator.run(ms(5))
        paths = simulator.export_telemetry(tmp_path / "telemetry")
        with open(paths["chrome"]) as handle:
            assert validate_chrome_trace(json.load(handle)) == []
        with open(paths["metrics"]) as handle:
            dump = json.load(handle)
        assert validate_metrics(dump) == []
        # harvested snapshot is merged into the gauges section
        assert dump["gauges"]["kernel.delta_cycles"] > 0

    def test_export_telemetry_requires_observe(self, tmp_path):
        simulator = Simulator(ToneTop())
        simulator.run(ms(1))
        with pytest.raises(SimulationError):
            simulator.export_telemetry(tmp_path)


# ---------------------------------------------------------------------------
# campaign integration and record schema v2
# ---------------------------------------------------------------------------

def _build_tone(params):
    return Simulator(ToneTop(), observe=False)


class TestCampaignTelemetry:
    def test_build_campaign_attaches_snapshot(self):
        campaign = Campaign(
            name="tone", space=Sweep({"freq": [1.0, 2.0]}),
            build=_build_tone, duration=ms(5), seed_key=None)
        results = run_campaign(campaign, workers=1, use_cache=False)
        for record in results:
            assert record.schema == SCHEMA_VERSION
            assert record.metrics_telemetry is not None
            assert record.metrics_telemetry["kernel.delta_cycles"] > 0
        steps = results.telemetry_metric("kernel.delta_cycles")
        assert len(steps) == 2 and (steps > 0).all()

    def test_run_style_campaign_has_no_snapshot(self):
        campaign = Campaign(
            name="fn", space=Sweep({"x": [1.0]}),
            run=lambda params: {"y": params["x"]}, root_seed=1)
        results = run_campaign(campaign, workers=1, use_cache=False)
        assert results[0].metrics_telemetry is None
        assert results.telemetry_metric("anything").size == 0

    def test_v1_record_back_compat(self, tmp_path):
        v1_line = json.dumps({
            "index": 0, "params": {"a": 1}, "seed": 7,
            "status": "ok", "metrics": {"m": 2.0}, "error": None,
            "failure_kind": None, "wall_time": 0.1, "attempts": 1,
            "cached": False,
        })
        path = tmp_path / "records.jsonl"
        path.write_text(v1_line + "\n")
        results = CampaignResults.read_jsonl(path)
        record = results[0]
        assert record.schema == 1
        assert record.metrics_telemetry is None
        assert record.metrics["m"] == 2.0
        # round-trips as v1 content under the current writer
        results.write_jsonl(path)
        again = CampaignResults.read_jsonl(path)[0]
        assert again.schema == 1 and again.metrics_telemetry is None

    def test_fingerprint_ignores_telemetry(self):
        base = dict(index=0, params={"a": 1}, seed=3,
                    metrics={"m": 1.0})
        bare = RunRecord(**base)
        loaded = RunRecord(**base, metrics_telemetry={"solver.steps": 9},
                           schema=1)
        assert "metrics_telemetry" in VOLATILE_FIELDS
        assert CampaignResults([bare]).fingerprint() == \
            CampaignResults([loaded]).fingerprint()


# ---------------------------------------------------------------------------
# Trace.watch channel ownership (regression)
# ---------------------------------------------------------------------------

class TestTraceWatch:
    def test_watch_same_signal_twice_returns_channel(self):
        trace = Trace()
        signal = Signal("data", initial=0)
        first = trace.watch(signal, "data")
        assert trace.watch(signal, "data") is first

    def test_watch_conflicting_signal_raises(self):
        trace = Trace()
        trace.watch(Signal("a", initial=0), "data")
        with pytest.raises(ValueError, match="already watches"):
            trace.watch(Signal("b", initial=0), "data")
        # a distinct explicit name resolves the conflict
        trace.watch(Signal("b", initial=0), "data_b")


# ---------------------------------------------------------------------------
# VcdWriter direct tests
# ---------------------------------------------------------------------------

class TestVcdWriterDirect:
    def _trace(self):
        trace = Trace()
        trace.sample("v", 500, 1.5)
        trace.sample("v", 0, 0.5)
        trace.sample("n", 250, 3)
        return trace

    def test_header_layout_and_timescale(self):
        stream = io.StringIO()
        VcdWriter(self._trace(), timescale="10 ps").write(stream)
        lines = stream.getvalue().splitlines()
        assert lines[0] == "$timescale 10 ps $end"
        assert lines[1] == "$scope module top $end"
        upscope = lines.index("$upscope $end")
        assert lines[upscope + 1] == "$enddefinitions $end"
        assert all(line.startswith("$var")
                   for line in lines[2:upscope])

    def test_value_changes_time_ordered(self):
        stream = io.StringIO()
        VcdWriter(self._trace()).write(stream)
        stamps = [int(line[1:]) for line
                  in stream.getvalue().splitlines()
                  if line.startswith("#")]
        assert stamps == sorted(stamps) == [0, 250, 500]

    def test_write_is_reopen_safe(self):
        writer = VcdWriter(self._trace())
        first, second = io.StringIO(), io.StringIO()
        writer.write(first)
        writer.write(second)
        assert first.getvalue() == second.getvalue()

    def test_empty_trace_emits_valid_header(self):
        stream = io.StringIO()
        VcdWriter(Trace()).write(stream)
        text = stream.getvalue()
        assert "$timescale" in text
        assert "$enddefinitions $end" in text
        assert "#" not in text


# ---------------------------------------------------------------------------
# overhead guard
# ---------------------------------------------------------------------------

def _timed_run(observe, repeats=3):
    """Best-of-N wall time of a fixed small simulation."""
    best = float("inf")
    for _ in range(repeats):
        simulator = Simulator(ToneTop(timestep=us(50)), observe=observe)
        start = time.perf_counter()
        simulator.run(ms(50))
        best = min(best, time.perf_counter() - start)
    return best


class TestOverhead:
    def test_disabled_path_leaves_hot_loops_unhooked(self):
        # The structural half of the "within noise" guarantee: with
        # observe off, every per-event call site short-circuits on a
        # single pre-bound None (no registry lookups, no spans).
        simulator = Simulator(ToneTop())
        simulator.elaborate()
        assert simulator.telemetry is None
        assert simulator.kernel._h_events_per_delta is None
        assert simulator.kernel._fine_tracer is None
        cluster = simulator._tdf_registry.clusters[0]
        assert cluster.telemetry is None
        assert getattr(cluster, "_m_seconds", None) is None

    def test_enabled_overhead_within_documented_bound(self):
        # Documented bound (TUTORIAL §9 / ISSUE): normal-detail spans
        # + metrics stay within 2x of the untelemetered engine.  The
        # comparison uses best-of-N timings so scheduler noise cannot
        # produce false failures; the instrumentation cost is per
        # cluster *batch*, far off the per-sample hot path.
        disabled = _timed_run(observe=None)
        enabled = _timed_run(observe=True)
        assert enabled <= max(2.0 * disabled, disabled + 0.05), (
            f"telemetry overhead too high: {enabled:.4f}s vs "
            f"{disabled:.4f}s disabled"
        )
