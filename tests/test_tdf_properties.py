"""Property-based tests for TDF cluster elaboration invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import ElaborationError, Module, SimTime, Simulator
from repro.tdf import TdfIn, TdfModule, TdfOut, TdfSignal


class RateBlock(TdfModule):
    """Consumes ``in_rate`` tokens and produces ``out_rate`` per firing."""

    def __init__(self, name, parent=None, in_rate=1, out_rate=1):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=in_rate)
        self.out = TdfOut("out", rate=out_rate)

    def processing(self):
        values = [self.inp.read(k) for k in range(self.inp.rate)]
        total = float(np.sum(values))
        for k in range(self.out.rate):
            self.out.write(total, k)


class HeadSource(TdfModule):
    def __init__(self, name, parent=None, rate=1, timestep=None):
        super().__init__(name, parent)
        self.out = TdfOut("out", rate=rate)
        self._ts = timestep
        self.count = 0

    def set_attributes(self):
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self.count), k)
            self.count += 1


class TailSink(TdfModule):
    def __init__(self, name, parent=None, rate=1):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=rate)
        self.received = 0

    def processing(self):
        for k in range(self.inp.rate):
            self.inp.read(k)
            self.received += 1


@st.composite
def rate_chains(draw):
    return draw(st.lists(
        st.tuples(st.integers(1, 4), st.integers(1, 4)),
        min_size=1, max_size=4,
    ))


@given(rate_chains(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_timestep_propagation_invariants(chain, src_rate):
    """In any consistent chain: module_timestep * repetitions is the
    same (the cluster period) for every module, every port timestep
    divides its module timestep by the rate, and token conservation
    holds over whole periods."""

    class Top(Module):
        def __init__(self):
            super().__init__("top")
            self.src = HeadSource("src", self, rate=src_rate,
                                  timestep=SimTime(8, "us"))
            previous_port = self.src.out
            self.blocks = []
            for k, (in_rate, out_rate) in enumerate(chain):
                block = RateBlock(f"b{k}", self, in_rate, out_rate)
                sig = TdfSignal(f"s{k}")
                previous_port(sig)
                block.inp(sig)
                previous_port = block.out
                self.blocks.append(block)
            self.sink = TailSink("sink", self)
            sig = TdfSignal("s_end")
            previous_port(sig)
            self.sink.inp(sig)

    top = Top()
    sim = Simulator(top)
    try:
        sim.run(SimTime(400, "us"))
    except ElaborationError as exc:
        # Some random rate combinations make a timestep that is not an
        # integer number of femtosecond ticks — correctly rejected at
        # elaboration; filter those examples.
        assume("divisible" not in str(exc))
        raise
    registry = sim._tdf_registry
    assert len(registry.clusters) == 1
    cluster = registry.clusters[0]
    period = cluster.period.ticks
    for module in cluster.modules:
        reps = cluster.repetitions[id(module)]
        # The defining invariant of timestep propagation.
        assert module.timestep.ticks * reps == period
        for port in module.tdf_ports():
            assert port.timestep.ticks * port.rate == \
                module.timestep.ticks
    # Token conservation across the chain over completed periods: the
    # sink consumed exactly what the source produced for the periods
    # both completed.
    produced = top.src.count
    consumed = top.sink.received
    # Rates along the chain scale the counts.
    scale = 1.0
    for in_rate, out_rate in chain:
        scale *= out_rate / in_rate
    # Both counts correspond to an integer number of periods.
    assert consumed == int(round(produced * scale))


@given(st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_two_module_rate_ratio(prod_rate, cons_rate):
    """Producer/consumer activation counts follow the balance equation
    regardless of the rate pair."""

    class Top(Module):
        def __init__(self):
            super().__init__("top")
            self.src = HeadSource("src", self, rate=prod_rate,
                                  timestep=SimTime(6, "us"))
            self.sink = TailSink("sink", self, rate=cons_rate)
            sig = TdfSignal("s")
            self.src.out(sig)
            self.sink.inp(sig)

    top = Top()
    sim = Simulator(top)
    sim.run(SimTime(360, "us"))
    from math import gcd

    g = gcd(prod_rate, cons_rate)
    src_reps = cons_rate // g
    sink_reps = prod_rate // g
    cluster = sim._tdf_registry.clusters[0]
    assert cluster.repetitions[id(top.src)] == src_reps
    assert cluster.repetitions[id(top.sink)] == sink_reps
    # Activation counts over N whole periods keep the exact ratio.
    periods = cluster.period_count
    assert top.src.activation_count == src_reps * periods
    assert top.sink.activation_count == sink_reps * periods
