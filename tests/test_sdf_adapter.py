"""Tests for embedding untimed SDF graphs in the timed dataflow world."""

import numpy as np
import pytest

from repro.core import ElaborationError, Module, SimTime, Simulator
from repro.lib import SampleListSource, TdfSink
from repro.sdf import Downsample, Fir, Gain, SdfGraph, Upsample
from repro.tdf import (
    SdfGraphModule,
    SdfInputActor,
    SdfOutputActor,
    TdfSignal,
)


def us(x):
    return SimTime(x, "us")


def build_system(graph, entry, exits, data, timestep=us(1)):
    class Top(Module):
        def __init__(self):
            super().__init__("top")
            self.src = SampleListSource("src", data, parent=self,
                                        timestep=timestep)
            self.wrap = SdfGraphModule("wrap", graph, inputs=[entry],
                                       outputs=exits, parent=self)
            self.sink = TdfSink("sink", self,
                                rate=getattr(self.wrap,
                                             f"out_{exits[0].name}").rate)
            a, b = TdfSignal("a"), TdfSignal("b")
            self.src.out(a)
            getattr(self.wrap, f"in_{entry.name}")(a)
            getattr(self.wrap, f"out_{exits[0].name}")(b)
            self.sink.inp(b)

    return Top()


class TestSdfGraphModule:
    def test_gain_graph_passthrough(self):
        graph = SdfGraph()
        entry = SdfInputActor("entry")
        gain = Gain("g", 3.0)
        exit_actor = SdfOutputActor("exit")
        graph.connect(entry, "out", gain, "in")
        graph.connect(gain, "out", exit_actor, "in")
        data = [1.0, 2.0, 3.0, 4.0]
        top = build_system(graph, entry, [exit_actor], data)
        Simulator(top).run(us(3))
        assert top.sink.samples == [3.0, 6.0, 9.0, 12.0]

    def test_multirate_graph_port_rates(self):
        """An up-by-3 graph makes the output port rate 3."""
        graph = SdfGraph()
        entry = SdfInputActor("entry")
        up = Upsample("up", 3)
        exit_actor = SdfOutputActor("exit", rate=1)
        graph.connect(entry, "out", up, "in")
        graph.connect(up, "out", exit_actor, "in")
        wrap = SdfGraphModule("w", graph, inputs=[entry],
                              outputs=[exit_actor])
        assert wrap.in_entry.rate == 1
        assert wrap.out_exit.rate == 3

    def test_multirate_execution(self):
        graph = SdfGraph()
        entry = SdfInputActor("entry")
        down = Downsample("down", 2)
        exit_actor = SdfOutputActor("exit")
        graph.connect(entry, "out", down, "in")
        graph.connect(down, "out", exit_actor, "in")
        data = [10.0, 11.0, 20.0, 21.0, 30.0, 31.0]
        top = build_system(graph, entry, [exit_actor], data)
        # Input rate 2 -> the wrapper fires every 2 us; three firings.
        Simulator(top).run(us(4))
        # Downsample keeps the first of each pair; input port rate 2.
        assert top.sink.samples == [10.0, 20.0, 30.0]

    def test_fir_graph_matches_convolution(self):
        taps = [0.25, 0.5, 0.25]
        graph = SdfGraph()
        entry = SdfInputActor("entry")
        fir = Fir("fir", taps)
        exit_actor = SdfOutputActor("exit")
        graph.connect(entry, "out", fir, "in")
        graph.connect(fir, "out", exit_actor, "in")
        rng = np.random.default_rng(3)
        data = rng.normal(size=32)
        top = build_system(graph, entry, [exit_actor], data)
        Simulator(top).run(us(31))
        expected = np.convolve(data, taps)[:32]
        np.testing.assert_allclose(top.sink.samples, expected,
                                   atol=1e-12)

    def test_type_validation(self):
        graph = SdfGraph()
        gain = Gain("g", 1.0)
        with pytest.raises(ElaborationError):
            SdfGraphModule("w", SdfGraph(), inputs=[gain], outputs=[])
