"""Coverage for remaining edge paths: process wait validation, step
metrics corner cases, LSF zero-pole with zeros, source rate>1 timing,
TDF signal error paths."""

import numpy as np
import pytest

from repro.analysis import StepResponse
from repro.core import Module, SimTime, Simulator, SimulationError
from repro.core.errors import SynchronizationError
from repro.lib import SineSource, TdfSink
from repro.tdf import TdfIn, TdfModule, TdfOut, TdfSignal


def us(x):
    return SimTime(x, "us")


class TestProcessWaitValidation:
    def test_invalid_yield_value_raises(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.thread(self.bad)

            def bad(self):
                yield 42  # neither SimTime nor Event

        with pytest.raises(SimulationError):
            Simulator(M()).run(us(1))

    def test_invalid_wait_list_raises(self):
        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.thread(self.bad)

            def bad(self):
                yield ["not", "events"]

        with pytest.raises(SimulationError):
            Simulator(M()).run(us(1))

    def test_non_generator_thread_runs_once(self):
        ran = []

        class M(Module):
            def __init__(self):
                super().__init__("m")
                self.p = self.thread(lambda: ran.append(1))

        m = M()
        Simulator(m).run(us(1))
        assert ran == [1]
        assert m.p.terminated


class TestStepResponseCorners:
    def test_never_reaches_target(self):
        t = np.linspace(0, 1, 100)
        v = 0.5 * t  # reaches only half the declared swing
        step = StepResponse(t, v, final_value=1.0, initial_value=0.0)
        with pytest.raises(ValueError):
            step.rise_time

    def test_does_not_settle(self):
        t = np.linspace(0, 1, 101)
        v = np.sin(40 * t)  # oscillates through the final point
        step = StepResponse(t, v, final_value=0.0, initial_value=-1.0)
        with pytest.raises(ValueError):
            step.settling_time(0.01)

    def test_already_settled(self):
        t = np.linspace(0, 1, 11)
        v = np.ones(11)
        step = StepResponse(t, v, final_value=1.0, initial_value=0.0)
        assert step.settling_time() == 0.0

    def test_falling_step_overshoot(self):
        t = np.linspace(0, 1, 1001)
        v = np.exp(-5 * t) * (1 + 0.0 * t)  # 1 -> 0, monotone
        v = v - 0.05 * np.exp(-20 * t) * np.sin(30 * t)  # undershoot
        step = StepResponse(t, v, final_value=0.0, initial_value=1.0)
        assert step.overshoot >= 0.0


class TestLsfZeroPoleWithZeros:
    def test_lead_filter(self):
        """H(s) = (s + z) / (s + p) with z < p: a lead network."""
        from repro.lsf import (
            LsfLtfZp,
            LsfNetwork,
            LsfSource,
            lsf_ac,
        )

        z, p = -2 * np.pi * 100.0, -2 * np.pi * 1000.0
        net = LsfNetwork()
        u, y = net.signal("u"), net.signal("y")
        net.add(LsfSource("src", u, ac=1.0))
        net.add(LsfLtfZp("lead", u, y, zeros=[z], poles=[p], gain=1.0))
        freqs = np.logspace(0, 5, 201)
        h = lsf_ac(net, freqs, y)
        s = 2j * np.pi * freqs
        expected = (s - z) / (s - p)
        np.testing.assert_allclose(h, expected, rtol=1e-9)


class TestSourceMultirate:
    def test_sine_source_rate_sample_times(self):
        """rate > 1: samples are spaced at timestep/rate."""
        src = SineSource("src", frequency=50e3, rate=4,
                         timestep=us(4))
        sink = TdfSink("sink", rate=4)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                src.parent = self
                sink.parent = self
                self._add_child(src)
                self._add_child(sink)
                sig = TdfSignal("s")
                src.out(sig)
                sink.inp(sig)

        Simulator(Top()).run(us(100))
        t, x = sink.as_arrays()
        # Sample spacing is 1 us even though activations are 4 us apart.
        np.testing.assert_allclose(np.diff(t)[:12], 1e-6, atol=1e-12)
        expected = np.sin(2 * np.pi * 50e3 * t)
        np.testing.assert_allclose(x, expected, atol=1e-9)


class TestTdfErrorPaths:
    def test_out_of_range_sample_index(self):
        class Bad(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out", rate=2)

            def set_attributes(self):
                self.set_timestep(us(1))

            def processing(self):
                self.out.write(0.0, 5)  # rate is 2

        class Sink(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp", rate=2)

            def processing(self):
                self.inp.read(0)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.bad = Bad("bad", self)
                self.sink = Sink("sink", self)
                sig = TdfSignal("s")
                self.bad.out(sig)
                self.sink.inp(sig)

        with pytest.raises(SynchronizationError):
            Simulator(Top()).run(us(2))

    def test_read_out_of_range_index(self):
        class Src(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(us(1))

            def processing(self):
                self.out.write(1.0)

        class BadSink(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")

            def processing(self):
                self.inp.read(3)  # rate is 1

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.src = Src("src", self)
                self.sink = BadSink("sink", self)
                sig = TdfSignal("s")
                self.src.out(sig)
                self.sink.inp(sig)

        with pytest.raises(SynchronizationError):
            Simulator(Top()).run(us(2))

    def test_signal_get_unavailable_sample(self):
        sig = TdfSignal("s")
        with pytest.raises(SynchronizationError):
            sig.get(0)

    def test_signal_compacted_write_rejected(self):
        sig = TdfSignal("s")
        sig.set(0, 1.0)
        sig.set(1, 2.0)
        sig.compact(2)
        with pytest.raises(SynchronizationError):
            sig.set(0, 9.9)

    def test_sparse_write_fills_gap(self):
        sig = TdfSignal("s")
        sig.set(0, 1.0)
        sig.set(3, 4.0)  # indices 1, 2 zero-filled
        assert sig.get(1) == 0.0
        assert sig.get(3) == 4.0
