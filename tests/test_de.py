"""Tests for the DE helpers: RTL primitives and the bus-functional model."""

import pytest

from repro.core import (
    BitSignal,
    Clock,
    ElaborationError,
    Module,
    Signal,
    SimTime,
    Simulator,
)
from repro.de import (
    Bus,
    BusMaster,
    CombinationalLogic,
    Counter,
    DFlipFlop,
    EdgeDetector,
    RegisterFile,
    ShiftRegister,
    Synchronizer,
)


def ns(x):
    return SimTime(x, "ns")


class TestRtl:
    def test_dff_latches_on_edge(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.d = Signal("d", initial=0)
                self.ff = DFlipFlop("ff", self.clk, parent=self)
                self.ff.d(self.d)
                self.thread(self.stim)

            def stim(self):
                yield ns(12)       # past the edge at 10
                self.d.write(7)    # changes mid-cycle
                yield ns(3)        # at 15: ff.q still old value
                assert self.ff.q.read() == 0
                yield ns(6)        # past the edge at 20
                assert self.ff.q.read() == 7

        Simulator(Top()).run(ns(50))

    def test_counter_counts_and_clears(self):
        # Edges at 0,10,20,30,40: at 45 the counter has seen 5 edges.
        class Top2(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.en = Signal("en", initial=True)
                self.clr = Signal("clr", initial=False)
                self.counter = Counter("cnt", self.clk, width=4,
                                       parent=self)
                self.counter.enable(self.en)
                self.counter.clear(self.clr)
                self.observed = {}
                self.thread(self.stim)

            def stim(self):
                yield ns(45)
                self.observed["mid"] = self.counter.value.read()
                self.clr.write(True)
                yield ns(10)
                self.observed["cleared"] = self.counter.value.read()

        top = Top2()
        Simulator(top).run(ns(60))
        assert top.observed["mid"] == 5
        assert top.observed["cleared"] == 0

    def test_counter_wraps(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.en = Signal("en", initial=True)
                self.counter = Counter("cnt", self.clk, width=2,
                                       parent=self)
                self.counter.enable(self.en)
                self.counter.clear(Signal("nc", initial=False))

        top = Top()
        Simulator(top).run(ns(95))  # 10 edges
        assert top.counter.value.read() == 10 % 4

    def test_shift_register(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.serial = Signal("ser", initial=0)
                self.sr = ShiftRegister("sr", self.clk, width=4,
                                        parent=self)
                self.sr.serial_in(self.serial)
                self.thread(self.stim)

            def stim(self):
                # Drive mid-cycle so each rising edge samples cleanly.
                yield ns(5)
                for bit in (1, 0, 1, 1):
                    self.serial.write(bit)
                    yield ns(10)

        top = Top()
        Simulator(top).run(ns(45))
        assert top.sr.value.read() == 0b1011

    def test_edge_detector_single_pulse(self):
        pulses = []

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.raw = BitSignal("raw", initial=False)
                self.det = EdgeDetector("det", self.clk, parent=self)
                self.det.inp(self.raw)
                self.method(self._capture,
                            sensitivity=[self.det.pulse.posedge_event()],
                            dont_initialize=True)
                self.thread(self.stim)

            def _capture(self):
                pulses.append(1)

            def stim(self):
                yield ns(15)
                self.raw.write(True)   # stays high for many cycles
                yield ns(50)
                self.raw.write(False)
                yield ns(20)

        Simulator(Top()).run(ns(100))
        assert len(pulses) == 1  # exactly one pulse despite long high

    def test_synchronizer_two_cycle_latency(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.async_in = Signal("async", initial=0)
                self.sync = Synchronizer("sync", self.clk, parent=self)
                self.sync.inp(self.async_in)
                self.observed = []
                self.thread(self.stim)

            def stim(self):
                yield ns(12)
                self.async_in.write(9)
                yield ns(10)  # edge at 20 captures into stage
                self.observed.append(self.sync.out.read())
                yield ns(10)  # edge at 30 moves stage to out
                yield ns(5)
                self.observed.append(self.sync.out.read())

        top = Top()
        Simulator(top).run(ns(60))
        assert top.observed == [0, 9]

    def test_combinational_logic(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.a = Signal("a", initial=1)
                self.b = Signal("b", initial=2)
                self.logic = CombinationalLogic(
                    "and3", [self.a, self.b], lambda a, b: a + b,
                    parent=self,
                )
                self.thread(self.stim)

            def stim(self):
                yield ns(1)
                assert self.logic.out.read() == 3
                self.a.write(10)
                yield ns(1)
                assert self.logic.out.read() == 12

        Simulator(Top()).run(ns(5))

    def test_width_validation(self):
        clk = Clock("clk", period=ns(10))
        with pytest.raises(ElaborationError):
            Counter("c", clk, width=0)


class TestBusFunctionalModel:
    def make_system(self, program):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.clk = Clock("clk", period=ns(10), parent=self)
                self.bus = Bus("bus")
                self.master = BusMaster("cpu", self.bus, self.clk,
                                        parent=self)
                self.regs = RegisterFile("regs", self.bus, self.clk,
                                         size=16, parent=self)
                self.log = []
                self.thread(lambda: program(self))

        return Top()

    def test_write_then_read_back(self):
        def program(top):
            yield from top.master.write(3, 0xAB)
            value = yield from top.master.read(3)
            top.log.append(value)

        top = self.make_system(program)
        Simulator(top).run(SimTime(1, "us"))
        assert top.log == [0xAB]
        assert top.regs.peek(3) == 0xAB
        assert top.master.transaction_count == 2

    def test_multiple_registers(self):
        def program(top):
            for address in range(5):
                yield from top.master.write(address, address * 10)
            for address in range(5):
                value = yield from top.master.read(address)
                top.log.append(value)

        top = self.make_system(program)
        Simulator(top).run(SimTime(2, "us"))
        assert top.log == [0, 10, 20, 30, 40]

    def test_mirror_signal_updates_on_write(self):
        changes = []

        def program(top):
            yield from top.master.idle(2)
            yield from top.master.write(7, 55)
            yield from top.master.idle(2)

        top = self.make_system(program)
        mirror = top.regs.mirror(7)
        top.method(lambda: changes.append(mirror.read()),
                   sensitivity=[mirror], dont_initialize=True)
        Simulator(top).run(SimTime(1, "us"))
        assert changes == [55]

    def test_backdoor_poke_peek(self):
        def program(top):
            yield from top.master.idle(1)

        top = self.make_system(program)
        Simulator(top).run(SimTime(100, "ns"))
        top.regs.poke(9, 123)
        assert top.regs.peek(9) == 123

    def test_out_of_range_addresses_ignored(self):
        def program(top):
            yield from top.master.write(99, 1)  # silently dropped
            value = yield from top.master.read(99)
            top.log.append(value)

        top = self.make_system(program)
        Simulator(top).run(SimTime(1, "us"))
        assert top.regs.write_count == 0

    def test_register_file_validation(self):
        clk = Clock("clk", period=ns(10))
        bus = Bus("b")
        with pytest.raises(ElaborationError):
            RegisterFile("r", bus, clk, size=0)
        regs = RegisterFile("r", bus, clk, size=4)
        with pytest.raises(ElaborationError):
            regs.mirror(10)
