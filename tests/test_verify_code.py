"""Behavioral code lint (CODE0xx): per-rule fabricated failing models,
suppression accounting, code fingerprinting and the cache-key tie-in.

Every CODE rule gets a file-backed model that provably violates it,
asserted down to the exact rule id and source line; the repro.lib block
library and the seed example models are regression-checked to lint
clean.  Fingerprint tests pin the cache-key contract: keys change iff
the *executed function body* changes (not its file position, comments,
or docstrings).
"""

import importlib.util
import json
import sys
import threading
import textwrap
from pathlib import Path

import pytest

from repro.campaign import Campaign, CampaignRunner, Sweep
from repro.campaign.cache import cache_key
from repro.campaign.spec import code_version_for
from repro.core import Module, SimTime
from repro.verify import code_fingerprint, verify, verify_callables
from repro.verify.__main__ import main as verify_main

EXAMPLES = Path(__file__).parent.parent / "examples"
BENCHMARKS = Path(__file__).parent.parent / "benchmarks"

#: shared prelude for every fabricated model file.
PRELUDE = textwrap.dedent("""\
    import os
    import random
    import sys
    import time

    import numpy as np

    from repro.core.time import SimTime
    from repro.tdf import TdfIn, TdfModule, TdfOut

""")


def _write_model(tmp_path, body, stem="model"):
    model = tmp_path / f"{stem}.py"
    model.write_text(PRELUDE + textwrap.dedent(body))
    return model


def _lint(capsys, model, *extra):
    """Run the CLI on ``model`` with ``--select CODE --json`` and return
    (exit_code, payload)."""
    argv = [str(model), "--select", "CODE", "--json", *extra]
    exit_code = verify_main(argv)
    payload = json.loads(capsys.readouterr().out)
    return exit_code, payload


def _diagnostics(payload):
    return [d for report in payload["reports"]
            for d in report["diagnostics"]]


def _bad_line(model):
    """1-based line of the ``# BAD`` marker in a model file."""
    for number, line in enumerate(model.read_text().splitlines(), 1):
        if "# BAD" in line:
            return number
    raise AssertionError("no # BAD marker in model")


# ---------------------------------------------------------------------------
# one fabricated failing model per rule
# ---------------------------------------------------------------------------

RULE_MODELS = {
    "CODE001": ("error", """\
        class UnseededRandom(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(random.random())  # BAD
        """),
    "CODE002": ("error", """\
        class WallClock(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(time.time())  # BAD
        """),
    "CODE003": ("error", """\
        class EntropyRead(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(float(len(os.urandom(4))))  # BAD
        """),
    "CODE004": ("error", """\
        class NumpyGlobalRng(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(np.random.normal())  # BAD
        """),
    "CODE005": ("error", """\
        class EnvRead(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(float(os.getenv("GAIN", "1")))  # BAD
        """),
    "CODE006": ("warning", """\
        class FsRead(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                names = os.listdir(".")  # BAD
                self.out.write(float(len(names)))
        """),
    "CODE007": ("error", """\
        _TRACE = []

        class GlobalMutation(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                _TRACE.append(1.0)  # BAD
                self.out.write(0.0)
        """),
    "CODE008": ("warning", """\
        class LeakyCounter(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")
                self._acc = 0.0

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self._acc += 1.0  # BAD
                self.out.write(self._acc)
        """),
    "CODE009": ("error", """\
        class HalfHooked(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(0.0)

            def checkpoint_state(self):  # BAD
                return {}
        """),
    "CODE010": ("error", """\
        class OverRead(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp", rate=2)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                value = self.inp.read(2)  # BAD
                self.out.write(value)
        """),
    "CODE011": ("warning", """\
        class UnderWritten(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")
                self.out = TdfOut("out", rate=3)

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(self.inp.read())  # BAD
        """),
    "CODE012": ("error", """\
        class ConstantBlock(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(self.inp.read())

            def processing_block(self, n):
                data = self.inp.read_block(4)  # BAD
                self.out.write_block(data)
        """),
    "CODE013": ("warning", """\
        class LambdaState(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")
                self._notify = lambda value: value  # BAD

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(self._notify(0.0))
        """),
    "CODE015": ("info", """\
        class ConsoleChatter(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                print("tick")  # BAD
                self.out.write(0.0)
        """),
}


@pytest.mark.parametrize(
    "rule_id", sorted(RULE_MODELS), ids=sorted(RULE_MODELS))
def test_each_code_rule_fires_with_exact_location(
        tmp_path, capsys, rule_id):
    severity, body = RULE_MODELS[rule_id]
    model = _write_model(tmp_path, body, stem=rule_id.lower())
    _code, payload = _lint(capsys, model)
    hits = [d for d in _diagnostics(payload) if d["rule"] == rule_id]
    assert hits, (
        f"{rule_id} did not fire; got "
        f"{[d['rule'] for d in _diagnostics(payload)]}")
    diag = hits[0]
    assert diag["severity"] == severity
    assert diag["file"].endswith(f"{rule_id.lower()}.py")
    assert diag["line"] == _bad_line(model)
    # errors gate (exit 1); warnings/infos alone do not
    assert _code == (1 if severity == "error" else 0)


def test_code014_lambda_campaign_callable():
    report = verify_callables([("camp.run", lambda params: params)])
    hits = [d for d in report if d.rule == "CODE014"]
    assert hits
    assert hits[0].severity == "warning"
    assert hits[0].location == "camp.run"
    assert "lambda" in hits[0].message


def test_code014_unpicklable_closure():
    lock = threading.Lock()

    def run(params):
        with lock:
            return params

    report = verify_callables([("camp.run", run)])
    hits = [d for d in report if d.rule == "CODE014"]
    assert hits
    assert "lock" in hits[0].message
    assert hits[0].file.endswith("test_verify_code.py")


def test_clean_model_has_no_code_findings(tmp_path, capsys):
    model = _write_model(tmp_path, """\
        class CleanGain(TdfModule):
            def __init__(self, name="ok", parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")
                self.out = TdfOut("out")
                self.gain = 2.0

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(self.gain * self.inp.read())
        """)
    exit_code, payload = _lint(capsys, model, "--strict")
    assert exit_code == 0
    assert payload["ok"] is True
    assert _diagnostics(payload) == []


# ---------------------------------------------------------------------------
# CLI: --select CODE, schema stability, exit codes
# ---------------------------------------------------------------------------

def test_select_code_filters_graph_rules(tmp_path, capsys):
    _severity, body = RULE_MODELS["CODE001"]
    model = _write_model(tmp_path, body)
    # unconstrained run: both the graph rule (unbound port) and the
    # behavioral rule fire
    assert verify_main([str(model), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {d["rule"] for d in _diagnostics(payload)}
    assert "TDF001" in rules and "CODE001" in rules
    # --select CODE keeps only the behavioral family
    _code, payload = _lint(capsys, model)
    rules = {d["rule"] for d in _diagnostics(payload)}
    assert rules == {"CODE001"}


def test_code_diagnostic_json_schema(tmp_path, capsys):
    _severity, body = RULE_MODELS["CODE001"]
    model = _write_model(tmp_path, body)
    _code, payload = _lint(capsys, model)
    assert payload["schema"] == 2
    assert "ruleset" in payload
    (diag,) = _diagnostics(payload)
    assert set(diag) >= {"rule", "severity", "location", "message",
                         "file", "line"}
    # not suppressed -> the key is absent, not false
    assert "suppressed" not in diag
    counts = payload["reports"][0]["counts"]
    assert counts["error"] == 1
    assert counts["suppressed"] == 0


def test_cli_exit_codes(tmp_path, capsys):
    _severity, body = RULE_MODELS["CODE001"]
    bad = _write_model(tmp_path, body, stem="bad")
    assert verify_main([str(bad), "--select", "CODE"]) == 1
    capsys.readouterr()
    assert verify_main([str(tmp_path / "nope.py"),
                        "--select", "CODE"]) == 2


# ---------------------------------------------------------------------------
# suppression: counted, never dropped
# ---------------------------------------------------------------------------

def test_line_suppression_counts_finding(tmp_path, capsys):
    model = _write_model(tmp_path, """\
        class Allowed(TdfModule):
            def __init__(self, name="ok", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(random.random())  # verify: allow[CODE001]
        """)
    exit_code, payload = _lint(capsys, model, "--strict")
    assert exit_code == 0
    assert payload["ok"] is True
    (diag,) = _diagnostics(payload)
    assert diag["rule"] == "CODE001"
    assert diag["suppressed"] is True
    counts = payload["reports"][0]["counts"]
    assert counts["suppressed"] == 1
    assert counts["error"] == 0


def test_line_above_suppression(tmp_path, capsys):
    model = _write_model(tmp_path, """\
        class Allowed(TdfModule):
            def __init__(self, name="ok", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                # verify: allow[CODE002]
                self.out.write(time.time())
        """)
    exit_code, payload = _lint(capsys, model, "--strict")
    assert exit_code == 0
    (diag,) = _diagnostics(payload)
    assert diag["rule"] == "CODE002" and diag["suppressed"] is True


def test_class_suppression_covers_graph_rules(tmp_path, capsys):
    model = _write_model(tmp_path, """\
        class QuietSrc(TdfModule):
            # verify: allow[TDF001]
            def __init__(self, name="quiet", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(0.0)
        """)
    assert verify_main([str(model), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    suppressed = [d for d in _diagnostics(payload)
                  if d.get("suppressed")]
    assert any(d["rule"] == "TDF001" for d in suppressed)
    assert payload["reports"][0]["counts"]["suppressed"] >= 1


def test_wrong_rule_in_allow_does_not_suppress(tmp_path, capsys):
    model = _write_model(tmp_path, """\
        class Mismatched(TdfModule):
            def __init__(self, name="bad", parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(SimTime(1, "us"))

            def processing(self):
                self.out.write(time.time())  # verify: allow[CODE001]
        """)
    exit_code, payload = _lint(capsys, model)
    assert exit_code == 1
    (diag,) = _diagnostics(payload)
    assert diag["rule"] == "CODE002"
    assert "suppressed" not in diag


# ---------------------------------------------------------------------------
# clean-corpus regression: lib blocks and seed examples lint clean
# ---------------------------------------------------------------------------

def test_repro_lib_blocks_lint_clean():
    from repro.lib.adaptive import LmsFilter
    from repro.lib.adc import FlashAdc, IdealAdc
    from repro.lib.blocks import (
        Add2, Comparator, DeadbandBlock, LinearAmp, MapBlock, Mixer,
        QuadratureOscillator, SampleHold, SaturatingAmp, TdfSink, Vga,
    )
    from repro.lib.dac import IdealDac, SwitchedCapDac
    from repro.lib.filters import Biquad, FirFilter, IirFilter
    from repro.lib.goertzel import GoertzelDetector
    from repro.lib.pll import BehavioralPll
    from repro.lib.sigma_delta import CicDecimator, SigmaDelta1, \
        SigmaDelta2
    from repro.lib.sources import (
        ConstSource, FunctionSource, GaussianNoiseSource, PrbsSource,
        PulseSource, RampSource, SampleListSource, SineSource,
        StepSource,
    )

    top = Module("libbench")
    p = dict(parent=top)
    LmsFilter("lms", taps=4, **p)
    IdealAdc("adc1", bits=8, **p)
    FlashAdc("adc2", bits=4, **p)
    TdfSink("sink", **p)
    LinearAmp("amp", gain=2.0, **p)
    SaturatingAmp("sat", gain=2.0, limit=1.0, **p)
    Vga("vga", **p)
    Mixer("mix", **p)
    QuadratureOscillator("qosc", frequency=1e3, **p)
    Comparator("cmp", **p)
    SampleHold("sh", **p)
    DeadbandBlock("db", width=0.1, **p)
    MapBlock("map", func=abs, **p)
    Add2("add", **p)
    IdealDac("dac1", bits=8, **p)
    SwitchedCapDac("dac2", bits=8, **p)
    FirFilter("fir", taps=[0.5, 0.5], **p)
    IirFilter("iir", sections=[Biquad(1.0, 0.0, 0.0, 0.0, 0.0)], **p)
    GoertzelDetector("goe", frequency=1e3, block_size=16, **p)
    BehavioralPll("pll", center_frequency=1e4, **p)
    SigmaDelta1("sd1", **p)
    SigmaDelta2("sd2", **p)
    CicDecimator("cic", factor=4, **p)
    SineSource("sine", frequency=1e3, **p)
    ConstSource("const", **p)
    StepSource("step", **p)
    PulseSource("pulse", period=1e-3, **p)
    RampSource("ramp", **p)
    GaussianNoiseSource("noise", **p)
    PrbsSource("prbs", **p)
    SampleListSource("slist", samples=[1.0, 2.0], **p)
    FunctionSource("fsrc", func=abs, **p)

    report = verify(top, select=["CODE"])
    assert report.ok, report.summary()
    assert len(report) == 0, [d.rule for d in report]


def test_seed_models_lint_clean(capsys):
    targets = [
        str(EXAMPLES / "quickstart.py"),
        str(EXAMPLES / "rf_receiver.py"),
        str(EXAMPLES / "dc_motor_hil.py"),
        str(BENCHMARKS / "perf" / "models.py"),
    ]
    assert verify_main(
        [*targets, "--select", "CODE", "--strict"]) == 0


# ---------------------------------------------------------------------------
# code fingerprint and the campaign cache key
# ---------------------------------------------------------------------------

SPEC_BODY = textwrap.dedent("""\
    def run(params):
        return {{"y": params["x"] * {factor}}}
""")

SPEC_MOVED = textwrap.dedent("""\
    # leading comment shifts every line number


    def run(params):
        \"\"\"docstrings are stripped from the fingerprint\"\"\"
        return {{"y": params["x"] * {factor}}}
""")


def _load_spec(tmp_path, source, tag):
    path = tmp_path / f"spec_{tag}.py"
    path.write_text(source)
    spec = importlib.util.spec_from_file_location(
        f"fingerprint_spec_{tag}", str(path))
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_fingerprint_ignores_position_and_docstrings(tmp_path):
    base = _load_spec(tmp_path, SPEC_BODY.format(factor="2.0"), "a")
    moved = _load_spec(tmp_path, SPEC_MOVED.format(factor="2.0"), "b")
    changed = _load_spec(tmp_path, SPEC_BODY.format(factor="3.0"), "c")

    fp = code_fingerprint(base.run)
    assert fp == code_fingerprint(base.run)           # deterministic
    assert fp == code_fingerprint(moved.run)          # position-free
    assert fp != code_fingerprint(changed.run)        # body-sensitive
    assert len(fp) == 16 and int(fp, 16) >= 0


def test_fingerprint_distinguishes_partial_args(tmp_path):
    import functools
    base = _load_spec(tmp_path, SPEC_BODY.format(factor="2.0"), "p")
    two = functools.partial(base.run, {"x": 2})
    three = functools.partial(base.run, {"x": 3})
    assert code_fingerprint(two) != code_fingerprint(base.run)
    assert code_fingerprint(two) != code_fingerprint(three)
    assert code_fingerprint(two) == code_fingerprint(two)


def test_code_version_tracks_executed_body(tmp_path):
    base = _load_spec(tmp_path, SPEC_BODY.format(factor="2.0"), "va")
    moved = _load_spec(tmp_path, SPEC_MOVED.format(factor="2.0"), "vb")
    changed = _load_spec(tmp_path, SPEC_BODY.format(factor="3.0"), "vc")
    assert code_version_for(base.run) == code_version_for(moved.run)
    assert code_version_for(base.run) != code_version_for(changed.run)
    # and the derived cache keys follow
    params = {"x": 1}
    key = cache_key("c", params, code_version_for(base.run))
    assert key == cache_key("c", params, code_version_for(moved.run))
    assert key != cache_key("c", params, code_version_for(changed.run))


def test_campaign_cache_hits_iff_body_unchanged(tmp_path):
    """Runner-level: re-running after a pure *move* of the spec function
    is a 100% cache hit; changing its body re-executes everything."""
    cache_dir = tmp_path / "cache"

    def run_with(source, tag):
        module = _load_spec(tmp_path, source, tag)
        campaign = Campaign(name="fp", space=Sweep({"x": [0, 1, 2]}),
                            run=module.run, root_seed=1)
        runner = CampaignRunner(campaign, workers=1,
                                cache_dir=cache_dir)
        runner.run()
        return runner.stats

    first = run_with(SPEC_BODY.format(factor="2.0"), "r1")
    assert first["executed"] == 3 and first["cached"] == 0
    moved = run_with(SPEC_MOVED.format(factor="2.0"), "r2")
    assert moved["executed"] == 0 and moved["cached"] == 3
    changed = run_with(SPEC_BODY.format(factor="3.0"), "r3")
    assert changed["executed"] == 3 and changed["cached"] == 0
