"""Tests for the synchronization layer: CT solvers embedded in TDF
clusters, DE-controlled switches, activation gating, solver plug-ins."""

import numpy as np
import pytest

from repro.core import BitSignal, Clock, Module, SimTime, Simulator
from repro.ct import ScipyIvpSolver
from repro.ct.nonlinear import NonlinearSystem, dlimexp, limexp
from repro.eln import Capacitor, Network, Resistor, Switch, Vsource
from repro.lsf import LsfLtfNd, LsfNetwork, LsfSource
from repro.sync import (
    ElnTdfModule,
    InputHolder,
    LsfTdfModule,
    NonlinearTdfModule,
    SolverTdfModule,
)
from repro.tdf import TdfIn, TdfModule, TdfOut, TdfSignal


def us(x):
    return SimTime(x, "us")


class SineSource(TdfModule):
    def __init__(self, name, parent=None, freq=1e3, amplitude=1.0,
                 timestep=None):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self.freq = freq
        self.amplitude = amplitude
        self._ts = timestep

    def set_attributes(self):
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        t = self.local_time.to_seconds()
        self.out.write(self.amplitude * np.sin(2 * np.pi * self.freq * t))


class StepSource(TdfModule):
    def __init__(self, name, parent=None, level=1.0, timestep=None):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self.level = level
        self._ts = timestep

    def set_attributes(self):
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        self.out.write(self.level)


class Recorder(TdfModule):
    def __init__(self, name, parent=None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.samples = []
        self.times = []

    def processing(self):
        self.samples.append(self.inp.read())
        self.times.append(self.local_time.to_seconds())


def rc_network(R=1e3, C=1e-6):
    net = Network()
    net.add(Vsource("Vin", "in", "0"))
    net.add(Resistor("R1", "in", "out", R))
    net.add(Capacitor("C1", "out", "0", C))
    return net


class TestElnTdf:
    def test_rc_step_response(self):
        R, C = 1e3, 1e-6
        tau = R * C  # 1 ms

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.src = StepSource("src", self, timestep=us(10))
                self.rc = ElnTdfModule("rc", rc_network(R, C), parent=self,
                                       oversample=4)
                self.rec = Recorder("rec", self)
                self.src.out(self.s_in)
                self.rc.drive_voltage("Vin")(self.s_in)
                self.rc.sample_voltage("out")(self.s_out)
                self.rec.inp(self.s_out)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(5, "ms"))
        t = np.array(top.rec.times)
        v = np.array(top.rec.samples)
        # First sample: the capacitor (differential state) still holds
        # its quiescent 0 V (up to the consistency snap's epsilon).
        assert v[0] == pytest.approx(0.0, abs=1e-6)
        # Input steps to 1 at the first activation; the RC charges with
        # tau starting from t=0 (input interpolated over first step).
        expected = 1 - np.exp(-t[5:] / tau)
        np.testing.assert_allclose(v[5:], expected, atol=0.02)

    def test_rc_sine_steady_state_gain(self):
        R, C = 1e3, 1e-6
        f = 1.0 / (2 * np.pi * R * C)  # corner frequency

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.src = SineSource("src", self, freq=f,
                                      timestep=us(5))
                self.rc = ElnTdfModule("rc", rc_network(R, C), parent=self,
                                       oversample=4)
                self.rec = Recorder("rec", self)
                self.src.out(self.s_in)
                self.rc.drive_voltage("Vin")(self.s_in)
                self.rc.sample_voltage("out")(self.s_out)
                self.rec.inp(self.s_out)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(20, "ms"))
        v = np.array(top.rec.samples)
        n = len(v)
        tail = v[3 * n // 4:]
        assert np.max(np.abs(tail)) == pytest.approx(1 / np.sqrt(2),
                                                     rel=0.02)

    def test_branch_current_output(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_i = TdfSignal("s_i")
                self.src = StepSource("src", self, level=2.0,
                                      timestep=us(100))
                net = Network()
                net.add(Vsource("Vin", "in", "0"))
                net.add(Resistor("R1", "in", "0", 1e3))
                self.mod = ElnTdfModule("mod", net, parent=self)
                self.rec = Recorder("rec", self)
                self.src.out(self.s_in)
                self.mod.drive_voltage("Vin")(self.s_in)
                self.mod.sample_current("Vin")(self.s_i)
                self.rec.inp(self.s_i)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(1, "ms"))
        # Source branch current = -V/R (flows p -> n through source).
        assert top.rec.samples[-1] == pytest.approx(-2e-3, rel=1e-6)

    def test_de_switch_control(self):
        """An RC whose discharge switch is driven by a DE clock."""
        R, C = 1e3, 1e-7  # tau = 0.1 ms

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.clk = Clock("clk", period=SimTime(4, "ms"),
                                 duty_cycle=0.25, parent=self,
                                 start_time=SimTime(1, "ms"))
                self.src = StepSource("src", self, timestep=us(20))
                net = rc_network(R, C)
                net.add(Switch("S1", "out", "0", closed=False,
                               r_on=1.0, r_off=1e12))
                self.rc = ElnTdfModule("rc", net, parent=self,
                                       oversample=4)
                self.rec = Recorder("rec", self)
                self.src.out(self.s_in)
                self.rc.drive_voltage("Vin")(self.s_in)
                self.rc.sample_voltage("out")(self.s_out)
                self.rc.bind_switch("S1", self.clk.signal)
                self.rec.inp(self.s_out)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(4, "ms"))
        t = np.array(top.rec.times)
        v = np.array(top.rec.samples)
        # Before the switch closes (t < 1 ms) the cap charges to ~1.
        assert v[np.searchsorted(t, 0.9e-3)] == pytest.approx(1.0, abs=0.01)
        # While closed (1..2 ms) the output collapses to ~0 (divider
        # R1 / r_on).
        assert v[np.searchsorted(t, 1.9e-3)] == pytest.approx(0.0, abs=0.01)
        # After reopening (2..4 ms) it recharges.
        assert v[-1] == pytest.approx(1.0, abs=0.01)
        assert top.rc.rebuild_count == 2

    def test_gating_skips_settled_activations(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.src = StepSource("src", self, timestep=us(10))
                self.rc = ElnTdfModule("rc", rc_network(), parent=self)
                self.rc.enable_gating(tolerance=1e-9)
                self.rec = Recorder("rec", self)
                self.src.out(self.s_in)
                self.rc.drive_voltage("Vin")(self.s_in)
                self.rc.sample_voltage("out")(self.s_out)
                self.rec.inp(self.s_out)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(20, "ms"))  # 20 tau: long settled tail
        assert top.rc.skipped_activations > 100
        # Output still correct after gating.
        assert top.rec.samples[-1] == pytest.approx(1.0, abs=1e-3)


class TestLsfTdf:
    def test_lowpass_filter_in_tdf_chain(self):
        tau = 1e-3

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.src = StepSource("src", self, timestep=us(10))
                lsf = LsfNetwork()
                u = lsf.signal("u")
                y = lsf.signal("y")
                lsf.add(LsfSource("src", u))
                lsf.add(LsfLtfNd("filt", u, y, num=[1.0],
                                 den=[1.0, tau]))
                self.filt = LsfTdfModule("filt", lsf, parent=self,
                                         oversample=4)
                self.rec = Recorder("rec", self)
                self.src.out(self.s_in)
                self.filt.drive(u)(self.s_in)
                self.filt.sample(y)(self.s_out)
                self.rec.inp(self.s_out)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(5, "ms"))
        t = np.array(top.rec.times)
        v = np.array(top.rec.samples)
        expected = 1 - np.exp(-t[5:] / tau)
        np.testing.assert_allclose(v[5:], expected, atol=0.02)

    def test_drive_requires_source_block(self):
        from repro.core import ElaborationError
        from repro.lsf import LsfGain

        lsf = LsfNetwork()
        u, y = lsf.signal("u"), lsf.signal("y")
        lsf.add(LsfSource("s", u))
        lsf.add(LsfGain("g", u, y, 1.0))
        mod = LsfTdfModule("m", lsf)
        with pytest.raises(ElaborationError):
            mod.drive(y)


class DiodeClipper(NonlinearSystem):
    """Vin -> R -> diode||  : clips positive voltages near 0.6 V."""

    def __init__(self, holder, R=1e3, i_sat=1e-12, vt=0.025, C=1e-9):
        super().__init__(1)
        self.holder = holder
        self.R, self.i_sat, self.vt, self.Cap = R, i_sat, vt, C

    def charge(self, x):
        return np.array([self.Cap * x[0]])

    def charge_jacobian(self, x):
        return np.array([[self.Cap]])

    def static(self, x, t):
        v = x[0]
        i_diode = self.i_sat * (limexp(v / self.vt) - 1.0)
        return np.array([i_diode - (self.holder(t) - v) / self.R])

    def static_jacobian(self, x, t):
        v = x[0]
        g = self.i_sat * dlimexp(v / self.vt) / self.vt
        return np.array([[g + 1.0 / self.R]])


class TestNonlinearTdf:
    def test_diode_clipper_clips(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s_in = TdfSignal("s_in")
                self.s_out = TdfSignal("s_out")
                self.src = SineSource("src", self, freq=1e3, amplitude=5.0,
                                      timestep=us(5))
                holder = InputHolder()
                self.clip = NonlinearTdfModule(
                    "clip", DiodeClipper(holder), parent=self,
                )
                # Wire the module input port onto the existing holder.
                port = TdfIn("in_u")
                port.module = self.clip
                self.clip.in_u = port
                self.clip._inputs.append((port, holder))
                self.clip.add_output("v", lambda x: float(x[0]))
                self.rec = Recorder("rec", self)
                self.src.out(self.s_in)
                port(self.s_in)
                self.clip.out_v(self.s_out)
                self.rec.inp(self.s_out)

        top = Top()
        sim = Simulator(top)
        sim.run(SimTime(3, "ms"))
        v = np.array(top.rec.samples)
        assert np.max(v) < 0.8          # positive excursions clipped
        assert np.min(v) < -4.0         # negative excursions pass
        assert top.clip.internal_steps > 0

    def test_add_input_creates_port(self):
        holder_module = NonlinearTdfModule(
            "m", DiodeClipper(InputHolder()),
        )
        holder = holder_module.add_input("u")
        assert isinstance(holder, InputHolder)
        assert hasattr(holder_module, "in_u")


class TestSolverPlugin:
    def test_scipy_solver_matches_builtin(self):
        R, C = 1e3, 1e-6
        tau = R * C

        def build(use_external):
            class Top(Module):
                def __init__(self):
                    super().__init__("top")
                    self.s_in = TdfSignal("s_in")
                    self.s_out = TdfSignal("s_out")
                    self.src = StepSource("src", self, timestep=us(20))
                    if use_external:
                        holder = InputHolder()
                        solver = ScipyIvpSolver(
                            rhs=lambda t, x, h=holder:
                                np.array([(h(t) - x[0]) / tau]),
                            n=1,
                        )
                        self.ct = SolverTdfModule("ct", solver,
                                                  parent=self)
                        port = TdfIn("in_u")
                        port.module = self.ct
                        self.ct.in_u = port
                        self.ct._inputs.append((port, holder))
                        self.ct.add_output("v", lambda x: float(x[0]))
                        self.src.out(self.s_in)
                        port(self.s_in)
                        self.ct.out_v(self.s_out)
                    else:
                        self.ct = ElnTdfModule("ct", rc_network(R, C),
                                               parent=self, oversample=8)
                        self.src.out(self.s_in)
                        self.ct.drive_voltage("Vin")(self.s_in)
                        self.ct.sample_voltage("out")(self.s_out)
                    self.rec = Recorder("rec", self)
                    self.rec.inp(self.s_out)

            top = Top()
            Simulator(top).run(SimTime(3, "ms"))
            return np.array(top.rec.samples)

        builtin = build(False)
        external = build(True)
        np.testing.assert_allclose(builtin, external, atol=5e-3)


class TestInputHolder:
    def test_zero_order_hold(self):
        h = InputHolder(0.0, interpolate=False)
        h.push(5.0, 0.0, 1.0)
        assert h(0.2) == 5.0
        assert h(0.9) == 5.0

    def test_linear_interpolation(self):
        h = InputHolder(0.0)
        h.push(10.0, 0.0, 1.0)
        assert h(0.0) == pytest.approx(0.0)
        assert h(0.5) == pytest.approx(5.0)
        assert h(1.0) == pytest.approx(10.0)
        assert h(2.0) == pytest.approx(10.0)   # clamped beyond the step
        assert h(-1.0) == pytest.approx(0.0)   # clamped before the step

    def test_degenerate_interval_returns_current(self):
        h = InputHolder(1.0)
        h.push(3.0, 2.0, 2.0)
        assert h(2.0) == 3.0
