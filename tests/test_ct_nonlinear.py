"""Tests for the nonlinear DAE machinery: Newton iteration, DC operating
point with homotopy, fixed and variable-step transient, stiffness."""

import numpy as np
import pytest

from repro.core import ConvergenceError, SolverError
from repro.ct import (
    FunctionSystem,
    NonlinearStepper,
    NonlinearSystem,
    NonlinearTransientSolver,
    dc_operating_point,
    newton,
    numeric_jacobian,
    variable_step_transient,
)
from repro.ct.nonlinear import dlimexp, limexp


class TestNewton:
    def test_scalar_quadratic(self):
        x, iterations = newton(
            lambda x: np.array([x[0] ** 2 - 4.0]),
            lambda x: np.array([[2 * x[0]]]),
            np.array([3.0]),
        )
        assert x[0] == pytest.approx(2.0, abs=1e-9)
        assert iterations < 10

    def test_two_dimensional_system(self):
        # x^2 + y^2 = 1, y = x  ->  x = y = 1/sqrt(2)
        def residual(v):
            x, y = v
            return np.array([x * x + y * y - 1.0, y - x])

        def jacobian(v):
            x, y = v
            return np.array([[2 * x, 2 * y], [-1.0, 1.0]])

        v, _ = newton(residual, jacobian, np.array([1.0, 0.5]))
        np.testing.assert_allclose(v, [1 / np.sqrt(2)] * 2, atol=1e-10)

    def test_damping_handles_exponential(self):
        # Diode-style equation: exp(x/0.025) - 1 = 1 A. Undamped Newton
        # from 1.0 V overflows; damping must rescue it.
        vt = 0.025

        def residual(v):
            return np.array([np.exp(np.minimum(v[0] / vt, 200.0)) - 2.0])

        def jacobian(v):
            return np.array([[np.exp(np.minimum(v[0] / vt, 200.0)) / vt]])

        v, _ = newton(residual, jacobian, np.array([1.0]))
        assert v[0] == pytest.approx(vt * np.log(2.0), rel=1e-6)

    def test_divergence_raises(self):
        with pytest.raises(ConvergenceError):
            newton(
                lambda x: np.array([x[0] ** 2 + 1.0]),  # no real root
                lambda x: np.array([[2 * x[0]]]),
                np.array([1.0]),
                max_iterations=25,
            )

    def test_numeric_jacobian_accuracy(self):
        def func(x):
            return np.array([x[0] ** 2 + x[1], np.sin(x[0]) * x[1]])

        x = np.array([0.7, 1.3])
        jac = numeric_jacobian(func, x)
        expected = np.array([
            [2 * 0.7, 1.0],
            [np.cos(0.7) * 1.3, np.sin(0.7)],
        ])
        np.testing.assert_allclose(jac, expected, rtol=1e-5)


class DiodeRc(NonlinearSystem):
    """Series resistor + diode with a parallel capacitor on the diode node.

    Unknown: diode node voltage v.  Equations:
        C dv/dt + Is(exp(v/Vt) - 1) - (Vs - v)/R = 0
    """

    def __init__(self, R=1e3, C=1e-9, i_sat=1e-14, vt=0.025, v_supply=5.0):
        super().__init__(1)
        self.R, self.Cap, self.i_sat, self.vt = R, C, i_sat, vt
        self.v_supply = v_supply

    def charge(self, x):
        return np.array([self.Cap * x[0]])

    def charge_jacobian(self, x):
        return np.array([[self.Cap]])

    def _diode_current(self, v):
        return self.i_sat * (limexp(v / self.vt) - 1.0)

    def static(self, x, t):
        v = x[0]
        return np.array([
            self._diode_current(v) - (self.v_supply - v) / self.R
        ])

    def static_jacobian(self, x, t):
        v = x[0]
        g_diode = self.i_sat * dlimexp(v / self.vt) / self.vt
        return np.array([[g_diode + 1.0 / self.R]])


class TestDcOperatingPoint:
    def test_diode_dc_matches_fixed_point(self):
        circuit = DiodeRc()
        v = dc_operating_point(circuit)
        # Verify KCL holds at the solution.
        residual = circuit.static(v, 0.0)
        assert abs(residual[0]) < 1e-9
        assert 0.5 < v[0] < 0.9  # silicon-diode ballpark

    def test_gmin_stepping_rescues_bad_guess(self):
        circuit = DiodeRc(v_supply=100.0)
        # Start from a hopeless guess; homotopy must still converge.
        v = dc_operating_point(circuit, x0=np.array([50.0]))
        assert abs(circuit.static(v, 0.0)[0]) < 1e-7

    def test_linear_system_one_iteration_region(self):
        sys = FunctionSystem(
            n=1,
            static=lambda x, t: np.array([2.0 * x[0] - 4.0]),
            static_jacobian=lambda x, t: np.array([[2.0]]),
        )
        v = dc_operating_point(sys)
        assert v[0] == pytest.approx(2.0)


class TestFixedStepNonlinear:
    def test_matches_linear_limit(self):
        # With the diode removed (i_sat -> 0) the circuit is a linear RC.
        circuit = DiodeRc(i_sat=0.0, v_supply=1.0)
        stepper = NonlinearStepper(circuit, "trapezoidal")
        tau = circuit.R * circuit.Cap
        h = tau / 100
        x = np.zeros(1)
        t = 0.0
        for _ in range(300):
            x = stepper.step(x, t, h)
            t += h
        assert x[0] == pytest.approx(1 - np.exp(-t / tau), abs=1e-5)

    def test_invalid_method(self):
        with pytest.raises(SolverError):
            NonlinearStepper(DiodeRc(), "magic")

    def test_nonpositive_step(self):
        stepper = NonlinearStepper(DiodeRc())
        with pytest.raises(SolverError):
            stepper.step(np.zeros(1), 0.0, 0.0)


class TestVariableStep:
    def test_rc_charging_accuracy(self):
        circuit = DiodeRc(i_sat=0.0, v_supply=1.0)
        tau = circuit.R * circuit.Cap
        result = variable_step_transient(
            circuit, 5 * tau, x0=np.zeros(1), reltol=1e-6, abstol=1e-9,
        )
        exact = 1 - np.exp(-result.times / tau)
        np.testing.assert_allclose(result.states[:, 0], exact, atol=1e-4)

    def test_step_adaptation_on_stiff_flat_regions(self):
        # Diode clamps quickly, then the waveform is nearly constant.
        # The controller must enlarge steps in the flat region.
        circuit = DiodeRc()
        tau = circuit.R * circuit.Cap
        result = variable_step_transient(
            circuit, 200 * tau, x0=np.zeros(1), h0=tau / 100,
            reltol=1e-4, abstol=1e-7,
        )
        deltas = np.diff(result.times)
        assert deltas[-1] > 10 * deltas[0]
        assert result.accepted_steps == len(result.times) - 1

    def test_result_interpolation(self):
        circuit = DiodeRc(i_sat=0.0, v_supply=1.0)
        tau = circuit.R * circuit.Cap
        result = variable_step_transient(circuit, 5 * tau, x0=np.zeros(1))
        v = result.at(tau)
        assert v[0] == pytest.approx(1 - np.exp(-1.0), abs=1e-3)

    def test_bad_span_rejected(self):
        with pytest.raises(SolverError):
            variable_step_transient(DiodeRc(), t_end=0.0)


class TestNonlinearTransientSolver:
    def test_lockstep_advance(self):
        circuit = DiodeRc(i_sat=0.0, v_supply=1.0)
        tau = circuit.R * circuit.Cap
        solver = NonlinearTransientSolver(circuit, reltol=1e-6, abstol=1e-9)
        solver.initialize(x0=np.zeros(1))
        for k in range(1, 6):
            solver.advance_to(k * tau)
        assert solver.state[0] == pytest.approx(1 - np.exp(-5.0), abs=1e-4)
        assert solver.step_count > 0

    def test_dc_initialization(self):
        circuit = DiodeRc()
        solver = NonlinearTransientSolver(circuit)
        x0 = solver.initialize()
        assert abs(circuit.static(x0, 0.0)[0]) < 1e-7

    def test_backwards_rejected(self):
        solver = NonlinearTransientSolver(DiodeRc())
        solver.initialize(x0=np.zeros(1))
        solver.advance_to(1e-6)
        with pytest.raises(SolverError):
            solver.advance_to(1e-7)


class TestFunctionSystem:
    def test_numeric_jacobians_used_when_missing(self):
        sys = FunctionSystem(
            n=1,
            static=lambda x, t: np.array([x[0] ** 3 - 8.0]),
        )
        v = dc_operating_point(sys, x0=np.array([1.5]))
        assert v[0] == pytest.approx(2.0, rel=1e-6)

    def test_van_der_pol_relaxation_oscillation(self):
        # Stiff Van der Pol (mu = 20) as a FunctionSystem in charge form:
        #   q = x (both states dynamic), f = -[y, mu(1-x^2)y - x]
        mu = 20.0

        def static(v, t):
            x, y = v
            return np.array([-y, -(mu * (1 - x * x) * y - x)])

        sys = FunctionSystem(
            n=2, static=static, charge=lambda v: v.copy(),
            charge_jacobian=lambda v: np.eye(2),
        )
        result = variable_step_transient(
            sys, 40.0, x0=np.array([2.0, 0.0]), reltol=1e-5, abstol=1e-8,
            h0=1e-3,
        )
        x = result.states[:, 0]
        # Relaxation oscillation: amplitude stays near 2, sign alternates.
        assert np.max(x) == pytest.approx(2.0, abs=0.1)
        assert np.min(x) == pytest.approx(-2.0, abs=0.1)
        sign_changes = np.sum(np.diff(np.sign(x)) != 0)
        assert sign_changes >= 2
