"""Tests for repro.observe.fleet: trace context propagation, segment
envelopes, trace stitching, metric aggregation and the Prometheus text
exposition (render + validator round trip).

These are the fleet-observability *primitives*; the end-to-end service
behavior (a real two-process job producing one stitched trace) lives
in tests/test_service.py::TestFleetObservability.
"""

import json
import math

import pytest

from repro.observe import (
    LATENCY_BOUNDS,
    Telemetry,
    validate_chrome_trace,
)
from repro.observe.__main__ import main as observe_main
from repro.observe.fleet import (
    DEFAULT_SEGMENT_SPANS,
    MetricsAggregator,
    TraceContext,
    coerce_segment,
    prometheus_text,
    sanitize_metric_name,
    split_metric_key,
    stitch_job_trace,
    telemetry_payload,
    validate_prometheus_text,
)


def make_segment(worker="w", host="h", pid=1, epoch=100.0,
                 spans=None, metrics=None, dropped=0):
    return {
        "traceparent": None,
        "worker": worker,
        "host": host,
        "pid": pid,
        "epoch_unix": epoch,
        "spans": spans if spans is not None else [
            ["span", "chunk.run", "chunk", 0.0, 0.5, None],
        ],
        "spans_dropped": dropped,
        "metrics": metrics,
    }


# ---------------------------------------------------------------------------
# TraceContext
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_mint_shapes(self):
        context = TraceContext.mint()
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16
        assert context.flags == "01"
        int(context.trace_id, 16)  # hex or raise

    def test_mint_is_unique(self):
        ids = {TraceContext.mint().trace_id for _ in range(32)}
        assert len(ids) == 32

    def test_child_keeps_trace_changes_span(self):
        root = TraceContext.mint()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id

    def test_traceparent_roundtrip(self):
        root = TraceContext.mint()
        parsed = TraceContext.parse(root.to_traceparent())
        assert parsed == root

    def test_parse_normalizes_case_and_whitespace(self):
        header = f"  00-{'AB' * 16}-{'CD' * 8}-01  "
        parsed = TraceContext.parse(header)
        assert parsed.trace_id == "ab" * 16

    @pytest.mark.parametrize("header", [
        "", None, "garbage", "00-short-short-01",
        f"00-{'g' * 32}-{'1' * 16}-01",        # non-hex
        f"00-{'1' * 32}-{'2' * 16}-01-extra",  # trailing junk
        f"00-{'0' * 32}-{'2' * 16}-01",        # all-zero trace id
        f"00-{'1' * 32}-{'0' * 16}-01",        # all-zero span id
    ])
    def test_parse_rejects_malformed(self, header):
        with pytest.raises(ValueError):
            TraceContext.parse(header)


# ---------------------------------------------------------------------------
# telemetry segments
# ---------------------------------------------------------------------------


class TestTelemetryPayload:
    def test_envelope_fields(self):
        hub = Telemetry()
        with hub.tracer.span("chunk.run", track="chunk"):
            pass
        hub.metrics.counter("worker.points", status="ok").inc()
        payload = telemetry_payload(hub, worker="w1",
                                    traceparent="00-" + "1" * 32
                                    + "-" + "2" * 16 + "-01")
        assert payload["worker"] == "w1"
        assert payload["spans_dropped"] == 0
        assert len(payload["spans"]) == 1
        assert payload["spans"][0][1] == "chunk.run"
        assert "worker.points[status=ok]" in \
            payload["metrics"]["counters"]
        # the payload must survive the wire
        json.dumps(payload)

    def test_epoch_unix_locates_relative_spans_on_wall_clock(self):
        import time
        hub = Telemetry()
        before = time.time()
        with hub.tracer.span("s", track="t"):
            pass
        payload = telemetry_payload(hub, worker="w")
        start = payload["spans"][0][3]
        absolute = payload["epoch_unix"] + start
        assert abs(absolute - before) < 5.0

    def test_cap_truncates_and_counts(self):
        hub = Telemetry()
        for index in range(10):
            with hub.tracer.span("s", track="t", index=index):
                pass
        payload = telemetry_payload(hub, worker="w", max_spans=4)
        assert len(payload["spans"]) == 4
        assert payload["spans_dropped"] == 6

    def test_tracer_cap_drops_are_included(self):
        hub = Telemetry(max_events=3)
        for _ in range(5):
            with hub.tracer.span("s", track="t"):
                pass
        assert hub.tracer.dropped == 2
        payload = telemetry_payload(hub, worker="w")
        assert payload["spans_dropped"] == 2


class TestCoerceSegment:
    @pytest.mark.parametrize("junk", [
        None, 17, "x", ["spans"], {"spans": "not-a-list",
                                   "epoch_unix": "soon"},
    ])
    def test_junk_never_raises(self, junk):
        segment = coerce_segment(junk)
        assert segment is None or isinstance(segment, dict)

    def test_server_side_cap_is_enforced(self):
        spans = [["span", "s", "t", float(i), 0.0, None]
                 for i in range(8)]
        segment = coerce_segment(make_segment(spans=spans, dropped=1),
                                 max_spans=5)
        assert len(segment["spans"]) == 5
        assert segment["spans_dropped"] == 1 + 3

    def test_default_cap_matches_contract(self):
        spans = [["span", "s", "t", 0.0, 0.0, None]] \
            * (DEFAULT_SEGMENT_SPANS + 7)
        segment = coerce_segment(make_segment(spans=spans))
        assert len(segment["spans"]) == DEFAULT_SEGMENT_SPANS
        assert segment["spans_dropped"] == 7


# ---------------------------------------------------------------------------
# trace stitching
# ---------------------------------------------------------------------------


class TestStitchJobTrace:
    def test_two_processes_one_valid_trace(self):
        a = make_segment(worker="pool", pid=10, epoch=100.0)
        b = make_segment(worker="pull-1", pid=20, epoch=100.2)
        trace = stitch_job_trace("00-" + "a" * 32 + "-" + "b" * 16
                                 + "-01", [a, b])
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["processes"] == 2
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M"
                 and e["name"] == "process_name"}
        assert names == {"pool (h:10)", "pull-1 (h:20)"}

    def test_rebases_onto_earliest_event(self):
        a = make_segment(epoch=100.0,
                         spans=[["span", "s", "t", 1.0, 0.5, None]])
        b = make_segment(worker="v", pid=2, epoch=50.0,
                         spans=[["span", "s", "t", 2.0, 0.5, None]])
        trace = stitch_job_trace(None, [a, b])
        stamps = sorted(e["ts"] for e in trace["traceEvents"]
                        if e.get("ph") == "X")
        # earliest absolute event (epoch 50 + 2.0) maps to ts 0; the
        # other (epoch 100 + 1.0) lands 49 wall-seconds later
        assert stamps[0] == 0.0
        assert abs(stamps[1] - 49.0 * 1e6) < 1.0

    def test_instants_and_attrs_survive(self):
        spans = [["instant", "cache.hit", "cache", 0.1, 0.0,
                  {"index": 3}]]
        trace = stitch_job_trace(None, [make_segment(spans=spans)])
        instants = [e for e in trace["traceEvents"]
                    if e.get("ph") == "i"]
        assert instants[0]["name"] == "cache.hit"
        assert instants[0]["s"] == "t"
        assert instants[0]["args"] == {"index": 3}

    def test_negative_duration_clamped(self):
        spans = [["span", "s", "t", 0.0, -1.0, None]]
        trace = stitch_job_trace(None, [make_segment(spans=spans)])
        assert validate_chrome_trace(trace) == []

    def test_garbage_events_counted_not_fatal(self):
        spans = [["span", "good", "t", 0.0, 0.1, None],
                 ["span", "bad", "t", "soon", 0.1, None],
                 ["wat", "bad-kind", "t", 0.0, 0.1, None]]
        trace = stitch_job_trace(None, [make_segment(spans=spans),
                                        "not-a-segment"])
        assert validate_chrome_trace(trace) == []
        body = [e for e in trace["traceEvents"]
                if e.get("ph") == "X"]
        assert [e["name"] for e in body] == ["good"]
        assert trace["otherData"]["dropped_events"] == 3

    def test_segment_drop_counts_propagate(self):
        trace = stitch_job_trace(None, [make_segment(dropped=4)])
        assert trace["otherData"]["dropped_events"] == 4

    def test_empty_input_is_a_valid_empty_trace(self):
        trace = stitch_job_trace(None, [])
        assert validate_chrome_trace(trace) == []
        assert trace["traceEvents"] == []
        assert trace["otherData"]["processes"] == 0


# ---------------------------------------------------------------------------
# MetricsAggregator
# ---------------------------------------------------------------------------


def hist_dump(bounds, values):
    from repro.observe.metrics import Histogram
    histogram = Histogram(bounds)
    for value in values:
        histogram.observe(value)
    return histogram.to_dict()


class TestMetricsAggregator:
    def test_counters_sum(self):
        aggregator = MetricsAggregator()
        aggregator.add({"counters": {"a": 3, "b[k=v]": 1}})
        aggregator.add({"counters": {"a": 4}})
        merged = aggregator.to_dict()
        assert merged["counters"]["a"] == 7
        assert merged["counters"]["b[k=v]"] == 1

    def test_gauges_last_write_wins(self):
        aggregator = MetricsAggregator()
        aggregator.add({"gauges": {"depth": 5}})
        aggregator.add({"gauges": {"depth": 2}})
        assert aggregator.to_dict()["gauges"]["depth"] == 2

    def test_histograms_bucket_merge_gives_pooled_quantiles(self):
        bounds = (1.0, 2.0, 4.0)
        aggregator = MetricsAggregator()
        aggregator.add({"histograms":
                        {"h": hist_dump(bounds, [0.5, 0.5])}})
        aggregator.add({"histograms":
                        {"h": hist_dump(bounds, [3.0, 3.0])}})
        view = aggregator.to_dict()["histograms"]["h"]
        assert view["count"] == 4
        assert view["sum"] == pytest.approx(7.0)
        assert view["min"] == 0.5 and view["max"] == 3.0
        assert sum(view["buckets"]) == 4
        # pooled p95 must land in the (2, 4] bucket, not the mean
        assert 2.0 <= view["p95"] <= 4.0

    def test_bounds_mismatch_keeps_moments_drops_buckets(self):
        aggregator = MetricsAggregator()
        aggregator.add({"histograms":
                        {"h": hist_dump((1.0, 2.0), [0.5])}})
        aggregator.add({"histograms":
                        {"h": hist_dump((10.0,), [20.0])}})
        view = aggregator.to_dict()["histograms"]["h"]
        assert view["count"] == 2
        assert "buckets" not in view
        assert view["p50"] == pytest.approx(view["mean"])

    def test_merged_is_non_mutating(self):
        aggregator = MetricsAggregator()
        aggregator.add({"counters": {"a": 1}})
        composite = aggregator.merged({"counters": {"a": 5}})
        assert composite["counters"]["a"] == 6
        assert aggregator.to_dict()["counters"]["a"] == 1

    def test_tolerates_junk(self):
        aggregator = MetricsAggregator()
        aggregator.add(None)
        aggregator.add({"counters": {"a": "NaN-string"},
                        "histograms": {"h": "junk"}})
        merged = aggregator.to_dict()
        assert merged["counters"] == {}
        assert merged["histograms"] == {}


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


class TestPrometheusText:
    def test_split_metric_key(self):
        assert split_metric_key("a.b") == ("a.b", {})
        assert split_metric_key("a.b[k=v,k2=v2]") == \
            ("a.b", {"k": "v", "k2": "v2"})

    def test_sanitize(self):
        assert sanitize_metric_name("job.wait seconds") == \
            "job_wait_seconds"
        assert sanitize_metric_name("0abc")[0] == "_"

    def test_counter_family_remap(self):
        text = prometheus_text({"counters": {
            "service.points.executed[tenant=ana]": 8,
            "service.jobs.submitted": 2}})
        assert 'service_points_total{kind="executed",tenant="ana"} 8' \
            in text
        assert 'service_jobs_total{event="submitted"} 2' in text
        assert validate_prometheus_text(text) == []

    def test_integer_values_render_as_integers(self):
        text = prometheus_text({"counters": {"a": 8.0}})
        assert "a_total 8\n" in text

    def test_label_escaping(self):
        text = prometheus_text({"gauges":
                                {'g[k=a"b\\c]': 1.5}})
        assert 'g{k="a\\"b\\\\c"} 1.5' in text
        assert validate_prometheus_text(text) == []

    def test_histogram_series_roundtrip(self):
        dump = hist_dump((0.1, 1.0), [0.05, 0.5, 5.0])
        text = prometheus_text({"histograms": {"h[tenant=t]": dump}})
        assert validate_prometheus_text(text) == []
        assert '# TYPE h histogram' in text
        assert 'h_bucket{le="+Inf",tenant="t"} 3' in text
        assert 'h_count{tenant="t"} 3' in text

    def test_validator_catches_missing_type(self):
        assert validate_prometheus_text("a_total 3\n")

    def test_validator_catches_non_cumulative_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 3\n")
        problems = validate_prometheus_text(text)
        assert any("cumulative" in p for p in problems)

    def test_validator_catches_inf_count_mismatch(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 4\n")
        problems = validate_prometheus_text(text)
        assert any("+Inf" in p for p in problems)

    def test_validator_catches_garbage_lines(self):
        assert validate_prometheus_text("!!! not prometheus\n")

    def test_aggregated_service_snapshot_is_valid(self):
        aggregator = MetricsAggregator()
        aggregator.add({
            "counters": {"service.points.executed[tenant=a]": 5,
                         "worker.points[status=ok]": 5},
            "gauges": {"queue.depth[tenant=a]": 0},
            "histograms": {"service.point.seconds[tenant=a]":
                           hist_dump(LATENCY_BOUNDS,
                                     [0.01, 0.2, 1.5])},
        })
        text = prometheus_text(aggregator.to_dict())
        assert validate_prometheus_text(text) == []


# ---------------------------------------------------------------------------
# latency bounds + truncation accounting (satellites 1 and 2)
# ---------------------------------------------------------------------------


class TestLatencyBounds:
    def test_power_of_two_coverage(self):
        assert LATENCY_BOUNDS[0] == pytest.approx(2.0 ** -10)
        assert LATENCY_BOUNDS[-1] == pytest.approx(64.0)
        ratios = [b / a for a, b in zip(LATENCY_BOUNDS,
                                        LATENCY_BOUNDS[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_latency_histogram_quantiles_resolve_millis(self):
        hub = Telemetry()
        histogram = hub.metrics.histogram("job.wait_seconds",
                                          bounds=LATENCY_BOUNDS)
        for value in (0.002, 0.004, 0.008):
            histogram.observe(value)
        assert histogram.quantile(0.5) < 0.02


class TestTruncationAccounting:
    def test_export_writes_dropped_counter(self, tmp_path):
        hub = Telemetry(max_events=2)
        for _ in range(5):
            with hub.tracer.span("s", track="t"):
                pass
        paths = hub.export(tmp_path)
        metrics = json.loads(paths["metrics"].read_text())
        assert metrics["counters"]["trace.events.dropped"] == 3

    def test_check_warns_on_truncation(self, tmp_path, capsys):
        hub = Telemetry(max_events=2)
        for _ in range(5):
            with hub.tracer.span("s", track="t"):
                pass
        hub.export(tmp_path)
        code = observe_main(["check", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0  # truncation is a warning, not a failure
        assert "truncated" in captured.err
        assert "3 event(s)" in captured.err

    def test_check_silent_when_complete(self, tmp_path, capsys):
        hub = Telemetry()
        with hub.tracer.span("s", track="t"):
            pass
        hub.export(tmp_path)
        code = observe_main(["check", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "truncated" not in captured.err


class TestPromcheckCli:
    def test_valid_scrape_passes(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text(prometheus_text(
            {"counters": {"service.points.executed": 8}}))
        code = observe_main(["promcheck", str(scrape)])
        captured = capsys.readouterr()
        assert code == 0
        assert "ok:" in captured.out

    def test_invalid_scrape_fails(self, tmp_path, capsys):
        scrape = tmp_path / "metrics.prom"
        scrape.write_text("definitely not prometheus !!\n")
        code = observe_main(["promcheck", str(scrape)])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err

    def test_missing_file_is_usage_error(self, capsys):
        code = observe_main(["promcheck", "/nonexistent/file.prom"])
        assert code == 2
