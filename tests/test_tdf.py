"""Tests for the TDF MoC: cluster discovery, rate analysis, timestep
propagation, static scheduling, delays, and DE converter ports."""

import numpy as np
import pytest

from repro.core import (
    ElaborationError,
    Module,
    SchedulingError,
    Signal,
    SimTime,
    Simulator,
    Trace,
)
from repro.tdf import TdfDeIn, TdfDeOut, TdfIn, TdfModule, TdfOut, TdfSignal


def us(x):
    return SimTime(x, "us")


class RampSource(TdfModule):
    """Emits 0, 1, 2, ... one sample per activation."""

    def __init__(self, name, parent=None, timestep=None, rate=1):
        super().__init__(name, parent)
        self.out = TdfOut("out", rate=rate)
        self._timestep = timestep
        self._n = 0

    def set_attributes(self):
        if self._timestep is not None:
            self.set_timestep(self._timestep)

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self._n), k)
            self._n += 1


class Collector(TdfModule):
    """Collects samples (rate per activation configurable)."""

    def __init__(self, name, parent=None, rate=1, delay=0, timestep=None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=rate, delay=delay)
        self.collected = []
        self._timestep = timestep

    def set_attributes(self):
        if self._timestep is not None:
            self.set_timestep(self._timestep)

    def processing(self):
        for k in range(self.inp.rate):
            self.collected.append(self.inp.read(k))


class ScaleBlock(TdfModule):
    def __init__(self, name, parent=None, gain=2.0):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.gain = gain

    def processing(self):
        self.out.write(self.gain * self.inp.read())


def build_chain(timestep=us(1), n_periods=4):
    class Top(Module):
        def __init__(self):
            super().__init__("top")
            self.sig_a = TdfSignal("a")
            self.sig_b = TdfSignal("b")
            self.src = RampSource("src", self, timestep=timestep)
            self.scale = ScaleBlock("scale", self)
            self.sink = Collector("sink", self)
            self.src.out(self.sig_a)
            self.scale.inp(self.sig_a)
            self.scale.out(self.sig_b)
            self.sink.inp(self.sig_b)

    return Top()


class TestBasicExecution:
    def test_chain_produces_scaled_ramp(self):
        top = build_chain()
        sim = Simulator(top)
        sim.run(us(10))
        # Periods at 0,1,...,10 us inclusive start -> 11 activations.
        assert top.sink.collected[:5] == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert len(top.sink.collected) == 11

    def test_timestep_propagates_to_all_modules(self):
        top = build_chain(timestep=us(5))
        sim = Simulator(top)
        sim.run(us(20))
        assert top.scale.timestep == us(5)
        assert top.sink.timestep == us(5)
        assert top.src.out.timestep == us(5)

    def test_local_time_runs_ahead(self):
        times = []

        class Probe(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")

            def processing(self):
                self.inp.read()
                times.append(self.local_time.ticks)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.src = RampSource("src", self, timestep=us(2))
                self.probe = Probe("probe", self)
                self.src.out(self.sig)
                self.probe.inp(self.sig)

        sim = Simulator(Top())
        sim.run(us(7))
        assert times == [0, us(2).ticks, us(4).ticks, us(6).ticks]


class TestMultirate:
    def test_downsampling_reader(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.src = RampSource("src", self, timestep=us(1))
                self.sink = Collector("sink", self, rate=4)
                self.src.out(self.sig)
                self.sink.inp(self.sig)

        top = Top()
        sim = Simulator(top)
        sim.run(us(8))
        # Sink activates once per 4 source activations.
        assert top.sink.activation_count in (2, 3)
        assert top.sink.collected[:8] == [float(k) for k in range(8)]
        assert top.sink.timestep == us(4)

    def test_rate_producer(self):
        class Burst(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.out = TdfOut("out", rate=3)
                self._n = 0

            def set_attributes(self):
                self.set_timestep(us(3))

            def processing(self):
                for k in range(3):
                    self.out.write(float(self._n), k)
                    self._n += 1

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.src = Burst("src", self)
                self.sink = Collector("sink", self)
                self.src.out(self.sig)
                self.sink.inp(self.sig)

        top = Top()
        sim = Simulator(top)
        sim.run(us(6))
        # Sink timestep = 1 us (3 activations per 3 us period).
        assert top.sink.timestep == us(1)
        assert top.sink.collected[:6] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


class TestDelaysAndFeedback:
    def test_reader_delay_prepends_initial(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.src = RampSource("src", self, timestep=us(1))
                self.sink = Collector("sink", self, delay=2)
                self.sink.inp.initial_value = -1.0
                self.src.out(self.sig)
                self.sink.inp(self.sig)

        top = Top()
        sim = Simulator(top)
        sim.run(us(5))
        assert top.sink.collected[:5] == [-1.0, -1.0, 0.0, 1.0, 2.0]

    def test_feedback_without_delay_deadlocks(self):
        class Loop(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(us(1))

            def processing(self):
                self.out.write(self.inp.read() + 1.0)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.loop = Loop("loop", self)
                self.loop.out(self.sig)
                self.loop.inp(self.sig)

        sim = Simulator(Top())
        with pytest.raises(SchedulingError):
            sim.run(us(3))

    def test_feedback_with_delay_accumulates(self):
        class Acc(TdfModule):
            """y[n] = y[n-1] + 1 via an out-port delay of one sample."""

            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")
                self.out = TdfOut("out", delay=1)
                self.history = []

            def set_attributes(self):
                self.set_timestep(us(1))

            def processing(self):
                value = self.inp.read() + 1.0
                self.history.append(value)
                self.out.write(value)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.acc = Acc("acc", self)
                self.acc.out(self.sig)
                self.acc.inp(self.sig)

        top = Top()
        sim = Simulator(top)
        sim.run(us(4))
        assert top.acc.history[:5] == [1.0, 2.0, 3.0, 4.0, 5.0]


class TestTimestepValidation:
    def test_no_timestep_anywhere_rejected(self):
        top = build_chain(timestep=None)
        sim = Simulator(top)
        with pytest.raises(ElaborationError):
            sim.run(us(1))

    def test_conflicting_timesteps_rejected(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.src = RampSource("src", self, timestep=us(1))
                self.sink = Collector("sink", self, timestep=us(2))
                self.src.out(self.sig)
                self.sink.inp(self.sig)

        sim = Simulator(Top())
        with pytest.raises(ElaborationError):
            sim.run(us(1))

    def test_port_timestep_constraint(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.src = RampSource("src", self)
                self.sink = Collector("sink", self, rate=2)
                self.src.out(self.sig)
                self.sink.inp(self.sig)
                # Constrain via the sink's input port: 1 us per sample,
                # rate 2 -> sink module timestep 2 us, src 1 us.
                self.sink.inp.set_timestep(us(1))

        top = Top()
        sim = Simulator(top)
        sim.run(us(4))
        assert top.src.timestep == us(1)
        assert top.sink.timestep == us(2)

    def test_rate_inconsistency_detected(self):
        class TwoIn(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.a = TdfIn("a", rate=1)
                self.b = TdfIn("b", rate=2)

            def set_attributes(self):
                self.set_timestep(us(1))

            def processing(self):
                self.a.read()
                self.b.read()

        class Fork(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.o1 = TdfOut("o1")
                self.o2 = TdfOut("o2")

            def processing(self):
                self.o1.write(0.0)
                self.o2.write(0.0)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.s1 = TdfSignal("s1")
                self.s2 = TdfSignal("s2")
                self.fork = Fork("fork", self)
                self.two = TwoIn("two", self)
                self.fork.o1(self.s1)
                self.fork.o2(self.s2)
                self.two.a(self.s1)
                self.two.b(self.s2)

        sim = Simulator(Top())
        with pytest.raises(SchedulingError):
            sim.run(us(1))

    def test_unbound_port_rejected(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.src = RampSource("src", self, timestep=us(1))

        sim = Simulator(Top())
        with pytest.raises(ElaborationError):
            sim.run(us(1))


class TestDeConverters:
    def test_tdf_to_de_sample_times(self):
        class ToDe(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp")
                self.out = TdfDeOut("out")

            def processing(self):
                self.out.write(self.inp.read())

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.de_sig = Signal("de", initial=0.0)
                self.src = RampSource("src", self, timestep=us(3))
                self.conv = ToDe("conv", self)
                self.src.out(self.sig)
                self.conv.inp(self.sig)
                self.conv.out(self.de_sig)

        top = Top()
        trace = Trace()
        trace.watch(top.de_sig, "de")
        sim = Simulator(top, trace=trace)
        sim.run(us(10))
        chan = trace["de"]
        # Samples 1.0, 2.0, 3.0 land at 3, 6, 9 us (0.0 = initial).
        assert chan.value_at(us(4)) == 1.0
        assert chan.value_at(us(7)) == 2.0
        assert chan.value_at(us(9)) == 3.0

    def test_multirate_de_out_offsets(self):
        class BurstToDe(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfIn("inp", rate=2)
                self.out = TdfDeOut("out", rate=2)

            def set_attributes(self):
                self.set_timestep(us(4))

            def processing(self):
                self.out.write(self.inp.read(0), 0)
                self.out.write(self.inp.read(1), 1)

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.de_sig = Signal("de", initial=-1.0)
                self.src = RampSource("src", self)
                self.conv = BurstToDe("conv", self)
                self.src.out(self.sig)
                self.conv.inp(self.sig)
                self.conv.out(self.de_sig)

        top = Top()
        trace = Trace()
        trace.watch(top.de_sig, "de")
        sim = Simulator(top, trace=trace)
        sim.run(us(9))
        chan = trace["de"]
        # Two samples per 4 us period: at 0 and 2 us offsets.
        assert chan.value_at(us(1)) == 0.0
        assert chan.value_at(us(3)) == 1.0
        assert chan.value_at(us(5)) == 2.0
        assert chan.value_at(us(7)) == 3.0

    def test_de_to_tdf_sampling(self):
        class FromDe(TdfModule):
            def __init__(self, name, parent=None):
                super().__init__(name, parent)
                self.inp = TdfDeIn("inp")
                self.out = TdfOut("out")

            def set_attributes(self):
                self.set_timestep(us(2))

            def processing(self):
                self.out.write(self.inp.read())

        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.de_sig = Signal("de", initial=0.0)
                self.sig = TdfSignal("s")
                self.conv = FromDe("conv", self)
                self.sink = Collector("sink", self)
                self.conv.inp(self.de_sig)
                self.conv.out(self.sig)
                self.sink.inp(self.sig)
                self.thread(self.stim)

            def stim(self):
                yield us(3)
                self.de_sig.write(10.0)
                yield us(4)
                self.de_sig.write(20.0)

        top = Top()
        sim = Simulator(top)
        sim.run(us(9))
        # Sampled at 0, 2, 4, 6, 8 us: values 0, 0, 10, 10, 20.
        assert top.sink.collected == [0.0, 0.0, 10.0, 10.0, 20.0]


class TestMultiReader:
    def test_one_writer_two_readers(self):
        class Top(Module):
            def __init__(self):
                super().__init__("top")
                self.sig = TdfSignal("s")
                self.src = RampSource("src", self, timestep=us(1))
                self.sink1 = Collector("sink1", self)
                self.sink2 = Collector("sink2", self, rate=2)
                self.src.out(self.sig)
                self.sink1.inp(self.sig)
                self.sink2.inp(self.sig)

        top = Top()
        sim = Simulator(top)
        sim.run(us(6))
        assert top.sink1.collected[:6] == [float(k) for k in range(6)]
        assert top.sink2.collected[:6] == [float(k) for k in range(6)]

    def test_double_writer_rejected(self):
        sig = TdfSignal("s")
        a = RampSource("a")
        b = RampSource("b")
        a.out(sig)
        with pytest.raises(ElaborationError):
            b.out(sig)
