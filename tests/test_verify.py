"""Static model verifier: rules, CLI, simulator and campaign hooks.

Each rule gets at least one fabricated failing model asserting the
exact rule id and location, plus positive coverage proving the clean
path stays silent; seed example models are regression-checked to
verify with zero findings.
"""

import json
import sys
import textwrap
from pathlib import Path

import pytest

from repro.campaign import Campaign, CampaignRunner
from repro.campaign.cache import cache_key
from repro.core import (
    Clock,
    ElaborationError,
    InPort,
    Module,
    Signal,
    SimTime,
    Simulator,
)
from repro.eln import (
    Capacitor,
    Cccs,
    Inductor,
    Isource,
    Network,
    Resistor,
    Vccs,
    Vsource,
)
from repro.sdf import Actor, SdfGraph
from repro.tdf import TdfDeIn, TdfDeOut, TdfIn, TdfModule, TdfOut, TdfSignal
from repro.verify import (
    StaticVerificationError,
    all_rules,
    ruleset_version,
    verify,
)
from repro.verify.__main__ import main as verify_main

TS = SimTime(1, "us")


# ---------------------------------------------------------------------------
# model-building helpers
# ---------------------------------------------------------------------------

class Src(TdfModule):
    """TDF source with configurable rate/delay/timestep."""

    def __init__(self, name, parent=None, rate=1, delay=0,
                 timestep=None):
        super().__init__(name, parent)
        self.out = TdfOut("out", rate=rate, delay=delay)
        self._ts = timestep

    def set_attributes(self):
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        self.out.write(0.0)


class Sink(TdfModule):
    def __init__(self, name, parent=None, rate=1, timestep=None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=rate)
        self._ts = timestep

    def set_attributes(self):
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        self.inp.read()


class Passthrough(TdfModule):
    def __init__(self, name, parent=None, in_rate=1, out_rate=1,
                 out_delay=0, timestep=None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=in_rate)
        self.out = TdfOut("out", rate=out_rate, delay=out_delay)
        self._ts = timestep

    def set_attributes(self):
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        self.out.write(self.inp.read())


def clean_pair():
    """A minimal clean TDF model (source -> sink, timestep set)."""
    top = Module("top")
    src = Src("src", top, timestep=TS)
    sink = Sink("sink", top)
    sig = TdfSignal("s")
    src.out(sig)
    sink.inp(sig)
    return top


def rules_of(report):
    return {d.rule for d in report}


# ---------------------------------------------------------------------------
# CORE rules
# ---------------------------------------------------------------------------

def test_core001_duplicate_names():
    top = Module("top")
    Module("a.b", parent=top)                 # full name "top.a.b"
    Module("b", parent=Module("a", parent=top))  # also "top.a.b"
    report = verify(top)
    hits = report.by_rule("CORE001")
    assert len(hits) == 1
    assert hits[0].location == "top.a.b"
    assert hits[0].severity == "error"


def test_core002_unbound_de_port():
    top = Module("top")
    child = Module("child", parent=top)
    child.inp = InPort("inp")
    report = verify(top)
    hits = report.by_rule("CORE002")
    assert [d.location for d in hits] == ["top.child.inp"]


def test_core002_binding_cycle():
    top = Module("top")
    top.a = InPort("a")
    top.b = InPort("b")
    top.a.bind(top.b)
    top.b.bind(top.a)
    report = verify(top)
    assert {d.location for d in report.by_rule("CORE002")} == \
        {"top.a", "top.b"}
    assert "cycle" in report.by_rule("CORE002")[0].message


def test_core003_process_never_runs():
    top = Module("top")
    top.method(lambda: None, sensitivity=(), dont_initialize=True,
               name="dead")
    report = verify(top)
    hits = report.by_rule("CORE003")
    assert [d.location for d in hits] == ["top.dead"]
    assert hits[0].severity == "warning"
    # the report is still ok (no errors)
    assert report.ok and not report.clean()


def test_core004_bad_sensitivity_entry():
    top = Module("top")
    top.method(lambda: None, sensitivity=[42], name="proc")
    report = verify(top)
    assert [d.location for d in report.by_rule("CORE004")] == \
        ["top.proc"]


def test_core_clean_process_is_silent():
    top = Module("top")
    sig = Signal("s")
    top.method(lambda: None, sensitivity=[sig], name="proc")
    top.thread(lambda: iter(()), name="boot")  # runs once at init
    report = verify(top)
    assert not report.by_rule("CORE003")
    assert not report.by_rule("CORE004")


# ---------------------------------------------------------------------------
# TDF rules
# ---------------------------------------------------------------------------

def test_tdf001_unbound_port():
    top = Module("top")
    Src("src", top, timestep=TS)  # out port never bound
    report = verify(top)
    assert [d.location for d in report.by_rule("TDF001")] == \
        ["top.src.out"]


def test_tdf002_signal_without_writer():
    top = Module("top")
    sink = Sink("sink", top, timestep=TS)
    sink.inp(TdfSignal("orphan"))
    report = verify(top)
    hits = report.by_rule("TDF002")
    assert len(hits) == 1 and hits[0].location == "orphan"
    assert hits[0].data["readers"] == ["top.sink.inp"]


def test_tdf003_signal_without_readers():
    top = Module("top")
    src = Src("src", top, timestep=TS)
    src.out(TdfSignal("deadend"))
    report = verify(top)
    hits = report.by_rule("TDF003")
    assert len(hits) == 1 and hits[0].location == "deadend"
    assert hits[0].severity == "warning"


def test_tdf004_rate_inconsistent():
    top = Module("top")
    src = Src("src", top, rate=2, timestep=TS)
    mid = Passthrough("mid", top, in_rate=3, out_rate=1)
    sink = Sink("sink", top, rate=1)
    s1, s2, s3 = TdfSignal("s1"), TdfSignal("s2"), TdfSignal("s3")
    src.out(s1)
    mid.inp(s1)
    mid.out(s2)
    sink.inp(s2)
    # second, conflicting constraint: src drives sink 1:1 via another
    # port pair
    src.out2 = TdfOut("out2", rate=1)
    sink.inp2 = TdfIn("inp2", rate=1)
    src.out2(s3)
    sink.inp2(s3)
    report = verify(top)
    assert report.by_rule("TDF004")
    assert not report.ok


def test_tdf005_no_timestep():
    top = Module("top")
    src = Src("src", top)          # nobody declares a timestep
    sink = Sink("sink", top)
    sig = TdfSignal("s")
    src.out(sig)
    sink.inp(sig)
    report = verify(top)
    hits = report.by_rule("TDF005")
    assert len(hits) == 1
    assert set(hits[0].data["members"]) == {"top.src", "top.sink"}


def test_tdf006_conflicting_timesteps():
    top = Module("top")
    src = Src("src", top, timestep=SimTime(1, "us"))
    sink = Sink("sink", top, timestep=SimTime(3, "us"))
    sig = TdfSignal("s")
    src.out(sig)
    sink.inp(sig)
    report = verify(top)
    hits = report.by_rule("TDF006")
    assert hits and hits[0].location in ("top.src", "top.sink")


def test_tdf007_rate_divisibility():
    top = Module("top")
    src = Src("src", top, rate=3, timestep=SimTime(1, "fs"))
    sink = Sink("sink", top, rate=3)
    sig = TdfSignal("s")
    src.out(sig)
    sink.inp(sig)
    report = verify(top)  # 1 fs module timestep % rate 3 != 0
    assert any(d.location == "top.src.out"
               for d in report.by_rule("TDF007"))


def test_tdf008_zero_delay_feedback_deadlock():
    top = Module("top")
    fwd = Passthrough("fwd", top, timestep=TS)
    back = Passthrough("back", top)
    ab, ba = TdfSignal("ab"), TdfSignal("ba")
    fwd.out(ab)
    back.inp(ab)
    back.out(ba)
    fwd.inp(ba)
    report = verify(top)
    hits = report.by_rule("TDF008")
    assert len(hits) == 1
    assert set(hits[0].data["stuck"]) == {"top.fwd", "top.back"}
    assert sorted(hits[0].data["cycles"][0]) == ["top.back", "top.fwd"]


def test_tdf008_delay_breaks_the_loop():
    top = Module("top")
    fwd = Passthrough("fwd", top, timestep=TS)
    back = Passthrough("back", top, out_delay=1)
    ab, ba = TdfSignal("ab"), TdfSignal("ba")
    fwd.out(ab)
    back.inp(ab)
    back.out(ba)
    fwd.inp(ba)
    report = verify(top)
    assert not report.by_rule("TDF008")
    assert report.ok


def test_tdf009_batching_pinned_is_info():
    top = Module("top")
    src = Src("src", top, timestep=TS)
    sink = Sink("sink", top)
    type(sink).batch_unsafe = True
    try:
        sig = TdfSignal("s")
        src.out(sig)
        sink.inp(sig)
        report = verify(top)
        hits = report.by_rule("TDF009")
        assert [d.location for d in hits] == ["top.sink"]
        assert hits[0].severity == "info"
        assert report.ok
    finally:
        type(sink).batch_unsafe = False


def test_tdf010_invalid_port_attributes():
    top = Module("top")
    src = Src("src", top, rate=0, timestep=TS)
    sink = Sink("sink", top)
    sink.inp._delay = -1
    sig = TdfSignal("s")
    src.out(sig)
    sink.inp(sig)
    report = verify(top)
    locations = {d.location for d in report.by_rule("TDF010")}
    assert locations == {"top.src.out", "top.sink.inp"}


# ---------------------------------------------------------------------------
# SDF rules
# ---------------------------------------------------------------------------

def _actor(name, inputs=None, outputs=None):
    return Actor(name, input_rates=inputs, output_rates=outputs)


def test_sdf001_rate_inconsistent():
    graph = SdfGraph("bad")
    a = _actor("a", inputs={"in": 1}, outputs={"out": 2})
    b = _actor("b", inputs={"in": 1}, outputs={"out": 1})
    graph.connect(a, "out", b, "in")
    graph.connect(b, "out", a, "in", initial_tokens=[0.0, 0.0])
    report = verify(graph)
    hits = report.by_rule("SDF001")
    assert hits and hits[0].location == "bad"
    assert "rate-inconsistent" in hits[0].message
    # SDF002/SDF005 stay silent on rate-broken graphs
    assert not report.by_rule("SDF002")
    assert not report.by_rule("SDF005")


def test_sdf002_deadlock_and_cycle_listing():
    graph = SdfGraph("dead")
    a = _actor("a", inputs={"in": 1}, outputs={"out": 1})
    b = _actor("b", inputs={"in": 1}, outputs={"out": 1})
    graph.connect(a, "out", b, "in")
    graph.connect(b, "out", a, "in")  # no initial tokens
    report = verify(graph)
    hits = report.by_rule("SDF002")
    assert len(hits) == 1
    assert hits[0].location == "dead.a"
    assert hits[0].data["cycles"] == [["a", "b"]]


def test_sdf002_initial_tokens_unlock():
    graph = SdfGraph("ok")
    a = _actor("a", inputs={"in": 1}, outputs={"out": 1})
    b = _actor("b", inputs={"in": 1}, outputs={"out": 1})
    graph.connect(a, "out", b, "in")
    graph.connect(b, "out", a, "in", initial_tokens=[0.0])
    report = verify(graph)
    assert not report.by_rule("SDF002")
    assert report.ok


def test_sdf003_undriven_input():
    graph = SdfGraph("g")
    a = _actor("a", outputs={"out": 1})
    b = _actor("b", inputs={"in": 1, "unused": 1})
    graph.connect(a, "out", b, "in")
    report = verify(graph)
    assert [d.location for d in report.by_rule("SDF003")] == \
        ["g.b.unused"]


def test_sdf004_unconnected_output():
    graph = SdfGraph("g")
    a = _actor("a", outputs={"out": 1, "spare": 1})
    b = _actor("b", inputs={"in": 1})
    graph.connect(a, "out", b, "in")
    report = verify(graph)
    hits = report.by_rule("SDF004")
    assert [d.location for d in hits] == ["g.a.spare"]
    assert hits[0].severity == "warning"


def test_sdf005_buffer_bound():
    graph = SdfGraph("big")
    a = _actor("a", outputs={"out": 8192})
    b = _actor("b", inputs={"in": 1})
    graph.connect(a, "out", b, "in")
    report = verify(graph)
    hits = report.by_rule("SDF005")
    assert len(hits) == 1
    assert hits[0].location == "big.a.out->b.in"
    assert hits[0].data["bound"] == 8192


# ---------------------------------------------------------------------------
# ELN rules
# ---------------------------------------------------------------------------

def test_eln001_dangling_node():
    net = Network("n")
    net.add(Vsource("V1", "in", "0"))
    net.add(Resistor("R1", "in", "out", 1e3))  # "out" dangles
    report = verify(net)
    hits = report.by_rule("ELN001")
    assert [d.location for d in hits] == ["n.out"]
    assert hits[0].severity == "warning"


def test_eln002_floating_subcircuit():
    net = Network("n")
    net.add(Vsource("V1", "in", "0"))
    net.add(Resistor("R1", "in", "0", 1e3))
    net.add(Resistor("R2", "x", "y", 1e3))  # island {x, y}
    report = verify(net)
    hits = report.by_rule("ELN002")
    assert len(hits) == 1
    assert hits[0].location == "n.x"
    assert hits[0].data["nodes"] == ["x", "y"]


def test_eln003_voltage_source_loop():
    net = Network("n")
    net.add(Vsource("V1", "a", "0"))
    net.add(Vsource("V2", "a", "0"))  # parallel sources
    report = verify(net)
    assert [d.location for d in report.by_rule("ELN003")] == ["n.V2"]


def test_eln003_inductor_across_source():
    net = Network("n")
    net.add(Vsource("V1", "a", "0"))
    net.add(Inductor("L1", "a", "0", 1e-3))
    report = verify(net)
    assert report.by_rule("ELN003")


def test_eln004_capacitor_cutset():
    net = Network("n")
    net.add(Isource("I1", "a", "0", 1e-3))
    net.add(Capacitor("C1", "a", "0", 1e-9))
    report = verify(net)
    hits = report.by_rule("ELN004")
    assert [d.location for d in hits] == ["n.a"]


def test_eln004_resistor_provides_dc_path():
    net = Network("n")
    net.add(Isource("I1", "a", "0", 1e-3))
    net.add(Capacitor("C1", "a", "0", 1e-9))
    net.add(Resistor("R1", "a", "0", 1e6))
    report = verify(net)
    assert not report.by_rule("ELN004")
    assert report.ok


def test_eln005_structurally_singular():
    net = Network("n")
    net.add(Vsource("V1", "in", "0"))
    net.add(Resistor("R1", "in", "out", 1e3))
    net.add(Resistor("R2", "out", "0", 1e3))
    # control nodes cp/cn appear in no KCL equation: zero rows
    net.add(Vccs("G1", "out", "0", "cp", "cn", 1e-3))
    report = verify(net)
    hits = report.by_rule("ELN005")
    assert len(hits) == 1
    assert hits[0].location == "n.n"
    assert "v(cp)" in hits[0].data["unknowns"]


def test_eln006_self_short():
    net = Network("n")
    net.add(Vsource("V1", "a", "0"))
    net.add(Resistor("R1", "a", "0", 50.0))
    net.add(Resistor("Rshort", "a", "a", 1.0))
    report = verify(net)
    hits = report.by_rule("ELN006")
    assert [d.location for d in hits] == ["n.Rshort"]
    assert hits[0].severity == "warning"


def test_eln007_bad_current_control():
    net = Network("n")
    net.add(Vsource("V1", "in", "0"))
    net.add(Resistor("R1", "in", "0", 1e3))
    net.add(Cccs("F1", "in", "0", "nope", 2.0))     # missing
    net.add(Cccs("F2", "in", "0", "R1", 2.0))       # no branch current
    report = verify(net)
    assert {d.location for d in report.by_rule("ELN007")} == \
        {"n.F1", "n.F2"}


def test_eln008_empty_network():
    report = verify(Network("void"))
    hits = report.by_rule("ELN008")
    assert [d.location for d in hits] == ["void.void"]
    # and that's the only finding
    assert len(report) == 1


def test_eln_clean_rc_divider():
    net = Network("rc")
    net.add(Vsource("V1", "in", "0"))
    net.add(Resistor("R1", "in", "out", 1e3))
    net.add(Capacitor("C1", "out", "0", 1e-9))
    report = verify(net)
    assert report.clean()


# ---------------------------------------------------------------------------
# SYNC rules
# ---------------------------------------------------------------------------

class Bridge(TdfModule):
    """TDF module with converter ports on both sides."""

    def __init__(self, name, parent=None, timestep=TS, out_rate=1):
        super().__init__(name, parent)
        self.cmd = TdfDeIn("cmd")
        self.meas = TdfDeOut("meas", rate=out_rate)
        self._ts = timestep

    def set_attributes(self):
        if self._ts is not None:
            self.set_timestep(self._ts)

    def processing(self):
        self.meas.write(self.cmd.read())


def test_sync001_unbound_converter():
    top = Module("top")
    Bridge("bridge", top)  # converter DE sides never bound
    report = verify(top)
    locations = {d.location for d in report.by_rule("SYNC001")}
    assert locations == {"top.bridge.cmd", "top.bridge.meas"}


def test_sync002_rate_indivisible():
    top = Module("top")
    bridge = Bridge("bridge", top, timestep=SimTime.from_ticks(10),
                    out_rate=3)
    bridge.cmd.bind(Signal("a"))
    bridge.meas.bind(Signal("b"))
    report = verify(top)  # 10 ticks % rate 3 != 0
    assert [d.location for d in report.by_rule("SYNC002")] == \
        ["top.bridge.meas"]


def test_sync003_clock_undersampled():
    top = Module("top")
    clock = Clock("clk", SimTime(1, "us"), parent=top)
    bridge = Bridge("bridge", top, timestep=SimTime(5, "us"))
    bridge.cmd.bind(clock.signal)
    bridge.meas.bind(Signal("b"))
    report = verify(top)
    hits = report.by_rule("SYNC003")
    assert [d.location for d in hits] == ["top.bridge.cmd"]
    assert "missed" in hits[0].message


def test_sync003_incommensurate_clock():
    top = Module("top")
    clock = Clock("clk", SimTime(3, "us"), parent=top)
    bridge = Bridge("bridge", top, timestep=SimTime(2, "us"))
    bridge.cmd.bind(clock.signal)
    bridge.meas.bind(Signal("b"))
    report = verify(top)
    hits = report.by_rule("SYNC003")
    assert hits and "jitter" in hits[0].message


def test_sync003_commensurate_clock_is_clean():
    top = Module("top")
    clock = Clock("clk", SimTime(4, "us"), parent=top)
    bridge = Bridge("bridge", top, timestep=SimTime(2, "us"))
    bridge.cmd.bind(clock.signal)
    bridge.meas.bind(Signal("b"))
    report = verify(top)
    assert not report.by_rule("SYNC003")


def test_sync004_type_mismatch():
    top = Module("top")
    bridge = Bridge("bridge", top)
    bridge.cmd.bind(Signal("mode", initial="idle"))
    bridge.meas.bind(Signal("b"))
    report = verify(top)
    hits = report.by_rule("SYNC004")
    assert [d.location for d in hits] == ["top.bridge.cmd"]
    assert hits[0].severity == "warning"


# ---------------------------------------------------------------------------
# report / registry machinery
# ---------------------------------------------------------------------------

def test_report_sorting_counts_and_json():
    top = Module("top")
    Src("src", top)  # unbound port (error) + no timestep... one module
    top.method(lambda: None, sensitivity=(), dont_initialize=True,
               name="dead")
    report = verify(top)
    assert not report.ok
    severities = [d.severity for d in report]
    assert severities == sorted(
        severities, key=["error", "warning", "info"].index)
    counts = report.counts()
    assert counts["error"] >= 1 and counts["warning"] >= 1
    payload = json.loads(report.to_json())
    assert payload["schema"] == 2
    assert payload["ok"] is False
    assert payload["ruleset"] == ruleset_version()
    assert len(payload["diagnostics"]) == len(report)


def test_raise_if_errors_is_elaboration_error():
    top = Module("top")
    Src("src", top)
    report = verify(top)
    with pytest.raises(StaticVerificationError) as excinfo:
        report.raise_if_errors()
    assert isinstance(excinfo.value, ElaborationError)
    assert excinfo.value.report is report
    assert "TDF001" in str(excinfo.value)


def test_select_and_ignore_prefixes():
    top = Module("top")
    src = Src("src", top)          # TDF001 (unbound) + TDF005 family
    top.method(lambda: None, sensitivity=[object()], name="proc")
    full = verify(top)
    assert {d.rule[:3] for d in full} >= {"TDF", "COR"}
    only_tdf = verify(top, select=["TDF"])
    assert rules_of(only_tdf) and all(
        r.startswith("TDF") for r in rules_of(only_tdf))
    no_tdf = verify(top, ignore=["TDF"])
    assert not any(r.startswith("TDF") for r in rules_of(no_tdf))
    narrow = verify(top, select=["TDF"], ignore=["TDF001"])
    assert "TDF001" not in rules_of(narrow)


def test_every_rule_has_description_and_valid_severity():
    rules = all_rules()
    assert len(rules) >= 25
    for rule in rules.values():
        assert rule.description
        assert rule.severity in ("error", "warning", "info")


def test_ruleset_version_format():
    version = ruleset_version()
    assert version == ruleset_version()  # stable within a process
    epoch, _, digest = version.partition("-")
    assert epoch and len(digest) == 12


def test_verify_rejects_unknown_targets():
    with pytest.raises(TypeError):
        verify(42)


# ---------------------------------------------------------------------------
# Simulator integration
# ---------------------------------------------------------------------------

def test_simulator_verify_error_gates_elaboration():
    top = Module("top")
    Src("src", top)  # unbound TDF port
    simulator = Simulator(top, verify="error")
    with pytest.raises(StaticVerificationError):
        simulator.run(SimTime(1, "us"))


def test_simulator_verify_warn_logs_and_continues(caplog):
    top = clean_pair()
    top.method(lambda: None, sensitivity=(), dont_initialize=True,
               name="dead")  # CORE003 warning only
    simulator = Simulator(top, verify="warn")
    import logging

    with caplog.at_level(logging.WARNING, logger="repro.verify"):
        simulator.run(SimTime(5, "us"))
    assert simulator.verification_report is not None
    assert simulator.verification_report.ok
    assert any("CORE003" in message for message in caplog.messages)


def test_simulator_verify_off_by_default():
    simulator = Simulator(clean_pair())
    simulator.run(SimTime(5, "us"))
    assert simulator.verification_report is None


def test_simulator_rejects_bad_verify_mode():
    with pytest.raises(ValueError):
        Simulator(Module("top"), verify="loud")


# ---------------------------------------------------------------------------
# Module.path() and full-path binding errors (satellite bugfix)
# ---------------------------------------------------------------------------

def test_module_path_alias():
    top = Module("top")
    inner = Module("inner", parent=Module("mid", parent=top))
    assert inner.path() == "top.mid.inner" == inner.full_name()


def test_binding_error_includes_full_path():
    top = Module("top")
    leaf = Module("leaf", parent=Module("mid", parent=top))
    leaf.inp = InPort("inp")
    with pytest.raises(ElaborationError, match=r"top\.mid\.leaf"):
        Simulator(top).elaborate()


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------

def _campaign_build(params):
    if params["broken"]:
        top = Module("top")
        Src("src", top)  # unbound port -> verification error
    else:
        top = clean_pair()
        top.metrics = lambda: {"x": 1.0}
    return Simulator(top)


def _campaign(tmp_path, verify_mode="auto"):
    from repro.campaign.spec import FixedPoints

    return CampaignRunner(
        Campaign(
            name="preflight",
            space=FixedPoints([{"broken": False}, {"broken": True},
                               {"broken": False}]),
            build=_campaign_build,
            duration=SimTime(5, "us"),
            metrics=lambda top: {"x": 1.0},
            seed_key=None,
        ),
        out_dir=tmp_path, use_cache=False, retries=0,
        verify=verify_mode,
    )


def test_campaign_preflight_rejects_static_failures(tmp_path):
    runner = _campaign(tmp_path)
    results = runner.run()
    records = list(results)
    assert [r.status for r in records] == ["ok", "failed", "ok"]
    assert records[1].failure_kind == "static"
    assert "TDF001" in records[1].error
    # the broken point never reached a worker
    assert runner.stats["static"] == 1
    assert runner.stats["executed"] == 2
    assert runner.stats["failed"] == 1
    # and its verification report was persisted for postmortem
    diagnostic = json.loads(
        (tmp_path / "failures" / "run_00001.diagnostic.json")
        .read_text())
    assert diagnostic["failure_kind"] == "static"
    assert diagnostic["verification"]["ok"] is False


def test_campaign_preflight_off_dispatches_everything(tmp_path):
    runner = _campaign(tmp_path, verify_mode="off")
    results = runner.run()
    assert runner.stats["static"] == 0
    assert runner.stats["executed"] == 3
    # the broken point still fails, but only inside execution, where
    # elaboration raises
    assert [r.status for r in results] == ["ok", "failed", "ok"]
    assert list(results)[1].failure_kind == "permanent"


def test_cache_key_incorporates_ruleset():
    params = {"a": 1}
    base = cache_key("c", params, "v1")
    assert cache_key("c", params, "v1") == base          # 3-arg compat
    with_rules = cache_key("c", params, "v1", "rules-1")
    assert with_rules != base
    assert cache_key("c", params, "v1", "rules-2") != with_rules


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

CLEAN_MODEL = textwrap.dedent("""\
    from repro.eln import Network, Resistor, Vsource

    def build_divider():
        net = Network("div")
        net.add(Vsource("V1", "in", "0"))
        net.add(Resistor("R1", "in", "out", 1e3))
        net.add(Resistor("R2", "out", "0", 1e3))
        return net
""")

BROKEN_MODEL = textwrap.dedent("""\
    from repro.eln import Network

    NET = Network("void")
""")

WARNING_MODEL = textwrap.dedent("""\
    from repro.eln import Network, Resistor, Vsource

    NET = Network("warn")
    NET.add(Vsource("V1", "in", "0"))
    NET.add(Resistor("R1", "in", "out", 1e3))   # "out" dangles
""")


def test_cli_clean_model_exits_zero(tmp_path, capsys):
    model = tmp_path / "clean_model.py"
    model.write_text(CLEAN_MODEL)
    assert verify_main([str(model)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_broken_model_exits_one(tmp_path, capsys):
    model = tmp_path / "broken_model.py"
    model.write_text(BROKEN_MODEL)
    assert verify_main([str(model)]) == 1
    assert "ELN008" in capsys.readouterr().out


def test_cli_explicit_target_and_json_schema(tmp_path, capsys):
    model = tmp_path / "named_model.py"
    model.write_text(BROKEN_MODEL)
    assert verify_main([f"{model}::NET", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 2
    assert payload["ok"] is False
    assert payload["ruleset"] == ruleset_version()
    (report,) = payload["reports"]
    assert report["target"] == f"{model}::NET"
    (diag,) = report["diagnostics"]
    assert diag["rule"] == "ELN008"
    assert diag["severity"] == "error"
    assert set(diag) >= {"rule", "severity", "location", "message"}


def test_cli_strict_promotes_warnings(tmp_path, capsys):
    model = tmp_path / "warn_model.py"
    model.write_text(WARNING_MODEL)
    assert verify_main([str(model)]) == 0
    assert verify_main([str(model), "--strict"]) == 1


def test_cli_select_ignore(tmp_path, capsys):
    model = tmp_path / "warn2_model.py"
    model.write_text(WARNING_MODEL)
    # ignoring the whole ELN family silences the only findings
    assert verify_main([str(model), "--strict",
                        "--ignore", "ELN"]) == 0
    assert verify_main([str(model), "--strict",
                        "--select", "ELN001"]) == 1


def test_cli_output_file(tmp_path, capsys):
    model = tmp_path / "out_model.py"
    model.write_text(CLEAN_MODEL)
    out = tmp_path / "report.json"
    assert verify_main([str(model), "--output", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True


def test_cli_missing_file_exits_two(tmp_path, capsys):
    assert verify_main([str(tmp_path / "nope.py")]) == 2
    assert "not found" in capsys.readouterr().err


def test_cli_bad_name_exits_two(tmp_path, capsys):
    model = tmp_path / "named2_model.py"
    model.write_text(CLEAN_MODEL)
    assert verify_main([f"{model}::Missing"]) == 2


def test_cli_list_rules(capsys):
    assert verify_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("TDF001", "ELN003", "SDF002", "SYNC001",
                    "CORE001"):
        assert rule_id in out


# ---------------------------------------------------------------------------
# seed models regression: everything shipped in the repo verifies clean
# ---------------------------------------------------------------------------

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture()
def example_path():
    inserted = [str(REPO / "examples"), str(REPO / "benchmarks" / "perf")]
    sys.path[:0] = inserted
    try:
        yield
    finally:
        for entry in inserted:
            sys.path.remove(entry)


def test_seed_examples_verify_clean(example_path):
    from dc_motor_hil import Rig, build_plant
    from quickstart import Testbench, build_rc
    from rf_receiver import Receiver

    for model in (Testbench(), build_rc(), Rig(), build_plant(),
                  Receiver()):
        report = verify(model)
        assert report.clean(), report.format_text()


def test_seed_perf_models_verify_clean(example_path):
    import models

    for name in ("build_adc_chain", "build_mixed_chain"):
        report = verify(getattr(models, name)())
        assert report.clean(), report.format_text()
