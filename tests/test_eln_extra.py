"""Extra ELN coverage: gyrator impedance conversion in AC, transformer
transient behaviour, probes in dynamic analyses, op-amp filters."""

import numpy as np
import pytest

from repro.ct import corner_frequency
from repro.eln import (
    Capacitor,
    Gyrator,
    IdealOpAmp,
    IdealTransformer,
    Inductor,
    Network,
    Probe,
    Resistor,
    Vsource,
    ac_analysis,
    dc_analysis,
    transient_analysis,
)


class TestGyratorAc:
    def test_capacitor_becomes_inductor(self):
        """A gyrator loaded with C presents L = C/g^2: the input port
        forms an R-L highpass with the series resistor."""
        g = 1e-3
        C = 1e-6
        L_equiv = C / g ** 2  # 1 H
        R = 1e3
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "p", R))
        net.add(Gyrator("G1", "p", "0", "s", "0", conductance=g))
        net.add(Capacitor("C1", "s", "0", C))
        freqs = np.logspace(0, 5, 301)
        ac = ac_analysis(net, freqs, input_source="V1")
        h = np.abs(ac.voltage("p"))
        # R-L highpass corner: f = R / (2*pi*L).
        f_corner = R / (2 * np.pi * L_equiv)
        # At the corner, |v_p| = 1/sqrt(2).
        k = np.argmin(np.abs(freqs - f_corner))
        assert h[k] == pytest.approx(1 / np.sqrt(2), abs=0.02)
        assert h[0] < 0.01         # shorted by the 'inductor' at DC
        assert h[-1] > 0.99        # open at high frequency


class TestTransformerDynamics:
    def test_transformer_passes_ac_and_scales(self):
        net = Network()
        net.add(Vsource("V1", "p", "0",
                        lambda t: np.sin(2 * np.pi * 1e3 * t)))
        net.add(IdealTransformer("T1", "p", "0", "s", "0", ratio=4.0))
        net.add(Resistor("Rload", "s", "0", 50.0))
        result = transient_analysis(net, 2e-3, 1e-6)
        v_s = result.voltage("s")
        v_p = result.voltage("p")
        # Ideal transformer: v_s = v_p / ratio at every instant.
        np.testing.assert_allclose(v_s, v_p / 4.0, atol=1e-9)

    def test_impedance_transformation(self):
        """Input resistance = ratio^2 * load."""
        net = Network()
        net.add(Vsource("V1", "p", "0", 1.0))
        net.add(IdealTransformer("T1", "p", "0", "s", "0", ratio=3.0))
        net.add(Resistor("Rload", "s", "0", 100.0))
        dc = dc_analysis(net)
        i_in = abs(dc.current("V1"))
        assert 1.0 / i_in == pytest.approx(9.0 * 100.0, rel=1e-9)


class TestProbeDynamics:
    def test_probe_current_in_transient(self):
        R, C = 1e3, 1e-6
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "x", R))
        net.add(Probe("P1", "x", "c"))
        net.add(Capacitor("C1", "c", "0", C))
        # Backward Euler: the zero start is inconsistent with the
        # stepped source and branch currents are algebraic unknowns —
        # the trapezoidal rule would ring on them (see TUTORIAL.md).
        result = transient_analysis(net, 5e-3, 1e-6, x0=np.zeros(5),
                                    method="backward_euler")
        i_probe = result.current("P1")
        tau = R * C
        expected = np.exp(-result.times / tau) / R
        np.testing.assert_allclose(i_probe[1:], expected[1:], atol=2e-5)

    def test_probe_is_transparent(self):
        """Inserting a probe does not change the solution."""
        def build(with_probe):
            net = Network()
            net.add(Vsource("V1", "in", "0", 2.0))
            net.add(Resistor("R1", "in", "a", 1e3))
            if with_probe:
                net.add(Probe("P1", "a", "b"))
                net.add(Resistor("R2", "b", "0", 1e3))
            else:
                net.add(Resistor("R2", "a", "0", 1e3))
            return dc_analysis(net).voltage("a")

        assert build(True) == pytest.approx(build(False), rel=1e-12)


class TestOpAmpFilters:
    def test_active_lowpass(self):
        """Inverting integrator-style active RC lowpass."""
        R1, R2, C = 1e3, 10e3, 1e-9
        f_corner = 1 / (2 * np.pi * R2 * C)
        net = Network()
        net.add(Vsource("V1", "in", "0", 1.0))
        net.add(Resistor("R1", "in", "x", R1))
        net.add(Resistor("R2", "x", "out", R2))
        net.add(Capacitor("C1", "x", "out", C))
        net.add(IdealOpAmp("U1", "0", "x", "out"))
        net.add(Resistor("Rload", "out", "0", 1e6))
        freqs = np.logspace(2, 7, 301)
        ac = ac_analysis(net, freqs, input_source="V1")
        h = ac.voltage("out")
        # DC gain = -R2/R1 = -10.
        assert abs(h[0]) == pytest.approx(10.0, rel=1e-3)
        assert corner_frequency(freqs, h) == pytest.approx(f_corner,
                                                           rel=0.05)

    def test_opamp_virtual_ground_in_transient(self):
        net = Network()
        net.add(Vsource("V1", "in", "0",
                        lambda t: np.sin(2 * np.pi * 1e3 * t)))
        net.add(Resistor("R1", "in", "x", 1e3))
        net.add(Resistor("R2", "x", "out", 2e3))
        net.add(IdealOpAmp("U1", "0", "x", "out"))
        net.add(Resistor("Rload", "out", "0", 1e4))
        result = transient_analysis(net, 2e-3, 1e-6)
        # Virtual ground holds at every timestep.
        np.testing.assert_allclose(result.voltage("x"), 0.0, atol=1e-9)
        np.testing.assert_allclose(
            result.voltage("out"), -2.0 * result.voltage("in"),
            atol=1e-9,
        )


class TestLcLadderFilter:
    def test_third_order_butterworth_ladder(self):
        """Doubly-terminated LC ladder: the classic passive synthesis
        (Butterworth g-values 1, 2, 1 for N=3)."""
        R0 = 50.0
        f_c = 1e6
        w_c = 2 * np.pi * f_c
        net = Network()
        net.add(Vsource("V1", "src", "0", 1.0))
        net.add(Resistor("Rs", "src", "n1", R0))
        net.add(Capacitor("C1", "n1", "0", 1.0 / (R0 * w_c)))
        net.add(Inductor("L1", "n1", "n2", 2.0 * R0 / w_c))
        net.add(Capacitor("C2", "n2", "0", 1.0 / (R0 * w_c)))
        net.add(Resistor("Rl", "n2", "0", R0))
        freqs = np.logspace(4, 8, 401)
        ac = ac_analysis(net, freqs, input_source="V1")
        h = np.abs(ac.voltage("n2")) * 2.0  # normalize matched loss
        # Flat passband at 1, -3 dB at f_c, -18 dB/octave beyond.
        assert h[0] == pytest.approx(1.0, rel=1e-3)
        k = np.argmin(np.abs(freqs - f_c))
        assert h[k] == pytest.approx(1 / np.sqrt(2), abs=0.03)
        k2, k4 = np.argmin(np.abs(freqs - 2 * f_c)), \
            np.argmin(np.abs(freqs - 4 * f_c))
        octave_db = 20 * np.log10(h[k4] / h[k2])
        assert octave_db == pytest.approx(-18.0, abs=1.0)
