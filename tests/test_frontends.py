"""Tests for the netlist parser and the equation interface."""

import numpy as np
import pytest

from repro.core import ElaborationError
from repro.ct import dc_operating_point, variable_step_transient
from repro.eln import dc_analysis
from repro.frontends import (
    EquationSystem,
    NetlistError,
    parse_netlist,
    parse_value,
)


class TestValueParsing:
    def test_plain_numbers(self):
        assert parse_value("3.3") == 3.3
        assert parse_value("-2e-3") == -2e-3

    def test_suffixes(self):
        assert parse_value("4.7k") == pytest.approx(4700.0)
        assert parse_value("100n") == pytest.approx(1e-7)
        assert parse_value("1meg") == pytest.approx(1e6)
        assert parse_value("2.2u") == pytest.approx(2.2e-6)
        assert parse_value("10m") == pytest.approx(1e-2)
        assert parse_value("1p") == pytest.approx(1e-12)
        assert parse_value("5f") == pytest.approx(5e-15)
        assert parse_value("3g") == pytest.approx(3e9)
        assert parse_value("1t") == pytest.approx(1e12)

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_value("abc")


class TestNetlistParsing:
    def test_voltage_divider(self):
        net = parse_netlist("""
            * divider
            V1 in 0 DC 10
            R1 in out 1k
            R2 out 0 3k
            .end
        """)
        dc = dc_analysis(net)
        assert dc.voltage("out") == pytest.approx(7.5)

    def test_sin_source(self):
        net = parse_netlist("V1 in 0 SIN(1 2 1k)\nR1 in 0 1k")
        src = net.components[0]
        assert src.waveform(0.0) == pytest.approx(1.0)
        assert src.waveform(0.25e-3) == pytest.approx(3.0)

    def test_sin_with_phase(self):
        net = parse_netlist("V1 in 0 SIN(0 1 1k 90)\nR1 in 0 1k")
        src = net.components[0]
        assert src.waveform(0.0) == pytest.approx(1.0)

    def test_pulse_source(self):
        net = parse_netlist("I1 n 0 PULSE(0 2 1m 2m 0.5m)\nR1 n 0 1")
        src = net.components[0]
        assert src.waveform(0.5e-3) == 0.0   # before delay
        assert src.waveform(1.2e-3) == 2.0   # within width
        assert src.waveform(1.8e-3) == 0.0   # after width
        assert src.waveform(3.2e-3) == 2.0   # next period

    def test_controlled_sources(self):
        net = parse_netlist("""
            V1 c 0 DC 1
            E1 e 0 c 0 5
            Rload e 0 1k
            G1 0 g c 0 1m
            Rg g 0 2k
        """)
        dc = dc_analysis(net)
        assert dc.voltage("e") == pytest.approx(5.0)
        assert dc.voltage("g") == pytest.approx(2.0)

    def test_current_controlled(self):
        net = parse_netlist("""
            V1 a 0 DC 1
            R1 a b 1k
            Vprobe b 0 DC 0
            H1 h 0 Vprobe 2k
            Rh h 0 1k
            F1 0 f Vprobe 2
            Rf f 0 1k
        """)
        dc = dc_analysis(net)
        assert dc.voltage("h") == pytest.approx(2.0)
        assert dc.voltage("f") == pytest.approx(2.0)

    def test_transformer_and_switch(self):
        net = parse_netlist("""
            V1 p 0 DC 8
            T1 p 0 s 0 2
            Rload s 0 100
            S1 s 0 OFF RON=1m ROFF=1e12
        """)
        dc = dc_analysis(net)
        assert dc.voltage("s") == pytest.approx(4.0)

    def test_diode_netlist(self):
        net = parse_netlist("""
            V1 in 0 DC 5
            R1 in d 1k
            D1 d 0 IS=1e-14 N=1
        """)
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system)
        assert 0.5 < index.voltage(x, "d") < 0.8

    def test_mos_netlist(self):
        net = parse_netlist("""
            V1 vdd 0 DC 5
            V2 g 0 DC 1.7
            R1 vdd d 1k
            M1 d g 0 KP=2m VTH=0.7
        """)
        system, index = net.assemble_nonlinear()
        x = dc_operating_point(system)
        assert index.voltage(x, "d") == pytest.approx(4.0, rel=1e-3)

    def test_comments_and_inline_semicolons(self):
        net = parse_netlist("""
            * a comment line
            V1 in 0 DC 1 ; inline comment
            R1 in 0 1k
        """)
        assert len(net.components) == 2

    def test_end_stops_parsing(self):
        net = parse_netlist("""
            V1 in 0 DC 1
            R1 in 0 1k
            .end
            R2 garbage nonsense notanumber
        """)
        assert len(net.components) == 2

    def test_errors_carry_line_numbers(self):
        with pytest.raises(NetlistError) as info:
            parse_netlist("V1 in 0 DC 1\nR1 in 0 notanumber")
        assert "line 2" in str(info.value)

    def test_unknown_card(self):
        with pytest.raises(NetlistError):
            parse_netlist("Q1 a b c 1k")

    def test_bad_switch_state(self):
        with pytest.raises(NetlistError):
            parse_netlist("V1 a 0 DC 1\nS1 a 0 MAYBE")

    def test_empty_netlist_rejected(self):
        with pytest.raises(ElaborationError):
            parse_netlist("* nothing here\n.end")


class TestEquationSystem:
    def test_rc_by_equations(self):
        R, C, vin = 1e3, 1e-6, 1.0
        es = EquationSystem()
        v = es.variable("v")
        i = es.variable("i")
        es.differential(v, lambda x, t: x[i] / C)
        es.equation(lambda x, t: x[v] + R * x[i] - vin)
        system = es.build()
        result = variable_step_transient(
            system, 5e-3, x0=np.zeros(2), reltol=1e-6, abstol=1e-9,
        )
        expected = 1 - np.exp(-result.times / (R * C))
        np.testing.assert_allclose(result.states[:, 0], expected,
                                   atol=1e-3)

    def test_implicit_algebraic_pair(self):
        # x + y = 3, x - y = 1 -> x = 2, y = 1 (true simultaneous).
        es = EquationSystem()
        x = es.variable("x")
        y = es.variable("y")
        es.equation(lambda v, t: v[x] + v[y] - 3.0)
        es.equation(lambda v, t: v[x] - v[y] - 1.0)
        solution = dc_operating_point(es.build())
        np.testing.assert_allclose(solution, [2.0, 1.0], atol=1e-9)

    def test_pendulum_small_angle(self):
        g_over_l = 9.81 / 1.0
        es = EquationSystem()
        theta = es.variable("theta", initial=0.1)
        omega = es.variable("omega")
        es.differential(theta, lambda x, t: x[omega])
        es.differential(omega, lambda x, t: -g_over_l * np.sin(x[theta]))
        system = es.build()
        result = variable_step_transient(
            system, 4.0, x0=np.array([0.1, 0.0]),
            reltol=1e-7, abstol=1e-10,
        )
        expected = 0.1 * np.cos(np.sqrt(g_over_l) * result.times)
        np.testing.assert_allclose(result.states[:, 0], expected,
                                   atol=2e-3)

    def test_square_system_enforced(self):
        es = EquationSystem()
        es.variable("x")
        with pytest.raises(ElaborationError):
            es.build()

    def test_duplicate_names_rejected(self):
        es = EquationSystem()
        es.variable("x")
        with pytest.raises(ElaborationError):
            es.variable("x")

    def test_double_differential_rejected(self):
        es = EquationSystem()
        x = es.variable("x")
        es.differential(x, lambda v, t: 0.0)
        with pytest.raises(ElaborationError):
            es.differential(x, lambda v, t: 1.0)

    def test_initial_values_respected(self):
        es = EquationSystem()
        x = es.variable("x", initial=5.0)
        es.differential(x, lambda v, t: -v[x])
        system = es.build()
        np.testing.assert_allclose(system.initial_guess(), [5.0])
        result = variable_step_transient(
            system, 2.0, x0=system.initial_guess(),
        )
        assert result.states[-1, 0] == pytest.approx(5 * np.exp(-2.0),
                                                     rel=1e-3)

    def test_variable_names(self):
        es = EquationSystem()
        es.variable("a")
        es.variable("b")
        assert es.variable_names == ["a", "b"]
