"""Tests for the linear DAE solver: accuracy against analytic solutions,
convergence orders, DC and AC analyses."""

import numpy as np
import pytest

from repro.core import SolverError
from repro.ct import (
    LinearDae,
    LinearStepper,
    LinearTransientSolver,
    state_space_to_dae,
)


def rc_dae(R=1e3, C=1e-6, v_in=1.0):
    """RC lowpass: single state v_c with C*dv/dt + v/R = v_in/R."""
    return LinearDae(
        C=np.array([[C]]),
        G=np.array([[1.0 / R]]),
        source=lambda t: np.array([v_in / R]),
    ), R * C


class TestTransientAccuracy:
    def test_rc_step_response_matches_analytic(self):
        dae, tau = rc_dae()
        times, states = dae.transient(5 * tau, tau / 200, x0=np.zeros(1))
        expected = 1.0 - np.exp(-times / tau)
        np.testing.assert_allclose(states[:, 0], expected, atol=2e-5)

    def test_backward_euler_order_one(self):
        dae, tau = rc_dae()
        errors = []
        steps = [tau / 20, tau / 40, tau / 80]
        for h in steps:
            times, states = dae.transient(
                2 * tau, h, x0=np.zeros(1), method="backward_euler"
            )
            exact = 1.0 - np.exp(-times / tau)
            errors.append(np.max(np.abs(states[:, 0] - exact)))
        order1 = np.log2(errors[0] / errors[1])
        order2 = np.log2(errors[1] / errors[2])
        assert 0.8 < order1 < 1.2
        assert 0.8 < order2 < 1.2

    def test_trapezoidal_order_two(self):
        dae, tau = rc_dae()
        errors = []
        for h in [tau / 20, tau / 40, tau / 80]:
            times, states = dae.transient(
                2 * tau, h, x0=np.zeros(1), method="trapezoidal"
            )
            exact = 1.0 - np.exp(-times / tau)
            errors.append(np.max(np.abs(states[:, 0] - exact)))
        order1 = np.log2(errors[0] / errors[1])
        order2 = np.log2(errors[1] / errors[2])
        assert 1.8 < order1 < 2.2
        assert 1.8 < order2 < 2.2

    def test_undamped_oscillator_trap_energy_preserving(self):
        # x'' = -w^2 x as 2-state system; trapezoidal rule is A-stable
        # and exactly preserves the oscillation amplitude.
        w = 2 * np.pi * 10.0
        A = np.array([[0.0, 1.0], [-w * w, 0.0]])
        dae = state_space_to_dae(A, np.zeros((2, 1)), lambda t: [0.0])
        times, states = dae.transient(
            1.0, 1e-4, x0=np.array([1.0, 0.0]), method="trapezoidal"
        )
        energy = states[:, 0] ** 2 + (states[:, 1] / w) ** 2
        np.testing.assert_allclose(energy, 1.0, rtol=1e-9)

    def test_sinusoidal_drive_steady_state_amplitude(self):
        R, C = 1e3, 1e-6
        f = 1.0 / (2 * np.pi * R * C)  # the -3dB point
        dae = LinearDae(
            C=np.array([[C]]),
            G=np.array([[1.0 / R]]),
            source=lambda t: np.array([np.sin(2 * np.pi * f * t) / R]),
        )
        tau = R * C
        times, states = dae.transient(30 * tau, tau / 500, x0=np.zeros(1))
        tail = states[times > 20 * tau, 0]
        # At the corner, |H| = 1/sqrt(2).
        assert np.max(np.abs(tail)) == pytest.approx(1 / np.sqrt(2), rel=1e-2)

    def test_pure_dae_algebraic_constraint(self):
        # Voltage divider stated as a DAE with singular C:
        #   node equation: (v - u)/R1 + v/R2 = 0, no dynamics.
        R1, R2, u = 1e3, 2e3, 3.0
        dae = LinearDae(
            C=np.array([[0.0]]),
            G=np.array([[1 / R1 + 1 / R2]]),
            source=lambda t: np.array([u / R1]),
        )
        times, states = dae.transient(1e-3, 1e-5)
        np.testing.assert_allclose(states[:, 0], u * R2 / (R1 + R2))


class TestDcAnalysis:
    def test_dc_of_rc_equals_input(self):
        dae, _ = rc_dae(v_in=2.5)
        np.testing.assert_allclose(dae.dc(), [2.5])

    def test_singular_g_raises(self):
        # A pure capacitor has G = 0: no DC solution.
        dae = LinearDae(
            C=np.array([[1e-6]]), G=np.array([[0.0]]),
            source=lambda t: np.array([0.0]),
        )
        with pytest.raises(SolverError):
            dae.dc()


class TestAcAnalysis:
    def test_rc_lowpass_magnitude_and_phase(self):
        R, C = 1e3, 1e-6
        dae = LinearDae(
            C=np.array([[C]]), G=np.array([[1 / R]]),
            source=lambda t: np.array([1.0 / R]),
        )
        f0 = 1 / (2 * np.pi * R * C)
        freqs = np.array([f0 / 100, f0, f0 * 100])
        response = dae.ac(freqs)[:, 0]
        assert abs(response[0]) == pytest.approx(1.0, rel=1e-3)
        assert abs(response[1]) == pytest.approx(1 / np.sqrt(2), rel=1e-6)
        assert abs(response[2]) == pytest.approx(0.01, rel=1e-3)
        assert np.degrees(np.angle(response[1])) == pytest.approx(-45, abs=0.1)

    def test_ac_matches_analytic_over_sweep(self):
        R, C = 2e3, 5e-7
        dae = LinearDae(
            C=np.array([[C]]), G=np.array([[1 / R]]),
            source=lambda t: np.array([1.0 / R]),
        )
        freqs = np.logspace(0, 6, 61)
        response = dae.ac(freqs)[:, 0]
        expected = 1.0 / (1 + 2j * np.pi * freqs * R * C)
        np.testing.assert_allclose(response, expected, rtol=1e-10)


class TestStepper:
    def test_invalid_method_rejected(self):
        dae, _ = rc_dae()
        with pytest.raises(SolverError):
            LinearStepper(dae, 1e-6, method="rk9")

    def test_nonpositive_timestep_rejected(self):
        dae, _ = rc_dae()
        with pytest.raises(SolverError):
            LinearStepper(dae, 0.0)
        stepper = LinearStepper(dae, 1e-6)
        with pytest.raises(SolverError):
            stepper.set_timestep(-1.0)

    def test_set_timestep_refactorizes(self):
        dae, tau = rc_dae()
        stepper = LinearStepper(dae, tau / 10)
        x = np.zeros(1)
        x = stepper.step(x, 0.0)
        stepper.set_timestep(tau / 100)
        x2 = stepper.step(x, tau / 10)
        assert np.isfinite(x2[0])
        assert x2[0] > x[0]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            LinearDae(np.zeros((2, 2)), np.zeros((3, 3)))


class TestLinearTransientSolver:
    def test_advance_matches_direct_transient(self):
        dae, tau = rc_dae()
        solver = LinearTransientSolver(dae, h_internal=tau / 100)
        solver.initialize(x0=np.zeros(1))
        for k in range(1, 11):
            solver.advance_to(k * tau / 2)
        expected = 1 - np.exp(-5.0)
        assert solver.state[0] == pytest.approx(expected, abs=1e-4)
        assert solver.time == pytest.approx(5 * tau)

    def test_backwards_advance_rejected(self):
        dae, tau = rc_dae()
        solver = LinearTransientSolver(dae)
        solver.initialize()
        solver.advance_to(tau)
        with pytest.raises(SolverError):
            solver.advance_to(tau / 2)

    def test_zero_interval_is_noop(self):
        dae, tau = rc_dae()
        solver = LinearTransientSolver(dae)
        solver.initialize(x0=np.zeros(1))
        state = solver.advance_to(0.0)
        np.testing.assert_allclose(state, [0.0])


class TestStateSpaceAdapter:
    def test_first_order_system(self):
        # x' = -x + u, u = 1: x(t) = 1 - exp(-t)
        dae = state_space_to_dae([[-1.0]], [[1.0]], lambda t: [1.0])
        times, states = dae.transient(5.0, 1e-3, x0=np.zeros(1))
        np.testing.assert_allclose(
            states[:, 0], 1 - np.exp(-times), atol=1e-6
        )

    def test_b_shape_validation(self):
        with pytest.raises(SolverError):
            state_space_to_dae(np.eye(2), np.ones((3, 1)), lambda t: [0.0])
