"""Unit tests for repro.core.time."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SimTime, ZERO_TIME, time
from repro.core.time import FEMTO, TIME_UNITS


class TestConstruction:
    def test_unit_scaling(self):
        assert SimTime(1, "ns").ticks == 10**6
        assert SimTime(1, "us").ticks == 10**9
        assert SimTime(1, "ms").ticks == 10**12
        assert SimTime(1, "s").ticks == 10**15
        assert SimTime(1, "ps").ticks == 10**3
        assert SimTime(1, "fs").ticks == 1

    def test_fractional_values_round(self):
        assert SimTime(1.5, "ns").ticks == 1_500_000
        assert SimTime(0.25, "ps").ticks == 250

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            SimTime(1, "h")

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            SimTime(math.inf, "s")
        with pytest.raises(ValueError):
            SimTime(math.nan, "ns")

    def test_from_seconds_roundtrip(self):
        t = SimTime.from_seconds(3.2e-9)
        assert t.to_seconds() == pytest.approx(3.2e-9)

    def test_time_helper(self):
        assert time(5, "ns") == SimTime(5, "ns")


class TestArithmetic:
    def test_add_sub(self):
        a, b = SimTime(3, "ns"), SimTime(2, "ns")
        assert (a + b) == SimTime(5, "ns")
        assert (a - b) == SimTime(1, "ns")

    def test_scalar_multiply(self):
        assert SimTime(2, "ns") * 4 == SimTime(8, "ns")
        assert 4 * SimTime(2, "ns") == SimTime(8, "ns")

    def test_floordiv_by_time_gives_count(self):
        assert SimTime(10, "ns") // SimTime(3, "ns") == 3

    def test_floordiv_by_int_gives_time(self):
        assert SimTime(10, "ns") // 2 == SimTime(5, "ns")

    def test_mod(self):
        assert SimTime(10, "ns") % SimTime(3, "ns") == SimTime(1, "ns")

    def test_comparison(self):
        assert SimTime(1, "ns") < SimTime(2, "ns")
        assert SimTime(2, "ns") >= SimTime(2, "ns")
        assert SimTime(1, "us") > SimTime(999, "ns")

    def test_bool(self):
        assert not ZERO_TIME
        assert SimTime(1, "fs")

    def test_hashable(self):
        assert len({SimTime(1, "ns"), SimTime(1000, "ps")}) == 1

    def test_add_type_error(self):
        with pytest.raises(TypeError):
            SimTime(1, "ns") + 3.0


class TestFormatting:
    def test_str_picks_largest_exact_unit(self):
        assert str(SimTime(5, "ns")) == "5 ns"
        assert str(SimTime(1500, "ps")) == "1500 ps"
        assert str(SimTime(2, "s")) == "2 s"
        assert str(SimTime.from_ticks(7)) == "7 fs"

    def test_repr(self):
        assert repr(SimTime(5, "ns")) == "SimTime(5 ns)"


@given(st.integers(min_value=0, max_value=10**18),
       st.integers(min_value=0, max_value=10**18))
def test_addition_commutes(a, b):
    ta, tb = SimTime.from_ticks(a), SimTime.from_ticks(b)
    assert ta + tb == tb + ta


@given(st.integers(min_value=0, max_value=10**18))
def test_to_seconds_matches_ticks(ticks):
    assert SimTime.from_ticks(ticks).to_seconds() == pytest.approx(
        ticks * FEMTO
    )


@given(st.sampled_from(sorted(TIME_UNITS)), st.integers(0, 10**6))
def test_unit_roundtrip(unit, value):
    assert SimTime(value, unit).ticks == value * TIME_UNITS[unit]
