"""Synchronous dataflow graphs.

Implements the SDF model of computation the paper describes: a directed
graph whose vertices are computations and whose edges carry totally
ordered token streams.  Each actor consumes and produces a fixed number
of tokens per firing, so the balance equations

    r[src] * produce_rate(edge) == r[dst] * consume_rate(edge)

admit a smallest positive integer solution — the *repetition vector* —
whenever the graph is rate-consistent, and a finite static schedule
(a periodic admissible sequential schedule, PASS) can be constructed by
symbolic execution.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Callable, Optional, Sequence

from ..core.errors import ElaborationError, SchedulingError


class Actor:
    """An SDF computation vertex.

    Subclasses declare port rates via ``input_rates`` / ``output_rates``
    (name → tokens per firing) and implement :meth:`fire`, which receives
    a dict of input-token lists (one list per input port, of length equal
    to the port rate) and returns a dict of output-token lists.
    """

    def __init__(
        self,
        name: str,
        input_rates: Optional[dict[str, int]] = None,
        output_rates: Optional[dict[str, int]] = None,
    ):
        self.name = name
        self.input_rates = dict(input_rates or {})
        self.output_rates = dict(output_rates or {})
        for port, rate in {**self.input_rates, **self.output_rates}.items():
            if rate <= 0:
                raise ElaborationError(
                    f"actor {name!r} port {port!r} has non-positive rate {rate}"
                )
        self.fire_count = 0

    def fire(self, inputs: dict[str, list]) -> dict[str, list]:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear internal state before a fresh execution."""
        self.fire_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class Edge:
    """A token buffer connecting one producer port to one consumer port."""

    __slots__ = (
        "src", "src_port", "dst", "dst_port", "initial_tokens",
        "tokens", "max_occupancy",
    )

    def __init__(self, src: Actor, src_port: str, dst: Actor, dst_port: str,
                 initial_tokens: Sequence = ()):
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.initial_tokens = list(initial_tokens)
        self.tokens: list = list(initial_tokens)
        self.max_occupancy = len(self.tokens)

    @property
    def produce_rate(self) -> int:
        return self.src.output_rates[self.src_port]

    @property
    def consume_rate(self) -> int:
        return self.dst.input_rates[self.dst_port]

    def push(self, values: list) -> None:
        self.tokens.extend(values)
        self.max_occupancy = max(self.max_occupancy, len(self.tokens))

    def pop(self, count: int) -> list:
        taken, self.tokens = self.tokens[:count], self.tokens[count:]
        return taken

    def reset(self) -> None:
        self.tokens = list(self.initial_tokens)
        self.max_occupancy = len(self.tokens)


class SdfGraph:
    """A synchronous dataflow graph with rate analysis and scheduling."""

    def __init__(self, name: str = "sdf"):
        self.name = name
        self.actors: list[Actor] = []
        self.edges: list[Edge] = []
        self._schedule: Optional[list[Actor]] = None

    # -- construction --------------------------------------------------------

    def add(self, actor: Actor) -> Actor:
        if any(a.name == actor.name for a in self.actors):
            raise ElaborationError(f"duplicate actor name {actor.name!r}")
        self.actors.append(actor)
        self._schedule = None
        return actor

    def connect(self, src: Actor, src_port: str, dst: Actor, dst_port: str,
                initial_tokens: Sequence = ()) -> Edge:
        for actor in (src, dst):
            if actor not in self.actors:
                self.add(actor)
        if src_port not in src.output_rates:
            raise ElaborationError(
                f"actor {src.name!r} has no output port {src_port!r}"
            )
        if dst_port not in dst.input_rates:
            raise ElaborationError(
                f"actor {dst.name!r} has no input port {dst_port!r}"
            )
        if any(e.dst is dst and e.dst_port == dst_port for e in self.edges):
            raise ElaborationError(
                f"input port {dst.name}.{dst_port} already driven"
            )
        edge = Edge(src, src_port, dst, dst_port, initial_tokens)
        self.edges.append(edge)
        self._schedule = None
        return edge

    # -- rate analysis --------------------------------------------------------

    def repetition_vector(self) -> dict[Actor, int]:
        """Solve the balance equations.

        Returns the smallest positive integer repetition count per actor.
        Raises :class:`SchedulingError` if the graph is rate-inconsistent
        (the equations only admit the zero solution).
        """
        if not self.actors:
            return {}
        ratio: dict[Actor, Optional[Fraction]] = {a: None for a in self.actors}
        adjacency: dict[Actor, list[tuple[Actor, Fraction]]] = {
            a: [] for a in self.actors
        }
        for edge in self.edges:
            factor = Fraction(edge.produce_rate, edge.consume_rate)
            adjacency[edge.src].append((edge.dst, factor))
            adjacency[edge.dst].append((edge.src, 1 / factor))
        for seed in self.actors:
            if ratio[seed] is not None:
                continue
            ratio[seed] = Fraction(1)
            stack = [seed]
            while stack:
                actor = stack.pop()
                for neighbor, factor in adjacency[actor]:
                    implied = ratio[actor] * factor
                    if ratio[neighbor] is None:
                        ratio[neighbor] = implied
                        stack.append(neighbor)
                    elif ratio[neighbor] != implied:
                        raise SchedulingError(
                            f"graph {self.name!r} is rate-inconsistent at "
                            f"actor {neighbor.name!r}: {ratio[neighbor]} vs "
                            f"{implied}"
                        )
        denominator_lcm = 1
        for value in ratio.values():
            denominator_lcm = _lcm(denominator_lcm, value.denominator)
        counts = {a: int(r * denominator_lcm) for a, r in ratio.items()}
        overall_gcd = 0
        for count in counts.values():
            overall_gcd = gcd(overall_gcd, count)
        return {a: c // overall_gcd for a, c in counts.items()}

    # -- scheduling ------------------------------------------------------------

    def schedule(self) -> list[Actor]:
        """Construct a PASS by symbolic execution of token counts.

        Raises :class:`SchedulingError` on deadlock (insufficient initial
        tokens on a cycle).
        """
        if self._schedule is not None:
            return self._schedule
        repetitions = self.repetition_vector()
        counts = {id(e): len(e.initial_tokens) for e in self.edges}
        remaining = dict(repetitions)
        inputs_of: dict[Actor, list[Edge]] = {a: [] for a in self.actors}
        outputs_of: dict[Actor, list[Edge]] = {a: [] for a in self.actors}
        for edge in self.edges:
            inputs_of[edge.dst].append(edge)
            outputs_of[edge.src].append(edge)
        order: list[Actor] = []
        progress = True
        while progress and any(remaining.values()):
            progress = False
            for actor in self.actors:
                while remaining[actor] > 0 and all(
                    counts[id(e)] >= e.consume_rate for e in inputs_of[actor]
                ):
                    for e in inputs_of[actor]:
                        counts[id(e)] -= e.consume_rate
                    for e in outputs_of[actor]:
                        counts[id(e)] += e.produce_rate
                    remaining[actor] -= 1
                    order.append(actor)
                    progress = True
        if any(remaining.values()):
            stuck = [a.name for a, r in remaining.items() if r > 0]
            cycles = self.zero_delay_cycles()
            hint = (f"; zero-delay cycles needing initial tokens: "
                    f"{cycles}" if cycles else "")
            raise SchedulingError(
                f"graph {self.name!r} deadlocks; actors never fired to "
                f"completion: {stuck}{hint}"
            )
        self._schedule = order
        return order

    def dependency_graph(self):
        """The actor-level dependency digraph (edges lacking enough
        initial tokens to satisfy one firing), as a networkx DiGraph."""
        import networkx as nx

        digraph = nx.DiGraph()
        for actor in self.actors:
            digraph.add_node(actor.name)
        for edge in self.edges:
            if len(edge.initial_tokens) < edge.consume_rate:
                digraph.add_edge(edge.src.name, edge.dst.name)
        return digraph

    def zero_delay_cycles(self) -> list[list[str]]:
        """Actor-name cycles with insufficient initial tokens — the
        structural cause of scheduling deadlocks."""
        import networkx as nx

        return [sorted(cycle) for cycle in
                nx.simple_cycles(self.dependency_graph())]

    # -- execution --------------------------------------------------------------

    def run(self, iterations: int = 1) -> None:
        """Execute ``iterations`` full schedule periods."""
        order = self.schedule()
        inputs_of: dict[int, list[Edge]] = {}
        outputs_of: dict[int, list[Edge]] = {}
        for edge in self.edges:
            inputs_of.setdefault(id(edge.dst), []).append(edge)
            outputs_of.setdefault(id(edge.src), []).append(edge)
        for _ in range(iterations):
            for actor in order:
                tokens = {
                    e.dst_port: e.pop(e.consume_rate)
                    for e in inputs_of.get(id(actor), [])
                }
                produced = actor.fire(tokens) or {}
                actor.fire_count += 1
                for e in outputs_of.get(id(actor), []):
                    values = produced.get(e.src_port)
                    if values is None or len(values) != e.produce_rate:
                        raise SchedulingError(
                            f"actor {actor.name!r} produced "
                            f"{0 if values is None else len(values)} tokens "
                            f"on {e.src_port!r}; declared rate is "
                            f"{e.produce_rate}"
                        )
                    e.push(values)

    def reset(self) -> None:
        for actor in self.actors:
            actor.reset()
        for edge in self.edges:
            edge.reset()

    def buffer_bounds(self) -> dict[str, int]:
        """Maximum observed occupancy per edge (after a run)."""
        return {
            f"{e.src.name}.{e.src_port}->{e.dst.name}.{e.dst_port}":
                e.max_occupancy
            for e in self.edges
        }


def _lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)
