"""A library of reusable SDF actors.

These cover the operations the paper attributes to "signal processing
dominated applications": arithmetic on streams, rate conversion, FIR
filtering, sources and sinks.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .graph import Actor


class Source(Actor):
    """Produces tokens by calling ``generator(index)`` once per token."""

    def __init__(self, name: str, generator: Callable[[int], object],
                 rate: int = 1):
        super().__init__(name, output_rates={"out": rate})
        self.generator = generator
        self._index = 0

    def fire(self, inputs):
        rate = self.output_rates["out"]
        values = [self.generator(self._index + i) for i in range(rate)]
        self._index += rate
        return {"out": values}

    def reset(self):
        super().reset()
        self._index = 0


class Const(Source):
    """Produces a constant token stream."""

    def __init__(self, name: str, value, rate: int = 1):
        super().__init__(name, lambda _i, v=value: v, rate)


class Ramp(Source):
    """Produces ``offset + slope * n`` for sample index n."""

    def __init__(self, name: str, slope=1.0, offset=0.0, rate: int = 1):
        super().__init__(name, lambda i: offset + slope * i, rate)


class Sink(Actor):
    """Collects all consumed tokens into :attr:`collected`."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"in": rate})
        self.collected: list = []

    def fire(self, inputs):
        self.collected.extend(inputs["in"])
        return {}

    def reset(self):
        super().reset()
        self.collected = []

    def as_array(self) -> np.ndarray:
        return np.asarray(self.collected)


class Map(Actor):
    """Applies a unary function token-by-token."""

    def __init__(self, name: str, func: Callable, rate: int = 1):
        super().__init__(name, input_rates={"in": rate},
                         output_rates={"out": rate})
        self.func = func

    def fire(self, inputs):
        return {"out": [self.func(v) for v in inputs["in"]]}


class Gain(Map):
    """Multiplies each token by a constant."""

    def __init__(self, name: str, gain: float, rate: int = 1):
        super().__init__(name, lambda v, g=gain: v * g, rate)
        self.gain = gain


class Add(Actor):
    """Token-wise sum of two input streams."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"a": rate, "b": rate},
                         output_rates={"out": rate})

    def fire(self, inputs):
        return {"out": [a + b for a, b in zip(inputs["a"], inputs["b"])]}


class Sub(Actor):
    """Token-wise difference ``a - b``."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"a": rate, "b": rate},
                         output_rates={"out": rate})

    def fire(self, inputs):
        return {"out": [a - b for a, b in zip(inputs["a"], inputs["b"])]}


class Mul(Actor):
    """Token-wise product (e.g. a mixer in a dataflow receiver)."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"a": rate, "b": rate},
                         output_rates={"out": rate})

    def fire(self, inputs):
        return {"out": [a * b for a, b in zip(inputs["a"], inputs["b"])]}


class Downsample(Actor):
    """Consumes ``factor`` tokens, produces the first of each group."""

    def __init__(self, name: str, factor: int):
        super().__init__(name, input_rates={"in": factor},
                         output_rates={"out": 1})
        self.factor = factor

    def fire(self, inputs):
        return {"out": [inputs["in"][0]]}


class Upsample(Actor):
    """Consumes one token, produces it followed by ``factor - 1`` zeros."""

    def __init__(self, name: str, factor: int, fill=0.0):
        super().__init__(name, input_rates={"in": 1},
                         output_rates={"out": factor})
        self.factor = factor
        self.fill = fill

    def fire(self, inputs):
        return {"out": [inputs["in"][0]] + [self.fill] * (self.factor - 1)}


class Fir(Actor):
    """Direct-form FIR filter over the token stream (stateful)."""

    def __init__(self, name: str, taps: Sequence[float], rate: int = 1):
        super().__init__(name, input_rates={"in": rate},
                         output_rates={"out": rate})
        self.taps = np.asarray(taps, dtype=float)
        self._history = np.zeros(len(self.taps))

    def fire(self, inputs):
        out = []
        for value in inputs["in"]:
            self._history = np.roll(self._history, 1)
            self._history[0] = value
            out.append(float(self.taps @ self._history))
        return {"out": out}

    def reset(self):
        super().reset()
        self._history = np.zeros(len(self.taps))


class Accumulator(Actor):
    """Running sum of the input stream."""

    def __init__(self, name: str, rate: int = 1, initial: float = 0.0):
        super().__init__(name, input_rates={"in": rate},
                         output_rates={"out": rate})
        self.initial = initial
        self._state = initial

    def fire(self, inputs):
        out = []
        for value in inputs["in"]:
            self._state += value
            out.append(self._state)
        return {"out": out}

    def reset(self):
        super().reset()
        self._state = self.initial


class Fork(Actor):
    """Copies one input stream onto two outputs."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"in": rate},
                         output_rates={"a": rate, "b": rate})

    def fire(self, inputs):
        return {"a": list(inputs["in"]), "b": list(inputs["in"])}


class Interleave(Actor):
    """Alternates tokens from two inputs onto one double-rate output."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"a": rate, "b": rate},
                         output_rates={"out": 2 * rate})

    def fire(self, inputs):
        out = []
        for a, b in zip(inputs["a"], inputs["b"]):
            out.extend((a, b))
        return {"out": out}


class Deinterleave(Actor):
    """Splits a double-rate input into two single-rate outputs."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"in": 2 * rate},
                         output_rates={"a": rate, "b": rate})

    def fire(self, inputs):
        tokens = inputs["in"]
        return {"a": tokens[0::2], "b": tokens[1::2]}
