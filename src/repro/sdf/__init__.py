"""`repro.sdf` — the untimed synchronous dataflow model of computation.

Provides SDF graphs with balance-equation rate analysis, repetition
vectors, deadlock detection, static schedule (PASS) construction, and an
actor library for stream processing.
"""

from .actors import (
    Accumulator,
    Add,
    Const,
    Deinterleave,
    Downsample,
    Fir,
    Fork,
    Gain,
    Interleave,
    Map,
    Mul,
    Ramp,
    Sink,
    Source,
    Sub,
    Upsample,
)
from .graph import Actor, Edge, SdfGraph

__all__ = [
    "Accumulator", "Actor", "Add", "Const", "Deinterleave", "Downsample",
    "Edge", "Fir", "Fork", "Gain", "Interleave", "Map", "Mul", "Ramp",
    "SdfGraph", "Sink", "Source", "Sub", "Upsample",
]
