"""Time-domain waveform metrics: step-response characterization and
error norms used throughout the experiment harness."""

from __future__ import annotations

from typing import Optional

import numpy as np


def rms(samples: np.ndarray) -> float:
    """Root-mean-square value."""
    x = np.asarray(samples, dtype=float)
    return float(np.sqrt(np.mean(x * x)))


def max_error(measured: np.ndarray, reference: np.ndarray) -> float:
    """Maximum absolute deviation."""
    return float(np.max(np.abs(np.asarray(measured) - np.asarray(reference))))


def rms_error(measured: np.ndarray, reference: np.ndarray) -> float:
    """RMS deviation."""
    return rms(np.asarray(measured) - np.asarray(reference))


def convergence_order(step_sizes, errors) -> float:
    """Least-squares slope of log(error) versus log(h).

    For a method of order p, halving h divides the error by 2^p, so the
    fitted slope estimates p.
    """
    h = np.log(np.asarray(step_sizes, dtype=float))
    e = np.log(np.asarray(errors, dtype=float))
    slope, _intercept = np.polyfit(h, e, 1)
    return float(slope)


class StepResponse:
    """Rise time, overshoot, and settling time of a step response."""

    def __init__(self, times: np.ndarray, values: np.ndarray,
                 final_value: Optional[float] = None,
                 initial_value: Optional[float] = None):
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        self.final_value = float(self.values[-1]) if final_value is None \
            else final_value
        self.initial_value = float(self.values[0]) if initial_value is None \
            else initial_value
        self._swing = self.final_value - self.initial_value
        if self._swing == 0:
            raise ValueError("step response has zero swing")

    def _crossing_time(self, fraction: float) -> float:
        target = self.initial_value + fraction * self._swing
        sign = np.sign(self._swing)
        above = sign * (self.values - target) >= 0
        idx = np.argmax(above)
        if not above[idx]:
            raise ValueError(f"response never reaches {fraction:.0%}")
        if idx == 0:
            return float(self.times[0])
        t0, t1 = self.times[idx - 1], self.times[idx]
        v0, v1 = self.values[idx - 1], self.values[idx]
        return float(t0 + (target - v0) / (v1 - v0) * (t1 - t0))

    @property
    def rise_time(self) -> float:
        """10%-90% rise time."""
        return self._crossing_time(0.9) - self._crossing_time(0.1)

    @property
    def overshoot(self) -> float:
        """Peak overshoot as a fraction of the step swing."""
        if self._swing > 0:
            peak = np.max(self.values)
            return max(0.0, (peak - self.final_value) / self._swing)
        trough = np.min(self.values)
        return max(0.0, (self.final_value - trough) / (-self._swing))

    def settling_time(self, tolerance: float = 0.02) -> float:
        """Time after which the response stays within ``tolerance`` of
        the final value (relative to the swing)."""
        band = abs(self._swing) * tolerance
        outside = np.abs(self.values - self.final_value) > band
        if not np.any(outside):
            return float(self.times[0])
        last_outside = np.max(np.nonzero(outside)[0])
        if last_outside + 1 >= len(self.times):
            raise ValueError("response does not settle within the record")
        return float(self.times[last_outside + 1])


def estimate_frequency(times: np.ndarray, values: np.ndarray) -> float:
    """Fundamental frequency estimate from rising zero crossings."""
    t = np.asarray(times, dtype=float)
    x = np.asarray(values, dtype=float)
    x = x - np.mean(x)
    crossings = []
    for k in range(1, len(x)):
        if x[k - 1] < 0 <= x[k]:
            fraction = -x[k - 1] / (x[k] - x[k - 1])
            crossings.append(t[k - 1] + fraction * (t[k] - t[k - 1]))
    if len(crossings) < 2:
        raise ValueError("fewer than two rising zero crossings")
    periods = np.diff(crossings)
    return float(1.0 / np.mean(periods))
