"""`repro.analysis` — waveform post-processing and metrics."""

from .metrics import (
    StepResponse,
    convergence_order,
    estimate_frequency,
    max_error,
    rms,
    rms_error,
)
from .spectrum import (
    ToneAnalysis,
    amplitude_spectrum,
    coherent_tone_frequency,
    enob_of_tone,
    power_spectral_density,
    sndr_of_tone,
    snr_of_tone,
    window,
)

__all__ = [
    "StepResponse", "ToneAnalysis", "amplitude_spectrum",
    "coherent_tone_frequency", "convergence_order", "enob_of_tone",
    "estimate_frequency", "max_error", "power_spectral_density", "rms",
    "rms_error", "sndr_of_tone", "snr_of_tone", "window",
]
