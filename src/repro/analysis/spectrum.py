"""Spectral analysis of sampled waveforms.

Windowed FFT spectra and the standard data-converter metrics: SNR, SNDR,
THD, SFDR, ENOB.  These implement the "frequency-domain behaviour ...
to estimate important system performances such as signal-to-noise ratio"
requirement of the paper's motivating example.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Coherent-gain-normalized windows.
WINDOWS = ("rect", "hann", "blackman")


def window(name: str, n: int) -> np.ndarray:
    if name == "rect":
        return np.ones(n)
    if name == "hann":
        return np.hanning(n)
    if name == "blackman":
        return np.blackman(n)
    raise ValueError(f"unknown window {name!r}; expected one of {WINDOWS}")


def amplitude_spectrum(
    samples: np.ndarray,
    sample_rate: float,
    window_name: str = "hann",
) -> tuple[np.ndarray, np.ndarray]:
    """Single-sided amplitude spectrum.

    Returns ``(frequencies, amplitudes)`` where a full-scale coherent
    sine of amplitude A shows a peak of ~A (coherent gain corrected).
    """
    x = np.asarray(samples, dtype=float)
    n = len(x)
    w = window(window_name, n)
    coherent_gain = np.sum(w) / n
    spectrum = np.fft.rfft(x * w) / (n * coherent_gain)
    amplitudes = np.abs(spectrum)
    amplitudes[1:] *= 2.0  # fold negative frequencies
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    return freqs, amplitudes


def power_spectral_density(
    samples: np.ndarray,
    sample_rate: float,
    window_name: str = "hann",
) -> tuple[np.ndarray, np.ndarray]:
    """One-sided PSD (periodogram) in units^2/Hz."""
    x = np.asarray(samples, dtype=float)
    n = len(x)
    w = window(window_name, n)
    scale = 1.0 / (sample_rate * np.sum(w ** 2))
    spectrum = np.fft.rfft(x * w)
    psd = scale * np.abs(spectrum) ** 2
    psd[1:-1] *= 2.0
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    return freqs, psd


class ToneAnalysis:
    """Signal/noise/distortion decomposition around a dominant tone.

    Power is computed from the windowed periodogram: the signal power is
    summed over the tone bin and ``leakage_bins`` neighbours on either
    side, harmonic power over the same aperture at each harmonic, and
    everything else (excluding DC) is noise.
    """

    def __init__(
        self,
        samples: np.ndarray,
        sample_rate: float,
        tone_frequency: Optional[float] = None,
        harmonics: int = 5,
        leakage_bins: int = 3,
        window_name: str = "hann",
    ):
        x = np.asarray(samples, dtype=float)
        x = x - np.mean(x)
        n = len(x)
        w = window(window_name, n)
        spectrum = np.abs(np.fft.rfft(x * w)) ** 2
        freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
        bin_width = sample_rate / n
        dc_guard = leakage_bins + 1
        if tone_frequency is None:
            tone_bin = int(np.argmax(spectrum[dc_guard:]) + dc_guard)
        else:
            tone_bin = int(round(tone_frequency / bin_width))
        self.tone_frequency = freqs[tone_bin]
        self.sample_rate = sample_rate

        def band_power(center: int) -> float:
            lo = max(0, center - leakage_bins)
            hi = min(len(spectrum), center + leakage_bins + 1)
            return float(np.sum(spectrum[lo:hi]))

        self.signal_power = band_power(tone_bin)
        self.harmonic_powers = []
        claimed = set(range(max(0, tone_bin - leakage_bins),
                            tone_bin + leakage_bins + 1))
        claimed.update(range(0, dc_guard))
        for k in range(2, harmonics + 2):
            target = k * tone_bin
            # Alias back into the first Nyquist zone.
            folded = target % (2 * (len(spectrum) - 1))
            if folded >= len(spectrum):
                folded = 2 * (len(spectrum) - 1) - folded
            if folded in claimed:
                self.harmonic_powers.append(0.0)
                continue
            self.harmonic_powers.append(band_power(folded))
            claimed.update(range(max(0, folded - leakage_bins),
                                 folded + leakage_bins + 1))
        total = float(np.sum(spectrum))
        self.distortion_power = float(np.sum(self.harmonic_powers))
        self.noise_power = max(
            total - self.signal_power - self.distortion_power
            - float(np.sum(spectrum[:dc_guard])),
            1e-300,
        )

    # -- metrics (all in dB except ENOB) ------------------------------------------

    @property
    def snr_db(self) -> float:
        return 10.0 * np.log10(self.signal_power / self.noise_power)

    @property
    def sndr_db(self) -> float:
        return 10.0 * np.log10(
            self.signal_power
            / (self.noise_power + max(self.distortion_power, 0.0))
        )

    @property
    def thd_db(self) -> float:
        if self.distortion_power <= 0:
            return -np.inf
        return 10.0 * np.log10(self.distortion_power / self.signal_power)

    @property
    def enob(self) -> float:
        """Effective number of bits from SNDR: (SNDR - 1.76) / 6.02."""
        return (self.sndr_db - 1.76) / 6.02


def snr_of_tone(samples, sample_rate, tone_frequency=None, **kwargs) -> float:
    """Convenience: SNR in dB of the dominant (or given) tone."""
    return ToneAnalysis(samples, sample_rate, tone_frequency,
                        **kwargs).snr_db


def sndr_of_tone(samples, sample_rate, tone_frequency=None, **kwargs) -> float:
    return ToneAnalysis(samples, sample_rate, tone_frequency,
                        **kwargs).sndr_db


def enob_of_tone(samples, sample_rate, tone_frequency=None, **kwargs) -> float:
    return ToneAnalysis(samples, sample_rate, tone_frequency,
                        **kwargs).enob


def coherent_tone_frequency(sample_rate: float, n_samples: int,
                            target: float) -> float:
    """Nearest coherently-sampled frequency to ``target``.

    Picks an odd number of cycles within the record so the tone lands
    exactly on an FFT bin and exercises all quantizer codes.
    """
    cycles = max(1, int(round(target * n_samples / sample_rate)))
    if cycles % 2 == 0:
        cycles += 1
    return cycles * sample_rate / n_samples
