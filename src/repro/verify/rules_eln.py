"""Electrical-network / MNA structural checks (ELN0xx).

All checks are *structural*: they inspect the node graph and the MNA
sparsity pattern, never component values, so they also apply unchanged
to the multi-domain libraries (mechanical, thermal) whose elements
subclass the electrical primitives.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..eln.components import (
    Capacitor,
    Ccvs,
    Cccs,
    Gyrator,
    IdealOpAmp,
    IdealTransformer,
    Inductor,
    Isource,
    Probe,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    Vsource,
)
from ..eln.network import GROUND, Network
from .context import VerifyContext
from .diagnostics import Diagnostic
from .registry import rule

#: Components whose branch equation pins a voltage between their first
#: two terminals — a cycle made only of these is structurally singular.
_VOLTAGE_DEFINED = (Vsource, Probe, Inductor, Vcvs, Ccvs)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, x: str) -> str:
        root = self._parent.setdefault(x, x)
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: str, b: str) -> bool:
        """Merge; returns False when a and b were already connected
        (i.e. the new edge closes a cycle)."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[ra] = rb
        return True


def _dc_edges(component) -> List[Tuple[str, str]]:
    """Node pairs this component connects for DC-path purposes — i.e.
    pairs between which its stamp provides a static (G-matrix) branch.

    Pure dynamic or current-output elements (capacitors, current
    sources, transconductances) contribute nothing; unknown component
    subclasses are treated liberally as connecting all their terminals
    so third-party elements don't raise false alarms.
    """
    nodes = component.nodes
    if isinstance(component, IdealTransformer):
        return [(nodes[0], nodes[1]), (nodes[2], nodes[3])]
    if isinstance(component, IdealOpAmp):
        return [(nodes[2], GROUND)]  # output is driven; inputs float
    if isinstance(component, Gyrator):
        return list(combinations(set(nodes), 2))
    if isinstance(component, (Isource, Capacitor, Vccs, Cccs)):
        return []
    if isinstance(component,
                  (Resistor, Inductor, Vsource, Switch, Probe,
                   Vcvs, Ccvs)):
        return [(nodes[0], nodes[1])]
    return list(combinations(set(nodes), 2))


def _islands(network: Network) -> List[set]:
    """Connected components of the node graph (every element connects
    all of its terminals), as sets of node names including ground."""
    uf = _UnionFind()
    for component in network.components:
        for a, b in zip(component.nodes, component.nodes[1:]):
            uf.union(a, b)
    groups: Dict[str, set] = {}
    for component in network.components:
        for node in component.nodes:
            groups.setdefault(uf.find(node), set()).add(node)
    return list(groups.values())


def _floating_nodes(network: Network) -> set:
    """Nodes in islands that do not contain the ground reference."""
    floating: set = set()
    for island in _islands(network):
        if GROUND not in island:
            floating |= island
    return floating


@rule("ELN001", domain="eln", severity="warning")
def dangling_node(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A node is attached to only one component terminal."""
    for location, network in ctx.networks:
        attachments: Dict[str, List[str]] = {}
        for component in network.components:
            for node in component.nodes:
                if node != GROUND:
                    attachments.setdefault(node, []).append(
                        component.name)
        for node, owners in sorted(attachments.items()):
            if len(owners) == 1:
                yield ctx.diag(
                    "ELN001", "warning", f"{location}.{node}",
                    f"node {node!r} touches only one terminal "
                    f"(component {owners[0]!r})",
                    hint="connect a second element or tie the node "
                         "to ground",
                )


@rule("ELN002", domain="eln", severity="error")
def floating_subcircuit(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A connected subcircuit has no path to the ground reference."""
    for location, network in ctx.networks:
        if not network.components:
            continue  # ELN008 reports empty networks
        for island in _islands(network):
            if GROUND not in island:
                nodes = sorted(island)
                yield ctx.diag(
                    "ELN002", "error", f"{location}.{nodes[0]}",
                    f"subcircuit {{{', '.join(nodes)}}} has no "
                    f"connection to ground ('0'); its node voltages "
                    f"are undefined",
                    hint="reference the subcircuit to node '0' "
                         "somewhere",
                    nodes=nodes,
                )


@rule("ELN003", domain="eln", severity="error")
def voltage_source_loop(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A loop of voltage-defined branches over-determines the mesh."""
    for location, network in ctx.networks:
        uf = _UnionFind()
        for component in network.components:
            if not isinstance(component, _VOLTAGE_DEFINED):
                continue
            a, b = component.nodes[0], component.nodes[1]
            if not uf.union(a, b):
                yield ctx.diag(
                    "ELN003", "error",
                    f"{location}.{component.name}",
                    f"component {component.name!r} closes a loop of "
                    f"voltage-defined branches (voltage sources, "
                    f"inductors, probes) between nodes {a!r} and "
                    f"{b!r}",
                    hint="insert a series resistance or remove one "
                         "source from the loop",
                )


@rule("ELN004", domain="eln", severity="error")
def no_dc_path_to_ground(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A node has no static path to ground (I-source/C cutset)."""
    for location, network in ctx.networks:
        if not network.components:
            continue
        floating = _floating_nodes(network)  # ELN002's findings
        uf = _UnionFind()
        uf.find(GROUND)
        for component in network.components:
            for a, b in _dc_edges(component):
                uf.union(a, b)
        ground_root = uf.find(GROUND)
        for node in network.node_names():
            if node in floating:
                continue
            if uf.find(node) != ground_root:
                yield ctx.diag(
                    "ELN004", "error", f"{location}.{node}",
                    f"node {node!r} is cut off from ground by "
                    f"capacitors/current sources only; its DC "
                    f"operating point is undefined",
                    hint="add a (large) resistor to ground or rework "
                         "the current-source/capacitor cutset",
                )


@rule("ELN005", domain="eln", severity="error")
def structurally_singular(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """The MNA sparsity pattern admits no structural pivot for a row."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_bipartite_matching

    for location, network in ctx.networks:
        try:
            dae, index = network.assemble()
        except Exception:
            continue  # unbuildable networks are reported elsewhere
        pattern = csr_matrix(
            (dae.G != 0.0) | (dae.C != 0.0), dtype=float)
        matching = maximum_bipartite_matching(pattern,
                                              perm_type="row")
        unmatched = np.flatnonzero(np.asarray(matching) == -1)
        if not len(unmatched):
            continue
        names = ([f"v({n})" for n in network.node_names()]
                 + [f"i({c})" for c in index.current_index])
        rows = [names[k] for k in unmatched]
        yield ctx.diag(
            "ELN005", "error", f"{location}.{network.name}",
            f"MNA system is structurally singular: no nonzero "
            f"pattern entry can pivot unknown(s) {rows}",
            hint="some unknown appears in no equation (or vice "
                 "versa); check controlled-source wiring",
            unknowns=rows,
        )


@rule("ELN006", domain="eln", severity="warning")
def self_shorted_component(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """All terminals of a component land on the same node."""
    for location, network in ctx.networks:
        for component in network.components:
            if len(set(component.nodes)) == 1:
                yield ctx.diag(
                    "ELN006", "warning",
                    f"{location}.{component.name}",
                    f"component {component.name!r} has all terminals "
                    f"on node {component.nodes[0]!r}; its stamp is a "
                    f"no-op",
                    hint="rewire the component or delete it",
                )


@rule("ELN007", domain="eln", severity="error")
def bad_current_control(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A current-controlled source references an unusable branch."""
    for location, network in ctx.networks:
        by_name = {c.name: c for c in network.components}
        for component in network.components:
            if not isinstance(component, (Ccvs, Cccs)):
                continue
            control = by_name.get(component.control)
            if control is None:
                yield ctx.diag(
                    "ELN007", "error",
                    f"{location}.{component.name}",
                    f"controlling component {component.control!r} "
                    f"does not exist in network {network.name!r}",
                    hint="name an existing component as the control",
                )
            elif not control.needs_current:
                yield ctx.diag(
                    "ELN007", "error",
                    f"{location}.{component.name}",
                    f"controlling component {component.control!r} "
                    f"({type(control).__name__}) carries no "
                    f"branch-current unknown",
                    hint="control from a voltage source, inductor, or "
                         "probe (insert a Probe in series to measure "
                         "a current)",
                )


@rule("ELN008", domain="eln", severity="error")
def empty_network(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A network contains no components."""
    for location, network in ctx.networks:
        if not network.components:
            yield ctx.diag(
                "ELN008", "error", f"{location}.{network.name}",
                f"network {network.name!r} is empty; MNA assembly "
                f"will fail",
                hint="add components or drop the network",
            )
