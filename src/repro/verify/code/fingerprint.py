"""Per-function content hashing (``code_fingerprint``).

The campaign cache (PR 1) keyed results on a digest of the *whole
source file* defining the model factory — editing a docstring three
functions away invalidated every cached point.  ``code_fingerprint``
narrows the identity to the code that actually executes: the
normalized AST of the function itself plus (one level deep, matching
the lint's interprocedural bound) every same-module helper function it
calls by name.  Formatting, comments, docstrings, and unrelated
top-level edits no longer churn cache keys; changing the executed body
always does.

The hash is stable across processes and hosts: it is derived from
``ast.dump`` of a location-stripped parse, never from ``id()``,
``hash()``, or dict iteration over runtime state.
"""

from __future__ import annotations

import ast
import functools
import hashlib
import inspect
import textwrap
from typing import Callable, Optional


def _normalized_dump(fn: Callable) -> Optional[str]:
    """Location-free, docstring-free AST dump of ``fn``; None when the
    source cannot be recovered (C extensions, REPL definitions)."""
    try:
        source = textwrap.dedent(inspect.getsource(inspect.unwrap(fn)))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return None
    if not tree.body or not isinstance(
            tree.body[0], (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    node = tree.body[0]
    body = node.body
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        node.body = body[1:] or [ast.Pass()]
    return ast.dump(node, include_attributes=False)


def _helper_names(fn: Callable) -> list:
    """Same-module functions ``fn`` calls by bare name, sorted."""
    try:
        source = textwrap.dedent(inspect.getsource(inspect.unwrap(fn)))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return []
    namespace = getattr(fn, "__globals__", {})
    module_name = getattr(fn, "__module__", None)
    helpers = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            obj = namespace.get(node.func.id)
            if (inspect.isfunction(obj)
                    and obj.__module__ == module_name
                    and obj is not inspect.unwrap(fn)):
                helpers[node.func.id] = obj
    return sorted(helpers.items())


def _opaque_identity(fn: Callable) -> bytes:
    """Source-less fallback: hash the compiled code object (stable for
    a given interpreter/bytecode, better than nothing)."""
    code = getattr(fn, "__code__", None)
    if code is None:
        return repr(fn).encode()
    return code.co_code + repr(code.co_consts).encode() \
        + repr(code.co_names).encode()


def code_fingerprint(fn: Callable) -> str:
    """Content hash of the code a callable executes.

    Covers the function's own normalized AST plus one level of
    same-module helper functions called by name (deeper call chains —
    like the verifier's interprocedural analysis — are deliberately
    out of scope: fingerprint what you lint).  ``functools.partial``
    objects hash their inner function together with the canonical repr
    of the frozen arguments.
    """
    digest = hashlib.sha256(b"code-fingerprint-v1:")
    if isinstance(fn, functools.partial):
        digest.update(code_fingerprint(fn.func).encode())
        digest.update(repr(fn.args).encode())
        digest.update(repr(sorted(fn.keywords.items())).encode())
        return digest.hexdigest()[:16]
    dump = _normalized_dump(fn)
    if dump is None:
        digest.update(_opaque_identity(fn))
        return digest.hexdigest()[:16]
    digest.update(dump.encode())
    for name, helper in _helper_names(fn):
        helper_dump = _normalized_dump(helper)
        if helper_dump is not None:
            digest.update(f";{name}=".encode())
            digest.update(helper_dump.encode())
    return digest.hexdigest()[:16]
