"""AST scanning infrastructure for the behavioral code lint (CODE###).

The graph rules (TDF/SDF/ELN/SYNC/CORE) check the *structure* a model
declares; the CODE rules check the *Python code* the model executes.
This module turns live objects back into analyzable ASTs:

* :class:`ScannedFunction` — one function/method: its AST, absolute
  line numbers, defining file, and the globals it resolves names in;
* :class:`ModuleScan` — one :class:`~repro.tdf.module.TdfModule`
  *class* (instances sharing a class share one scan) with its analyzed
  lifecycle methods plus one level of helper-call inlining;
* name resolution (:meth:`ScannedFunction.resolve_call`) that maps a
  call expression back to the canonical dotted name of what it calls
  (``np.random.normal`` → ``numpy.random.normal``), so rules match on
  semantics, not on spelling;
* dataflow helpers: per-attribute ``self.X`` write sites and
  statically bounded port-I/O counts per activation.

Everything here is best-effort and *silent* on failure: code whose
source is unavailable (C extensions, REPL definitions) simply yields
no scan, never a crash — the graph rules still run.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ...tdf.module import TdfModule

#: Lifecycle methods analyzed on every TDF module class, in the order
#: they run.  ``build``-style campaign callables are scanned separately
#: (see :func:`scan_callable`).
LIFECYCLE_METHODS = (
    "__init__",
    "set_attributes",
    "initialize",
    "processing",
    "processing_block",
)

#: Methods whose body runs once per activation (the paper's
#: "side-effect-free processing between cluster activations").
ACTIVATION_METHODS = ("processing", "processing_block")

#: Container-mutating method names: ``self.X.append(...)`` and friends
#: count as writes to ``self.X``.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort",
    "reverse", "appendleft", "extendleft", "fill", "itemset",
})


def _source_node(fn: Callable) -> Optional[Tuple[ast.FunctionDef, str, int]]:
    """(FunctionDef with *absolute* line numbers, file, first line)."""
    try:
        fn = inspect.unwrap(fn)
        lines, start = inspect.getsourcelines(fn)
        path = inspect.getsourcefile(fn)
    except (OSError, TypeError):
        return None
    if path is None:
        return None
    try:
        tree = ast.parse(textwrap.dedent("".join(lines)))
    except SyntaxError:
        return None
    if not tree.body or not isinstance(
            tree.body[0], (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    node = tree.body[0]
    ast.increment_lineno(node, start - 1)
    return node, path, start


@dataclass
class ScannedFunction:
    """One analyzable function or method."""

    #: Method name (``"processing"``) or callable label
    #: (``"campaign.build"``).
    name: str
    #: The live function object (unbound for methods).
    fn: Callable
    #: Its ``FunctionDef`` node, line numbers absolute in :attr:`file`.
    node: ast.FunctionDef
    file: str
    first_line: int
    #: ``"method"`` or ``"callable"``.
    kind: str = "method"
    #: Set on helper scans: the lifecycle method that calls this one.
    inlined_from: Optional[str] = None
    _resolve_cache: Dict[int, Optional[str]] = field(
        default_factory=dict, repr=False)

    # -- name resolution ----------------------------------------------------

    def _dotted(self, expr: ast.expr) -> Optional[List[str]]:
        """``a.b.c`` / ``self.x.y`` → ``["a", "b", "c"]``."""
        parts: List[str] = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if isinstance(expr, ast.Name):
            parts.append(expr.id)
            return parts[::-1]
        return None

    def _canonical_root(self, name: str) -> Optional[str]:
        """Map the first identifier of a dotted path to its canonical
        module-qualified name via the function's globals."""
        namespace = getattr(self.fn, "__globals__", {})
        obj = namespace.get(name, getattr(builtins, name, None))
        if obj is None:
            return None
        if inspect.ismodule(obj):
            return obj.__name__
        if inspect.isclass(obj):
            return f"{obj.__module__}.{obj.__qualname__}"
        if callable(obj):
            module = getattr(obj, "__module__", None)
            qualname = getattr(obj, "__qualname__",
                               getattr(obj, "__name__", name))
            return f"{module}.{qualname}" if module else qualname
        return None

    def resolve_call(self, node: ast.Call) -> Optional[str]:
        """Canonical dotted name of what ``node`` calls.

        ``self.<...>`` paths are returned verbatim (``"self.inp.read"``);
        everything else is resolved through the function's globals so
        import aliases (``import numpy as np``) cannot hide a match.
        Unresolvable targets (results of calls, subscripts) are None.
        """
        key = id(node)
        if key not in self._resolve_cache:
            self._resolve_cache[key] = self._resolve_uncached(node)
        return self._resolve_cache[key]

    def _resolve_uncached(self, node: ast.Call) -> Optional[str]:
        parts = self._dotted(node.func)
        if parts is None:
            return None
        if parts[0] == "self":
            return ".".join(parts)
        root = self._canonical_root(parts[0])
        if root is None:
            # unknown name: keep the literal spelling so rules can
            # still match explicit "module.attr" patterns
            return ".".join(parts)
        return ".".join([root, *parts[1:]])

    def resolve_attribute(self, node: ast.Attribute) -> Optional[str]:
        """Canonical dotted name of a (non-call) attribute access."""
        parts = self._dotted(node)
        if parts is None or parts[0] == "self":
            return None
        root = self._canonical_root(parts[0])
        if root is None:
            return ".".join(parts)
        return ".".join([root, *parts[1:]])

    # -- traversal ----------------------------------------------------------

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.node)

    def calls(self) -> Iterator[ast.Call]:
        for node in self.walk():
            if isinstance(node, ast.Call):
                yield node

    def global_statements(self) -> Iterator[ast.Global]:
        for node in self.walk():
            if isinstance(node, ast.Global):
                yield node

    # -- self.<attr> dataflow ------------------------------------------------

    def self_writes(self) -> Dict[str, int]:
        """``{attr: first write line}`` for every ``self.<attr>`` the
        body assigns, augments, subscript-stores, or mutates in place
        through a container method."""
        writes: Dict[str, int] = {}

        def note(attr: str, line: int) -> None:
            writes.setdefault(attr, line)

        def self_attr(expr: ast.expr) -> Optional[str]:
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"):
                return expr.attr
            return None

        for node in self.walk():
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    base = target
                    # self.x[i] = ... mutates self.x
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    attr = self_attr(base)
                    if attr is not None:
                        note(attr, target.lineno)
            elif isinstance(node, ast.Call):
                # self.x.append(...) and friends
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS):
                    attr = self_attr(func.value)
                    if attr is not None:
                        note(attr, node.lineno)
        return writes

    def self_attr_events(self) -> Dict[str, Dict[str, List[int]]]:
        """Per-attribute access-site lines, classified for the
        carried-state analysis:

        * ``"assign"`` — plain ``self.x = ...`` (all of them);
        * ``"toplevel"`` — the subset of plain assigns at the top level
          of the body (unconditional on every activation);
        * ``"augmented"`` — accesses that *require* a prior value:
          ``self.x += ...``, ``self.x[i] = ...``, ``self.x.append()``;
        * ``"read"`` — Load-context ``self.x`` uses.
        """
        events: Dict[str, Dict[str, List[int]]] = {}

        def ev(attr: str) -> Dict[str, List[int]]:
            return events.setdefault(attr, {
                "assign": [], "toplevel": [], "augmented": [],
                "read": []})

        def self_attr(expr: ast.expr) -> Optional[str]:
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"):
                return expr.attr
            return None

        toplevel_ids = {id(stmt) for stmt in self.node.body}
        for node in self.walk():
            if isinstance(node, ast.Assign) or (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = self_attr(target)
                    if attr is not None:
                        ev(attr)["assign"].append(target.lineno)
                        if id(node) in toplevel_ids:
                            ev(attr)["toplevel"].append(target.lineno)
                        continue
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    attr = self_attr(base)
                    if attr is not None:  # self.x[i] = ... needs self.x
                        ev(attr)["augmented"].append(target.lineno)
            elif isinstance(node, ast.AugAssign):
                base: ast.expr = node.target
                while isinstance(base, ast.Subscript):
                    base = base.value
                attr = self_attr(base)
                if attr is not None:
                    ev(attr)["augmented"].append(node.lineno)
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATOR_METHODS):
                    attr = self_attr(func.value)
                    if attr is not None:
                        ev(attr)["augmented"].append(node.lineno)
            elif isinstance(node, ast.Attribute):
                if isinstance(node.ctx, ast.Load):
                    attr = self_attr(node)
                    if attr is not None:
                        ev(attr)["read"].append(node.lineno)
        return events

    def self_reads(self) -> set:
        """Attr names the body reads via ``self.<attr>``."""
        reads = set()
        for node in self.walk():
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                reads.add(node.attr)
        return reads

    # -- helper discovery ----------------------------------------------------

    def helper_targets(self) -> List[Tuple[str, Callable]]:
        """Callables this function invokes that are worth one level of
        inlining: ``self.<method>()`` for methods defined on the owning
        class, and bare-name calls to functions of the same module."""
        namespace = getattr(self.fn, "__globals__", {})
        module_name = getattr(self.fn, "__module__", None)
        found: Dict[str, Callable] = {}
        for call in self.calls():
            func = call.func
            if isinstance(func, ast.Name):
                obj = namespace.get(func.id)
                if (inspect.isfunction(obj)
                        and obj.__module__ == module_name):
                    found.setdefault(func.id, obj)
        return list(found.items())


def scan_function(fn: Callable, name: str, *, kind: str = "method",
                  inlined_from: Optional[str] = None,
                  ) -> Optional[ScannedFunction]:
    """Best-effort scan of one function; None when source is missing."""
    located = _source_node(fn)
    if located is None:
        return None
    node, path, start = located
    return ScannedFunction(name=name, fn=fn, node=node, file=path,
                           first_line=start, kind=kind,
                           inlined_from=inlined_from)


def scan_callable(fn: Callable, label: str) -> Optional[ScannedFunction]:
    """Scan a campaign-style callable (``build``/``run``)."""
    inner = fn
    # functools.partial: analyze the wrapped function
    inner = getattr(inner, "func", inner)
    return scan_function(inner, label, kind="callable")


class ModuleScan:
    """The analyzed code of one TdfModule subclass.

    ``instances`` lists every live module of that class in the verified
    hierarchy (diagnostics anchor to the first one); ``methods`` maps
    lifecycle-method names to scans of the *defining* function, wherever
    in the MRO it lives — but framework base implementations
    (:class:`~repro.tdf.module.TdfModule` itself) are never analyzed.
    """

    def __init__(self, cls: type, instances: List[TdfModule]):
        self.cls = cls
        self.instances = instances
        self.methods: Dict[str, ScannedFunction] = {}
        #: one level of helper inlining: ``{method: [helper scans]}``.
        self.helpers: Dict[str, List[ScannedFunction]] = {}
        for name in LIFECYCLE_METHODS:
            fn = getattr(cls, name, None)
            base = getattr(TdfModule, name, None)
            if fn is None or getattr(fn, "__func__", fn) is \
                    getattr(base, "__func__", base):
                continue  # not overridden: framework code, skip
            scan = scan_function(fn, name)
            if scan is None:
                continue
            self.methods[name] = scan
            self.helpers[name] = self._inline_helpers(scan)
        self.checkpoint = self._hook_scan("checkpoint_state")
        self.restore = self._hook_scan("restore_state")

    def _hook_scan(self, name: str) -> Optional[ScannedFunction]:
        fn = getattr(self.cls, name, None)
        base = getattr(TdfModule, name, None)
        if fn is None or getattr(fn, "__func__", fn) is \
                getattr(base, "__func__", base):
            return None
        return scan_function(fn, name)

    def _inline_helpers(self, scan: ScannedFunction,
                        ) -> List[ScannedFunction]:
        """One level only: helpers of helpers are not followed."""
        inlined: List[ScannedFunction] = []
        seen = set()
        # module-level functions called by bare name
        for name, fn in scan.helper_targets():
            if name not in seen:
                seen.add(name)
                helper = scan_function(fn, name,
                                       inlined_from=scan.name)
                if helper is not None:
                    inlined.append(helper)
        # self.<method>() calls resolving to methods of this class
        for call in scan.calls():
            target = scan.resolve_call(call)
            if (target is None or not target.startswith("self.")
                    or target.count(".") != 1):
                continue
            attr = target.split(".", 1)[1]
            if attr in seen or attr in LIFECYCLE_METHODS:
                continue
            fn = getattr(self.cls, attr, None)
            if not (inspect.isfunction(fn)
                    and getattr(TdfModule, attr, None) is None):
                continue  # framework API / not a plain def
            seen.add(attr)
            helper = scan_function(fn, attr, inlined_from=scan.name)
            if helper is not None:
                inlined.append(helper)
        return inlined

    # -- rule-facing views ---------------------------------------------------

    def anchor(self) -> str:
        """Hierarchical location of the scan's representative instance."""
        return self.instances[0].full_name()

    def scans(self, *names: str,
              include_helpers: bool = True,
              ) -> Iterator[Tuple[str, ScannedFunction]]:
        """(owning lifecycle method, scan) pairs for ``names`` (all
        lifecycle methods when empty), helpers included by default."""
        chosen = names or LIFECYCLE_METHODS
        for name in chosen:
            scan = self.methods.get(name)
            if scan is None:
                continue
            yield name, scan
            if include_helpers:
                for helper in self.helpers.get(name, ()):
                    yield name, helper

    def activation_writes(self) -> Dict[str, Tuple[int, str, str]]:
        """``{attr: (line, file, method)}`` for every ``self`` attribute
        the per-activation methods (or their helpers) mutate."""
        writes: Dict[str, Tuple[int, str, str]] = {}
        for method, scan in self.scans(*ACTIVATION_METHODS):
            for attr, line in scan.self_writes().items():
                writes.setdefault(attr, (line, scan.file, method))
        return writes

    def carried_state(self) -> Dict[str, Tuple[int, str, str]]:
        """``{attr: (line, file, method)}`` for attributes whose value
        provably *carries across activations* — the state a checkpoint
        must capture.  Scratch attributes (unconditionally reassigned at
        the top of every activation before any read) are excluded:
        restore recomputes them anyway.
        """
        carried: Dict[str, Tuple[int, str, str]] = {}
        reads_by_scan: Dict[str, List[int]] = {}
        writes_by_scan: Dict[str, List[Tuple[int, Tuple[int, str, str]]]] = {}

        for index, (method, scan) in enumerate(
                self.scans(*ACTIVATION_METHODS)):
            for attr, events in scan.self_attr_events().items():
                site = None
                write_lines = events["assign"] + events["augmented"]
                if write_lines:
                    site = (min(write_lines), scan.file, method)
                    writes_by_scan.setdefault(attr, []).append(
                        (index, site))
                if events["read"]:
                    reads_by_scan.setdefault(attr, []).append(index)
                if attr in carried:
                    continue
                if events["augmented"] and (
                        not events["toplevel"]
                        or min(events["augmented"])
                        <= min(events["toplevel"])):
                    # in-place mutation of a value that was *not*
                    # freshly assigned earlier this activation
                    carried[attr] = (min(events["augmented"]),
                                     scan.file, method)
                elif events["read"] and events["assign"]:
                    toplevel = events["toplevel"]
                    # a read at/before the first unconditional assign
                    # (or any read when every assign is conditional)
                    # observes the previous activation's value
                    if (not toplevel
                            or min(events["read"]) <= min(toplevel)):
                        carried[attr] = (min(events["assign"]),
                                         scan.file, method)
        # cross-function flows: written in one scan, read in another
        # (e.g. processing writes, a helper or processing_block reads)
        for attr, sites in writes_by_scan.items():
            if attr in carried:
                continue
            writer_ids = {index for index, _site in sites}
            if any(index not in writer_ids
                   for index in reads_by_scan.get(attr, [])):
                carried[attr] = sites[0][1]
        return carried

    def checkpoint_covered(self) -> set:
        """Attributes mentioned by the checkpoint hooks."""
        covered = set()
        for scan in (self.checkpoint, self.restore):
            if scan is not None:
                covered |= scan.self_reads()
                covered |= set(scan.self_writes())
        return covered


def module_scans(ctx) -> List[ModuleScan]:
    """Per-class scans for every TDF module in the context (cached)."""
    cached = getattr(ctx, "_code_module_scans", None)
    if cached is not None:
        return cached
    by_class: Dict[type, List[TdfModule]] = {}
    for module in ctx.tdf_modules:
        by_class.setdefault(type(module), []).append(module)
    scans = [ModuleScan(cls, instances)
             for cls, instances in by_class.items()]
    ctx._code_module_scans = scans
    return scans


def callable_scans(ctx) -> List[Tuple[str, Callable,
                                      Optional[ScannedFunction]]]:
    """Scans of the extra callables attached to the context (campaign
    ``build``/``run`` functions); the raw callable rides along for
    value-level checks (closures, lambdas)."""
    cached = getattr(ctx, "_code_callable_scans", None)
    if cached is not None:
        return cached
    scans = [(label, fn, scan_callable(fn, label))
             for label, fn in getattr(ctx, "code_callables", [])]
    ctx._code_callable_scans = scans
    return scans


# -- static port-I/O counting ------------------------------------------------


@dataclass
class PortIoCount:
    """Statically bounded scalar I/O of one port in one method."""

    #: number of ``read()``/``write()`` calls per activation, or None
    #: when a surrounding loop/branch defeats the bound.
    calls: Optional[int]
    #: highest sample index provably passed, or None when unknown.
    max_index: Optional[int]
    #: True when *every* call site was statically bounded.
    exact: bool
    #: line of the worst offender (used for diagnostics).
    line: int = 0


def _loop_bound(scan: ScannedFunction, instance: Any,
                node: ast.For) -> Optional[Tuple[str, int]]:
    """``for k in range(N)`` → (loop var, N) when N is statically known:
    an int literal, ``self.<attr>`` with an int value on ``instance``,
    or ``self.<port>.rate``."""
    if not (isinstance(node.target, ast.Name)
            and isinstance(node.iter, ast.Call)
            and scan.resolve_call(node.iter) == "builtins.range"
            and len(node.iter.args) == 1):
        return None
    bound = node.iter.args[0]
    if isinstance(bound, ast.Constant) and isinstance(bound.value, int):
        return node.target.id, bound.value
    parts = scan._dotted(bound)
    if parts and parts[0] == "self" and len(parts) in (2, 3):
        value: Any = instance
        for attr in parts[1:]:
            value = getattr(value, attr, None)
        if isinstance(value, int) and not isinstance(value, bool):
            return node.target.id, value
    return None


def count_port_io(scan: ScannedFunction, instance: Any, port_attr: str,
                  method_name: str) -> PortIoCount:
    """Bound the scalar ``self.<port_attr>.read/write`` traffic of one
    activation.  Loops over ``range(<literal>)``, ``range(self.<int>)``
    and ``range(self.<port>.rate)`` multiply; anything else (while,
    comprehensions, non-range iterables) makes the count unbounded.
    Branches take the maximum of their arms, which keeps the result a
    safe upper bound for out-of-range detection.
    """
    target_calls = {f"self.{port_attr}.read", f"self.{port_attr}.write"}
    total = PortIoCount(calls=0, max_index=None, exact=True)

    def merge_index(index: Optional[int], line: int) -> None:
        if index is None:
            total.exact = False
            return
        if total.max_index is None or index > total.max_index:
            total.max_index = index
            total.line = line

    def sample_index(call: ast.Call,
                     loop_vars: Dict[str, int]) -> Optional[int]:
        args = list(call.args)
        for keyword in call.keywords:
            if keyword.arg == "sample":
                args = [keyword.value]
                break
        else:
            if not args:
                return 0  # read()/write(v) default to sample 0
            name = scan.resolve_call(call) or ""
            if name.endswith(".write"):
                args = args[1:]  # write(value[, sample])
                if not args:
                    return 0
        expr = args[0]
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return expr.value
        if isinstance(expr, ast.Name) and expr.id in loop_vars:
            return loop_vars[expr.id] - 1  # max value of range var
        return None

    def calls_in(node: ast.AST) -> Iterator[ast.Call]:
        """Calls in one statement, not descending into nested defs."""
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            yield node
        for child in ast.iter_child_nodes(node):
            yield from calls_in(child)

    def visit(nodes, loop_vars: Dict[str, int]) -> Optional[int]:
        """Call count contributed by ``nodes`` (None = unbounded);
        updates ``total.max_index`` / ``total.exact`` in place."""
        count: Optional[int] = 0

        def add(n: Optional[int]) -> None:
            nonlocal count
            count = None if (count is None or n is None) else count + n

        for node in nodes:
            if isinstance(node, ast.For):
                bound = _loop_bound(scan, instance, node)
                if bound is None:
                    inner = visit(node.body, dict(loop_vars))
                    add(None if inner != 0 else 0)
                else:
                    var, n = bound
                    vars_in = dict(loop_vars)
                    vars_in[var] = n
                    inner = visit(node.body, vars_in)
                    add(None if inner is None else inner * n)
                add(visit(node.orelse, loop_vars))
            elif isinstance(node, ast.While):
                inner = visit(node.body, dict(loop_vars))
                add(None if inner != 0 else 0)
            elif isinstance(node, ast.If):
                body = visit(node.body, loop_vars)
                orelse = visit(node.orelse, loop_vars)
                if body is None or orelse is None:
                    add(None)
                else:
                    add(max(body, orelse))
            elif isinstance(node, ast.Try):
                add(visit(node.body, loop_vars))
                for handler in node.handlers:
                    # handler I/O is conditional: any traffic there
                    # defeats an exact bound
                    if visit(handler.body, loop_vars) != 0:
                        add(None)
                add(visit(node.orelse, loop_vars))
                add(visit(node.finalbody, loop_vars))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                add(visit(node.body, loop_vars))
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                continue  # nested defs run on their own schedule
            else:
                for call in calls_in(node):
                    if scan.resolve_call(call) in target_calls:
                        add(1)
                        merge_index(sample_index(call, loop_vars),
                                    call.lineno)
                        if total.line == 0:
                            total.line = call.lineno
        return count

    calls = visit(scan.node.body, {})
    total.calls = calls
    if calls is None:
        total.exact = False
    return total
