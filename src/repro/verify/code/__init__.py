"""Behavioral code lint: AST analysis of the Python code models run.

Public surface:

* :func:`code_fingerprint` — content hash of the code a callable
  executes (used by the campaign cache key);
* :mod:`.rules_code` — the CODE### rules, registered via the shared
  ``@rule`` registry when the verifier loads builtin rules;
* :mod:`.scan` — the AST scanning infrastructure the rules build on.
"""

from .fingerprint import code_fingerprint

__all__ = ["code_fingerprint"]
