"""Behavioral code lint over model Python code (CODE0xx).

Every platform guarantee the batch/service layers ship — bit-identical
serial ≡ parallel campaigns, fleet-wide single-flight dedup,
checkpoint/restart resume — silently assumes user ``processing()`` /
``build()`` code is deterministic, checkpoint-complete, and
fork/pickle-safe.  These rules prove (or refute) those assumptions
statically, from the AST of the model's own methods:

* CODE001–CODE007 — determinism: unseeded global RNG, wall-clock and
  entropy reads, environment/filesystem dependence, module-global
  mutation.  Violations break campaign fingerprints and service dedup.
* CODE008–CODE009 — checkpoint completeness: per-activation state not
  covered by ``checkpoint_state`` corrupts ``restore_checkpoint``
  resume silently.
* CODE010–CODE012 — rate contracts: statically bounded port I/O
  checked against declared TDF rates, block-API misuse.
* CODE013–CODE014 — fork/pickle safety of modules and campaign
  callables shipped through ``campaign.loader`` / the service wire.
* CODE015 — side effects the TDF MoC contract reserves for converter
  ports (console I/O from ``processing``).

Analysis depth is bounded: one level of helper-call inlining, and
``# verify: allow[CODE0xx]`` suppression comments are honored by the
engine (suppressed findings are *counted*, not dropped).
"""

from __future__ import annotations

import ast
import io
import socket
import threading
import types
from typing import Iterator, Optional, Tuple

from ...tdf.signal import TdfIn, TdfOut
from ..context import VerifyContext
from ..diagnostics import Diagnostic
from ..registry import rule
from .scan import (
    ACTIVATION_METHODS,
    ModuleScan,
    ScannedFunction,
    callable_scans,
    count_port_io,
    module_scans,
)

# -- call tables --------------------------------------------------------------

#: stdlib ``random`` module-level draws (global, seed-shared state).
_RANDOM_GLOBAL = frozenset({
    "random", "randint", "randrange", "uniform", "gauss",
    "normalvariate", "choice", "choices", "shuffle", "sample",
    "betavariate", "expovariate", "gammavariate", "lognormvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "triangular",
    "getrandbits", "randbytes", "seed",
})

#: wall-clock reads (and stalls) that leak host time into model state.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "time.sleep", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: OS entropy and process-identity sources.
_ENTROPY = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.randbits", "secrets.choice", "builtins.id",
})

#: numpy *global-state* RNG entry points (``np.random.<draw>``).
_NUMPY_GLOBAL = frozenset({
    "rand", "randn", "random", "random_sample", "ranf", "sample",
    "normal", "uniform", "randint", "random_integers", "choice",
    "shuffle", "permutation", "standard_normal", "standard_cauchy",
    "standard_exponential", "standard_gamma", "exponential", "poisson",
    "binomial", "beta", "gamma", "laplace", "logistic", "lognormal",
    "seed", "bytes", "get_state", "set_state",
})

#: environment reads.
_ENV_CALLS = frozenset({"os.getenv", "os.environ.get"})
_ENV_ATTRS = frozenset({"os.environ"})

#: filesystem / stdin reads (activation scope only).
_FS_CALLS = frozenset({
    "builtins.open", "io.open", "os.listdir", "os.scandir", "os.walk",
    "os.stat", "builtins.input",
})
_FS_ATTRS = frozenset({"sys.stdin"})

#: console writes (activation scope only).
_CONSOLE_CALLS = frozenset({
    "builtins.print", "sys.stdout.write", "sys.stderr.write",
    "sys.stdout.writelines", "sys.stderr.writelines",
})

#: constructors whose results cannot survive fork/pickle when stored
#: on module state.
_FORK_UNSAFE_CTORS = frozenset({
    "builtins.open", "io.open", "threading.Lock", "threading.RLock",
    "threading.Condition", "threading.Event", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Thread",
    "threading.Timer", "socket.socket", "socket.create_connection",
    "subprocess.Popen",
})

#: closure-cell types that cannot ship through the campaign wire.
_UNPICKLABLE_CELL_TYPES: Tuple[type, ...] = (
    io.IOBase, socket.socket, types.GeneratorType, types.ModuleType,
    type(threading.Lock()), type(threading.RLock()), threading.Thread,
)


# -- shared iteration helpers -------------------------------------------------


def _code_targets(ctx: VerifyContext) -> Iterator[
        Tuple[str, ScannedFunction, Optional[ModuleScan]]]:
    """(location, scan, owning ModuleScan|None) over everything the
    determinism rules analyze: all lifecycle methods (helpers included)
    of every TDF module class, plus attached campaign callables."""
    for mscan in module_scans(ctx):
        for method, scan in mscan.scans():
            yield f"{mscan.anchor()}.{method}", scan, mscan
    for label, _fn, scan in callable_scans(ctx):
        if scan is not None:
            yield label, scan, None


def _activation_targets(ctx: VerifyContext) -> Iterator[
        Tuple[str, ScannedFunction, Optional[ModuleScan]]]:
    """Per-activation code only (``processing`` / ``processing_block``
    and their helpers), plus campaign callables — the scopes where the
    paper's side-effect-free contract applies."""
    for mscan in module_scans(ctx):
        for method, scan in mscan.scans(*ACTIVATION_METHODS):
            yield f"{mscan.anchor()}.{method}", scan, mscan
    for label, _fn, scan in callable_scans(ctx):
        if scan is not None:
            yield label, scan, None


def _via(scan: ScannedFunction) -> str:
    if scan.inlined_from:
        return f" (via helper {scan.name}())"
    return ""


def _flag_calls(ctx: VerifyContext, rule_id: str, severity: str,
                targets, names, message: str,
                hint: str) -> Iterator[Diagnostic]:
    """Yield one diagnostic per call whose canonical name is in
    ``names``."""
    for location, scan, _owner in targets:
        for call in scan.calls():
            resolved = scan.resolve_call(call)
            if resolved in names:
                yield ctx.diag(
                    rule_id, severity, location,
                    message.format(call=resolved) + _via(scan),
                    hint=hint, file=scan.file, line=call.lineno,
                    call=resolved,
                )


# -- determinism lint (CODE001-CODE007) ---------------------------------------


@rule("CODE001", domain="code", severity="error")
def unseeded_stdlib_random(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Model code draws from the process-global ``random`` state."""
    targets = list(_code_targets(ctx))
    yield from _flag_calls(
        ctx, "CODE001", "error", targets,
        {f"random.{name}" for name in _RANDOM_GLOBAL},
        "call to {call} draws from the process-global random state",
        hint="inject a seeded stream instead (repro.lib.as_generator / "
             "numpy SeedSequence); global draws break the serial ≡ "
             "parallel guarantee and campaign dedup",
    )
    # unseeded random.Random() is the same defect in constructor form
    for location, scan, _owner in targets:
        for call in scan.calls():
            if (scan.resolve_call(call) == "random.Random"
                    and not call.args and not call.keywords):
                yield ctx.diag(
                    "CODE001", "error", location,
                    "random.Random() constructed without a seed"
                    + _via(scan),
                    hint="pass an explicit seed derived from the "
                         "campaign's per-run stream",
                    file=scan.file, line=call.lineno,
                )


@rule("CODE002", domain="code", severity="error")
def wall_clock_dependence(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Model code reads (or stalls on) the host wall clock."""
    yield from _flag_calls(
        ctx, "CODE002", "error", _code_targets(ctx), _WALL_CLOCK,
        "call to {call} couples model behaviour to host wall-clock "
        "time",
        hint="use the simulated time base (local_time / "
             "activation_times); wall-clock values differ per host and "
             "break result fingerprints",
    )


@rule("CODE003", domain="code", severity="error")
def entropy_or_process_identity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Model code reads OS entropy or process-identity values."""
    yield from _flag_calls(
        ctx, "CODE003", "error", _code_targets(ctx), _ENTROPY,
        "call to {call} yields per-process values that can never "
        "reproduce",
        hint="derive identifiers from parameters or the per-run seed; "
             "entropy/id() values differ on every execution",
    )


@rule("CODE004", domain="code", severity="error")
def numpy_global_rng(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Model code uses numpy's global random state (or an unseeded
    default_rng())."""
    targets = list(_code_targets(ctx))
    yield from _flag_calls(
        ctx, "CODE004", "error", targets,
        {f"numpy.random.{name}" for name in _NUMPY_GLOBAL},
        "call to {call} uses numpy's process-global RNG",
        hint="accept a SeedLike parameter and call "
             "repro.lib.as_generator(seed) (see lib.sources for the "
             "idiom)",
    )
    for location, scan, _owner in targets:
        for call in scan.calls():
            if (scan.resolve_call(call) == "numpy.random.default_rng"
                    and not call.args and not call.keywords):
                yield ctx.diag(
                    "CODE004", "error", location,
                    "numpy.random.default_rng() without a seed draws "
                    "fresh OS entropy per construction" + _via(scan),
                    hint="thread the campaign seed through to "
                         "default_rng(seed)",
                    file=scan.file, line=call.lineno,
                )


@rule("CODE005", domain="code", severity="error")
def environment_read(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Model code reads process environment variables."""
    targets = list(_code_targets(ctx))
    yield from _flag_calls(
        ctx, "CODE005", "error", targets, _ENV_CALLS,
        "call to {call} makes model behaviour depend on the worker's "
        "environment",
        hint="pass configuration through campaign parameters so it is "
             "part of the cache key",
    )
    for location, scan, _owner in targets:
        for node in scan.walk():
            if isinstance(node, ast.Subscript) and isinstance(
                    node.value, ast.Attribute):
                resolved = scan.resolve_attribute(node.value)
                if resolved in _ENV_ATTRS:
                    yield ctx.diag(
                        "CODE005", "error", location,
                        f"{resolved}[...] read makes model behaviour "
                        f"depend on the worker's environment"
                        + _via(scan),
                        hint="pass configuration through campaign "
                             "parameters instead",
                        file=scan.file, line=node.lineno,
                    )


@rule("CODE006", domain="code", severity="warning")
def filesystem_read_in_processing(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Per-activation code reads the filesystem or stdin."""
    targets = list(_activation_targets(ctx))
    yield from _flag_calls(
        ctx, "CODE006", "warning", targets, _FS_CALLS,
        "call to {call} reads host filesystem state from "
        "per-activation code",
        hint="load data once in __init__/initialize and capture it in "
             "module state; per-activation reads are invisible to the "
             "cache key and slow the hot path",
    )
    for location, scan, _owner in targets:
        for node in scan.walk():
            if isinstance(node, ast.Attribute):
                if scan.resolve_attribute(node) in _FS_ATTRS:
                    yield ctx.diag(
                        "CODE006", "warning", location,
                        "sys.stdin access from per-activation code"
                        + _via(scan),
                        hint="models must not block on interactive "
                             "input",
                        file=scan.file, line=node.lineno,
                    )


@rule("CODE007", domain="code", severity="error")
def global_state_mutation(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Per-activation code mutates module-global state."""
    for location, scan, _owner in _activation_targets(ctx):
        for node in scan.global_statements():
            yield ctx.diag(
                "CODE007", "error", location,
                f"'global {', '.join(node.names)}' rebinding from "
                f"per-activation code{_via(scan)}",
                hint="keep per-activation state on self (and cover it "
                     "in checkpoint_state); globals are not restored "
                     "on resume and race under parallel campaigns",
                file=scan.file, line=node.lineno,
            )
        namespace = getattr(scan.fn, "__globals__", {})

        def is_global_container(expr) -> Optional[str]:
            if not isinstance(expr, ast.Name):
                return None
            value = namespace.get(expr.id)
            if value is None or callable(value) or isinstance(
                    value, types.ModuleType):
                return None
            if isinstance(value, (list, dict, set, bytearray)):
                return expr.id
            return None

        for node in scan.walk():
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute):
                if node.func.attr in {"append", "extend", "add",
                                      "update", "insert", "setdefault",
                                      "pop", "clear", "remove"}:
                    name = is_global_container(node.func.value)
                    if name is not None:
                        yield ctx.diag(
                            "CODE007", "error", location,
                            f"mutation of module-global {name!r} "
                            f"({node.func.attr}) from per-activation "
                            f"code{_via(scan)}",
                            hint="move the container onto self and "
                                 "cover it in checkpoint_state",
                            file=scan.file, line=node.lineno,
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        name = is_global_container(target.value)
                        if name is not None:
                            yield ctx.diag(
                                "CODE007", "error", location,
                                f"item assignment into module-global "
                                f"{name!r} from per-activation code"
                                + _via(scan),
                                hint="move the container onto self "
                                     "and cover it in "
                                     "checkpoint_state",
                                file=scan.file, line=node.lineno,
                            )


# -- checkpoint completeness (CODE008-CODE009) --------------------------------


@rule("CODE008", domain="code", severity="warning")
def checkpoint_incomplete_state(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Per-activation state is invisible to checkpoint/restore."""
    for mscan in module_scans(ctx):
        carried = mscan.carried_state()
        if not carried:
            continue
        covered = mscan.checkpoint_covered()
        has_hooks = (mscan.checkpoint is not None
                     or mscan.restore is not None)
        for attr, (line, path, method) in sorted(carried.items()):
            if attr in covered:
                continue
            location = f"{mscan.anchor()}.{method}"
            if has_hooks:
                message = (f"self.{attr} carries state across "
                           f"activations but is not covered by this "
                           f"module's checkpoint_state/restore_state")
            else:
                message = (f"self.{attr} carries state across "
                           f"activations but the module defines no "
                           f"checkpoint_state hook")
            yield ctx.diag(
                "CODE008", "warning", location, message,
                hint="return it from checkpoint_state() and reinstall "
                     "it in restore_state(); otherwise a resumed run "
                     "silently diverges from an uninterrupted one",
                file=path, line=line, attr=attr,
                cls=mscan.cls.__qualname__,
            )


@rule("CODE009", domain="code", severity="error")
def checkpoint_hook_asymmetry(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """checkpoint_state and restore_state are not overridden together."""
    for mscan in module_scans(ctx):
        has_checkpoint = mscan.checkpoint is not None
        has_restore = mscan.restore is not None
        if has_checkpoint == has_restore:
            continue
        present, missing = (
            ("checkpoint_state", "restore_state") if has_checkpoint
            else ("restore_state", "checkpoint_state"))
        scan = mscan.checkpoint or mscan.restore
        yield ctx.diag(
            "CODE009", "error", mscan.anchor(),
            f"{mscan.cls.__qualname__} overrides {present} but not "
            f"{missing}",
            hint="override both: checkpoints written by one side are "
                 "silently dropped (or never produced) by the other",
            file=scan.file if scan else "",
            line=scan.first_line if scan else 0,
            cls=mscan.cls.__qualname__,
        )


# -- rate contracts (CODE010-CODE012) -----------------------------------------


def _port_attrs(instance):
    for attr, value in vars(instance).items():
        if isinstance(value, (TdfIn, TdfOut)):
            yield attr, value


@rule("CODE010", domain="code", severity="error")
def sample_index_out_of_range(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A statically bounded sample index exceeds the declared rate."""
    for mscan in module_scans(ctx):
        scan = mscan.methods.get("processing")
        if scan is None:
            continue
        seen = set()
        for instance in mscan.instances:
            for attr, port in _port_attrs(instance):
                key = (attr, port.rate)
                if key in seen or port.rate < 1:
                    continue
                seen.add(key)
                counted = count_port_io(scan, instance, attr,
                                        "processing")
                if (counted.max_index is not None
                        and counted.max_index >= port.rate):
                    yield ctx.diag(
                        "CODE010", "error",
                        f"{instance.full_name()}.{attr}",
                        f"processing() addresses sample index "
                        f"{counted.max_index} of rate-{port.rate} "
                        f"port {attr!r} (valid: 0..{port.rate - 1})",
                        hint="raise the port rate or bound the loop "
                             "by the declared rate; this raises "
                             "SynchronizationError at runtime",
                        file=scan.file, line=counted.line,
                        max_index=counted.max_index, rate=port.rate,
                    )


@rule("CODE011", domain="code", severity="warning")
def out_port_underwritten(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """processing() provably writes fewer samples than the port rate."""
    for mscan in module_scans(ctx):
        scan = mscan.methods.get("processing")
        if scan is None:
            continue
        # helper port I/O defeats the bound: skip the class entirely
        helper_io = any(
            s.resolve_call(c) and s.resolve_call(c).startswith("self.")
            and s.resolve_call(c).endswith((".read", ".write"))
            for s in mscan.helpers.get("processing", ())
            for c in s.calls())
        if helper_io:
            continue
        seen = set()
        for instance in mscan.instances:
            for attr, port in _port_attrs(instance):
                if not isinstance(port, TdfOut) or port.rate < 2:
                    continue
                key = (attr, port.rate)
                if key in seen:
                    continue
                seen.add(key)
                counted = count_port_io(scan, instance, attr,
                                        "processing")
                if (counted.exact and counted.calls
                        and counted.max_index is not None
                        and counted.max_index + 1 < port.rate):
                    yield ctx.diag(
                        "CODE011", "warning",
                        f"{instance.full_name()}.{attr}",
                        f"processing() writes samples 0.."
                        f"{counted.max_index} of rate-{port.rate} "
                        f"port {attr!r}; samples "
                        f"{counted.max_index + 1}.."
                        f"{port.rate - 1} keep their default value",
                        hint="write every declared sample per "
                             "activation (or lower the port rate)",
                        file=scan.file, line=counted.line,
                        max_index=counted.max_index, rate=port.rate,
                    )


@rule("CODE012", domain="code", severity="error")
def block_api_misuse(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """processing_block misuses the block I/O contract."""
    for mscan in module_scans(ctx):
        scan = mscan.methods.get("processing_block")
        if scan is None:
            continue
        location = f"{mscan.anchor()}.processing_block"
        port_names = set()
        for instance in mscan.instances:
            port_names.update(a for a, _p in _port_attrs(instance))
        uses_fallback = any(
            scan.resolve_call(c) == "self._scalar_fallback"
            for c in scan.calls())
        block_param = (scan.node.args.args[1].arg
                       if len(scan.node.args.args) > 1 else None)
        for call in scan.calls():
            resolved = scan.resolve_call(call) or ""
            parts = resolved.split(".")
            if (len(parts) == 3 and parts[0] == "self"
                    and parts[1] in port_names):
                if parts[2] in ("read", "write") and not uses_fallback:
                    yield ctx.diag(
                        "CODE012", "error", location,
                        f"scalar {parts[1]}.{parts[2]}() inside "
                        f"processing_block",
                        hint="use read_block/write_block (or delegate "
                             "via self._scalar_fallback(n) when the "
                             "vector path cannot reproduce scalar "
                             "results bit-exactly)",
                        file=scan.file, line=call.lineno,
                    )
                elif parts[2] == "read_block" and call.args:
                    arg = call.args[0]
                    if isinstance(arg, ast.Constant) and isinstance(
                            arg.value, int):
                        yield ctx.diag(
                            "CODE012", "error", location,
                            f"read_block({arg.value}) uses a constant "
                            f"block size; the scheduler varies the "
                            f"activation count "
                            f"({block_param or 'n'}) at runtime",
                            hint="pass the activation-count parameter "
                                 "through to read_block",
                            file=scan.file, line=call.lineno,
                        )


# -- fork/pickle safety (CODE013-CODE014) -------------------------------------


@rule("CODE013", domain="code", severity="warning")
def fork_unsafe_module_state(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Module state holds OS resources or lambdas that cannot survive
    fork/pickle."""
    for mscan in module_scans(ctx):
        for method, scan in mscan.scans(include_helpers=False):
            location = f"{mscan.anchor()}.{method}"
            for node in scan.walk():
                if not isinstance(node, ast.Assign):
                    continue
                stores_self = any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in node.targets)
                if not stores_self:
                    continue
                value = node.value
                if isinstance(value, ast.Lambda):
                    yield ctx.diag(
                        "CODE013", "warning", location,
                        "lambda stored on self cannot be pickled "
                        "(checkpoints, spec shipping)",
                        hint="use a def or functools.partial over a "
                             "module-level function",
                        file=scan.file, line=node.lineno,
                    )
                elif isinstance(value, ast.Call):
                    resolved = scan.resolve_call(value)
                    if resolved in _FORK_UNSAFE_CTORS:
                        yield ctx.diag(
                            "CODE013", "warning", location,
                            f"{resolved}(...) stored on self is an OS "
                            f"resource that cannot survive "
                            f"fork/pickle",
                            hint="open resources lazily per process "
                                 "(worker-side), never in module "
                                 "state that ships across the wire",
                            file=scan.file, line=node.lineno,
                            ctor=resolved,
                        )


@rule("CODE014", domain="code", severity="warning")
def unpicklable_campaign_callable(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A campaign callable cannot ship through the spec wire."""
    for label, fn, scan in callable_scans(ctx):
        inner = getattr(fn, "func", fn)
        if getattr(inner, "__name__", "") == "<lambda>":
            yield ctx.diag(
                "CODE014", "warning", label,
                "campaign callable is a lambda; it cannot be resolved "
                "by name on a remote worker",
                hint="define it as a module-level function in the "
                     "spec file",
                file=scan.file if scan else "",
                line=scan.first_line if scan else 0,
            )
        closure = getattr(inner, "__closure__", None) or ()
        for cell in closure:
            try:
                content = cell.cell_contents
            except ValueError:
                continue
            if isinstance(content, _UNPICKLABLE_CELL_TYPES):
                yield ctx.diag(
                    "CODE014", "warning", label,
                    f"campaign callable closes over a "
                    f"{type(content).__name__}, which cannot be "
                    f"pickled or re-imported on a worker",
                    hint="pass such resources via parameters opened "
                         "worker-side, not via closures",
                    file=scan.file if scan else "",
                    line=scan.first_line if scan else 0,
                    cell_type=type(content).__name__,
                )


# -- MoC side effects (CODE015) -----------------------------------------------


@rule("CODE015", domain="code", severity="info")
def console_io_in_processing(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Per-activation code writes to the console."""
    yield from _flag_calls(
        ctx, "CODE015", "info", _activation_targets(ctx),
        _CONSOLE_CALLS,
        "call to {call} from per-activation code",
        hint="the TDF contract reserves externally visible effects "
             "for converter ports; use tracing (repro.observe) for "
             "debug output",
    )
