"""Structural checks on the DE module hierarchy (CORE0xx)."""

from __future__ import annotations

from collections import Counter

from typing import Iterator

from ..core.errors import BindingError
from ..core.events import Event
from ..core.port import Port
from .context import VerifyContext
from .diagnostics import Diagnostic
from .registry import rule


@rule("CORE001", domain="core", severity="error")
def duplicate_module_names(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Two modules share the same hierarchical name."""
    counts = Counter(m.full_name() for m in ctx.modules)
    for name, n in counts.items():
        if n > 1:
            yield ctx.diag(
                "CORE001", "error", name,
                f"{n} modules share the hierarchical name {name!r}",
                hint="rename one of the modules or give them distinct "
                     "parents",
            )


@rule("CORE002", domain="core", severity="error")
def unbound_de_port(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A DE port is unbound or sits on a port-to-port binding cycle."""
    for module, attr, port in ctx.de_ports:
        try:
            port.resolve()
        except BindingError as exc:
            yield ctx.diag(
                "CORE002", "error",
                f"{module.full_name()}.{attr}",
                str(exc),
                hint="bind the port to a signal (or to a parent port "
                     "that eventually reaches one) before simulating",
            )


@rule("CORE003", domain="core", severity="warning")
def process_never_runs(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A process with no sensitivity and dont_initialize never executes."""
    for process in ctx.processes:
        if not process.static_sensitivity and process.dont_initialize:
            yield ctx.diag(
                "CORE003", "warning", process.name,
                "process has an empty static sensitivity list and "
                "dont_initialize=True, so the kernel will never run it",
                hint="add a sensitivity entry or drop dont_initialize",
            )


@rule("CORE004", domain="core", severity="error")
def invalid_sensitivity_entry(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A sensitivity list entry cannot be resolved to an event."""
    for process in ctx.processes:
        for entry in process.static_sensitivity:
            if isinstance(entry, (Event, Port)):
                continue
            if callable(getattr(entry, "default_event", None)):
                continue
            yield ctx.diag(
                "CORE004", "error", process.name,
                f"sensitivity entry {entry!r} is not an Event, Signal, "
                f"or Port",
                hint="sensitivity lists accept events, signals, ports, "
                     "and clocks",
            )
