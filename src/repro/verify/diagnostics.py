"""Structured diagnostics emitted by the static model verifier.

A :class:`Diagnostic` pins one finding to a rule id, a severity, and a
hierarchical location path ("tb.rc.v_out", "net.R1", "cluster0"), so
tooling can sort, filter, and machine-read results; a
:class:`VerificationReport` aggregates the findings of one verifier run
with text and JSON renderings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..core.errors import ElaborationError

#: Ordered from most to least severe; the order drives report sorting.
SEVERITIES = ("error", "warning", "info")

#: Version of the report JSON layout (bumped on breaking changes).
#: v2: diagnostics carry optional ``file``/``line`` source anchors and
#: a ``suppressed`` flag; ``counts`` gains a ``"suppressed"`` entry.
SCHEMA_VERSION = 2


@dataclass
class Diagnostic:
    """One static-analysis finding."""

    #: Rule identifier, e.g. ``"TDF004"`` (``"VERIFY000"`` for internal
    #: failures of the verifier itself).
    rule: str
    #: ``"error"`` | ``"warning"`` | ``"info"``.
    severity: str
    #: Hierarchical path of the offending object (module / port / net /
    #: node / actor), dot-separated where a hierarchy exists.
    location: str
    #: Human-readable description of the finding.
    message: str
    #: Optional suggestion for fixing the model.
    hint: str = ""
    #: Structured extras (cycle member lists, computed bounds, ...).
    data: Dict[str, Any] = field(default_factory=dict)
    #: Source file of the finding (code rules; "" when not anchored).
    file: str = ""
    #: 1-based source line of the finding (0 when not anchored).
    line: int = 0
    #: True when a ``# verify: allow[RULE]`` comment suppressed this
    #: finding.  Suppressed diagnostics stay in the report (and its
    #: JSON) but are excluded from errors/warnings/infos and gating.
    suppressed: bool = False

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    def format(self) -> str:
        label = self.severity if not self.suppressed else "suppressed"
        text = f"{label}[{self.rule}] {self.location}: {self.message}"
        if self.file and self.line:
            text += f" [{self.file}:{self.line}]"
        if self.hint and not self.suppressed:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.data:
            payload["data"] = self.data
        if self.file:
            payload["file"] = self.file
        if self.line:
            payload["line"] = self.line
        if self.suppressed:
            payload["suppressed"] = True
        return payload


class StaticVerificationError(ElaborationError):
    """Raised when verification errors gate elaboration or a campaign.

    Carries the full :class:`VerificationReport` under ``report``.
    """

    def __init__(self, report: "VerificationReport"):
        errors = report.errors
        lines = [f"model verification failed with {len(errors)} "
                 f"error(s):"]
        lines += [f"  {d.format()}" for d in errors]
        super().__init__("\n".join(lines))
        self.report = report


class VerificationReport:
    """The outcome of one verifier run over one model."""

    def __init__(self, diagnostics: Iterable[Diagnostic],
                 target: str = "", ruleset: str = ""):
        order = {severity: k for k, severity in enumerate(SEVERITIES)}
        self.diagnostics: List[Diagnostic] = sorted(
            diagnostics,
            key=lambda d: (d.suppressed, order[d.severity], d.rule,
                           d.location),
        )
        #: Name of the verified object (top module / network / graph).
        self.target = target
        #: Ruleset version the run used (see ``ruleset_version()``).
        self.ruleset = ruleset

    # -- queries -------------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == "error" and not d.suppressed]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == "warning" and not d.suppressed]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == "info" and not d.suppressed]

    @property
    def suppressed(self) -> List[Diagnostic]:
        """Findings silenced by ``# verify: allow[RULE]`` comments —
        counted and reported, never dropped."""
        return [d for d in self.diagnostics if d.suppressed]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings/infos allowed)."""
        return not self.errors

    def clean(self) -> bool:
        """True when nothing at all was reported."""
        return not self.diagnostics

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def counts(self) -> Dict[str, int]:
        counts = {severity: sum(1 for d in self.diagnostics
                                if d.severity == severity
                                and not d.suppressed)
                  for severity in SEVERITIES}
        counts["suppressed"] = len(self.suppressed)
        return counts

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # -- enforcement ---------------------------------------------------------

    def raise_if_errors(self) -> None:
        if not self.ok:
            raise StaticVerificationError(self)

    # -- rendering -----------------------------------------------------------

    def summary(self) -> str:
        counts = self.counts()
        head = f"{self.target or 'model'}: "
        if not self.diagnostics:
            return head + "clean"
        parts = [f"{n} {severity}{'s' if n != 1 else ''}"
                 for severity, n in counts.items()
                 if n and severity != "suppressed"]
        if counts["suppressed"]:
            parts.append(f"{counts['suppressed']} suppressed")
        if not parts:
            return head + "clean (suppressed findings only)"
        return head + ", ".join(parts)

    def format_text(self, min_severity: str = "info") -> str:
        threshold = SEVERITIES.index(min_severity)
        lines = [d.format() for d in self.diagnostics
                 if SEVERITIES.index(d.severity) <= threshold]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "target": self.target,
            "ruleset": self.ruleset,
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
