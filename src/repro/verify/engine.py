"""The verifier driver: build a context, run the selected rules.

:func:`verify` is the single entry point; it dispatches on the target
type (module hierarchy, electrical network, SDF graph, or a
``Simulator``) and never executes a timestep of the model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.module import Module
from ..eln.network import Network
from ..sdf.graph import SdfGraph
from .context import (
    VerifyContext,
    build_context,
    network_context,
    sdf_context,
)
from .diagnostics import Diagnostic, VerificationReport
from .registry import ruleset_version, select_rules


def _run_rules(ctx: VerifyContext, target: str,
               select: Optional[Sequence[str]],
               ignore: Optional[Sequence[str]]) -> VerificationReport:
    diagnostics = list(ctx.setup_diagnostics)
    for rule_obj in select_rules(select, ignore):
        try:
            found = rule_obj.run(ctx)
        except Exception as exc:
            diagnostics.append(Diagnostic(
                rule="VERIFY000", severity="error", location=target,
                message=(f"rule {rule_obj.rule_id} crashed: "
                         f"{type(exc).__name__}: {exc}"),
                hint="this is a verifier bug; report it with the "
                     "model that triggered it",
            ))
            continue
        for diagnostic in found:
            # The registry owns severities: whatever the rule body
            # stamped, the registered classification wins.
            diagnostic.severity = rule_obj.severity
            diagnostics.append(diagnostic)
    return VerificationReport(diagnostics, target=target,
                              ruleset=ruleset_version())


def verify_model(top: Module, *,
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None,
                 ) -> VerificationReport:
    """Statically verify a module hierarchy."""
    return _run_rules(build_context(top), top.full_name(),
                      select, ignore)


def verify_network(network: Network, *,
                   select: Optional[Sequence[str]] = None,
                   ignore: Optional[Sequence[str]] = None,
                   ) -> VerificationReport:
    """Statically verify a standalone electrical network."""
    return _run_rules(network_context(network), network.name,
                      select, ignore)


def verify_sdf(graph: SdfGraph, *,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               ) -> VerificationReport:
    """Statically verify a standalone SDF graph."""
    return _run_rules(sdf_context(graph), graph.name, select, ignore)


def verify(target, *,
           select: Optional[Sequence[str]] = None,
           ignore: Optional[Sequence[str]] = None,
           ) -> VerificationReport:
    """Verify any supported target (Module, Network, SdfGraph, or a
    Simulator — which verifies its top module)."""
    if isinstance(target, Module):
        return verify_model(target, select=select, ignore=ignore)
    if isinstance(target, Network):
        return verify_network(target, select=select, ignore=ignore)
    if isinstance(target, SdfGraph):
        return verify_sdf(target, select=select, ignore=ignore)
    top = getattr(target, "top", None)
    if isinstance(top, Module):
        return verify_model(top, select=select, ignore=ignore)
    raise TypeError(
        f"cannot verify {type(target).__name__}; expected a Module, "
        f"Network, SdfGraph, or Simulator"
    )
