"""The verifier driver: build a context, run the selected rules.

:func:`verify` is the single entry point; it dispatches on the target
type (module hierarchy, electrical network, SDF graph, or a
``Simulator``) and never executes a timestep of the model.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..core.module import Module
from ..eln.network import Network
from ..sdf.graph import SdfGraph
from .context import (
    VerifyContext,
    build_context,
    network_context,
    sdf_context,
)
from .diagnostics import Diagnostic, VerificationReport
from .registry import ruleset_version, select_rules
from .suppress import class_suppressed, line_suppressed

#: (label, callable) pairs — campaign ``build``/``run`` functions the
#: CODE rules lint alongside the module hierarchy.
ExtraCode = Sequence[Tuple[str, Callable]]


def _owner_class(ctx: VerifyContext, location: str) -> Optional[type]:
    """Class of the deepest module whose full name prefixes
    ``location`` (graph diagnostics anchor to instance paths)."""
    best: Optional[Tuple[str, type]] = None
    for module in ctx.modules:
        name = module.full_name()
        if location == name or location.startswith(name + "."):
            if best is None or len(name) > len(best[0]):
                best = (name, type(module))
    return best[1] if best else None


def _apply_suppression(ctx: VerifyContext,
                       diagnostic: Diagnostic) -> None:
    """Mark the diagnostic suppressed when an inline
    ``# verify: allow[RULE]`` comment covers it (line level for
    source-anchored findings, class level for graph findings)."""
    if diagnostic.rule == "VERIFY000":
        return  # verifier failures are never suppressible
    if diagnostic.file and diagnostic.line:
        if line_suppressed(diagnostic.file, diagnostic.line,
                           diagnostic.rule):
            diagnostic.suppressed = True
        return
    cls = _owner_class(ctx, diagnostic.location)
    if class_suppressed(cls, diagnostic.rule):
        diagnostic.suppressed = True


def _run_rules(ctx: VerifyContext, target: str,
               select: Optional[Sequence[str]],
               ignore: Optional[Sequence[str]]) -> VerificationReport:
    diagnostics: List[Diagnostic] = list(ctx.setup_diagnostics)
    for rule_obj in select_rules(select, ignore):
        try:
            found = rule_obj.run(ctx)
        except Exception as exc:
            diagnostics.append(Diagnostic(
                rule="VERIFY000", severity="error", location=target,
                message=(f"rule {rule_obj.rule_id} crashed: "
                         f"{type(exc).__name__}: {exc}"),
                hint="this is a verifier bug; report it with the "
                     "model that triggered it",
            ))
            continue
        for diagnostic in found:
            # The registry owns severities: whatever the rule body
            # stamped, the registered classification wins.
            diagnostic.severity = rule_obj.severity
            _apply_suppression(ctx, diagnostic)
            diagnostics.append(diagnostic)
    return VerificationReport(diagnostics, target=target,
                              ruleset=ruleset_version())


def verify_model(top: Module, *,
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None,
                 extra_code: Optional[ExtraCode] = None,
                 ) -> VerificationReport:
    """Statically verify a module hierarchy.

    ``extra_code`` attaches (label, callable) pairs — typically the
    campaign ``build`` function that produced ``top`` — so the CODE
    rules lint them alongside the modules' own methods.
    """
    ctx = build_context(top)
    if extra_code:
        ctx.code_callables.extend(extra_code)
    return _run_rules(ctx, top.full_name(), select, ignore)


def verify_callables(callables: ExtraCode, *,
                     select: Optional[Sequence[str]] = None,
                     ignore: Optional[Sequence[str]] = None,
                     target: str = "code",
                     ) -> VerificationReport:
    """Run the CODE rules over bare callables, with no model at all.

    Used by the service to lint ``run``-style campaign functions whose
    model never passes through the verifier.  Graph rules see an empty
    context and stay silent.
    """
    ctx = VerifyContext()
    ctx.code_callables.extend(callables)
    return _run_rules(ctx, target, select, ignore)


def verify_network(network: Network, *,
                   select: Optional[Sequence[str]] = None,
                   ignore: Optional[Sequence[str]] = None,
                   ) -> VerificationReport:
    """Statically verify a standalone electrical network."""
    return _run_rules(network_context(network), network.name,
                      select, ignore)


def verify_sdf(graph: SdfGraph, *,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               ) -> VerificationReport:
    """Statically verify a standalone SDF graph."""
    return _run_rules(sdf_context(graph), graph.name, select, ignore)


def verify(target, *,
           select: Optional[Sequence[str]] = None,
           ignore: Optional[Sequence[str]] = None,
           extra_code: Optional[ExtraCode] = None,
           ) -> VerificationReport:
    """Verify any supported target (Module, Network, SdfGraph, or a
    Simulator — which verifies its top module)."""
    if isinstance(target, Module):
        return verify_model(target, select=select, ignore=ignore,
                            extra_code=extra_code)
    if isinstance(target, Network):
        return verify_network(target, select=select, ignore=ignore)
    if isinstance(target, SdfGraph):
        return verify_sdf(target, select=select, ignore=ignore)
    top = getattr(target, "top", None)
    if isinstance(top, Module):
        return verify_model(top, select=select, ignore=ignore,
                            extra_code=extra_code)
    raise TypeError(
        f"cannot verify {type(target).__name__}; expected a Module, "
        f"Network, SdfGraph, or Simulator"
    )
