"""Read-only model view the verifier rules analyze.

:func:`build_context` walks an *elaborated-but-not-run* (or even
never-elaborated) design and precomputes the shared structure every
rule needs: TDF clusters with tolerant rate / timestep / schedule
analyses (recording findings instead of raising like the runtime
elaboration does), embedded electrical networks, embedded SDF graphs,
DE ports, clocks, and processes.  Standalone :class:`~repro.eln.Network`
and :class:`~repro.sdf.SdfGraph` objects get minimal contexts of their
own so they can be verified outside any module hierarchy.

Building a context is almost side-effect free: the only model mutation
is calling ``set_attributes()`` on TDF modules (needed to learn rates
and requested timesteps) and back-filling ``port.module`` owner links —
both idempotent, and both repeated harmlessly by a later real
elaboration.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Any, Dict, List, Optional, Tuple

from ..core.clock import Clock
from ..core.module import Module
from ..core.port import Port
from ..core.process import Process
from ..eln.network import Network
from ..sdf.graph import SdfGraph
from ..tdf.cluster import _discover_clusters
from ..tdf.module import TdfDeIn, TdfDeOut, TdfModule
from ..tdf.signal import TdfSignal
from .diagnostics import Diagnostic

#: Safety cap on symbolic schedule steps (deadlock analysis).
_MAX_SCHEDULE_FIRINGS = 1_000_000


class ClusterAnalysis:
    """Tolerant re-implementation of the TDF cluster elaboration
    pipeline: every stage records findings instead of raising, and
    later stages run only when their inputs exist."""

    def __init__(self, name: str, modules: List[TdfModule]):
        self.name = name
        self.modules = modules
        self.signals: List[TdfSignal] = []
        self.de_inputs: List[TdfDeIn] = []
        self.de_outputs: List[TdfDeOut] = []
        #: (module_full_name, conflict description) from rate analysis.
        self.rate_conflicts: List[Tuple[str, str]] = []
        #: repetition counts per module id; None when rates conflict.
        self.repetitions: Optional[Dict[int, int]] = None
        #: resolved cluster period in ticks; None when unknown.
        self.period_ticks: Optional[int] = None
        #: (location, message) timestep constraint conflicts.
        self.timestep_conflicts: List[Tuple[str, str]] = []
        #: True when no module/port requested any timestep.
        self.timestep_missing = False
        #: (location, message) period/rate divisibility failures.
        self.divisibility_errors: List[Tuple[str, str]] = []
        #: module full names that never fired during schedule synthesis.
        self.deadlocked: List[str] = []
        #: zero-delay dependency cycles (lists of module full names).
        self.cycles: List[List[str]] = []
        #: per-module resolved timestep ticks (valid schedule only).
        self.module_timestep_ticks: Dict[int, int] = {}
        self._collect()
        self._solve_rates()
        if self.repetitions is not None:
            self._propagate_timesteps()
            self._detect_deadlock()

    # -- structure -----------------------------------------------------------

    def _collect(self) -> None:
        seen: set[int] = set()
        for module in self.modules:
            for port in module.tdf_ports():
                signal = port.signal
                if signal is not None and id(signal) not in seen:
                    seen.add(id(signal))
                    self.signals.append(signal)
            for converter in module.converter_ports():
                if isinstance(converter, TdfDeIn):
                    self.de_inputs.append(converter)
                else:
                    self.de_outputs.append(converter)

    def _edges(self):
        """(writer_module, w_rate, reader_module, r_rate, delay_tokens)
        over fully bound, positively rated connections only — partially
        wired or ill-rated ports are reported by their own rules and
        must not crash the downstream analyses."""
        for signal in self.signals:
            writer = signal.writer
            if writer is None or writer.module is None:
                continue
            if writer.rate < 1:
                continue
            for reader in signal.readers:
                if reader.module is None or reader.rate < 1:
                    continue
                yield (writer.module, writer.rate, reader.module,
                       reader.rate, writer.delay + reader.delay)

    # -- stage 1: balance equations ------------------------------------------

    def _solve_rates(self) -> None:
        ratio: Dict[int, Optional[Fraction]] = {
            id(m): None for m in self.modules
        }
        adjacency: Dict[int, List[Tuple[int, Fraction]]] = {
            id(m): [] for m in self.modules
        }
        for w_mod, w_rate, r_mod, r_rate, _d in self._edges():
            factor = Fraction(w_rate, r_rate)
            adjacency[id(w_mod)].append((id(r_mod), factor))
            adjacency[id(r_mod)].append((id(w_mod), 1 / factor))
        names = {id(m): m.full_name() for m in self.modules}
        for module in self.modules:
            if ratio[id(module)] is not None:
                continue
            ratio[id(module)] = Fraction(1)
            stack = [id(module)]
            while stack:
                node = stack.pop()
                for neighbor, factor in adjacency[node]:
                    implied = ratio[node] * factor
                    if ratio[neighbor] is None:
                        ratio[neighbor] = implied
                        stack.append(neighbor)
                    elif ratio[neighbor] != implied:
                        self.rate_conflicts.append((
                            names[neighbor],
                            f"balance equations imply both "
                            f"{ratio[neighbor]} and {implied} relative "
                            f"firings",
                        ))
        if self.rate_conflicts:
            return
        lcm = 1
        for value in ratio.values():
            lcm = lcm * value.denominator // gcd(lcm, value.denominator)
        counts = {key: int(r * lcm) for key, r in ratio.items()}
        overall = 0
        for count in counts.values():
            overall = gcd(overall, count)
        overall = overall or 1
        self.repetitions = {key: c // overall
                            for key, c in counts.items()}

    # -- stage 2: timestep propagation ---------------------------------------

    def _propagate_timesteps(self) -> None:
        assert self.repetitions is not None
        period_ticks: Optional[int] = None
        origin = ""
        for module in self.modules:
            constraints: List[Tuple[int, str]] = []
            if module.requested_timestep is not None:
                constraints.append((module.requested_timestep.ticks,
                                    module.full_name()))
            for port in module.tdf_ports():
                if port.requested_timestep is not None and port.rate >= 1:
                    constraints.append((
                        port.requested_timestep.ticks * port.rate,
                        port.full_name(),
                    ))
            for module_ticks, name in constraints:
                candidate = module_ticks * self.repetitions[id(module)]
                if period_ticks is None:
                    period_ticks, origin = candidate, name
                elif period_ticks != candidate:
                    self.timestep_conflicts.append((
                        name,
                        f"implies cluster period {candidate} ticks, "
                        f"but {origin!r} implies {period_ticks}",
                    ))
        if period_ticks is None:
            self.timestep_missing = True
            return
        if self.timestep_conflicts:
            return
        self.period_ticks = period_ticks
        for module in self.modules:
            reps = self.repetitions[id(module)]
            if period_ticks % reps:
                self.divisibility_errors.append((
                    module.full_name(),
                    f"cluster period of {period_ticks} ticks is not "
                    f"divisible by the module's {reps} activations "
                    f"per period",
                ))
                continue
            module_ticks = period_ticks // reps
            self.module_timestep_ticks[id(module)] = module_ticks
            for port in module.tdf_ports():
                if port.rate >= 1 and module_ticks % port.rate:
                    self.divisibility_errors.append((
                        port.full_name(),
                        f"module timestep of {module_ticks} ticks is "
                        f"not divisible by port rate {port.rate}",
                    ))

    # -- stage 3: schedulability (deadlock) ----------------------------------

    def _detect_deadlock(self) -> None:
        assert self.repetitions is not None
        edges = list(self._edges())
        tokens: Dict[int, int] = {}
        inputs_of: Dict[int, List[Tuple[int, int]]] = {
            id(m): [] for m in self.modules
        }
        outputs_of: Dict[int, List[Tuple[int, int]]] = {
            id(m): [] for m in self.modules
        }
        for k, (w_mod, w_rate, r_mod, r_rate, delay) in enumerate(edges):
            tokens[k] = delay
            inputs_of[id(r_mod)].append((k, r_rate))
            outputs_of[id(w_mod)].append((k, w_rate))
        remaining = {id(m): self.repetitions[id(m)]
                     for m in self.modules}
        fired = 0
        progress = True
        while progress and any(remaining.values()):
            progress = False
            for module in self.modules:
                while (remaining[id(module)] > 0
                       and fired < _MAX_SCHEDULE_FIRINGS
                       and all(tokens[key] >= need
                               for key, need in inputs_of[id(module)])):
                    for key, need in inputs_of[id(module)]:
                        tokens[key] -= need
                    for key, produced in outputs_of[id(module)]:
                        tokens[key] += produced
                    remaining[id(module)] -= 1
                    fired += 1
                    progress = True
        self.deadlocked = [m.full_name() for m in self.modules
                           if remaining[id(m)] > 0]
        if self.deadlocked:
            self.cycles = self._dependency_cycles(edges)

    def _dependency_cycles(self, edges) -> List[List[str]]:
        """Zero-delay cycles: dependency edges lacking the delay tokens
        one reader firing needs (the structural cause of deadlocks)."""
        import networkx as nx

        digraph = nx.DiGraph()
        for module in self.modules:
            digraph.add_node(module.full_name())
        for w_mod, _w_rate, r_mod, r_rate, delay in edges:
            if delay < r_rate:
                digraph.add_edge(w_mod.full_name(), r_mod.full_name())
        return [sorted(cycle) for cycle in nx.simple_cycles(digraph)]

    # -- derived helpers ------------------------------------------------------

    def analysis_complete(self) -> bool:
        """True when rates, timesteps, and the schedule all resolved."""
        return (self.repetitions is not None
                and self.period_ticks is not None
                and not self.divisibility_errors
                and not self.deadlocked)

    def batching_pinned_by(self) -> List[TdfModule]:
        """Modules that pin the whole cluster to one-period-per-wake
        execution (``batch_unsafe`` or raw DE coupling) even though the
        cluster has no converter ports of its own."""
        if self.de_inputs or self.de_outputs:
            return []
        return [m for m in self.modules
                if m.batch_unsafe or m.de_coupled()]


class VerifyContext:
    """Everything the rules see.  Collections a given model does not
    use are simply empty, so one rule set covers whole hierarchies and
    standalone networks / graphs alike."""

    def __init__(self) -> None:
        self.top: Optional[Module] = None
        self.modules: List[Module] = []
        self.tdf_modules: List[TdfModule] = []
        self.clusters: List[ClusterAnalysis] = []
        #: (location, network) pairs, deduplicated by identity.
        self.networks: List[Tuple[str, Network]] = []
        #: (location, graph) pairs, deduplicated by identity.
        self.sdf_graphs: List[Tuple[str, SdfGraph]] = []
        #: (owner module, attribute name, port) for every DE port.
        self.de_ports: List[Tuple[Module, str, Port]] = []
        self.clocks: List[Clock] = []
        self.processes: List[Process] = []
        #: Findings made while building the context itself.
        self.setup_diagnostics: List[Diagnostic] = []
        #: (label, callable) pairs of extra code the CODE rules lint:
        #: campaign ``build``/``run`` functions attached via the
        #: ``extra_code`` parameter of the verify entry points.
        self.code_callables: List[Tuple[str, Any]] = []

    # -- diagnostic factory ---------------------------------------------------

    @staticmethod
    def diag(rule: str, severity: str, location: str, message: str,
             hint: str = "", file: str = "", line: int = 0,
             **data: Any) -> Diagnostic:
        return Diagnostic(rule=rule, severity=severity,
                          location=location, message=message,
                          hint=hint, data=data, file=file, line=line)


def build_context(top: Module) -> VerifyContext:
    """Analyze a module hierarchy (elaborated or not)."""
    ctx = VerifyContext()
    ctx.top = top
    ctx.modules = list(top.walk())
    seen_networks: set[int] = set()
    seen_graphs: set[int] = set()
    for module in ctx.modules:
        ctx.processes.extend(module._processes)
        if isinstance(module, Clock):
            ctx.clocks.append(module)
        if isinstance(module, TdfModule):
            ctx.tdf_modules.append(module)
            try:
                module.set_attributes()
            except Exception as exc:
                ctx.setup_diagnostics.append(ctx.diag(
                    "VERIFY000", "error", module.full_name(),
                    f"set_attributes() raised "
                    f"{type(exc).__name__}: {exc}",
                    hint="fix the module's attribute declarations "
                         "before any structural check can run",
                ))
            for port in module.tdf_ports():
                port.module = module
            for converter in module.converter_ports():
                converter.module = module
        for attr, value in vars(module).items():
            if isinstance(value, Port):
                ctx.de_ports.append((module, attr, value))
            elif isinstance(value, Network):
                if id(value) not in seen_networks:
                    seen_networks.add(id(value))
                    ctx.networks.append((module.full_name(), value))
            elif isinstance(value, SdfGraph):
                if id(value) not in seen_graphs:
                    seen_graphs.add(id(value))
                    ctx.sdf_graphs.append((module.full_name(), value))
    for k, members in enumerate(_discover_clusters(ctx.tdf_modules)):
        ctx.clusters.append(ClusterAnalysis(f"cluster{k}", members))
    return ctx


def network_context(network: Network,
                    location: str = "") -> VerifyContext:
    """Context over one standalone electrical network."""
    ctx = VerifyContext()
    ctx.networks.append((location or network.name, network))
    return ctx


def sdf_context(graph: SdfGraph, location: str = "") -> VerifyContext:
    """Context over one standalone SDF graph."""
    ctx = VerifyContext()
    ctx.sdf_graphs.append((location or graph.name, graph))
    return ctx
