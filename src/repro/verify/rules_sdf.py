"""Untimed SDF graph checks (SDF0xx)."""

from __future__ import annotations

from typing import Iterator

from ..core.errors import SchedulingError
from .context import VerifyContext
from .diagnostics import Diagnostic
from .registry import rule

#: Edges whose statically predicted peak occupancy exceeds this many
#: tokens per schedule period are reported by SDF005.
DEFAULT_BUFFER_LIMIT = 4096


def _repetitions(graph):
    try:
        return graph.repetition_vector()
    except SchedulingError:
        return None


def _symbolic_run(graph, repetitions):
    """Execute token counts for one schedule period without touching
    the graph.  Returns (deadlocked_actor_names, peak_per_edge)."""
    counts = {id(e): len(e.initial_tokens) for e in graph.edges}
    peak = dict(counts)
    remaining = dict(repetitions)
    inputs_of = {a: [] for a in graph.actors}
    outputs_of = {a: [] for a in graph.actors}
    for edge in graph.edges:
        inputs_of[edge.dst].append(edge)
        outputs_of[edge.src].append(edge)
    progress = True
    while progress and any(remaining.values()):
        progress = False
        for actor in graph.actors:
            while remaining[actor] > 0 and all(
                counts[id(e)] >= e.consume_rate
                for e in inputs_of[actor]
            ):
                for e in inputs_of[actor]:
                    counts[id(e)] -= e.consume_rate
                for e in outputs_of[actor]:
                    counts[id(e)] += e.produce_rate
                    peak[id(e)] = max(peak[id(e)], counts[id(e)])
                remaining[actor] -= 1
                progress = True
    stuck = sorted(a.name for a, r in remaining.items() if r > 0)
    return stuck, peak


def _edge_label(graph_location, edge):
    return (f"{graph_location}.{edge.src.name}.{edge.src_port}->"
            f"{edge.dst.name}.{edge.dst_port}")


@rule("SDF001", domain="sdf", severity="error")
def sdf_rate_inconsistent(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """SDF balance equations admit only the zero solution."""
    for location, graph in ctx.sdf_graphs:
        try:
            graph.repetition_vector()
        except SchedulingError as exc:
            yield ctx.diag(
                "SDF001", "error", location,
                str(exc),
                hint="fix the produce/consume rates so every cycle "
                     "of the graph balances",
            )


@rule("SDF002", domain="sdf", severity="error")
def sdf_deadlock(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """An SDF graph deadlocks for lack of initial tokens."""
    for location, graph in ctx.sdf_graphs:
        repetitions = _repetitions(graph)
        if repetitions is None:
            continue  # SDF001 reported the graph already
        stuck, _peak = _symbolic_run(graph, repetitions)
        if stuck:
            cycles = graph.zero_delay_cycles()
            yield ctx.diag(
                "SDF002", "error", f"{location}.{stuck[0]}",
                f"graph deadlocks; actors never fired to completion: "
                f"{stuck}"
                + (f"; zero-delay cycles: {cycles}" if cycles else ""),
                hint="place initial tokens on each feedback cycle",
                stuck=stuck,
                cycles=cycles,
            )


@rule("SDF003", domain="sdf", severity="error")
def sdf_undriven_input(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A declared SDF input port has no edge feeding it."""
    for location, graph in ctx.sdf_graphs:
        driven = {(id(e.dst), e.dst_port) for e in graph.edges}
        for actor in graph.actors:
            for port in actor.input_rates:
                if (id(actor), port) not in driven:
                    yield ctx.diag(
                        "SDF003", "error",
                        f"{location}.{actor.name}.{port}",
                        f"input port {port!r} of actor "
                        f"{actor.name!r} is not driven by any edge",
                        hint="connect an edge to the port or remove "
                             "it from input_rates",
                    )


@rule("SDF004", domain="sdf", severity="warning")
def sdf_unconnected_output(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A declared SDF output port feeds no edge."""
    for location, graph in ctx.sdf_graphs:
        used = {(id(e.src), e.src_port) for e in graph.edges}
        for actor in graph.actors:
            for port in actor.output_rates:
                if (id(actor), port) not in used:
                    yield ctx.diag(
                        "SDF004", "warning",
                        f"{location}.{actor.name}.{port}",
                        f"output port {port!r} of actor "
                        f"{actor.name!r} feeds no edge; its tokens "
                        f"are discarded",
                        hint="connect the port or remove it from "
                             "output_rates",
                    )


@rule("SDF005", domain="sdf", severity="warning")
def sdf_buffer_bound(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """An edge's predicted peak occupancy exceeds the buffer limit."""
    for location, graph in ctx.sdf_graphs:
        repetitions = _repetitions(graph)
        if repetitions is None:
            continue
        stuck, peak = _symbolic_run(graph, repetitions)
        if stuck:
            continue  # SDF002 covers deadlocked graphs
        for edge in graph.edges:
            bound = peak[id(edge)]
            if bound > DEFAULT_BUFFER_LIMIT:
                yield ctx.diag(
                    "SDF005", "warning",
                    _edge_label(location, edge),
                    f"predicted peak occupancy of {bound} tokens per "
                    f"schedule period exceeds the "
                    f"{DEFAULT_BUFFER_LIMIT}-token limit",
                    hint="lower the rate mismatch or split the "
                         "transfer across more firings",
                    bound=bound,
                )
