"""The verifier's rule registry.

A *rule* is one static check: a function taking a
:class:`~repro.verify.context.VerifyContext` and yielding
:class:`~repro.verify.diagnostics.Diagnostic` objects.  Rules register
themselves with the :func:`rule` decorator::

    @rule("TDF001", domain="tdf", severity="error")
    def unbound_tdf_port(ctx):
        '''TDF port is not bound to any signal.'''
        for module in ctx.tdf_modules:
            ...
            yield ctx.diag("TDF001", port.full_name(), "...")

so adding a new check is one function; the registry provides
ruff-style ``--select`` / ``--ignore`` prefix filtering and a content
hash of the registered ruleset used to version campaign cache keys.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .diagnostics import SEVERITIES

_RULE_ID = re.compile(r"^[A-Z]+[0-9]{3}$")

#: Bumped manually when an existing rule's *semantics* change without
#: its id or severity changing; combined with the registry content hash
#: into :func:`ruleset_version`.
RULESET_EPOCH = "1"


@dataclass(frozen=True)
class Rule:
    """One registered static check."""

    rule_id: str
    domain: str
    severity: str
    description: str
    func: Callable

    def run(self, ctx) -> List:
        return list(self.func(ctx))


_RULES: Dict[str, Rule] = {}


def rule(rule_id: str, *, domain: str, severity: str = "error",
         description: Optional[str] = None) -> Callable:
    """Register a rule function under ``rule_id``.

    ``description`` defaults to the first line of the function's
    docstring; ``severity`` is the fixed severity of every diagnostic
    the rule emits (enforced at emission time by the engine).
    """
    if not _RULE_ID.match(rule_id):
        raise ValueError(
            f"rule id {rule_id!r} must look like 'TDF001'")
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorate(func: Callable) -> Callable:
        if rule_id in _RULES:
            raise ValueError(f"rule {rule_id!r} registered twice")
        text = description
        if text is None:
            doc = (func.__doc__ or "").strip()
            text = doc.splitlines()[0] if doc else rule_id
        _RULES[rule_id] = Rule(rule_id, domain, severity, text, func)
        return func

    return decorate


def all_rules() -> Dict[str, Rule]:
    """All registered rules, keyed by id (insertion order preserved)."""
    _load_builtin_rules()
    return dict(_RULES)


def get_rule(rule_id: str) -> Rule:
    _load_builtin_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"no rule {rule_id!r} registered") from None


def select_rules(select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None) -> List[Rule]:
    """Filter the registry with ruff-style id prefixes.

    ``select=["TDF", "ELN003"]`` keeps all TDF rules plus ELN003;
    ``ignore`` removes by the same prefix matching and wins over
    ``select``.  ``None`` selects everything.
    """
    _load_builtin_rules()

    def matches(rule_id: str, prefixes: Iterable[str]) -> bool:
        return any(rule_id.startswith(p) for p in prefixes)

    chosen = []
    for rule_obj in _RULES.values():
        if select is not None and not matches(rule_obj.rule_id, select):
            continue
        if ignore and matches(rule_obj.rule_id, ignore):
            continue
        chosen.append(rule_obj)
    return chosen


def ruleset_version() -> str:
    """Content version of the active ruleset.

    Hashes every registered (id, severity) pair together with
    :data:`RULESET_EPOCH`; campaign cache keys embed this so cached
    results invalidate whenever a rule is added, removed, reclassified,
    or the epoch is bumped for a semantic change.
    """
    _load_builtin_rules()
    digest = hashlib.sha256(RULESET_EPOCH.encode())
    for rule_id in sorted(_RULES):
        digest.update(f"{rule_id}:{_RULES[rule_id].severity};".encode())
    return f"{RULESET_EPOCH}-{digest.hexdigest()[:12]}"


_LOADED = False


def _load_builtin_rules() -> None:
    """Import the built-in rule modules exactly once (registration is
    an import side effect)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from . import rules_core  # noqa: F401
    from . import rules_eln  # noqa: F401
    from . import rules_sdf  # noqa: F401
    from . import rules_sync  # noqa: F401
    from . import rules_tdf  # noqa: F401
    from .code import rules_code  # noqa: F401
