"""Static model verification: pre-simulation lint over all MoCs.

A rule-based analyzer that walks an elaborated-but-not-run model and
reports structural problems — inconsistent TDF rates, unschedulable
dataflow, ill-formed electrical networks, ambiguous synchronization —
as structured :class:`Diagnostic` objects, before a single timestep is
paid for.  Entry points::

    from repro.verify import verify
    report = verify(top_module)      # or a Network / SdfGraph
    if not report.ok:
        print(report.format_text())

or from the shell::

    python -m repro.verify model.py::Top --json

``Simulator(top, verify="error")`` gates elaboration on a clean
report, and the campaign runner uses the same machinery to classify
structurally-broken sweep points without forking workers.
"""

from .code import code_fingerprint
from .diagnostics import (
    Diagnostic,
    StaticVerificationError,
    VerificationReport,
)
from .engine import (
    verify,
    verify_callables,
    verify_model,
    verify_network,
    verify_sdf,
)
from .registry import Rule, all_rules, rule, ruleset_version

__all__ = [
    "Diagnostic",
    "Rule",
    "StaticVerificationError",
    "VerificationReport",
    "all_rules",
    "code_fingerprint",
    "rule",
    "ruleset_version",
    "verify",
    "verify_callables",
    "verify_model",
    "verify_network",
    "verify_sdf",
]
