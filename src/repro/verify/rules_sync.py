"""DE <-> TDF synchronization checks (SYNC0xx)."""

from __future__ import annotations

from numbers import Number

from typing import Iterator

from ..core.errors import BindingError
from .context import VerifyContext
from .diagnostics import Diagnostic
from .registry import rule


def _resolved(converter):
    """The DE signal behind a converter port, or None if unbound."""
    try:
        return converter.port.resolve()
    except BindingError:
        return None


@rule("SYNC001", domain="sync", severity="error")
def converter_port_unbound(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A converter port's DE side is not bound to a signal."""
    for cluster in ctx.clusters:
        for converter in cluster.de_inputs + cluster.de_outputs:
            try:
                converter.port.resolve()
            except BindingError as exc:
                yield ctx.diag(
                    "SYNC001", "error", converter.full_name(),
                    f"converter port's DE side: {exc}",
                    hint="bind the converter to a DE signal before "
                         "simulating",
                )


@rule("SYNC002", domain="sync", severity="error")
def converter_rate_indivisible(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A TdfDeOut rate does not divide its module's timestep."""
    for cluster in ctx.clusters:
        for converter in cluster.de_outputs:
            if converter.rate < 1:
                yield ctx.diag(
                    "SYNC002", "error", converter.full_name(),
                    f"converter rate {converter.rate} must be >= 1",
                    hint="pass rate >= 1 to TdfDeOut",
                )
                continue
            module = converter.module
            if module is None:
                continue
            ticks = cluster.module_timestep_ticks.get(id(module))
            if ticks is not None and ticks % converter.rate:
                yield ctx.diag(
                    "SYNC002", "error", converter.full_name(),
                    f"module timestep of {ticks} ticks is not "
                    f"divisible by converter rate {converter.rate}; "
                    f"replayed sample times would fall between "
                    f"ticks",
                    hint="pick a timestep divisible by the converter "
                         "rate",
                )


@rule("SYNC003", domain="sync", severity="warning")
def clock_sampling_mismatch(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A converter input samples a clock it cannot track faithfully."""
    clock_of_signal = {id(c.signal): c for c in ctx.clocks}
    for cluster in ctx.clusters:
        period = cluster.period_ticks
        if period is None:
            continue
        for converter in cluster.de_inputs:
            signal = _resolved(converter)
            clock = clock_of_signal.get(id(signal))
            if clock is None:
                continue
            clock_ticks = clock.period.ticks
            if period > clock_ticks:
                yield ctx.diag(
                    "SYNC003", "warning", converter.full_name(),
                    f"cluster period ({period} ticks) exceeds the "
                    f"period of clock {clock.full_name()!r} "
                    f"({clock_ticks} ticks); clock edges will be "
                    f"missed between samples",
                    hint="shorten the cluster timestep to at most "
                         "the clock period",
                )
            elif clock_ticks % period:
                yield ctx.diag(
                    "SYNC003", "warning", converter.full_name(),
                    f"clock {clock.full_name()!r} period "
                    f"({clock_ticks} ticks) is not a multiple of the "
                    f"cluster period ({period} ticks); sampled edges "
                    f"will jitter against the clock",
                    hint="make the clock period an integer multiple "
                         "of the cluster period",
                )


@rule("SYNC004", domain="sync", severity="warning")
def boundary_type_mismatch(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A converter input's type disagrees with its DE signal's type."""
    for cluster in ctx.clusters:
        for converter in cluster.de_inputs:
            signal = _resolved(converter)
            if signal is None:
                continue  # SYNC001 reports unbound converters
            try:
                current = signal.read()
            except Exception:
                continue
            expects_number = isinstance(converter._sampled, Number)
            delivers_number = isinstance(current, Number)
            if expects_number and not delivers_number:
                yield ctx.diag(
                    "SYNC004", "warning", converter.full_name(),
                    f"converter initial value is numeric but DE "
                    f"signal {signal.name!r} currently holds "
                    f"{type(current).__name__!r}; TDF arithmetic on "
                    f"the samples may fail",
                    hint="align the converter's initial_value type "
                         "with the signal's payload type",
                )
