"""Command-line static model verifier.

Usage::

    python -m repro.verify MODEL.py [MODEL2.py::Name ...]
                           [--json] [--output FILE] [--strict]
                           [--select TDF ELN003 ...] [--ignore ...]
                           [--list-rules] [--quiet]

Each target is a Python file, optionally suffixed with ``::NAME`` to
pick one object from it: a module-level :class:`~repro.core.Module` /
:class:`~repro.eln.Network` / :class:`~repro.sdf.SdfGraph` instance, a
zero-argument factory function, or a zero-argument-constructible
class.  Without ``::NAME`` the file is scanned for all verifiable
objects it defines (instances, ``build*`` factories, and Module
subclasses defined in the file that construct without arguments).

Exit status: 0 when every report is clean of errors (and of warnings
under ``--strict``), 1 when findings gate, 2 on usage/load failures.
"""

from __future__ import annotations

import argparse
import importlib.util
import inspect
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from ..core.module import Module
from ..eln.network import Network
from ..sdf.graph import SdfGraph
from .diagnostics import SCHEMA_VERSION, VerificationReport
from .engine import verify
from .registry import all_rules, ruleset_version

_VERIFIABLE = (Module, Network, SdfGraph)


class TargetError(SystemExit):
    """Usage/load failure; carries exit status 2."""

    def __init__(self, message: str):
        super().__init__(2)
        self.message = message


def _load_file(path: Path):
    if not path.exists():
        raise TargetError(f"model file not found: {path}")
    module_name = f"repro_verify_target_{path.stem}"
    spec = importlib.util.spec_from_file_location(module_name,
                                                 str(path))
    if spec is None or spec.loader is None:
        raise TargetError(f"cannot import model file: {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise TargetError(f"error importing {path}: "
                          f"{type(exc).__name__}: {exc}")
    return module


def _instantiate(obj, label: str):
    """Turn a named object into something verifiable."""
    if isinstance(obj, _VERIFIABLE):
        return obj
    if inspect.isclass(obj) or callable(obj):
        try:
            built = obj()
        except Exception as exc:
            raise TargetError(
                f"{label} could not be constructed without "
                f"arguments: {type(exc).__name__}: {exc}")
        if isinstance(built, _VERIFIABLE):
            return built
        raise TargetError(
            f"{label}() returned {type(built).__name__}; expected a "
            f"Module, Network, or SdfGraph")
    raise TargetError(
        f"{label} is {type(obj).__name__}; expected a Module, "
        f"Network, SdfGraph, or a zero-argument factory")


def _zero_arg_constructible(cls) -> bool:
    try:
        signature = inspect.signature(cls)
    except (TypeError, ValueError):
        return False
    return all(
        p.default is not inspect.Parameter.empty
        or p.kind in (inspect.Parameter.VAR_POSITIONAL,
                      inspect.Parameter.VAR_KEYWORD)
        for p in signature.parameters.values()
    )


def _discover(module, path: Path) -> List[Tuple[str, object]]:
    """All verifiable objects a file defines, conservatively:
    module-level instances; Module subclasses defined *in this file*
    that construct with no arguments; ``build*`` factories."""
    found: List[Tuple[str, object]] = []
    for attr, value in sorted(vars(module).items()):
        if attr.startswith("_"):
            continue
        label = f"{path}::{attr}"
        if isinstance(value, _VERIFIABLE):
            found.append((label, value))
        elif (inspect.isclass(value)
              and issubclass(value, Module)
              and value.__module__ == module.__name__
              and _zero_arg_constructible(value)):
            try:
                found.append((label, value()))
            except Exception:
                pass  # not actually default-constructible; skip
        elif (inspect.isfunction(value)
              and attr.startswith("build")
              and value.__module__ == module.__name__
              and _zero_arg_constructible(value)):
            try:
                built = value()
            except Exception:
                continue
            if isinstance(built, _VERIFIABLE):
                found.append((label, built))
    if not found:
        raise TargetError(
            f"{path} defines no verifiable objects; name one "
            f"explicitly as {path}::NAME")
    return found


def resolve_targets(spec: str) -> List[Tuple[str, object]]:
    """``path.py[::NAME]`` -> [(label, verifiable object), ...]."""
    if "::" in spec:
        file_part, name = spec.split("::", 1)
        module = _load_file(Path(file_part))
        if not hasattr(module, name):
            raise TargetError(f"{file_part} defines no {name!r}")
        label = f"{file_part}::{name}"
        return [(label, _instantiate(getattr(module, name), label))]
    path = Path(spec)
    return _discover(_load_file(path), path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Statically verify models before simulating "
                    "them.")
    parser.add_argument("targets", nargs="*",
                        help="model files, optionally as FILE::NAME")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to FILE")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as gating (exit 1)")
    parser.add_argument("--select", nargs="*", default=None,
                        metavar="PREFIX",
                        help="only run rules matching these id "
                             "prefixes (e.g. TDF ELN003)")
    parser.add_argument("--ignore", nargs="*", default=None,
                        metavar="PREFIX",
                        help="skip rules matching these id prefixes")
    parser.add_argument("--list-rules", action="store_true",
                        help="list all registered rules and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print per-target summaries")
    return parser


def _gates(report: VerificationReport, strict: bool) -> bool:
    return bool(report.errors) or (strict and bool(report.warnings))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_obj in all_rules().values():
            print(f"{rule_obj.rule_id}  {rule_obj.severity:<7}  "
                  f"{rule_obj.description}")
        return 0
    if not args.targets:
        build_parser().error("no model files given")

    reports: List[VerificationReport] = []
    try:
        for spec in args.targets:
            for label, obj in resolve_targets(spec):
                report = verify(obj, select=args.select,
                                ignore=args.ignore)
                report.target = label
                reports.append(report)
    except TargetError as exc:
        print(f"error: {exc.message}", file=sys.stderr)
        return 2

    failed = any(_gates(r, args.strict) for r in reports)
    payload = {
        "schema": SCHEMA_VERSION,
        "ruleset": ruleset_version(),
        "ok": not failed,
        "reports": [r.to_dict() for r in reports],
    }
    if args.output is not None:
        args.output.write_text(json.dumps(payload, indent=2,
                                          sort_keys=True) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            if args.quiet:
                print(report.summary())
            else:
                print(report.format_text())
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
