"""``# verify: allow[RULE]`` inline suppression.

Two granularities, both honored by the engine (not by individual
rules), and both *counted*: a suppressed diagnostic stays in the report
with ``suppressed=True`` instead of being dropped.

* **line level** — for diagnostics carrying a ``file``/``line`` source
  anchor (the CODE rules): an allow comment on the offending line or
  the line directly above silences that rule there::

      self._state += x  # verify: allow[CODE008]

* **class level** — for graph diagnostics anchored to instance paths
  (``"top.src.out"``): an allow comment anywhere in the source body of
  the owning module's *class* silences that rule for all its
  instances::

      class LegacySource(TdfModule):
          # verify: allow[TDF007]
          ...

Multiple ids separate with commas: ``# verify: allow[CODE001,CODE004]``.
"""

from __future__ import annotations

import inspect
import os
from typing import Dict, FrozenSet, List, Optional, Tuple

import re

_ALLOW = re.compile(r"#\s*verify:\s*allow\[([A-Z0-9,\s]+)\]")

#: path → (stat signature, {line: allowed rule ids})
_FILE_CACHE: Dict[str, Tuple[Tuple[float, int],
                             Dict[int, FrozenSet[str]]]] = {}
#: class → union of rule ids allowed anywhere in its body.
_CLASS_CACHE: Dict[type, FrozenSet[str]] = {}


def _parse_lines(lines: List[str], first_line: int = 1,
                 ) -> Dict[int, FrozenSet[str]]:
    allowed: Dict[int, FrozenSet[str]] = {}
    for offset, text in enumerate(lines):
        match = _ALLOW.search(text)
        if match:
            ids = frozenset(
                part.strip() for part in match.group(1).split(",")
                if part.strip())
            if ids:
                allowed[first_line + offset] = ids
    return allowed


def file_suppressions(path: str) -> Dict[int, FrozenSet[str]]:
    """``{line: allowed rule ids}`` for one source file (cached by
    mtime/size so edited files re-parse)."""
    try:
        stat = os.stat(path)
        signature = (stat.st_mtime, stat.st_size)
    except OSError:
        return {}
    cached = _FILE_CACHE.get(path)
    if cached is not None and cached[0] == signature:
        return cached[1]
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            allowed = _parse_lines(handle.read().splitlines())
    except OSError:
        allowed = {}
    _FILE_CACHE[path] = (signature, allowed)
    return allowed


def line_suppressed(path: str, line: int, rule_id: str) -> bool:
    """True when ``rule_id`` is allowed on ``line`` (same line or the
    line directly above — the two idiomatic comment placements)."""
    allowed = file_suppressions(path)
    for candidate in (line, line - 1):
        ids = allowed.get(candidate)
        if ids is not None and rule_id in ids:
            return True
    return False


def class_allowed_rules(cls: type) -> FrozenSet[str]:
    """Union of rule ids allowed anywhere in the class's source body."""
    cached = _CLASS_CACHE.get(cls)
    if cached is not None:
        return cached
    try:
        lines, _start = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        allowed: FrozenSet[str] = frozenset()
    else:
        allowed = frozenset(
            rule_id for ids in _parse_lines(lines).values()
            for rule_id in ids)
    _CLASS_CACHE[cls] = allowed
    return allowed


def class_suppressed(cls: Optional[type], rule_id: str) -> bool:
    return cls is not None and rule_id in class_allowed_rules(cls)
