"""Timed-dataflow cluster checks (TDF0xx).

These mirror the runtime cluster elaboration pipeline (bind check, rate
solving, timestep propagation, schedule synthesis) but run over the
tolerant :class:`~repro.verify.context.ClusterAnalysis`, so one broken
stage does not hide findings from the others.
"""

from __future__ import annotations

from typing import Iterator

from .context import VerifyContext
from .diagnostics import Diagnostic
from .registry import rule


@rule("TDF001", domain="tdf", severity="error")
def unbound_tdf_port(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A TDF port is not bound to any TDF signal."""
    for module in ctx.tdf_modules:
        for port in module.tdf_ports():
            if port.signal is None:
                yield ctx.diag(
                    "TDF001", "error", port.full_name(),
                    f"TDF {port.direction}-port is unbound",
                    hint="bind it to a TdfSignal shared with its peer "
                         "module",
                )


@rule("TDF002", domain="tdf", severity="error")
def signal_without_writer(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A TDF signal is read but no out-port drives it."""
    for cluster in ctx.clusters:
        for signal in cluster.signals:
            if signal.writer is None and signal.readers:
                readers = sorted(r.full_name() for r in signal.readers)
                yield ctx.diag(
                    "TDF002", "error", signal.name,
                    f"signal has {len(signal.readers)} reader(s) but "
                    f"no writer",
                    hint="bind a TdfOut port to the signal",
                    readers=readers,
                )


@rule("TDF003", domain="tdf", severity="warning")
def signal_without_readers(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A TDF signal is written but never read."""
    for cluster in ctx.clusters:
        for signal in cluster.signals:
            if signal.writer is not None and not signal.readers:
                yield ctx.diag(
                    "TDF003", "warning", signal.name,
                    f"samples written by "
                    f"{signal.writer.full_name()!r} are never read",
                    hint="connect a TdfIn port or remove the signal",
                )


@rule("TDF004", domain="tdf", severity="error")
def rate_inconsistent_cluster(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """TDF balance equations admit no consistent repetition vector."""
    for cluster in ctx.clusters:
        for location, detail in cluster.rate_conflicts:
            yield ctx.diag(
                "TDF004", "error", location,
                f"cluster {cluster.name} is rate-inconsistent: {detail}",
                hint="adjust port rates so producer and consumer sample "
                     "counts balance along every path",
            )


@rule("TDF005", domain="tdf", severity="error")
def no_timestep_in_cluster(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """No module or port of a cluster declares a timestep."""
    for cluster in ctx.clusters:
        if cluster.repetitions is not None and cluster.timestep_missing:
            members = sorted(m.full_name() for m in cluster.modules)
            yield ctx.diag(
                "TDF005", "error", members[0],
                f"cluster {cluster.name} ({len(members)} module(s)) "
                f"has no timestep; at least one module or port must "
                f"call set_timestep()",
                hint="call set_timestep() in some member's "
                     "set_attributes()",
                members=members,
            )


@rule("TDF006", domain="tdf", severity="error")
def conflicting_timesteps(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """Two timestep declarations imply different cluster periods."""
    for cluster in ctx.clusters:
        for location, detail in cluster.timestep_conflicts:
            yield ctx.diag(
                "TDF006", "error", location,
                f"conflicting timestep constraint: {detail}",
                hint="declare the timestep once, or make the "
                     "declarations consistent with the rate ratios",
            )


@rule("TDF007", domain="tdf", severity="error")
def timestep_not_divisible(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """The cluster period does not divide evenly over rates."""
    for cluster in ctx.clusters:
        for location, detail in cluster.divisibility_errors:
            yield ctx.diag(
                "TDF007", "error", location,
                detail,
                hint="choose a cluster timestep divisible by every "
                     "module's activation count and port rate",
            )


@rule("TDF008", domain="tdf", severity="error")
def cluster_deadlock(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A zero-delay feedback loop makes the cluster unschedulable."""
    for cluster in ctx.clusters:
        if not cluster.deadlocked:
            continue
        cycles = [" -> ".join(cycle) for cycle in cluster.cycles]
        detail = (f"; zero-delay cycles: {cycles}" if cycles else "")
        yield ctx.diag(
            "TDF008", "error", cluster.deadlocked[0],
            f"cluster {cluster.name} deadlocks; modules never "
            f"scheduled: {cluster.deadlocked}{detail}",
            hint="break each feedback loop with an out-port delay "
                 "(set_delay) providing the initial samples",
            stuck=cluster.deadlocked,
            cycles=cluster.cycles,
        )


@rule("TDF009", domain="tdf", severity="info")
def batching_pinned(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A module pins its cluster to unbatched one-period execution."""
    for cluster in ctx.clusters:
        for module in cluster.batching_pinned_by():
            cause = ("batch_unsafe=True" if module.batch_unsafe
                     else "raw DE ports held as attributes")
            yield ctx.diag(
                "TDF009", "info", module.full_name(),
                f"{cause} disables period batching for the whole "
                f"cluster {cluster.name}",
                hint="use converter ports (TdfDeIn/TdfDeOut) or drop "
                     "batch_unsafe if the module is batch-tolerant",
            )


@rule("TDF010", domain="tdf", severity="error")
def invalid_port_attributes(ctx: VerifyContext) -> Iterator[Diagnostic]:
    """A TDF port carries a non-positive rate or negative delay."""
    for module in ctx.tdf_modules:
        for port in module.tdf_ports():
            if port.rate < 1:
                yield ctx.diag(
                    "TDF010", "error", port.full_name(),
                    f"port rate {port.rate} must be >= 1",
                    hint="pass rate >= 1 (or call set_rate in "
                         "set_attributes)",
                )
            if port.delay < 0:
                yield ctx.diag(
                    "TDF010", "error", port.full_name(),
                    f"port delay {port.delay} must be >= 0",
                    hint="delays count initial samples and cannot be "
                         "negative",
                )
