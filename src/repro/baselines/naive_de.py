"""The naive analog-on-DE baseline.

Before dedicated dataflow scheduling, analog blocks were modeled as
ordinary DE processes: each block owns a timed self-retriggering process
at the sample period and communicates through DE signals — so every
sample costs one event, one process activation, and one signal update
*per block*, and each signal change can wake downstream readers again
within the same timestep.  Bonnerud et al. (seed work [2]) introduced a
"virtual clock" exactly to avoid these needless executions.

Experiment E8 compares this baseline against the TDF cluster (one kernel
wake-up per cluster period, statically scheduled block executions) on
identical N-block gain chains.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.module import Module
from ..core.port import InPort
from ..core.signal import Signal
from ..core.simulator import Simulator
from ..core.time import SimTime
from ..lib.blocks import TdfSink
from ..lib.sources import FunctionSource
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut, TdfSignal


class NaiveAnalogSource(Module):
    """DE process emitting ``func(t)`` on a signal every ``timestep``."""

    def __init__(self, name: str, func: Callable[[float], float],
                 timestep: SimTime, parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.func = func
        self.timestep = timestep
        self.out = Signal(f"{name}.out", initial=0.0)
        self.thread(self._run)

    def _run(self):
        from ..core.kernel import Kernel

        kernel = Kernel.current()
        while True:
            self.out.write(self.func(kernel.now_ticks * 1e-15))
            yield self.timestep


class NaiveAnalogBlock(Module):
    """DE process recomputing ``out = func(in)`` on every input change.

    This is the pathological pattern the virtual clock fixes: the block
    is *event-driven*, so it re-executes whenever its input signal
    changes — including redundant same-timestep re-evaluations in longer
    chains — rather than once per sample in schedule order.
    """

    def __init__(self, name: str, func: Callable[[float], float],
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.func = func
        self.inp = InPort("inp")
        self.out = Signal(f"{name}.out", initial=0.0)
        self.evaluations = 0
        self.method(self._evaluate, sensitivity=[self.inp],
                    dont_initialize=True)

    def _evaluate(self) -> None:
        self.evaluations += 1
        self.out.write(self.func(self.inp.read()))


class NaiveChain(Module):
    """Source -> N naive blocks -> sink, all on the DE kernel."""

    def __init__(self, n_blocks: int, timestep: SimTime,
                 source_func: Callable[[float], float],
                 block_func: Callable[[float], float]):
        super().__init__("naive_top")
        self.source = NaiveAnalogSource("src", source_func, timestep,
                                        parent=self)
        self.blocks: list[NaiveAnalogBlock] = []
        previous = self.source.out
        for k in range(n_blocks):
            block = NaiveAnalogBlock(f"blk{k}", block_func, parent=self)
            block.inp(previous)
            previous = block.out
            self.blocks.append(block)
        self.collected: list[float] = []
        self.method(
            lambda: self.collected.append(previous.read()),
            sensitivity=[previous], dont_initialize=True,
        )

    @property
    def total_evaluations(self) -> int:
        return sum(block.evaluations for block in self.blocks)


class _TdfChainBlock(TdfModule):
    def __init__(self, name: str, func, parent=None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.func = func

    def processing(self):
        self.out.write(self.func(self.inp.read()))


class TdfChain(Module):
    """The same chain as a single TDF cluster."""

    def __init__(self, n_blocks: int, timestep: SimTime,
                 source_func, block_func):
        super().__init__("tdf_top")
        self.source = FunctionSource("src", source_func, parent=self,
                                     timestep=timestep)
        signal = TdfSignal("s0")
        self.source.out(signal)
        self.blocks = []
        for k in range(n_blocks):
            block = _TdfChainBlock(f"blk{k}", block_func, parent=self)
            block.inp(signal)
            signal = TdfSignal(f"s{k + 1}")
            block.out(signal)
            self.blocks.append(block)
        self.sink = TdfSink("sink", self)
        self.sink.inp(signal)

    @property
    def total_evaluations(self) -> int:
        return sum(block.activation_count for block in self.blocks)


def run_naive_chain(n_blocks: int, n_samples: int,
                    timestep: SimTime = SimTime(1, "us")):
    """Run the DE baseline chain; returns (samples, stats dict)."""
    top = NaiveChain(n_blocks, timestep,
                     source_func=lambda t: np.sin(2e4 * np.pi * t),
                     block_func=lambda v: 1.01 * v + 1e-4)
    simulator = Simulator(top)
    simulator.run(timestep * n_samples)
    return np.asarray(top.collected), {
        "block_evaluations": top.total_evaluations,
        "kernel_activations": simulator.kernel.activation_count,
        "delta_cycles": simulator.kernel.delta_count,
    }


def run_tdf_chain(n_blocks: int, n_samples: int,
                  timestep: SimTime = SimTime(1, "us")):
    """Run the TDF cluster chain; returns (samples, stats dict)."""
    top = TdfChain(n_blocks, timestep,
                   source_func=lambda t: np.sin(2e4 * np.pi * t),
                   block_func=lambda v: 1.01 * v + 1e-4)
    simulator = Simulator(top)
    simulator.run(timestep * n_samples)
    return np.asarray(top.sink.samples), {
        "block_evaluations": top.total_evaluations,
        "kernel_activations": simulator.kernel.activation_count,
        "delta_cycles": simulator.kernel.delta_count,
    }
