"""Independently-coded (vectorized NumPy) pipelined-ADC golden model.

Bonnerud et al. validated their SystemC framework against MATLAB; this
module plays MATLAB's role.  It is written in a deliberately different
style from :mod:`repro.lib.adc` — fully vectorized across the sample
array, decisions computed per stage on whole vectors — so agreement
between the two is meaningful evidence of correctness (E4).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def golden_pipeline_convert(
    samples: np.ndarray,
    n_stages: int,
    backend_bits: int,
    gain_errors: Optional[Sequence[float]] = None,
    calibrated: bool = True,
    vref: float = 1.0,
) -> np.ndarray:
    """Vectorized 1.5-bit pipelined conversion of a sample array.

    Matches :class:`repro.lib.adc.PipelinedAdc` with zero comparator
    offset and zero noise.
    """
    x = np.asarray(samples, dtype=float)
    if gain_errors is None:
        gain_errors = [0.0] * n_stages
    gains = np.array([2.0 * (1.0 + e) for e in gain_errors])
    residue = x.copy()
    decisions = np.empty((n_stages, len(x)))
    quarter = vref / 4.0
    for stage in range(n_stages):
        d = np.where(residue > quarter, 1.0,
                     np.where(residue < -quarter, -1.0, 0.0))
        decisions[stage] = d
        residue = gains[stage] * residue - d * vref
    # Backend mid-rise quantizer.
    levels = 2 ** backend_bits
    step = 2.0 * vref / levels
    clipped = np.clip(residue, -vref, vref - step / 2)
    backend = (np.floor(clipped / step) + 0.5) * step
    # Fold back.
    estimate = backend
    recon_gains = gains if calibrated else np.full(n_stages, 2.0)
    for stage in range(n_stages - 1, -1, -1):
        estimate = (estimate + decisions[stage] * vref) / recon_gains[stage]
    return estimate


def golden_quantize(samples: np.ndarray, bits: int,
                    full_scale: float = 1.0) -> np.ndarray:
    """Vectorized ideal mid-rise quantizer."""
    x = np.asarray(samples, dtype=float)
    levels = 2 ** bits
    step = 2.0 * full_scale / levels
    clipped = np.clip(x, -full_scale, full_scale - step / 2)
    return (np.floor(clipped / step) + 0.5) * step
