"""SciPy golden references.

Independent implementations (``scipy.integrate.solve_ivp`` with tight
tolerances) used to validate the framework's solvers — the stand-in for
the "comparable accuracy to MATLAB" comparisons of the seed work.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
from scipy.integrate import solve_ivp
from scipy.linalg import lu_factor, lu_solve


def rc_step_response(R: float, C: float, v_in: float,
                     times: np.ndarray) -> np.ndarray:
    """Capacitor voltage of an RC lowpass driven by a step (analytic)."""
    tau = R * C
    return v_in * (1.0 - np.exp(-np.asarray(times) / tau))


def series_rlc_step_response(R: float, L: float, C: float, v_in: float,
                             times: np.ndarray) -> np.ndarray:
    """Capacitor voltage of a series RLC driven by a step (analytic,
    underdamped case)."""
    t = np.asarray(times, dtype=float)
    alpha = R / (2 * L)
    w0 = 1.0 / np.sqrt(L * C)
    if alpha >= w0:
        raise ValueError("analytic reference covers the underdamped case")
    wd = np.sqrt(w0 ** 2 - alpha ** 2)
    return v_in * (1 - np.exp(-alpha * t)
                   * (np.cos(wd * t) + alpha / wd * np.sin(wd * t)))


def ode_reference(
    rhs: Callable[[float, np.ndarray], np.ndarray],
    x0: np.ndarray,
    times: np.ndarray,
    rtol: float = 1e-10,
    atol: float = 1e-12,
    method: str = "LSODA",
) -> np.ndarray:
    """High-accuracy solve_ivp trajectory sampled at ``times``."""
    t = np.asarray(times, dtype=float)
    result = solve_ivp(rhs, (t[0], t[-1]), np.asarray(x0, dtype=float),
                       t_eval=t, rtol=rtol, atol=atol, method=method)
    if not result.success:
        raise RuntimeError(f"reference solver failed: {result.message}")
    return result.y.T


def linear_dae_reference(C: np.ndarray, G: np.ndarray,
                         source: Callable[[float], np.ndarray],
                         x0: np.ndarray,
                         times: np.ndarray) -> np.ndarray:
    """Reference trajectory of ``C x' + G x = b(t)`` with invertible C.

    ``C`` is LU-factorized once and every right-hand-side evaluation is a
    triangular solve — explicitly inverting ``C`` is both slower and
    numerically worse, and fails outright for the singular ``C`` of a
    proper DAE (where this reference is inapplicable anyway).
    """
    c_factors = lu_factor(np.asarray(C, dtype=float))
    G = np.asarray(G, dtype=float)

    def rhs(t, x):
        return lu_solve(c_factors, np.asarray(source(t)) - G @ x)

    return ode_reference(rhs, x0, times)


def van_der_pol_reference(mu: float, x0: np.ndarray,
                          times: np.ndarray) -> np.ndarray:
    """Stiff Van der Pol reference (BDF)."""

    def rhs(t, v):
        x, y = v
        return [y, mu * (1 - x * x) * y - x]

    return ode_reference(rhs, x0, times, method="BDF",
                         rtol=1e-9, atol=1e-11)
