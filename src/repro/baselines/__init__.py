"""`repro.baselines` — comparison implementations.

SciPy/analytic golden references, the naive analog-on-DE scheduling
baseline (E8), and an independently-coded vectorized pipelined-ADC
golden model (E4).
"""

from .golden_adc import golden_pipeline_convert, golden_quantize
from .naive_de import (
    NaiveAnalogBlock,
    NaiveAnalogSource,
    NaiveChain,
    TdfChain,
    run_naive_chain,
    run_tdf_chain,
)
from .scipy_ref import (
    linear_dae_reference,
    ode_reference,
    rc_step_response,
    series_rlc_step_response,
    van_der_pol_reference,
)

__all__ = [
    "NaiveAnalogBlock", "NaiveAnalogSource", "NaiveChain", "TdfChain",
    "golden_pipeline_convert", "golden_quantize", "linear_dae_reference",
    "ode_reference", "rc_step_response", "run_naive_chain",
    "run_tdf_chain", "series_rlc_step_response", "van_der_pol_reference",
]
