"""Input holders: the bridge from sampled TDF inputs to continuous
source waveforms.

A continuous-time solver integrates over ``[t_{a-1}, t_a]`` while the TDF
side supplies samples at the endpoints.  An :class:`InputHolder` exposes
the sample pair as a callable waveform — zero-order hold or linear
interpolation (first-order hold) — that the solver's source functions
read during the step.
"""

from __future__ import annotations


class InputHolder:
    """A sampled input viewed as a continuous waveform."""

    __slots__ = ("value", "_previous", "_t0", "_t1", "interpolate")

    def __init__(self, initial: float = 0.0, interpolate: bool = True):
        self.value = initial
        self._previous = initial
        self._t0 = 0.0
        self._t1 = 0.0
        self.interpolate = interpolate

    def push(self, value: float, t_prev: float, t_now: float) -> None:
        """Record the new sample ``value`` at ``t_now``; the previous
        sample is taken to hold at ``t_prev``."""
        self._previous = self.value
        self.value = value
        self._t0 = t_prev
        self._t1 = t_now

    def __call__(self, t: float) -> float:
        if not self.interpolate or self._t1 <= self._t0:
            return self.value
        if t <= self._t0:
            return self._previous
        if t >= self._t1:
            return self.value
        fraction = (t - self._t0) / (self._t1 - self._t0)
        return self._previous + fraction * (self.value - self._previous)
