"""Sub-sample CT -> DE event generation.

A comparator sampled at the TDF rate can only report crossings aligned
to sample boundaries.  :class:`CrossingToDe` interpolates the crossing
*time* between samples (the localization machinery of
:mod:`repro.ct.events`) and writes the post-crossing level onto a DE
signal at that interpolated instant — possible because a TDF cluster
runs ahead of kernel time within its period, so the crossing lies in
the kernel's future when it is detected.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import SynchronizationError
from ..core.module import Module
from ..ct.events import EITHER, FALLING, RISING, linear_crossing
from ..tdf.module import TdfDeOut, TdfModule
from ..tdf.signal import TdfIn


class CrossingToDe(TdfModule):
    """Fires DE transitions at interpolated threshold-crossing times.

    Bind a boolean DE signal to ``de_out``.  With ``direction='either'``
    the signal carries the post-crossing comparator level (True above
    the threshold); with a filtered direction it *toggles* on every
    detected crossing so each event stays observable.  Use the signal's
    edge events for process sensitivity.

    Timing: a crossing is only detectable once the sample after it
    exists, so DE transitions are pipelined by exactly **one cluster
    period** — a constant latency that preserves inter-event spacing at
    sub-sample resolution.  :attr:`crossings` records the interpolated
    (un-delayed) absolute times in seconds.
    """

    def __init__(self, name: str, threshold: float = 0.0,
                 direction: str = EITHER,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if direction not in (RISING, FALLING, EITHER):
            raise SynchronizationError(
                f"unknown crossing direction {direction!r}"
            )
        self.inp = TdfIn("inp")
        self.de_out = TdfDeOut("de_out")
        self.threshold = threshold
        self.direction = direction
        self.crossings: list[float] = []
        self._previous: Optional[tuple[float, float]] = None
        self._toggle = False

    @property
    def pipeline_latency(self) -> float:
        """The constant event delay [s] (one cluster period)."""
        if self._cluster is None or self._cluster.period is None:
            raise SynchronizationError(
                f"{self.full_name()!r} not elaborated yet"
            )
        return self._cluster.period.to_seconds()

    def processing(self):
        t_now = self.local_time.to_seconds()
        value = self.inp.read()
        if self._previous is not None:
            t_prev, v_prev = self._previous
            t_cross = linear_crossing(
                t_prev, v_prev, t_now, value,
                self.threshold, self.direction,
            )
            if t_cross is not None:
                self.crossings.append(t_cross)
                telemetry = self._telemetry
                if telemetry is not None:
                    telemetry.metrics.counter("sync.crossings").inc()
                    telemetry.tracer.instant(
                        "sync.crossing", track="sync", t=t_cross,
                        module=self.name)
                if self.direction == EITHER:
                    level = v_prev < value
                else:
                    self._toggle = not self._toggle
                    level = self._toggle
                period_ticks = self._cluster.period.ticks
                self.de_out.write_at(
                    round(t_cross / 1e-15) + period_ticks, level
                )
        self._previous = (t_now, value)
