"""`repro.sync` — the synchronization layer.

The "dedicated manager" of the paper: couples the DE kernel, TDF
clusters, and continuous-time solvers.  Fixed-timestep SDF<->CT lockstep
is provided by the CT-embedding TDF modules; DE interaction covers
switch control and converter ports; the consistent initial state is a DC
solve performed before time zero.
"""

from .crossing import CrossingToDe
from .ct_modules import (
    CtTdfModule,
    ElnTdfModule,
    LsfTdfModule,
    NonlinearTdfModule,
    SolverTdfModule,
)
from .holders import InputHolder

__all__ = [
    "CrossingToDe", "CtTdfModule", "ElnTdfModule", "InputHolder",
    "LsfTdfModule",
    "NonlinearTdfModule", "SolverTdfModule",
]
