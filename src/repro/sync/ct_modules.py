"""TDF modules embedding continuous-time solvers.

These realize the paper's central synchronization scheme: "linear ODE
systems of equations can be solved using a fixed integration time step
that can be synchronized with the rate at which samples are handled by
the SDF model".  Each module owns a continuous-time solver advanced in
lockstep with its TDF activations:

* :class:`ElnTdfModule` — an electrical network with TDF-driven sources,
  TDF-sampled node voltages / branch currents, and DE-controlled
  switches;
* :class:`LsfTdfModule` — a linear signal-flow model with TDF terminals;
* :class:`NonlinearTdfModule` — a nonlinear DAE advanced by the adaptive
  Newton solver between sync points (Phase 2);
* :class:`SolverTdfModule` — any :class:`~repro.ct.TransientSolver`
  plug-in (Phase "coupling with existing continuous-time simulators").

The consistent initial state required by the paper is computed before
time zero: inputs take their initial port values and the solver performs
a DC solve.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.errors import ElaborationError, SynchronizationError
from ..core.module import Module
from ..core.port import InPort
from ..ct.linear import (
    LinearDae,
    SPARSE_AUTO_THRESHOLD,
    STEPPER_VARIANTS,
)
from ..ct.nonlinear import NonlinearSystem
from ..ct.solver_api import (
    LinearTransientSolver,
    NonlinearTransientSolver,
    TransientSolver,
)
from ..eln.components import Switch, Vsource, Isource
from ..eln.network import Network
from ..lsf.network import LsfNetwork, LsfSignal
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut
from .holders import InputHolder


class CtTdfModule(TdfModule):
    """Shared solver-lockstep machinery.

    Subclasses populate ``_inputs`` (port, holder) and ``_outputs``
    (port, extractor) and implement :meth:`_make_solver`.
    """

    #: MoC label used for telemetry (``moc.<moc>.seconds`` wall-time
    #: counters and solver span attributes).
    moc = "ct"

    #: Allow the vectorized window fast path in ``processing_block``
    #: (source vectors pre-evaluated for the whole block, one
    #: ``advance_window`` call).  Bit-identical to scalar lockstep; set
    #: False on subclasses to force the per-activation loop.
    window_enabled = True

    def __init__(self, name: str, parent: Optional[Module] = None,
                 interpolate_inputs: bool = True,
                 resilient: bool = False,
                 resilient_options: Optional[dict] = None):
        super().__init__(name, parent)
        self._inputs: list[tuple[TdfIn, InputHolder]] = []
        self._outputs: list[tuple[TdfOut, Callable[[np.ndarray], float]]] = []
        self._solver: Optional[TransientSolver] = None
        self._interpolate = interpolate_inputs
        #: wrap the solver in a ResilientTransientSolver fallback chain.
        self.resilient = resilient
        self.resilient_options = dict(resilient_options or {})
        #: activations skipped by the settle-gating optimisation.
        self.skipped_activations = 0
        self.gating_enabled = False
        self.gating_tolerance = 0.0
        self._last_inputs: Optional[tuple] = None
        self._last_delta = np.inf
        #: pre-bound ``moc.<moc>.seconds`` counter (None = telemetry off).
        self._m_solver_seconds = None

    # -- public wiring ----------------------------------------------------------

    def enable_gating(self, tolerance: float = 1e-12) -> None:
        """Enable virtual-clock activation gating (Bonnerud [2]):

        when every input sample is unchanged and the state moved less
        than ``tolerance`` in the previous step, the solver advance is
        skipped and the previous outputs are re-emitted.
        """
        self.gating_enabled = True
        self.gating_tolerance = tolerance

    # -- TdfModule hooks ------------------------------------------------------------

    def initialize(self) -> None:
        for port, holder in self._inputs:
            holder.value = holder._previous = port.initial_value
        solver = self._make_solver()
        if self.resilient:
            from ..resilience.fallback import ResilientTransientSolver

            solver = ResilientTransientSolver(
                solver, **self.resilient_options
            )
        telemetry = self._telemetry
        if telemetry is not None:
            self._m_solver_seconds = telemetry.metrics.counter(
                f"moc.{self.moc}.seconds")
            if hasattr(solver, "tier_counts"):
                solver.telemetry = telemetry
                solver.monitor.telemetry = telemetry
        self._solver = solver
        self._solver.initialize(0.0)

    def solver_metrics(self) -> dict:
        """Fallback-tier and health statistics (resilient modules)."""
        metrics = getattr(self._solver, "metrics", None)
        return metrics() if metrics is not None else {}

    def processing(self) -> None:
        solver = self._solver
        if solver is None:
            raise SynchronizationError(
                f"{self.full_name()!r} activated before initialization"
            )
        samples = tuple(port.read() for port, _h in self._inputs)
        state = self._advance_one(self.local_time.to_seconds(), samples,
                                  first=self._activation_index == 0)
        self._emit(state)

    def processing_block(self, n: int) -> None:
        """Batch the port I/O around the sequential solver lockstep.

        The solver advance is inherently per-activation (each step
        consumes the previous state), so the block path replays the
        exact scalar per-activation core; the win is one buffer read /
        write per port instead of ``n`` dispatches.
        """
        if self._solver is None:
            raise SynchronizationError(
                f"{self.full_name()!r} activated before initialization"
            )
        if not all(port.block_readable() for port, _h in self._inputs):
            self._scalar_fallback(n)
            return
        times = self.activation_times(n)
        columns = [port.read_block(n) for port, _h in self._inputs]
        outs = np.empty((len(self._outputs), n))
        base = self._activation_index
        start = 0
        if base == 0 and n > 0:
            # The consistent-initialization special case stays scalar.
            samples = tuple(float(col[0]) for col in columns)
            state = self._advance_one(float(times[0]), samples,
                                      first=True)
            for slot, (_port, extract) in enumerate(self._outputs):
                outs[slot, 0] = extract(state)
            start = 1
        if start < n:
            states = None
            rows = self._window_rows()
            if rows is not None:
                states = self._advance_window(
                    times[start:], [col[start:] for col in columns], rows
                )
            if states is not None:
                for slot, (_port, extract) in enumerate(self._outputs):
                    column = self._extract_column(extract, states)
                    if column is None:
                        for a in range(n - start):
                            outs[slot, start + a] = extract(states[a])
                    else:
                        outs[slot, start:] = column
            else:
                for a in range(start, n):
                    samples = tuple(float(col[a]) for col in columns)
                    state = self._advance_one(float(times[a]), samples,
                                              first=False)
                    for slot, (_port, extract) in enumerate(self._outputs):
                        outs[slot, a] = extract(state)
        for slot, (port, _extract) in enumerate(self._outputs):
            port.write_block(outs[slot])

    def _advance_one(self, t_now: float, samples: tuple,
                     first: bool) -> np.ndarray:
        """Latch one activation's inputs, advance the solver, and return
        the state to emit (shared by the scalar and block paths)."""
        solver = self._solver
        if first:
            # First activation: latch the t=0 input samples, snap the
            # algebraic unknowns to them (consistent initialization;
            # differential states keep their quiescent values), and
            # emit the resulting state.
            for (port, holder), value in zip(self._inputs, samples):
                holder.push(value, 0.0, 0.0)
            self._snap()
            return solver.state
        t_prev = solver.time
        for (port, holder), value in zip(self._inputs, samples):
            holder.push(value, t_prev, t_now)
        if self._should_skip(samples):
            self.skipped_activations += 1
            # Time marches on even when gated (unwrap a resilient chain).
            getattr(solver, "primary", solver)._t = t_now
            if hasattr(solver, "_t_good"):
                solver._t_good = t_now
            return solver.state
        before = np.array(solver.state, copy=True)
        seconds = self._m_solver_seconds
        if seconds is None:
            state = solver.advance_to(t_now)
        else:
            advance_start = _time.perf_counter()
            state = solver.advance_to(t_now)
            advance_elapsed = _time.perf_counter() - advance_start
            seconds.inc(advance_elapsed)
            telemetry = self._telemetry
            if telemetry.fine:
                telemetry.tracer.complete(
                    "solver.advance", advance_start, advance_elapsed,
                    track=f"solver.{self.name}",
                    attrs={"moc": self.moc, "t": t_now})
        self._last_delta = float(np.max(np.abs(state - before))) \
            if state.size else 0.0
        self._last_inputs = samples
        return state

    # -- window fast path --------------------------------------------------------

    def _window_rows(self):
        """The source-row layout if the window fast path applies.

        The path requires the plain built-in linear solver with no
        per-step observers: exactly one internal step per sync point
        (``h_internal`` unset), no health monitor, no gating, and no
        fine-grained telemetry (which traces each ``advance_to``).  The
        returned value is the stamp-order ``(row, waveform, scale)``
        layout attached by the network assemblers, or None.
        """
        if not self.window_enabled or self.gating_enabled:
            return None
        solver = self._solver
        if not isinstance(solver, LinearTransientSolver):
            return None
        if solver.monitor is not None or solver.h_internal is not None:
            return None
        telemetry = self._telemetry
        if telemetry is not None and telemetry.fine:
            return None
        source = getattr(solver.system, "source", None)
        return getattr(source, "rows", None)

    def _advance_window(self, times, columns, rows):
        """Advance one step per activation over a whole block at once.

        Pre-evaluates every source row for all activations (replaying
        the ``InputHolder`` hold/interpolation arithmetic vectorized,
        bit-for-bit) and hands the solver one ``advance_window`` call.
        Returns the per-activation states, or None when the window
        cannot be formed (non-monotonic times).
        """
        solver = self._solver
        steps = len(times)
        t_prev = np.empty(steps)
        t_prev[0] = solver.time
        t_prev[1:] = times[:-1]
        h_values = times - t_prev
        if not np.all(h_values > 0.0):
            return None
        # The scalar step evaluates sources at t_prev + h, which may
        # differ from times[k] by one ULP; replicate literally.
        te_next = t_prev + h_values
        need_now = (solver.variant == "expm"
                    or solver.method == "trapezoidal")
        # Per-holder sample columns at the step end/start instants,
        # matched to source rows by holder identity.
        holder_columns: dict[int, tuple] = {}
        for (_port, holder), col in zip(self._inputs, columns):
            prev = np.empty(steps)
            prev[0] = holder.value
            prev[1:] = col[:-1]
            if holder.interpolate:
                fraction = (te_next - t_prev) / (times - t_prev)
                interp = prev + fraction * (col - prev)
                next_col = np.where(
                    te_next >= times, col,
                    np.where(te_next <= t_prev, prev, interp),
                )
                now_col = prev
            else:
                next_col = col
                now_col = col
            holder_columns[id(holder)] = (next_col, now_col)
        n = solver.system.n
        b_next = np.zeros((steps, n))
        b_now = np.zeros((steps, n)) if need_now else None
        for row, waveform, scale in rows:
            pair = holder_columns.get(id(waveform))
            if pair is not None:
                nxt, now = pair
            elif callable(waveform):
                # Arbitrary Python waveform: evaluate per step at the
                # exact scalar instants.
                nxt = np.empty(steps)
                for j in range(steps):
                    nxt[j] = waveform(float(te_next[j]))
                now = None
                if need_now:
                    now = np.empty(steps)
                    for j in range(steps):
                        now[j] = waveform(float(t_prev[j]))
            else:
                nxt = now = np.full(steps, float(waveform))
            if scale == 1.0:
                b_next[:, row] += nxt
                if need_now:
                    b_now[:, row] += now
            else:
                b_next[:, row] += scale * nxt
                if need_now:
                    b_now[:, row] += scale * now
        x_before = np.array(solver.state, copy=True)
        seconds = self._m_solver_seconds
        if seconds is None:
            states = solver.advance_window(times, h_values,
                                           b_next, b_now)
        else:
            advance_start = _time.perf_counter()
            states = solver.advance_window(times, h_values,
                                           b_next, b_now)
            seconds.inc(_time.perf_counter() - advance_start)
        # Leave holders, gating memory and delta exactly as the last
        # scalar activation would have (checkpoint parity).
        for (_port, holder), col in zip(self._inputs, columns):
            holder._previous = float(col[-2]) if steps >= 2 \
                else holder.value
            holder.value = float(col[-1])
            holder._t0 = float(t_prev[-1])
            holder._t1 = float(times[-1])
        self._last_inputs = tuple(float(col[-1]) for col in columns)
        before = states[-2] if steps >= 2 else x_before
        self._last_delta = float(np.max(np.abs(states[-1] - before))) \
            if states[-1].size else 0.0
        return states

    def _extract_column(self, extract, states):
        """Vectorized counterpart of ``extract(state)`` over a window of
        states, or None when only the scalar extractor exists."""
        return None

    # -- internals -----------------------------------------------------------------

    def _snap(self) -> None:
        """Re-solve algebraic unknowns against the current inputs."""
        snap = getattr(self._solver, "snap_algebraic", None)
        if snap is not None and self.timestep is not None:
            snap(self.timestep.to_seconds())

    def _should_skip(self, samples: tuple) -> bool:
        return (
            self.gating_enabled
            and self._last_inputs == samples
            and self._last_delta <= self.gating_tolerance
        )

    def _emit(self, state: np.ndarray) -> None:
        for port, extract in self._outputs:
            port.write(extract(state))

    def _make_solver(self) -> TransientSolver:
        raise NotImplementedError

    def _install_solver(self, primary: TransientSolver) -> None:
        """Adopt a rebuilt primary, preserving a resilient wrapper."""
        from ..resilience.fallback import ResilientTransientSolver

        if isinstance(self._solver, ResilientTransientSolver):
            self._solver.replace_primary(primary)
        else:
            self._solver = primary

    # -- checkpoint hooks -------------------------------------------------------

    def checkpoint_state(self):
        return {
            "solver": (self._solver.state_dict()
                       if self._solver is not None else None),
            "holders": [
                (holder.value, holder._previous, holder._t0, holder._t1)
                for _port, holder in self._inputs
            ],
            "skipped_activations": self.skipped_activations,
            "last_inputs": self._last_inputs,
            "last_delta": self._last_delta,
        }

    def restore_state(self, data) -> None:
        if data is None:
            return
        if data["solver"] is not None and self._solver is not None:
            self._solver.load_state_dict(data["solver"])
        for (_port, holder), values in zip(self._inputs, data["holders"]):
            (holder.value, holder._previous,
             holder._t0, holder._t1) = values
        self.skipped_activations = int(data["skipped_activations"])
        self._last_inputs = data["last_inputs"]
        self._last_delta = data["last_delta"]


class ElnTdfModule(CtTdfModule):
    """An electrical linear network embedded in the TDF world.

    Build the network first, then declare terminals::

        net = Network()
        net.add(Vsource("Vin", "in", "0"))   # value supplied by TDF
        net.add(Resistor("R1", "in", "out", 1e3))
        net.add(Capacitor("C1", "out", "0", 1e-6))
        mod = ElnTdfModule("rc", net, parent=top)
        vin = mod.drive_voltage("Vin")       # returns a TdfIn
        vout = mod.sample_voltage("out")     # returns a TdfOut

    DE-controlled switches are declared with :meth:`bind_switch`; a
    toggle re-assembles the network (a new iteration matrix) while the
    state vector carries over, since the unknown set is unchanged.
    """

    moc = "eln"

    def __init__(self, name: str, network: Network,
                 parent: Optional[Module] = None,
                 method: str = "trapezoidal",
                 oversample: int = 1,
                 interpolate_inputs: bool = True,
                 resilient: bool = False,
                 resilient_options: Optional[dict] = None,
                 solver_variant: str = "auto"):
        super().__init__(name, parent, interpolate_inputs,
                         resilient, resilient_options)
        if solver_variant not in STEPPER_VARIANTS:
            raise ElaborationError(
                f"{name!r}: unknown solver_variant {solver_variant!r}; "
                f"expected one of {sorted(STEPPER_VARIANTS)}"
            )
        self.network = network
        self.method = method
        self.solver_variant = solver_variant
        if oversample < 1:
            raise ElaborationError(
                f"{name!r}: oversample must be >= 1"
            )
        self.oversample = oversample
        self._driven: dict[str, InputHolder] = {}
        self._switch_bindings: list[tuple[Switch, InPort]] = []
        self._switch_states: list[bool] = []
        self._index = None
        self.rebuild_count = 0

    # -- terminal declaration ----------------------------------------------------

    def drive_voltage(self, source_name: str,
                      initial: float = 0.0) -> TdfIn:
        """Drive the named Vsource from a TDF input port."""
        return self._drive(source_name, Vsource, initial)

    def drive_current(self, source_name: str,
                      initial: float = 0.0) -> TdfIn:
        """Drive the named Isource from a TDF input port."""
        return self._drive(source_name, Isource, initial)

    def _drive(self, source_name: str, kind, initial: float) -> TdfIn:
        component = self._find(source_name)
        if not isinstance(component, kind):
            raise ElaborationError(
                f"{source_name!r} is a {type(component).__name__}, "
                f"expected {kind.__name__}"
            )
        holder = InputHolder(initial, self._interpolate)
        component.waveform = holder
        port = TdfIn(f"in_{source_name}")
        port.initial_value = initial
        port.module = self
        setattr(self, f"in_{source_name}", port)
        self._inputs.append((port, holder))
        self._driven[source_name] = holder
        return port

    def sample_voltage(self, node: str, reference: str = "0") -> TdfOut:
        """Sample ``v(node) - v(reference)`` onto a TDF output port."""
        port = TdfOut(f"v_{node}")
        port.module = self
        setattr(self, f"v_{node}", port)
        # The extractor is finalized once the index exists.
        self._outputs.append(
            (port, _DeferredVoltage(self, node, reference))
        )
        return port

    def sample_current(self, component_name: str) -> TdfOut:
        """Sample a branch current onto a TDF output port."""
        port = TdfOut(f"i_{component_name}")
        port.module = self
        setattr(self, f"i_{component_name}", port)
        self._outputs.append(
            (port, _DeferredCurrent(self, component_name))
        )
        return port

    def bind_switch(self, switch_name: str, de_signal) -> None:
        """Control the named switch from a DE boolean signal."""
        component = self._find(switch_name)
        if not isinstance(component, Switch):
            raise ElaborationError(
                f"{switch_name!r} is not a Switch"
            )
        port = InPort(f"{self.name}.sw_{switch_name}")
        port.bind(de_signal)
        self._switch_bindings.append((component, port))

    def _find(self, name: str):
        for component in self.network.components:
            if component.name == name:
                return component
        raise ElaborationError(
            f"no component named {name!r} in network "
            f"{self.network.name!r}"
        )

    # -- solver management -------------------------------------------------------------

    def _assemble(self):
        """Assemble the network, sparse when the variant asks for it
        (or auto-selects it from the system size)."""
        sparse = self.solver_variant == "sparse" or (
            self.solver_variant == "auto"
            and self.network.system_size() >= SPARSE_AUTO_THRESHOLD
        )
        return self.network.assemble(sparse=sparse)

    def _make_solver(self) -> TransientSolver:
        self._apply_switches()
        dae, self._index = self._assemble()
        h_internal = None
        if self.timestep is not None and self.oversample > 1:
            h_internal = self.timestep.to_seconds() / self.oversample
        return LinearTransientSolver(dae, h_internal=h_internal,
                                     method=self.method,
                                     variant=self.solver_variant)

    def _apply_switches(self) -> bool:
        changed = False
        states = []
        for switch, port in self._switch_bindings:
            value = bool(port.read())
            if switch.set_closed(value):
                changed = True
            states.append(value)
        self._switch_states = states
        return changed

    def _restamp(self) -> None:
        """Re-assemble after a switch toggle and refactorize in place.

        A toggle is value-only (the unknown layout and stamp pattern
        are unchanged), so the built-in linear solver keeps its time
        and state and only the matrices/factorization are replaced —
        one refactorization, not a solver rebuild.  Non-linear or
        plug-in primaries fall back to the full rebuild.
        """
        primary = getattr(self._solver, "primary", self._solver)
        if isinstance(primary, LinearTransientSolver):
            dae, self._index = self._assemble()
            primary.rebind(dae)
            if primary is not self._solver:
                note = getattr(self._solver, "note_system_change", None)
                if note is not None:
                    note()
        else:
            old_state = np.array(self._solver.state, copy=True)
            old_time = self._solver.time
            self._install_solver(self._make_solver())
            self._solver.initialize(old_time, x0=old_state)

    def processing(self) -> None:
        if self._switch_bindings and self._apply_switches():
            # Topology-preserving re-stamp: carry the state vector over.
            self._restamp()
            # The new topology changes the algebraic solution: snap it
            # while the differential states carry over continuously.
            self._snap()
            self.rebuild_count += 1
        super().processing()

    def processing_block(self, n: int) -> None:
        if self._switch_bindings:
            # The DE-controlled switch check must run per activation.
            self._scalar_fallback(n)
            return
        super().processing_block(n)

    def de_coupled(self) -> bool:
        # Switch-control InPorts live inside a list, invisible to the
        # attribute scan of the base implementation.
        return bool(self._switch_bindings) or super().de_coupled()

    @property
    def index(self):
        if self._index is None:
            raise SynchronizationError(
                f"{self.full_name()!r}: network index not built yet"
            )
        return self._index

    def checkpoint_state(self):
        data = super().checkpoint_state()
        data["switch_closed"] = [sw.closed
                                 for sw, _p in self._switch_bindings]
        data["switch_states"] = list(self._switch_states)
        data["rebuild_count"] = self.rebuild_count
        return data

    def restore_state(self, data) -> None:
        if data is None:
            return
        changed = False
        for (switch, _port), closed in zip(self._switch_bindings,
                                           data["switch_closed"]):
            if switch.closed != closed:
                switch.closed = closed
                changed = True
        if changed:
            # Re-stamp the iteration matrices for the checkpointed
            # topology before the solver state is loaded below.
            self._restamp()
        self._switch_states = list(data["switch_states"])
        self.rebuild_count = int(data["rebuild_count"])
        super().restore_state(data)

    def _extract_column(self, extract, states):
        index = self._index
        if index is None:
            return None
        if isinstance(extract, _DeferredVoltage):
            column = index.voltage_series(states, extract.node)
            if extract.reference != "0":
                column = column - index.voltage_series(
                    states, extract.reference)
            return column
        if isinstance(extract, _DeferredCurrent):
            return index.current_series(states, extract.component)
        return None


class _DeferredVoltage:
    """Output extractor resolving its MNA index lazily."""

    def __init__(self, module: ElnTdfModule, node: str, reference: str):
        self.module = module
        self.node = node
        self.reference = reference

    def __call__(self, state: np.ndarray) -> float:
        index = self.module.index
        value = index.voltage(state, self.node)
        if self.reference != "0":
            value -= index.voltage(state, self.reference)
        return value


class _DeferredCurrent:
    def __init__(self, module: ElnTdfModule, component: str):
        self.module = module
        self.component = component

    def __call__(self, state: np.ndarray) -> float:
        return self.module.index.current(state, self.component)


class LsfTdfModule(CtTdfModule):
    """A linear signal-flow model embedded in the TDF world.

    Declared LSF input signals are overridden by TDF samples; declared
    LSF output signals are sampled onto TDF ports.
    """

    moc = "lsf"

    def __init__(self, name: str, network: LsfNetwork,
                 parent: Optional[Module] = None,
                 method: str = "trapezoidal",
                 oversample: int = 1,
                 interpolate_inputs: bool = True,
                 resilient: bool = False,
                 resilient_options: Optional[dict] = None,
                 solver_variant: str = "auto"):
        super().__init__(name, parent, interpolate_inputs,
                         resilient, resilient_options)
        if solver_variant not in STEPPER_VARIANTS:
            raise ElaborationError(
                f"{name!r}: unknown solver_variant {solver_variant!r}; "
                f"expected one of {sorted(STEPPER_VARIANTS)}"
            )
        self.network = network
        self.method = method
        self.solver_variant = solver_variant
        self.oversample = max(1, oversample)
        self._lsf_inputs: list[tuple[LsfSignal, InputHolder]] = []
        self._lsf_index = None

    def drive(self, signal: LsfSignal, initial: float = 0.0) -> TdfIn:
        """Drive an LSF signal from a TDF input port.

        The signal must be driven by an :class:`LsfSource` block whose
        waveform will be replaced by the TDF sample stream.
        """
        from ..lsf.blocks import LsfSource

        if not isinstance(signal.driver, LsfSource):
            raise ElaborationError(
                f"LSF signal {signal.name!r} must be driven by an "
                "LsfSource to accept TDF samples"
            )
        holder = InputHolder(initial, self._interpolate)
        signal.driver.waveform = holder
        port = TdfIn(f"in_{signal.name}")
        port.initial_value = initial
        port.module = self
        setattr(self, f"in_{signal.name}", port)
        self._inputs.append((port, holder))
        self._lsf_inputs.append((signal, holder))
        return port

    def sample(self, signal: LsfSignal) -> TdfOut:
        """Sample an LSF signal onto a TDF output port."""
        port = TdfOut(f"out_{signal.name}")
        port.module = self
        setattr(self, f"out_{signal.name}", port)
        self._outputs.append((port, _DeferredLsfSignal(self, signal)))
        return port

    def _make_solver(self) -> TransientSolver:
        dae, self._lsf_index = self.network.assemble()
        x0 = self._lsf_index.initial_state()
        h_internal = None
        if self.timestep is not None and self.oversample > 1:
            h_internal = self.timestep.to_seconds() / self.oversample
        solver = LinearTransientSolver(dae, h_internal=h_internal,
                                       method=self.method,
                                       variant=self.solver_variant)
        solver.initialize(0.0, x0=x0)
        # Re-initialization in CtTdfModule.initialize would discard x0;
        # wrap initialize to preserve the consistent initial state.
        solver.initialize = lambda t0=0.0, x0=x0: _reinit(solver, t0, x0)
        return solver

    @property
    def lsf_index(self):
        if self._lsf_index is None:
            raise SynchronizationError(
                f"{self.full_name()!r}: LSF index not built yet"
            )
        return self._lsf_index

    def _extract_column(self, extract, states):
        index = self._lsf_index
        if index is None or not isinstance(extract, _DeferredLsfSignal):
            return None
        return states[:, index.signal_index(extract.signal)]


def _reinit(solver: LinearTransientSolver, t0: float, x0):
    solver._t = t0
    solver._x = np.asarray(x0, dtype=float)
    return solver._x


class _DeferredLsfSignal:
    def __init__(self, module: LsfTdfModule, signal: LsfSignal):
        self.module = module
        self.signal = signal

    def __call__(self, state: np.ndarray) -> float:
        return float(state[self.module.lsf_index.signal_index(self.signal)])


class NonlinearTdfModule(CtTdfModule):
    """A nonlinear DAE embedded in the TDF world (Phase 2).

    The system's source terms read :class:`InputHolder` objects created
    by :meth:`add_input`; outputs are arbitrary state extractors.  The
    adaptive solver takes variable internal steps between activations
    (lockstep synchronization, no backtracking across the boundary).
    """

    def __init__(self, name: str, system: NonlinearSystem,
                 parent: Optional[Module] = None,
                 abstol: float = 1e-8, reltol: float = 1e-5,
                 interpolate_inputs: bool = True,
                 resilient: bool = False,
                 resilient_options: Optional[dict] = None):
        super().__init__(name, parent, interpolate_inputs,
                         resilient, resilient_options)
        self.system = system
        self.abstol = abstol
        self.reltol = reltol

    def add_input(self, name: str, initial: float = 0.0) -> InputHolder:
        """Create an input: returns the holder for the system to read;
        the TDF port is available as ``self.in_<name>``."""
        holder = InputHolder(initial, self._interpolate)
        port = TdfIn(f"in_{name}")
        port.initial_value = initial
        port.module = self
        setattr(self, f"in_{name}", port)
        self._inputs.append((port, holder))
        return holder

    def add_output(self, name: str,
                   extract: Callable[[np.ndarray], float]) -> TdfOut:
        port = TdfOut(f"out_{name}")
        port.module = self
        setattr(self, f"out_{name}", port)
        self._outputs.append((port, extract))
        return port

    def _make_solver(self) -> TransientSolver:
        return NonlinearTransientSolver(
            self.system, abstol=self.abstol, reltol=self.reltol,
        )

    @property
    def internal_steps(self) -> int:
        if self._solver is None:
            return 0
        solver = getattr(self._solver, "primary", self._solver)
        return solver.step_count


class SolverTdfModule(CtTdfModule):
    """Embed *any* :class:`~repro.ct.TransientSolver` (the plug-in API).

    Inputs are holders the external solver's model reads; outputs are
    state extractors.  This demonstrates the paper's open architecture:
    the synchronization layer is solver-agnostic.
    """

    def __init__(self, name: str, solver: TransientSolver,
                 parent: Optional[Module] = None,
                 interpolate_inputs: bool = True,
                 resilient: bool = False,
                 resilient_options: Optional[dict] = None):
        super().__init__(name, parent, interpolate_inputs,
                         resilient, resilient_options)
        self._external_solver = solver

    def add_input(self, name: str, initial: float = 0.0) -> InputHolder:
        holder = InputHolder(initial, self._interpolate)
        port = TdfIn(f"in_{name}")
        port.initial_value = initial
        port.module = self
        setattr(self, f"in_{name}", port)
        self._inputs.append((port, holder))
        return holder

    def add_output(self, name: str,
                   extract: Callable[[np.ndarray], float]) -> TdfOut:
        port = TdfOut(f"out_{name}")
        port.module = self
        setattr(self, f"out_{name}", port)
        self._outputs.append((port, extract))
        return port

    def _make_solver(self) -> TransientSolver:
        return self._external_solver
