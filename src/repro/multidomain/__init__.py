"""`repro.multidomain` — multi-discipline modeling (Phase 3).

Mechanical (translational and rotational) and thermal primitives mapped
onto the conservative MNA core via through/across analogies, plus
electro-mechanical transducers (DC motor).
"""

from .mechanical import (
    Damper,
    ForceSource,
    Inertia,
    Mass,
    PositionSensor,
    RotationalDamper,
    Spring,
    TorqueSource,
    TorsionSpring,
    VelocitySource,
)
from .thermal import (
    AmbientTemperature,
    HeatFlowSource,
    ThermalCapacitance,
    ThermalResistance,
)
from .transducers import DcMotor

__all__ = [
    "AmbientTemperature", "Damper", "DcMotor", "ForceSource",
    "HeatFlowSource", "Inertia", "Mass", "PositionSensor",
    "RotationalDamper", "Spring", "ThermalCapacitance",
    "ThermalResistance", "TorqueSource", "TorsionSpring",
    "VelocitySource",
]
