"""Thermal modeling via the electro-thermal analogy.

=====================  ======================  ==================
thermal                electrical equivalent   mapping
=====================  ======================  ==================
temperature (across)   voltage                 node value [K]
heat flow (through)    current                 branch value [W]
thermal capacitance    capacitor to ground     C [J/K]
thermal resistance     resistor                R [K/W]
heat-flow source       current source
fixed temperature      voltage source
=====================  ======================  ==================

Temperatures are handled relative to an ambient reference (node "0");
an :class:`AmbientTemperature` source pins a node to an absolute value.
"""

from __future__ import annotations

from typing import Union

from ..core.errors import ElaborationError
from ..eln.components import Capacitor, Isource, Resistor, Vsource
from ..eln.network import GROUND

Waveform = Union[float, callable]


class ThermalCapacitance(Capacitor):
    """Heat-storing element on a temperature node [J/K]."""

    def __init__(self, name: str, node: str, capacitance: float):
        if capacitance <= 0:
            raise ElaborationError(
                f"thermal capacitance {name!r} must be positive"
            )
        super().__init__(name, node, GROUND, capacitance)


class ThermalResistance(Resistor):
    """Conductive/convective path between two temperature nodes [K/W].

    Modeled noiseless (the Johnson-noise analogy is meaningless here).
    """

    def noise_sources(self, stamper):
        return []


class HeatFlowSource(Isource):
    """Injects heat flow [W] into node ``a`` (e.g. device dissipation)."""

    def __init__(self, name: str, a: str, b: str = GROUND,
                 power: Waveform = 0.0):
        super().__init__(name, a, b, power)


class AmbientTemperature(Vsource):
    """Pins a node to a fixed (or time-varying) temperature [K above
    the reference]."""
