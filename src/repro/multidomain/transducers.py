"""Electro-mechanical transducers.

The DC motor couples an electrical armature branch with a rotational
mechanical node: back-EMF is a velocity-controlled voltage source on the
electrical side, motor torque a current-controlled current source on the
mechanical side — an energy-conserving gyrator-style coupling when
``kt == ke`` (SI units).
"""

from __future__ import annotations

from ..core.errors import ElaborationError
from ..eln.components import Cccs, Inductor, Resistor, Vcvs
from ..eln.network import GROUND, Network


class DcMotor:
    """Permanent-magnet DC motor added into an existing network.

    Electrical terminals ``plus``/``minus``; mechanical output is the
    angular-velocity node ``shaft``.  Adds:

    * armature resistance ``r_a`` and inductance ``l_a`` in series;
    * back-EMF ``e = ke * omega(shaft)`` (a VCVS);
    * torque ``tau = kt * i_armature`` injected into ``shaft`` (a CCCS
      controlled by the armature inductor's branch current).

    Attach :class:`~repro.multidomain.mechanical.Inertia`,
    :class:`~repro.multidomain.mechanical.RotationalDamper`, and load
    torque sources to ``shaft`` to complete the mechanical side.
    """

    def __init__(self, name: str, network: Network, plus: str, minus: str,
                 shaft: str, kt: float, r_a: float, l_a: float,
                 ke: float = None):
        if kt <= 0 or r_a <= 0 or l_a <= 0:
            raise ElaborationError(
                f"motor {name!r}: kt, r_a, l_a must be positive"
            )
        self.name = name
        self.kt = kt
        self.ke = kt if ke is None else ke
        mid = f"{name}_mid"
        emf = f"{name}_emf"
        self.armature = Inductor(f"{name}_la", mid, emf, l_a)
        network.add(Resistor(f"{name}_ra", plus, mid, r_a))
        network.add(self.armature)
        # Back-EMF: v(emf, minus) = ke * omega(shaft).
        network.add(Vcvs(f"{name}_bemf", emf, minus, shaft, GROUND,
                         gain=self.ke))
        # Torque into the shaft node: the CCCS conducts kt*i from its
        # p node to its n node, so p=ground, n=shaft injects +kt*i into
        # the shaft for positive armature current.
        network.add(Cccs(f"{name}_torque", GROUND, shaft,
                         control=self.armature.name, gain=self.kt))

    @property
    def current_branch(self) -> str:
        """Component name whose branch current is the armature current."""
        return self.armature.name
