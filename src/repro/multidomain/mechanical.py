"""Mechanical modeling via the mobility analogy.

The paper's Phase 3 requires "conservative-law mixed-domain models".
Mechanical networks map onto the MNA core with the mobility analogy:

=================  ======================  =====================
mechanical         electrical equivalent   mapping
=================  ======================  =====================
velocity (across)  voltage                 node value
force (through)    current                 branch value
mass M             capacitor to ground     C = M
spring k           inductor                L = 1/k
damper d           resistor                R = 1/d
force source       current source          force into + node
velocity source    voltage source
=================  ======================  =====================

Rotational elements follow the same pattern with angular velocity and
torque.  A :class:`PositionSensor` integrates a node's velocity behind a
unity-gain buffer so it does not load the mechanical network.
"""

from __future__ import annotations

from typing import Union

from ..core.errors import ElaborationError
from ..eln.components import (
    Capacitor,
    Inductor,
    Isource,
    Resistor,
    Vcvs,
    Vsource,
)
from ..eln.network import GROUND, Network

Waveform = Union[float, callable]


class Mass(Capacitor):
    """Point mass attached to a velocity node (referenced to ground —
    the inertial frame)."""

    def __init__(self, name: str, node: str, mass: float):
        if mass <= 0:
            raise ElaborationError(f"mass {name!r} must be positive")
        super().__init__(name, node, GROUND, mass)
        self.mass = mass


class Inertia(Capacitor):
    """Rotational inertia on an angular-velocity node."""

    def __init__(self, name: str, node: str, inertia: float):
        if inertia <= 0:
            raise ElaborationError(f"inertia {name!r} must be positive")
        super().__init__(name, node, GROUND, inertia)
        self.inertia = inertia


class Spring(Inductor):
    """Linear spring between two velocity nodes (L = 1/k).

    The branch current of this component is the spring *force*.
    """

    def __init__(self, name: str, a: str, b: str, stiffness: float):
        if stiffness <= 0:
            raise ElaborationError(f"spring {name!r} stiffness must be positive")
        super().__init__(name, a, b, 1.0 / stiffness)
        self.stiffness = stiffness


class TorsionSpring(Spring):
    """Rotational spring between two angular-velocity nodes."""


class Damper(Resistor):
    """Viscous damper between two velocity nodes (R = 1/d).

    Dampers are modeled noiseless (mechanical element).
    """

    def __init__(self, name: str, a: str, b: str, damping: float):
        if damping <= 0:
            raise ElaborationError(f"damper {name!r} damping must be positive")
        super().__init__(name, a, b, 1.0 / damping)
        self.damping = damping

    def noise_sources(self, stamper):
        return []


class RotationalDamper(Damper):
    """Rotational friction between two angular-velocity nodes."""


class ForceSource(Isource):
    """Applies a force to node ``a`` (reacting against ``b``)."""

    def __init__(self, name: str, a: str, b: str = GROUND,
                 force: Waveform = 0.0):
        super().__init__(name, a, b, force)


class TorqueSource(ForceSource):
    """Applies a torque to an angular-velocity node."""


class VelocitySource(Vsource):
    """Imposes a velocity on a node (e.g. a cam or base excitation)."""


class PositionSensor:
    """Measures the position (integral of velocity) of a node.

    Internally a unity-gain buffer drives an isolated 1 H inductor: the
    inductor current is the integral of the buffered velocity, i.e. the
    position, without loading the mechanical network.
    """

    def __init__(self, name: str, network: Network, node: str):
        self.name = name
        self._buffer = Vcvs(f"{name}_buf", f"{name}_s", GROUND,
                            node, GROUND, gain=1.0)
        self._integrator = Inductor(f"{name}_int", f"{name}_s", GROUND,
                                    1.0)
        network.add(self._buffer)
        network.add(self._integrator)

    @property
    def branch(self) -> str:
        """Branch name whose current is the position."""
        return self._integrator.name

    def position(self, index, x) -> float:
        return index.current(x, self._integrator.name)

    def position_series(self, index, states):
        return index.current_series(states, self._integrator.name)
