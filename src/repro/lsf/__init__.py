"""`repro.lsf` — linear signal-flow modeling.

Directed-graph models of continuous-time behaviour: sources, gains,
adders, integrators, differentiators, Laplace transfer functions
(numerator/denominator and zero-pole forms), and state-space blocks,
elaborated into a linear DAE for transient and AC analyses.
"""

from .blocks import (
    LsfAdd,
    LsfDot,
    LsfGain,
    LsfInteg,
    LsfLtfNd,
    LsfLtfZp,
    LsfSource,
    LsfStateSpace,
    LsfSub,
)
from .network import (
    LsfBlock,
    LsfBuilder,
    LsfIndex,
    LsfNetwork,
    LsfResult,
    LsfSignal,
    lsf_ac,
    lsf_transient,
)

__all__ = [
    "LsfAdd", "LsfBlock", "LsfBuilder", "LsfDot", "LsfGain", "LsfIndex",
    "LsfInteg", "LsfLtfNd", "LsfLtfZp", "LsfNetwork", "LsfResult",
    "LsfSignal", "LsfSource", "LsfStateSpace", "LsfSub", "lsf_ac",
    "lsf_transient",
]
