"""Linear signal-flow blocks.

The Phase 1 "predefined linear operators": sources, weighted adders,
gains, integrators, differentiators, Laplace transfer functions in
numerator/denominator and zero-pole form, and state-space equations.

Polynomial coefficient convention: ascending powers of ``s`` —
``den=[a0, a1, a2]`` means ``a0 + a1*s + a2*s^2`` (the SystemC-AMS
``sca_ltf_nd`` convention).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..core.errors import ElaborationError
from .network import LsfBlock, LsfBuilder, LsfSignal

Waveform = Union[float, Callable[[float], float]]


class LsfSource(LsfBlock):
    """Drives a signal with a time waveform; optionally an AC excitation."""

    def __init__(self, name: str, out: LsfSignal, waveform: Waveform = 0.0,
                 ac: float = 0.0):
        super().__init__(name)
        self.out = out
        self.waveform = waveform
        self.ac_magnitude = ac

    def driven_signals(self):
        return [self.out]

    def build(self, builder: LsfBuilder) -> None:
        row = builder.new_row()
        builder.g(row, self.out.index, 1.0)
        builder.source(row, self.waveform)
        if self.ac_magnitude:
            builder.ac(row, self.ac_magnitude)


class LsfGain(LsfBlock):
    """``out = gain * in``."""

    def __init__(self, name: str, inp: LsfSignal, out: LsfSignal,
                 gain: float):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.gain = gain

    def driven_signals(self):
        return [self.out]

    def build(self, builder: LsfBuilder) -> None:
        row = builder.new_row()
        builder.g(row, self.out.index, 1.0)
        builder.g(row, self.inp.index, -self.gain)


class LsfAdd(LsfBlock):
    """Weighted sum: ``out = sum(w_k * in_k)`` (weights default to 1)."""

    def __init__(self, name: str, inputs: Sequence[LsfSignal],
                 out: LsfSignal,
                 weights: Optional[Sequence[float]] = None):
        super().__init__(name)
        self.inputs = list(inputs)
        self.out = out
        self.weights = list(weights) if weights is not None \
            else [1.0] * len(self.inputs)
        if len(self.weights) != len(self.inputs):
            raise ElaborationError(
                f"adder {name!r}: {len(self.inputs)} inputs but "
                f"{len(self.weights)} weights"
            )

    def driven_signals(self):
        return [self.out]

    def build(self, builder: LsfBuilder) -> None:
        row = builder.new_row()
        builder.g(row, self.out.index, 1.0)
        for sig, weight in zip(self.inputs, self.weights):
            builder.g(row, sig.index, -weight)


class LsfSub(LsfAdd):
    """``out = a - b``."""

    def __init__(self, name: str, a: LsfSignal, b: LsfSignal,
                 out: LsfSignal):
        super().__init__(name, [a, b], out, weights=[1.0, -1.0])


class LsfInteg(LsfBlock):
    """``d(out)/dt = gain * in`` with initial value ``initial``."""

    def __init__(self, name: str, inp: LsfSignal, out: LsfSignal,
                 gain: float = 1.0, initial: float = 0.0):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.gain = gain
        self.initial = initial

    def driven_signals(self):
        return [self.out]

    def build(self, builder: LsfBuilder) -> None:
        row = builder.new_row()
        builder.c(row, self.out.index, 1.0)
        builder.g(row, self.inp.index, -self.gain)
        builder.init_overrides.append((row, self.out.index, self.initial))


class LsfDot(LsfBlock):
    """``out = gain * d(in)/dt`` (differentiator)."""

    def __init__(self, name: str, inp: LsfSignal, out: LsfSignal,
                 gain: float = 1.0):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.gain = gain

    def driven_signals(self):
        return [self.out]

    def build(self, builder: LsfBuilder) -> None:
        row = builder.new_row()
        builder.g(row, self.out.index, 1.0)
        builder.c(row, self.inp.index, -self.gain)


class LsfLtfNd(LsfBlock):
    """Laplace transfer function ``out = H(s) * in`` with
    ``H(s) = num(s) / den(s)``, coefficients in ascending powers of s.

    Realized in controllable canonical form; requires a proper transfer
    function (num degree <= den degree).  Direct feedthrough (equal
    degrees) is handled by polynomial division.
    """

    def __init__(self, name: str, inp: LsfSignal, out: LsfSignal,
                 num: Sequence[float], den: Sequence[float],
                 gain: float = 1.0,
                 initial: Optional[Sequence[float]] = None):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.num = np.asarray(num, dtype=float) * gain
        self.den = np.asarray(den, dtype=float)
        self.initial = initial
        num_degree = _degree(self.num)
        den_degree = _degree(self.den)
        if den_degree < 1:
            raise ElaborationError(
                f"transfer function {name!r} needs a dynamic denominator"
            )
        if num_degree > den_degree:
            raise ElaborationError(
                f"transfer function {name!r} is improper "
                f"(num degree {num_degree} > den degree {den_degree})"
            )
        self.order = den_degree

    def driven_signals(self):
        return [self.out]

    def state_count(self):
        return self.order

    def build(self, builder: LsfBuilder) -> None:
        n = self.order
        base = builder.state_index[self.name]
        a = np.zeros(n + 1)
        a[: len(self.den)] = self.den
        an = a[n]
        b = np.zeros(n + 1)
        b[: len(self.num)] = self.num
        # Direct feedthrough via polynomial division: if deg(num) == n,
        # H = b_n/a_n + (b - b_n/a_n * a)/den.
        feedthrough = b[n] / an
        c_out = b[:n] - feedthrough * a[:n]
        initial = np.zeros(n) if self.initial is None \
            else np.asarray(self.initial, dtype=float)
        if initial.shape != (n,):
            raise ElaborationError(
                f"transfer function {self.name!r}: initial state must have "
                f"{n} entries"
            )
        # States x_1..x_n with x_k = z^{(k-1)}, D(d/dt) z = in.  Each
        # state row is registered for initial-state pinning: the block
        # starts from its declared internal state, not from DC.
        for k in range(n - 1):
            row = builder.new_row()
            builder.c(row, base + k, 1.0)
            builder.g(row, base + k + 1, -1.0)
            builder.init_overrides.append((row, base + k, initial[k]))
        row = builder.new_row()
        builder.c(row, base + n - 1, an)
        for k in range(n):
            builder.g(row, base + k, a[k])
        builder.g(row, self.inp.index, -1.0)
        builder.init_overrides.append((row, base + n - 1, initial[n - 1]))
        # Output equation.
        row = builder.new_row()
        builder.g(row, self.out.index, 1.0)
        for k in range(n):
            builder.g(row, base + k, -c_out[k])
        if feedthrough:
            builder.g(row, self.inp.index, -feedthrough)


class LsfLtfZp(LsfLtfNd):
    """Laplace transfer function given as zeros, poles, gain:

        H(s) = gain * prod(s - z_k) / prod(s - p_k)
    """

    def __init__(self, name: str, inp: LsfSignal, out: LsfSignal,
                 zeros: Sequence[complex], poles: Sequence[complex],
                 gain: float = 1.0):
        num = _poly_from_roots(zeros)
        den = _poly_from_roots(poles)
        super().__init__(name, inp, out, num=num, den=den, gain=gain)
        self.zeros = list(zeros)
        self.poles = list(poles)


class LsfStateSpace(LsfBlock):
    """State-space equations ``x' = A x + B u``, ``y = C x + D u``.

    ``inputs`` and ``outputs`` are lists of signals matching the column
    counts of ``B``/``D`` and row counts of ``C``/``D``.
    """

    def __init__(self, name: str, inputs: Sequence[LsfSignal],
                 outputs: Sequence[LsfSignal],
                 A, B, C, D=None,
                 initial: Optional[Sequence[float]] = None):
        super().__init__(name)
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.A = np.atleast_2d(np.asarray(A, dtype=float))
        self.B = np.atleast_2d(np.asarray(B, dtype=float))
        self.Cm = np.atleast_2d(np.asarray(C, dtype=float))
        n = self.A.shape[0]
        p = len(self.outputs)
        m = len(self.inputs)
        self.D = np.zeros((p, m)) if D is None \
            else np.atleast_2d(np.asarray(D, dtype=float))
        if self.A.shape != (n, n):
            raise ElaborationError(f"state-space {name!r}: A must be square")
        if self.B.shape != (n, m):
            raise ElaborationError(
                f"state-space {name!r}: B shape {self.B.shape} != ({n},{m})"
            )
        if self.Cm.shape != (p, n):
            raise ElaborationError(
                f"state-space {name!r}: C shape {self.Cm.shape} != ({p},{n})"
            )
        if self.D.shape != (p, m):
            raise ElaborationError(
                f"state-space {name!r}: D shape {self.D.shape} != ({p},{m})"
            )
        self.initial = np.zeros(n) if initial is None \
            else np.asarray(initial, dtype=float)

    def driven_signals(self):
        return list(self.outputs)

    def state_count(self):
        return self.A.shape[0]

    def build(self, builder: LsfBuilder) -> None:
        base = builder.state_index[self.name]
        n = self.A.shape[0]
        for k in range(n):
            row = builder.new_row()
            builder.c(row, base + k, 1.0)
            for j in range(n):
                builder.g(row, base + j, -self.A[k, j])
            for j, sig in enumerate(self.inputs):
                builder.g(row, sig.index, -self.B[k, j])
            builder.init_overrides.append((row, base + k, self.initial[k]))
        for i, out in enumerate(self.outputs):
            row = builder.new_row()
            builder.g(row, out.index, 1.0)
            for j in range(n):
                builder.g(row, base + j, -self.Cm[i, j])
            for j, sig in enumerate(self.inputs):
                builder.g(row, sig.index, -self.D[i, j])


def _degree(coefficients: np.ndarray) -> int:
    nonzero = np.nonzero(coefficients)[0]
    if nonzero.size == 0:
        raise ElaborationError("all-zero polynomial in transfer function")
    return int(nonzero[-1])


def _poly_from_roots(roots: Sequence[complex]) -> np.ndarray:
    """Monic polynomial with the given roots, ascending coefficients.

    Complex roots must come in conjugate pairs (the result must be real).
    """
    descending = np.atleast_1d(np.poly(np.asarray(roots, dtype=complex))) \
        if len(roots) else np.array([1.0])
    if np.max(np.abs(descending.imag)) > 1e-12 * np.max(np.abs(descending)):
        raise ElaborationError(
            "complex zeros/poles must come in conjugate pairs"
        )
    return descending.real[::-1].copy()
