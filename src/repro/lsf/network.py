"""Linear signal-flow networks.

Signal-flow models are the paper's "best candidate" abstraction for
continuous-time system design: a directed graph whose edges are
real-valued quantities and whose vertices are linear relations.  An
:class:`LsfNetwork` collects signals and blocks; elaboration produces the
``C x' + G x = b(t)`` linear DAE (one unknown per signal plus the blocks'
internal states) solved by :mod:`repro.ct` — time domain and frequency
domain from the *same* equations, as the paper requires.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.errors import ElaborationError, SolverError
from ..ct.linear import LinearDae, LinearStepper


class LsfSignal:
    """A continuous-time quantity (an edge of the signal-flow graph)."""

    __slots__ = ("name", "index", "driver")

    def __init__(self, name: str):
        self.name = name
        self.index: Optional[int] = None
        self.driver = None  # the block that defines this signal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LsfSignal({self.name!r})"


class LsfBlock:
    """Base class for signal-flow vertices.

    Subclasses declare which signals they *drive* (define) and implement
    :meth:`build`, contributing equation rows via the builder.
    """

    def __init__(self, name: str):
        self.name = name

    def driven_signals(self) -> list[LsfSignal]:
        raise NotImplementedError

    def state_count(self) -> int:
        """Number of internal state unknowns this block adds."""
        return 0

    def build(self, builder: "LsfBuilder") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class LsfBuilder:
    """Equation-assembly surface handed to blocks during elaboration."""

    def __init__(self, size: int):
        self.size = size
        self.C = np.zeros((size, size))
        self.G = np.zeros((size, size))
        self.sources: list[tuple[int, object]] = []
        self.ac_entries: list[tuple[int, float]] = []
        self._next_row = 0
        #: rows owned by integrator-style blocks, for initial-state fixup:
        #: (row, signal_index, initial_value)
        self.init_overrides: list[tuple[int, int, float]] = []
        #: block name -> base index of its internal states (set by the
        #: network during elaboration, before any build() call).
        self.state_index: dict[str, int] = {}

    def new_row(self) -> int:
        row = self._next_row
        if row >= self.size:
            raise ElaborationError(
                "signal-flow system is over-determined: more equations "
                "than unknowns"
            )
        self._next_row += 1
        return row

    def g(self, row: int, col: int, value: float) -> None:
        self.G[row, col] += value

    def c(self, row: int, col: int, value: float) -> None:
        self.C[row, col] += value

    def source(self, row: int, waveform) -> None:
        self.sources.append((row, waveform))

    def ac(self, row: int, magnitude: float) -> None:
        self.ac_entries.append((row, magnitude))


class LsfNetwork:
    """A linear signal-flow model: signals plus blocks."""

    def __init__(self, name: str = "lsf"):
        self.name = name
        self.signals: list[LsfSignal] = []
        self.blocks: list[LsfBlock] = []
        self._signal_names: set[str] = set()
        self._block_names: set[str] = set()

    def signal(self, name: str) -> LsfSignal:
        """Create (and register) a named signal."""
        if name in self._signal_names:
            raise ElaborationError(f"duplicate signal name {name!r}")
        self._signal_names.add(name)
        sig = LsfSignal(name)
        self.signals.append(sig)
        return sig

    def add(self, block: LsfBlock) -> LsfBlock:
        if block.name in self._block_names:
            raise ElaborationError(f"duplicate block name {block.name!r}")
        self._block_names.add(block.name)
        for sig in block.driven_signals():
            if sig.driver is not None:
                raise ElaborationError(
                    f"signal {sig.name!r} driven by both "
                    f"{sig.driver.name!r} and {block.name!r}"
                )
            sig.driver = block
        self.blocks.append(block)
        return block

    # -- elaboration --------------------------------------------------------

    def assemble(self) -> tuple[LinearDae, "LsfIndex"]:
        undriven = [s.name for s in self.signals if s.driver is None]
        if undriven:
            raise ElaborationError(
                f"signals with no driving block: {undriven}"
            )
        for i, sig in enumerate(self.signals):
            sig.index = i
        state_base = len(self.signals)
        state_index: dict[str, int] = {}
        offset = state_base
        for block in self.blocks:
            count = block.state_count()
            if count:
                state_index[block.name] = offset
                offset += count
        builder = LsfBuilder(offset)
        builder.state_index = state_index  # blocks look up their states
        for block in self.blocks:
            block.build(builder)
        if builder._next_row != offset:
            raise ElaborationError(
                f"signal-flow system is under-determined: "
                f"{offset} unknowns but only {builder._next_row} equations"
            )
        source_rows = builder.sources

        def source(t: float) -> np.ndarray:
            b = np.zeros(offset)
            for row, waveform in source_rows:
                b[row] += waveform(t) if callable(waveform) else waveform
            return b

        # Stamp-order source layout for the TDF window fast path
        # (normalized to the ELN (row, waveform, scale) form).
        source.rows = tuple(
            (row, waveform, 1.0) for row, waveform in source_rows
        )

        names = [s.name for s in self.signals] + [
            f"{bname}.x{k}"
            for bname, base in state_index.items()
            for k in range(
                next(b for b in self.blocks if b.name == bname).state_count()
            )
        ]
        dae = LinearDae(builder.C, builder.G, source, names=names)
        return dae, LsfIndex(self, builder, dae)


class LsfIndex:
    """Post-elaboration lookup: signals to unknown indices, plus the
    consistent-initial-state computation."""

    def __init__(self, network: LsfNetwork, builder: LsfBuilder,
                 dae: LinearDae):
        self.network = network
        self.builder = builder
        self.dae = dae
        self.size = builder.size

    def signal_index(self, signal: LsfSignal) -> int:
        if signal.index is None:
            raise SolverError(f"signal {signal.name!r} not elaborated")
        return signal.index

    def ac_vector(self) -> np.ndarray:
        b = np.zeros(self.size)
        for row, magnitude in self.builder.ac_entries:
            b[row] += magnitude
        return b

    def initial_state(self) -> np.ndarray:
        """Consistent initial state at t=0.

        Integrator equations (``C``-only rows) make ``G`` singular; the
        paper requires a "formal definition of a consistent initial
        (quiescent) state".  We replace each integrator row by the
        constraint *output = initial value* and solve the remaining
        algebraic system.
        """
        G = self.dae.G.copy()
        b = np.asarray(self.dae.source(0.0), dtype=float).copy()
        for row, col, value in self.builder.init_overrides:
            G[row, :] = 0.0
            G[row, col] = 1.0
            b[row] = value
        try:
            return np.linalg.solve(G, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "cannot compute a consistent initial state; the "
                "signal-flow graph has an algebraic loop or an "
                "undriven feedback path"
            ) from exc


class LsfResult:
    """Transient waveforms keyed by signal."""

    def __init__(self, times: np.ndarray, states: np.ndarray,
                 index: LsfIndex):
        self.times = times
        self._states = states
        self._index = index

    def __getitem__(self, signal: LsfSignal) -> np.ndarray:
        return self._states[:, self._index.signal_index(signal)]

    @property
    def raw(self) -> np.ndarray:
        return self._states


def lsf_transient(
    network: LsfNetwork,
    t_end: float,
    h: float,
    method: str = "trapezoidal",
) -> LsfResult:
    """Fixed-timestep transient from the consistent initial state."""
    dae, index = network.assemble()
    x0 = index.initial_state()
    times, states = dae.transient(t_end, h, x0=x0, method=method)
    return LsfResult(times, states, index)


def lsf_ac(
    network: LsfNetwork,
    frequencies: np.ndarray,
    output: LsfSignal,
) -> np.ndarray:
    """Small-signal AC response at ``output`` for the sources' AC pattern."""
    dae, index = network.assemble()
    b_ac = index.ac_vector()
    if not np.any(b_ac):
        raise SolverError(
            "no AC excitation: give some LsfSource an ac= magnitude"
        )
    phasors = dae.ac(frequencies, b_ac=b_ac)
    return phasors[:, index.signal_index(output)]
