"""Finite-state machines — one of the MoCs the paper's introduction
lists ("discrete-event, dataflow, FSMs, sequential, continuous-time").

A declarative, clocked Moore/Mealy machine: states are strings,
transitions are guarded by predicates over input signals, Moore outputs
are per-state values, Mealy outputs per-transition actions.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.clock import Clock
from ..core.errors import ElaborationError
from ..core.module import Module
from ..core.signal import Signal


class Transition:
    __slots__ = ("target", "guard", "action")

    def __init__(self, target: str, guard: Callable[..., bool],
                 action: Optional[Callable] = None):
        self.target = target
        self.guard = guard
        self.action = action


class Fsm(Module):
    """A clocked finite-state machine.

    Declare states with :meth:`state` (optionally with Moore outputs),
    transitions with :meth:`transition`.  Guards receive the values of
    the declared input signals, in declaration order.  The current state
    name is published on the ``state_signal``; each Moore output gets
    its own signal.

    Example::

        fsm = Fsm("ctrl", clock, inputs=[start, done], parent=top)
        fsm.state("IDLE", initial=True, outputs={"busy": 0})
        fsm.state("RUN", outputs={"busy": 1})
        fsm.transition("IDLE", "RUN", lambda start, done: start)
        fsm.transition("RUN", "IDLE", lambda start, done: done)
    """

    def __init__(self, name: str, clock: Clock, inputs: list,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inputs = list(inputs)
        self._states: dict[str, dict] = {}
        self._transitions: dict[str, list[Transition]] = {}
        self._initial: Optional[str] = None
        self.state_signal = Signal(f"{name}.state", initial="")
        self.output_signals: dict[str, Signal] = {}
        self.transition_count = 0
        self.method(self._edge, sensitivity=[clock.posedge_event()],
                    dont_initialize=True)

    # -- declaration ---------------------------------------------------------

    def state(self, name: str, initial: bool = False,
              outputs: Optional[dict] = None) -> None:
        if name in self._states:
            raise ElaborationError(f"duplicate FSM state {name!r}")
        if initial and self._initial is not None:
            raise ElaborationError(
                f"FSM {self.name!r} already has initial state "
                f"{self._initial!r}"
            )
        self._states[name] = dict(outputs or {})
        self._transitions[name] = []
        for key, value in (outputs or {}).items():
            if key not in self.output_signals:
                self.output_signals[key] = Signal(
                    f"{self.name}.{key}", initial=value
                )
        if initial:
            self._initial = name
            # Declaration-time assignment: a write would queue on
            # whatever kernel happens to be current, not this design's.
            self.state_signal.set_initial(name)
            for key, value in self._states[name].items():
                self.output_signals[key].set_initial(value)

    def transition(self, source: str, target: str,
                   guard: Callable[..., bool],
                   action: Optional[Callable] = None) -> None:
        if source not in self._states:
            raise ElaborationError(f"unknown FSM state {source!r}")
        if target not in self._states:
            raise ElaborationError(f"unknown FSM state {target!r}")
        self._transitions[source].append(Transition(target, guard, action))

    def output(self, name: str) -> Signal:
        if name not in self.output_signals:
            raise ElaborationError(
                f"FSM {self.name!r} has no output {name!r}"
            )
        return self.output_signals[name]

    @property
    def current_state(self) -> str:
        return self.state_signal.read()

    # -- execution ------------------------------------------------------------

    def end_of_elaboration(self) -> None:
        if self._initial is None:
            raise ElaborationError(
                f"FSM {self.name!r} has no initial state"
            )

    def _edge(self) -> None:
        current = self.state_signal.read()
        values = [sig.read() for sig in self.inputs]
        for transition in self._transitions.get(current, ()):
            if transition.guard(*values):
                if transition.action is not None:
                    transition.action()
                self.state_signal.write(transition.target)
                self._apply_outputs(transition.target)
                self.transition_count += 1
                return

    def _apply_outputs(self, state: str) -> None:
        for key, value in self._states[state].items():
            self.output_signals[key].write(value)
