"""Small RTL building blocks for the DE layer.

The paper's Figure 1 models "the digital interfaces ... as RTL
components"; these clocked primitives provide that substrate.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.clock import Clock
from ..core.errors import ElaborationError
from ..core.module import Module
from ..core.port import InPort, OutPort
from ..core.signal import BitSignal, Signal


class DFlipFlop(Module):
    """D register: output follows input on the rising clock edge."""

    def __init__(self, name: str, clock: Clock,
                 parent: Optional[Module] = None, initial=0):
        super().__init__(name, parent)
        self.d = InPort("d")
        self.q = Signal(f"{name}.q", initial=initial)
        self.method(self._edge, sensitivity=[clock.posedge_event()],
                    dont_initialize=True)

    def _edge(self) -> None:
        self.q.write(self.d.read())


class Counter(Module):
    """Up-counter with synchronous enable and clear."""

    def __init__(self, name: str, clock: Clock, width: int = 8,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if width < 1:
            raise ElaborationError("counter width must be >= 1")
        self.enable = InPort("enable")
        self.clear = InPort("clear")
        self.value = Signal(f"{name}.value", initial=0)
        self.modulo = 1 << width
        self.method(self._edge, sensitivity=[clock.posedge_event()],
                    dont_initialize=True)

    def _edge(self) -> None:
        if self.clear.bound and self.clear.read():
            self.value.write(0)
        elif not self.enable.bound or self.enable.read():
            self.value.write((self.value.read() + 1) % self.modulo)


class ShiftRegister(Module):
    """Serial-in shift register; parallel value on ``value``."""

    def __init__(self, name: str, clock: Clock, width: int = 8,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.serial_in = InPort("serial_in")
        self.value = Signal(f"{name}.value", initial=0)
        self.width = width
        self.method(self._edge, sensitivity=[clock.posedge_event()],
                    dont_initialize=True)

    def _edge(self) -> None:
        shifted = ((self.value.read() << 1)
                   | int(bool(self.serial_in.read())))
        self.value.write(shifted & ((1 << self.width) - 1))


class EdgeDetector(Module):
    """One-cycle pulse on each rising edge of a sampled boolean input."""

    def __init__(self, name: str, clock: Clock,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = InPort("inp")
        self.pulse = BitSignal(f"{name}.pulse", initial=False)
        self._last = False
        self.method(self._edge, sensitivity=[clock.posedge_event()],
                    dont_initialize=True)

    def _edge(self) -> None:
        current = bool(self.inp.read())
        self.pulse.write(current and not self._last)
        self._last = current


class Synchronizer(Module):
    """Two-flop synchronizer for signals crossing into a clock domain."""

    def __init__(self, name: str, clock: Clock,
                 parent: Optional[Module] = None, initial=0):
        super().__init__(name, parent)
        self.inp = InPort("inp")
        self.out = Signal(f"{name}.out", initial=initial)
        self._stage = initial
        self.method(self._edge, sensitivity=[clock.posedge_event()],
                    dont_initialize=True)

    def _edge(self) -> None:
        self.out.write(self._stage)
        self._stage = self.inp.read()


class CombinationalLogic(Module):
    """Arbitrary combinational function of its input ports.

    ``func`` receives the read values of ``inputs`` (in order) and its
    return value drives ``out``.  Re-evaluates whenever any input
    changes.
    """

    def __init__(self, name: str, inputs: list, func: Callable,
                 parent: Optional[Module] = None, initial=0):
        super().__init__(name, parent)
        self.inputs = inputs
        self.func = func
        self.out = Signal(f"{name}.out", initial=initial)
        self.method(
            self._evaluate,
            sensitivity=[sig.default_event() for sig in inputs],
        )

    def _evaluate(self) -> None:
        values = [sig.read() for sig in self.inputs]
        self.out.write(self.func(*values))
