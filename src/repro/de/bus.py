"""A simple synchronous bus: bus-functional master and register file.

Figure 1 of the paper embeds "the control software ... in an
event-driven digital model using a bus functional model".  This module
provides that substrate: a clocked bus with one master, a register file
slave, and a generator-based transaction API so software models read
like sequential programs::

    def program(self):
        yield from self.bus.write(0x00, 0x5A)
        value = yield from self.bus.read(0x04)
        ...
"""

from __future__ import annotations

from typing import Optional

from ..core.clock import Clock
from ..core.errors import ElaborationError
from ..core.module import Module
from ..core.signal import BitSignal, Signal


class Bus:
    """The signal bundle of a single-master synchronous bus."""

    def __init__(self, name: str = "bus"):
        self.name = name
        self.addr = Signal(f"{name}.addr", initial=0)
        self.wdata = Signal(f"{name}.wdata", initial=0)
        self.rdata = Signal(f"{name}.rdata", initial=0)
        self.write_enable = BitSignal(f"{name}.we", initial=False)
        self.read_enable = BitSignal(f"{name}.re", initial=False)


class BusMaster(Module):
    """Bus-functional model: drives transactions from generator code.

    ``write``/``read`` are sub-generators to be driven with
    ``yield from`` inside a thread process.  Each transaction takes one
    clock cycle: signals are driven, the next rising edge latches them
    in the slave, then the strobes deassert.
    """

    def __init__(self, name: str, bus: Bus, clock: Clock,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.bus = bus
        self.clock = clock
        self.transaction_count = 0

    def write(self, address: int, data):
        """Sub-generator: one write transaction."""
        self.bus.addr.write(address)
        self.bus.wdata.write(data)
        self.bus.write_enable.write(True)
        yield self.clock.posedge_event()
        self.bus.write_enable.write(False)
        self.transaction_count += 1

    def read(self, address: int):
        """Sub-generator: one read transaction; returns the data."""
        self.bus.addr.write(address)
        self.bus.read_enable.write(True)
        yield self.clock.posedge_event()
        self.bus.read_enable.write(False)
        # The slave updated rdata at the edge; let the delta settle.
        yield self.clock.signal.default_event()  # next change = negedge
        self.transaction_count += 1
        return self.bus.rdata.read()

    def idle(self, cycles: int = 1):
        """Sub-generator: wait ``cycles`` clock edges."""
        for _ in range(cycles):
            yield self.clock.posedge_event()


class RegisterFile(Module):
    """Synchronous register-file slave.

    Registers are plain integers addressed 0..size-1.  Writes latch on
    the rising clock edge while ``write_enable`` is high; reads drive
    ``rdata`` on the edge while ``read_enable`` is high.  Individual
    registers can be mirrored onto DE signals (:meth:`mirror`) so
    hardware (e.g. an AMS block's control input) can react to software
    writes.
    """

    def __init__(self, name: str, bus: Bus, clock: Clock, size: int = 32,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if size < 1:
            raise ElaborationError("register file needs at least one register")
        self.bus = bus
        self.registers = [0] * size
        self._mirrors: dict[int, Signal] = {}
        self.write_count = 0
        self.method(self._edge, sensitivity=[clock.posedge_event()],
                    dont_initialize=True)

    def mirror(self, address: int, initial=0) -> Signal:
        """Expose a register as a DE signal updated on every write."""
        if not 0 <= address < len(self.registers):
            raise ElaborationError(f"register address {address} out of range")
        signal = self._mirrors.get(address)
        if signal is None:
            signal = Signal(f"{self.name}.reg{address}", initial=initial)
            self._mirrors[address] = signal
            self.registers[address] = initial
        return signal

    def _edge(self) -> None:
        if self.bus.write_enable.read():
            address = int(self.bus.addr.read())
            if 0 <= address < len(self.registers):
                value = self.bus.wdata.read()
                self.registers[address] = value
                self.write_count += 1
                mirror = self._mirrors.get(address)
                if mirror is not None:
                    mirror.write(value)
        if self.bus.read_enable.read():
            address = int(self.bus.addr.read())
            if 0 <= address < len(self.registers):
                self.bus.rdata.write(self.registers[address])

    def poke(self, address: int, value) -> None:
        """Backdoor write (hardware-originated status updates)."""
        self.registers[address] = value
        mirror = self._mirrors.get(address)
        if mirror is not None:
            mirror.write(value)

    def peek(self, address: int):
        """Backdoor read."""
        return self.registers[address]
