"""`repro.de` — discrete-event modeling helpers.

RTL primitives (registers, counters, edge detectors, synchronizers,
combinational blocks) and the bus-functional substrate (bus, master,
register file) used by software-driven controllers in mixed-signal
virtual prototypes.
"""

from .bus import Bus, BusMaster, RegisterFile
from .fsm import Fsm, Transition
from .rtl import (
    CombinationalLogic,
    Counter,
    DFlipFlop,
    EdgeDetector,
    ShiftRegister,
    Synchronizer,
)

__all__ = [
    "Bus", "BusMaster", "CombinationalLogic", "Counter", "DFlipFlop",
    "EdgeDetector", "Fsm", "RegisterFile", "ShiftRegister",
    "Synchronizer", "Transition",
]
