"""Electrical linear networks and Modified Nodal Analysis.

The paper requires conservative-law modeling "as linear network
macromodels based on simple electrical R, L, C, and controled source
primitives", with the system of equations "generated from a network using
the Modified Nodal Analysis method".  A :class:`Network` collects
components connected between named nodes; :meth:`Network.assemble`
produces the ``C x' + G x = b(t)`` matrices consumed by the
:mod:`repro.ct` solvers for DC, AC, transient, and noise analyses.

Unknown ordering: node voltages first (ground eliminated), then one
branch current per component that introduces a current unknown
(voltage sources, inductors, ideal transformers, short-style probes).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from ..core.errors import ElaborationError, SolverError
from ..ct.linear import LinearDae
from ..ct.noise import NoiseSource, thermal_current_psd

#: The reference node name.
GROUND = "0"


class Component:
    """Base class for network primitives.

    Subclasses declare ``nodes`` (names), whether they need a branch
    current unknown (:attr:`needs_current`), and implement :meth:`stamp`.
    """

    needs_current = False

    def __init__(self, name: str, nodes: Sequence[str]):
        self.name = name
        self.nodes = [str(n) for n in nodes]

    def stamp(self, stamper: "Stamper") -> None:
        raise NotImplementedError

    def noise_sources(self, stamper: "Stamper") -> list[NoiseSource]:
        """Noise injections contributed by this component (default none)."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.nodes})"


class Stamper:
    """Index bookkeeping plus stamping surface handed to components.

    Stamps accumulate as COO triplet lists; :attr:`G` / :attr:`C`
    materialize them densely on access (accumulating in stamp order, so
    the result is bit-identical to in-place ``+=`` stamping), while
    :meth:`sparse_matrices` folds them into ``scipy.sparse`` CSR
    matrices, optionally reusing a cached symbolic pattern.
    """

    def __init__(self, node_index: dict[str, int],
                 current_index: dict[str, int], size: int):
        self._node_index = node_index
        self._current_index = current_index
        self.size = size
        self._g_rows: list[int] = []
        self._g_cols: list[int] = []
        self._g_vals: list[float] = []
        self._c_rows: list[int] = []
        self._c_cols: list[int] = []
        self._c_vals: list[float] = []
        #: time-dependent source contributions: (row, waveform, scale)
        #: triples — the row accumulates ``scale * waveform(t)``.
        self.sources: list[
            tuple[int, Callable[[float], float], float]
        ] = []

    # -- index resolution ---------------------------------------------------

    def node(self, name: str) -> int:
        """Matrix row/column of a node voltage; -1 denotes ground."""
        if name == GROUND:
            return -1
        return self._node_index[name]

    def branch(self, component_name: str) -> int:
        """Matrix row/column of a component's branch-current unknown."""
        return self._current_index[component_name]

    # -- primitive stamps ------------------------------------------------------

    def conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a conductance ``g`` between unknowns ``a`` and ``b``."""
        if a >= 0:
            self.g_entry(a, a, g)
        if b >= 0:
            self.g_entry(b, b, g)
        if a >= 0 and b >= 0:
            self.g_entry(a, b, -g)
            self.g_entry(b, a, -g)

    def capacitance(self, a: int, b: int, c: float) -> None:
        if a >= 0:
            self.c_entry(a, a, c)
        if b >= 0:
            self.c_entry(b, b, c)
        if a >= 0 and b >= 0:
            self.c_entry(a, b, -c)
            self.c_entry(b, a, -c)

    def g_entry(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self._g_rows.append(row)
            self._g_cols.append(col)
            self._g_vals.append(value)

    def c_entry(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self._c_rows.append(row)
            self._c_cols.append(col)
            self._c_vals.append(value)

    def source_entry(self, row: int,
                     waveform: Callable[[float], float],
                     scale: float = 1.0) -> None:
        if row >= 0:
            self.sources.append((row, waveform, scale))

    # -- matrix materialization ------------------------------------------------

    def _dense(self, rows, cols, vals) -> np.ndarray:
        out = np.zeros((self.size, self.size))
        if rows:
            # np.add.at applies contributions in index order — the same
            # accumulation order (and therefore the same rounding) as
            # sequential += stamping.
            np.add.at(out, (np.asarray(rows), np.asarray(cols)),
                      np.asarray(vals))
        return out

    @property
    def G(self) -> np.ndarray:
        """Dense conductance matrix (materialized from the triplets)."""
        return self._dense(self._g_rows, self._g_cols, self._g_vals)

    @property
    def C(self) -> np.ndarray:
        """Dense capacitance matrix (materialized from the triplets)."""
        return self._dense(self._c_rows, self._c_cols, self._c_vals)

    @staticmethod
    def _fold_pattern(rows: np.ndarray, cols: np.ndarray) -> dict:
        """Symbolic analysis of a triplet pattern: which unique (row,
        col) slot every triplet lands in, in stamp order."""
        order = np.lexsort((cols, rows))
        sr, sc = rows[order], cols[order]
        if len(order):
            keep = np.concatenate(
                ([True], (sr[1:] != sr[:-1]) | (sc[1:] != sc[:-1]))
            )
            slot_sorted = np.cumsum(keep) - 1
        else:
            keep = np.zeros(0, dtype=bool)
            slot_sorted = np.zeros(0, dtype=np.intp)
        slot = np.empty(len(order), dtype=np.intp)
        slot[order] = slot_sorted
        return {
            "rows": rows, "cols": cols, "slot": slot,
            "urows": sr[keep], "ucols": sc[keep],
            "nnz": int(keep.sum()),
        }

    def _fold(self, rows, cols, vals, pattern: Optional[dict]):
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        vals = np.asarray(vals, dtype=float)
        if (pattern is None
                or not np.array_equal(pattern["rows"], rows)
                or not np.array_equal(pattern["cols"], cols)):
            pattern = self._fold_pattern(rows, cols)
        data = np.zeros(pattern["nnz"])
        # add.at over the slot map accumulates duplicates in stamp
        # order, exactly like dense += stamping.
        np.add.at(data, pattern["slot"], vals)
        matrix = sp.coo_matrix(
            (data, (pattern["urows"], pattern["ucols"])),
            shape=(self.size, self.size),
        ).tocsr()
        return matrix, pattern

    def sparse_matrices(
        self, cache: Optional[dict] = None
    ) -> tuple["sp.csr_matrix", "sp.csr_matrix", dict]:
        """``(C, G)`` as CSR matrices plus the symbolic-pattern cache.

        Pass the returned cache back on re-assembly (switch events) to
        skip the sort-and-unique symbolic analysis when the stamp
        pattern is unchanged.
        """
        cache = cache or {}
        C_mat, c_pat = self._fold(self._c_rows, self._c_cols,
                                  self._c_vals, cache.get("c"))
        G_mat, g_pat = self._fold(self._g_rows, self._g_cols,
                                  self._g_vals, cache.get("g"))
        return C_mat, G_mat, {"c": c_pat, "g": g_pat}


class Network:
    """A conservative-law electrical network."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.components: list[Component] = []
        self._names: set[str] = set()
        #: symbolic-pattern cache for sparse re-assembly, keyed on the
        #: component identity tuple (switch toggles keep the pattern).
        self._assembly_cache: Optional[tuple] = None

    def add(self, component: Component) -> Component:
        if component.name in self._names:
            raise ElaborationError(
                f"duplicate component name {component.name!r} in network "
                f"{self.name!r}"
            )
        self._names.add(component.name)
        self.components.append(component)
        return component

    def node_names(self) -> list[str]:
        """All non-ground node names, in first-appearance order."""
        seen: list[str] = []
        for component in self.components:
            for node in component.nodes:
                if node != GROUND and node not in seen:
                    seen.append(node)
        return seen

    def system_size(self) -> int:
        """Unknown count of the assembled MNA system (nodes + branch
        currents) — available without assembling."""
        return len(self.node_names()) + sum(
            1 for c in self.components if c.needs_current
        )

    def assemble(
        self, sparse: bool = False
    ) -> tuple[LinearDae, "NetworkIndex"]:
        """Build the MNA system.  Returns (dae, index).

        With ``sparse=True`` the matrices are ``scipy.sparse`` CSR; the
        symbolic pattern is cached on the network, so re-assembly after
        a switch/parameter event skips the pattern analysis.
        """
        if not self.components:
            raise ElaborationError(f"network {self.name!r} is empty")
        nodes = self.node_names()
        node_index = {name: i for i, name in enumerate(nodes)}
        current_index: dict[str, int] = {}
        offset = len(nodes)
        for component in self.components:
            if component.needs_current:
                current_index[component.name] = offset
                offset += 1
        stamper = Stamper(node_index, current_index, offset)
        for component in self.components:
            component.stamp(stamper)
        source_rows = stamper.sources

        # The source closure runs once (trapezoidal: twice) per
        # timestep — the hottest allocation site in transient analysis.
        # Rotate over two preallocated buffers instead of np.zeros per
        # call: two, because the trapezoidal stepper holds b(t) and
        # b(t+h) simultaneously.  Callers that retain a result across
        # further source() calls must copy (see LinearDae.ac).
        pool = [np.zeros(offset), np.zeros(offset)]

        def source(t: float) -> np.ndarray:
            b = pool[0]
            pool[0], pool[1] = pool[1], pool[0]
            b[:] = 0.0
            for row, waveform, scale in source_rows:
                if scale == 1.0:
                    b[row] += waveform(t)
                else:
                    b[row] += scale * waveform(t)
            return b

        #: stamp-order source layout, consumed by the TDF window path
        #: to batch-evaluate b(t) without calling the closure per step.
        source.rows = tuple(source_rows)

        names = [f"v({n})" for n in nodes] + [
            f"i({c})" for c in current_index
        ]
        if sparse:
            key = tuple(id(c) for c in self.components)
            pattern = None
            if self._assembly_cache is not None \
                    and self._assembly_cache[0] == key:
                pattern = self._assembly_cache[1]
            C_mat, G_mat, pattern = stamper.sparse_matrices(pattern)
            self._assembly_cache = (key, pattern)
            dae = LinearDae(C_mat, G_mat, source, names=names)
        else:
            dae = LinearDae(stamper.C, stamper.G, source, names=names)
        index = NetworkIndex(node_index, current_index, self, stamper)
        return dae, index

    def noise_sources(self) -> tuple[list[NoiseSource], "NetworkIndex"]:
        """All component noise injections, mapped into MNA coordinates."""
        dae, index = self.assemble()
        sources: list[NoiseSource] = []
        for component in self.components:
            sources.extend(component.noise_sources(index.stamper))
        return sources, index


class NetworkIndex:
    """Maps node/branch names to rows of the assembled MNA system."""

    def __init__(self, node_index, current_index, network, stamper):
        self.node_index = dict(node_index)
        self.current_index = dict(current_index)
        self.network = network
        self.stamper = stamper
        self.size = stamper.size

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Extract a node voltage from a solution vector."""
        if node == GROUND:
            return 0.0
        return float(np.asarray(x)[..., self.node_index[node]])

    def voltage_series(self, states: np.ndarray, node: str) -> np.ndarray:
        if node == GROUND:
            return np.zeros(np.asarray(states).shape[0])
        return np.asarray(states)[:, self.node_index[node]]

    def current(self, x: np.ndarray, component_name: str) -> float:
        if component_name not in self.current_index:
            raise SolverError(
                f"component {component_name!r} has no branch-current "
                "unknown; only voltage sources, inductors and probes do"
            )
        return float(np.asarray(x)[..., self.current_index[component_name]])

    def current_series(self, states: np.ndarray,
                       component_name: str) -> np.ndarray:
        if component_name not in self.current_index:
            raise SolverError(
                f"component {component_name!r} has no branch-current unknown"
            )
        return np.asarray(states)[:, self.current_index[component_name]]

    def selection_vector(self, node_plus: str,
                         node_minus: str = GROUND) -> np.ndarray:
        """A vector ``d`` with ``d @ x == v(node_plus) - v(node_minus)``."""
        d = np.zeros(self.size)
        if node_plus != GROUND:
            d[self.node_index[node_plus]] = 1.0
        if node_minus != GROUND:
            d[self.node_index[node_minus]] -= 1.0
        return d

    def injection_vector(self, node_plus: str,
                         node_minus: str = GROUND) -> np.ndarray:
        """A vector ``b`` injecting a unit current into ``node_plus`` and
        out of ``node_minus`` (for AC/noise excitations)."""
        b = np.zeros(self.size)
        if node_plus != GROUND:
            b[self.node_index[node_plus]] = 1.0
        if node_minus != GROUND:
            b[self.node_index[node_minus]] -= 1.0
        return b
