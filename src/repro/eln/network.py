"""Electrical linear networks and Modified Nodal Analysis.

The paper requires conservative-law modeling "as linear network
macromodels based on simple electrical R, L, C, and controled source
primitives", with the system of equations "generated from a network using
the Modified Nodal Analysis method".  A :class:`Network` collects
components connected between named nodes; :meth:`Network.assemble`
produces the ``C x' + G x = b(t)`` matrices consumed by the
:mod:`repro.ct` solvers for DC, AC, transient, and noise analyses.

Unknown ordering: node voltages first (ground eliminated), then one
branch current per component that introduces a current unknown
(voltage sources, inductors, ideal transformers, short-style probes).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..core.errors import ElaborationError, SolverError
from ..ct.linear import LinearDae
from ..ct.noise import NoiseSource, thermal_current_psd

#: The reference node name.
GROUND = "0"


class Component:
    """Base class for network primitives.

    Subclasses declare ``nodes`` (names), whether they need a branch
    current unknown (:attr:`needs_current`), and implement :meth:`stamp`.
    """

    needs_current = False

    def __init__(self, name: str, nodes: Sequence[str]):
        self.name = name
        self.nodes = [str(n) for n in nodes]

    def stamp(self, stamper: "Stamper") -> None:
        raise NotImplementedError

    def noise_sources(self, stamper: "Stamper") -> list[NoiseSource]:
        """Noise injections contributed by this component (default none)."""
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.nodes})"


class Stamper:
    """Index bookkeeping plus stamping surface handed to components."""

    def __init__(self, node_index: dict[str, int],
                 current_index: dict[str, int], size: int):
        self._node_index = node_index
        self._current_index = current_index
        self.size = size
        self.G = np.zeros((size, size))
        self.C = np.zeros((size, size))
        #: time-dependent source contributions: (row, waveform) pairs.
        self.sources: list[tuple[int, Callable[[float], float]]] = []

    # -- index resolution ---------------------------------------------------

    def node(self, name: str) -> int:
        """Matrix row/column of a node voltage; -1 denotes ground."""
        if name == GROUND:
            return -1
        return self._node_index[name]

    def branch(self, component_name: str) -> int:
        """Matrix row/column of a component's branch-current unknown."""
        return self._current_index[component_name]

    # -- primitive stamps ------------------------------------------------------

    def conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a conductance ``g`` between unknowns ``a`` and ``b``."""
        if a >= 0:
            self.G[a, a] += g
        if b >= 0:
            self.G[b, b] += g
        if a >= 0 and b >= 0:
            self.G[a, b] -= g
            self.G[b, a] -= g

    def capacitance(self, a: int, b: int, c: float) -> None:
        if a >= 0:
            self.C[a, a] += c
        if b >= 0:
            self.C[b, b] += c
        if a >= 0 and b >= 0:
            self.C[a, b] -= c
            self.C[b, a] -= c

    def g_entry(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.G[row, col] += value

    def c_entry(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.C[row, col] += value

    def source_entry(self, row: int,
                     waveform: Callable[[float], float]) -> None:
        if row >= 0:
            self.sources.append((row, waveform))


class Network:
    """A conservative-law electrical network."""

    def __init__(self, name: str = "network"):
        self.name = name
        self.components: list[Component] = []
        self._names: set[str] = set()

    def add(self, component: Component) -> Component:
        if component.name in self._names:
            raise ElaborationError(
                f"duplicate component name {component.name!r} in network "
                f"{self.name!r}"
            )
        self._names.add(component.name)
        self.components.append(component)
        return component

    def node_names(self) -> list[str]:
        """All non-ground node names, in first-appearance order."""
        seen: list[str] = []
        for component in self.components:
            for node in component.nodes:
                if node != GROUND and node not in seen:
                    seen.append(node)
        return seen

    def assemble(self) -> tuple[LinearDae, "NetworkIndex"]:
        """Build the MNA system.  Returns (dae, index)."""
        if not self.components:
            raise ElaborationError(f"network {self.name!r} is empty")
        nodes = self.node_names()
        node_index = {name: i for i, name in enumerate(nodes)}
        current_index: dict[str, int] = {}
        offset = len(nodes)
        for component in self.components:
            if component.needs_current:
                current_index[component.name] = offset
                offset += 1
        stamper = Stamper(node_index, current_index, offset)
        for component in self.components:
            component.stamp(stamper)
        source_rows = stamper.sources

        # The source closure runs once (trapezoidal: twice) per
        # timestep — the hottest allocation site in transient analysis.
        # Rotate over two preallocated buffers instead of np.zeros per
        # call: two, because the trapezoidal stepper holds b(t) and
        # b(t+h) simultaneously.  Callers that retain a result across
        # further source() calls must copy (see LinearDae.ac).
        pool = [np.zeros(offset), np.zeros(offset)]

        def source(t: float) -> np.ndarray:
            b = pool[0]
            pool[0], pool[1] = pool[1], pool[0]
            b[:] = 0.0
            for row, waveform in source_rows:
                b[row] += waveform(t)
            return b

        names = [f"v({n})" for n in nodes] + [
            f"i({c})" for c in current_index
        ]
        dae = LinearDae(stamper.C, stamper.G, source, names=names)
        index = NetworkIndex(node_index, current_index, self, stamper)
        return dae, index

    def noise_sources(self) -> tuple[list[NoiseSource], "NetworkIndex"]:
        """All component noise injections, mapped into MNA coordinates."""
        dae, index = self.assemble()
        sources: list[NoiseSource] = []
        for component in self.components:
            sources.extend(component.noise_sources(index.stamper))
        return sources, index


class NetworkIndex:
    """Maps node/branch names to rows of the assembled MNA system."""

    def __init__(self, node_index, current_index, network, stamper):
        self.node_index = dict(node_index)
        self.current_index = dict(current_index)
        self.network = network
        self.stamper = stamper
        self.size = stamper.size

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Extract a node voltage from a solution vector."""
        if node == GROUND:
            return 0.0
        return float(np.asarray(x)[..., self.node_index[node]])

    def voltage_series(self, states: np.ndarray, node: str) -> np.ndarray:
        if node == GROUND:
            return np.zeros(np.asarray(states).shape[0])
        return np.asarray(states)[:, self.node_index[node]]

    def current(self, x: np.ndarray, component_name: str) -> float:
        if component_name not in self.current_index:
            raise SolverError(
                f"component {component_name!r} has no branch-current "
                "unknown; only voltage sources, inductors and probes do"
            )
        return float(np.asarray(x)[..., self.current_index[component_name]])

    def current_series(self, states: np.ndarray,
                       component_name: str) -> np.ndarray:
        if component_name not in self.current_index:
            raise SolverError(
                f"component {component_name!r} has no branch-current unknown"
            )
        return np.asarray(states)[:, self.current_index[component_name]]

    def selection_vector(self, node_plus: str,
                         node_minus: str = GROUND) -> np.ndarray:
        """A vector ``d`` with ``d @ x == v(node_plus) - v(node_minus)``."""
        d = np.zeros(self.size)
        if node_plus != GROUND:
            d[self.node_index[node_plus]] = 1.0
        if node_minus != GROUND:
            d[self.node_index[node_minus]] -= 1.0
        return d

    def injection_vector(self, node_plus: str,
                         node_minus: str = GROUND) -> np.ndarray:
        """A vector ``b`` injecting a unit current into ``node_plus`` and
        out of ``node_minus`` (for AC/noise excitations)."""
        b = np.zeros(self.size)
        if node_plus != GROUND:
            b[self.node_index[node_plus]] = 1.0
        if node_minus != GROUND:
            b[self.node_index[node_minus]] -= 1.0
        return b
