"""Electrical linear-network primitives and their MNA stamps.

The Phase 1 "electrical element library: R, L, C, sources", plus the four
controlled sources, ideal transformer, gyrator, ideal op-amp (nullor),
switch, and a zero-volt probe for current measurement.

Conventions
-----------
* Two-terminal elements take ``(positive_node, negative_node)``.
* A voltage source's branch current flows from the positive node through
  the source to the negative node.
* ``Isource`` drives its current *into* the positive node (out of the
  negative node).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..core.errors import ElaborationError
from ..ct.noise import NoiseSource, thermal_current_psd
from .network import Component, Stamper

Waveform = Union[float, Callable[[float], float]]


def _as_waveform(value: Waveform) -> Callable[[float], float]:
    if callable(value):
        return value
    constant = float(value)
    return lambda t: constant


class Resistor(Component):
    """Linear resistor.  Contributes thermal noise in noise analysis."""

    def __init__(self, name: str, a: str, b: str, resistance: float,
                 temperature: float = 300.0):
        super().__init__(name, [a, b])
        if resistance <= 0:
            raise ElaborationError(
                f"resistor {name!r} must have positive resistance"
            )
        self.resistance = resistance
        self.temperature = temperature

    def stamp(self, stamper: Stamper) -> None:
        a, b = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        stamper.conductance(a, b, 1.0 / self.resistance)

    def noise_sources(self, stamper: Stamper) -> list[NoiseSource]:
        vector = np.zeros(stamper.size)
        a, b = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        if a >= 0:
            vector[a] = 1.0
        if b >= 0:
            vector[b] = -1.0
        psd = thermal_current_psd(self.resistance, self.temperature)
        return [NoiseSource(f"{self.name}.thermal", vector, psd)]


class Capacitor(Component):
    """Linear capacitor."""

    def __init__(self, name: str, a: str, b: str, capacitance: float):
        super().__init__(name, [a, b])
        if capacitance <= 0:
            raise ElaborationError(
                f"capacitor {name!r} must have positive capacitance"
            )
        self.capacitance = capacitance

    def stamp(self, stamper: Stamper) -> None:
        a, b = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        stamper.capacitance(a, b, self.capacitance)


class Inductor(Component):
    """Linear inductor; introduces a branch-current unknown."""

    needs_current = True

    def __init__(self, name: str, a: str, b: str, inductance: float):
        super().__init__(name, [a, b])
        if inductance <= 0:
            raise ElaborationError(
                f"inductor {name!r} must have positive inductance"
            )
        self.inductance = inductance

    def stamp(self, stamper: Stamper) -> None:
        a, b = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        j = stamper.branch(self.name)
        # KCL: branch current leaves node a, enters node b.
        stamper.g_entry(a, j, 1.0)
        stamper.g_entry(b, j, -1.0)
        # Branch equation: v_a - v_b - L * dj/dt = 0.
        stamper.g_entry(j, a, 1.0)
        stamper.g_entry(j, b, -1.0)
        stamper.c_entry(j, j, -self.inductance)


class Vsource(Component):
    """Independent voltage source (constant or waveform-driven)."""

    needs_current = True

    def __init__(self, name: str, p: str, n: str, voltage: Waveform = 0.0):
        super().__init__(name, [p, n])
        self.waveform = _as_waveform(voltage)

    def stamp(self, stamper: Stamper) -> None:
        p, n = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        j = stamper.branch(self.name)
        stamper.g_entry(p, j, 1.0)
        stamper.g_entry(n, j, -1.0)
        stamper.g_entry(j, p, 1.0)
        stamper.g_entry(j, n, -1.0)
        stamper.source_entry(j, self.waveform)


class Isource(Component):
    """Independent current source driving current into its positive node."""

    def __init__(self, name: str, p: str, n: str, current: Waveform = 0.0):
        super().__init__(name, [p, n])
        self.waveform = _as_waveform(current)

    def stamp(self, stamper: Stamper) -> None:
        p, n = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        stamper.source_entry(p, self.waveform)
        stamper.source_entry(n, self.waveform, scale=-1.0)


class Vcvs(Component):
    """Voltage-controlled voltage source: ``v(p,n) = gain * v(cp,cn)``."""

    needs_current = True

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str,
                 gain: float):
        super().__init__(name, [p, n, cp, cn])
        self.gain = gain

    def stamp(self, stamper: Stamper) -> None:
        p, n, cp, cn = (stamper.node(x) for x in self.nodes)
        j = stamper.branch(self.name)
        stamper.g_entry(p, j, 1.0)
        stamper.g_entry(n, j, -1.0)
        stamper.g_entry(j, p, 1.0)
        stamper.g_entry(j, n, -1.0)
        stamper.g_entry(j, cp, -self.gain)
        stamper.g_entry(j, cn, self.gain)


class Vccs(Component):
    """Voltage-controlled current source: ``i(p->n) = gm * v(cp,cn)``."""

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str,
                 transconductance: float):
        super().__init__(name, [p, n, cp, cn])
        self.transconductance = transconductance

    def stamp(self, stamper: Stamper) -> None:
        p, n, cp, cn = (stamper.node(x) for x in self.nodes)
        gm = self.transconductance
        stamper.g_entry(p, cp, gm)
        stamper.g_entry(p, cn, -gm)
        stamper.g_entry(n, cp, -gm)
        stamper.g_entry(n, cn, gm)


class Ccvs(Component):
    """Current-controlled voltage source.

    The controlling current is the branch current of another component
    (``control``), which must introduce a current unknown (a Vsource,
    Inductor, or Probe).
    """

    needs_current = True

    def __init__(self, name: str, p: str, n: str, control: str,
                 transresistance: float):
        super().__init__(name, [p, n])
        self.control = control
        self.transresistance = transresistance

    def stamp(self, stamper: Stamper) -> None:
        p, n = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        j = stamper.branch(self.name)
        jc = stamper.branch(self.control)
        stamper.g_entry(p, j, 1.0)
        stamper.g_entry(n, j, -1.0)
        stamper.g_entry(j, p, 1.0)
        stamper.g_entry(j, n, -1.0)
        stamper.g_entry(j, jc, -self.transresistance)


class Cccs(Component):
    """Current-controlled current source: ``i(p->n) = gain * i(control)``."""

    def __init__(self, name: str, p: str, n: str, control: str, gain: float):
        super().__init__(name, [p, n])
        self.control = control
        self.gain = gain

    def stamp(self, stamper: Stamper) -> None:
        p, n = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        jc = stamper.branch(self.control)
        stamper.g_entry(p, jc, self.gain)
        stamper.g_entry(n, jc, -self.gain)


class IdealTransformer(Component):
    """Ideal transformer: ``v1 = ratio * v2``, ``i2 = -ratio * i1``.

    Lossless (power in equals power out); one branch unknown carries the
    primary current.
    """

    needs_current = True

    def __init__(self, name: str, p1: str, n1: str, p2: str, n2: str,
                 ratio: float):
        super().__init__(name, [p1, n1, p2, n2])
        if ratio == 0:
            raise ElaborationError(f"transformer {name!r} ratio must be nonzero")
        self.ratio = ratio

    def stamp(self, stamper: Stamper) -> None:
        p1, n1, p2, n2 = (stamper.node(x) for x in self.nodes)
        j = stamper.branch(self.name)  # primary current
        stamper.g_entry(p1, j, 1.0)
        stamper.g_entry(n1, j, -1.0)
        stamper.g_entry(p2, j, -self.ratio)
        stamper.g_entry(n2, j, self.ratio)
        stamper.g_entry(j, p1, 1.0)
        stamper.g_entry(j, n1, -1.0)
        stamper.g_entry(j, p2, -self.ratio)
        stamper.g_entry(j, n2, self.ratio)


class Gyrator(Component):
    """Gyrator: ``i1 = g * v2``, ``i2 = -g * v1``.

    The standard bridge for multi-domain analogies (it converts a
    capacitance on one side into an inductance on the other).
    """

    def __init__(self, name: str, p1: str, n1: str, p2: str, n2: str,
                 conductance: float):
        super().__init__(name, [p1, n1, p2, n2])
        self.conductance = conductance

    def stamp(self, stamper: Stamper) -> None:
        p1, n1, p2, n2 = (stamper.node(x) for x in self.nodes)
        g = self.conductance
        # i into p1 = g * (v_p2 - v_n2)
        stamper.g_entry(p1, p2, g)
        stamper.g_entry(p1, n2, -g)
        stamper.g_entry(n1, p2, -g)
        stamper.g_entry(n1, n2, g)
        # i into p2 = -g * (v_p1 - v_n1)
        stamper.g_entry(p2, p1, -g)
        stamper.g_entry(p2, n1, g)
        stamper.g_entry(n2, p1, g)
        stamper.g_entry(n2, n1, -g)


class IdealOpAmp(Component):
    """Ideal operational amplifier (nullor stamp).

    Forces ``v(in_p) == v(in_n)`` and supplies whatever output current is
    needed.  Nodes: ``(in_p, in_n, out)``; output referenced to ground.
    """

    needs_current = True

    def __init__(self, name: str, in_p: str, in_n: str, out: str):
        super().__init__(name, [in_p, in_n, out])

    def stamp(self, stamper: Stamper) -> None:
        in_p, in_n, out = (stamper.node(x) for x in self.nodes)
        j = stamper.branch(self.name)  # output current
        stamper.g_entry(out, j, 1.0)
        stamper.g_entry(j, in_p, 1.0)
        stamper.g_entry(j, in_n, -1.0)


class Switch(Component):
    """Ideal switch modeled as a two-state resistor.

    Toggling :attr:`closed` changes the stamped conductance; the owning
    simulation layer must re-assemble the network after a toggle (the
    synchronization layer does this automatically for DE-driven switches).
    """

    def __init__(self, name: str, a: str, b: str, closed: bool = False,
                 r_on: float = 1e-3, r_off: float = 1e9):
        super().__init__(name, [a, b])
        if r_on <= 0 or r_off <= 0:
            raise ElaborationError(f"switch {name!r} resistances must be positive")
        self.closed = closed
        self.r_on = r_on
        self.r_off = r_off

    @property
    def resistance(self) -> float:
        return self.r_on if self.closed else self.r_off

    def set_closed(self, closed: bool) -> bool:
        """Set the switch state; returns True when it actually changed.

        A toggle is a *value-only* event: the stamp pattern (which
        matrix entries exist) is unchanged, so the owning layer only
        needs to re-stamp and refactorize — ``LinearStepper.rebind`` /
        ``LinearTransientSolver.rebind`` — not rebuild the solver, and a
        cached sparse symbolic pattern stays valid.
        """
        closed = bool(closed)
        changed = closed != self.closed
        self.closed = closed
        return changed

    def stamp(self, stamper: Stamper) -> None:
        a, b = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        stamper.conductance(a, b, 1.0 / self.resistance)


class Probe(Component):
    """Zero-volt source: measures the current flowing from a to b."""

    needs_current = True

    def __init__(self, name: str, a: str, b: str):
        super().__init__(name, [a, b])

    def stamp(self, stamper: Stamper) -> None:
        a, b = stamper.node(self.nodes[0]), stamper.node(self.nodes[1])
        j = stamper.branch(self.name)
        stamper.g_entry(a, j, 1.0)
        stamper.g_entry(b, j, -1.0)
        stamper.g_entry(j, a, 1.0)
        stamper.g_entry(j, b, -1.0)
