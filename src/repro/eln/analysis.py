"""Convenience analyses on electrical networks.

Thin wrappers tying :class:`~repro.eln.network.Network` to the
:mod:`repro.ct` solvers so users can ask for DC, AC, transient, and noise
results by node name rather than matrix index.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..ct.noise import output_noise_psd
from .network import GROUND, Network, NetworkIndex


class DcResult:
    """DC operating point keyed by node/branch name."""

    def __init__(self, x: np.ndarray, index: NetworkIndex):
        self._x = x
        self._index = index

    def voltage(self, node: str) -> float:
        return self._index.voltage(self._x, node)

    def current(self, component: str) -> float:
        return self._index.current(self._x, component)

    @property
    def raw(self) -> np.ndarray:
        return self._x


class TransientResult:
    """Time-domain waveforms keyed by node/branch name."""

    def __init__(self, times: np.ndarray, states: np.ndarray,
                 index: NetworkIndex):
        self.times = times
        self._states = states
        self._index = index

    def voltage(self, node: str) -> np.ndarray:
        return self._index.voltage_series(self._states, node)

    def current(self, component: str) -> np.ndarray:
        return self._index.current_series(self._states, component)

    @property
    def raw(self) -> np.ndarray:
        return self._states


class AcResult:
    """Frequency-domain phasors keyed by node name."""

    def __init__(self, frequencies: np.ndarray, phasors: np.ndarray,
                 index: NetworkIndex):
        self.frequencies = frequencies
        self._phasors = phasors
        self._index = index

    def voltage(self, node: str) -> np.ndarray:
        if node == GROUND:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self._phasors[:, self._index.node_index[node]]

    def current(self, component: str) -> np.ndarray:
        return self._phasors[:, self._index.current_index[component]]


def dc_analysis(network: Network) -> DcResult:
    """Compute the DC operating point of a network."""
    dae, index = network.assemble()
    return DcResult(dae.dc(), index)


def transient_analysis(
    network: Network,
    t_end: float,
    h: float,
    method: str = "trapezoidal",
    x0: Optional[np.ndarray] = None,
) -> TransientResult:
    """Fixed-timestep transient from the DC operating point (or ``x0``)."""
    dae, index = network.assemble()
    times, states = dae.transient(t_end, h, x0=x0, method=method)
    return TransientResult(times, states, index)


def ac_analysis(
    network: Network,
    frequencies: np.ndarray,
    input_source: Optional[str] = None,
) -> AcResult:
    """Small-signal AC sweep.

    With ``input_source`` given (name of a Vsource), a unit AC phasor is
    applied at that source and all other sources are zeroed; otherwise
    the DC source pattern at t=0 is used as the excitation.
    """
    dae, index = network.assemble()
    if input_source is None:
        phasors = dae.ac(frequencies)
    else:
        b_ac = np.zeros(index.size)
        b_ac[index.current_index[input_source]] = 1.0
        phasors = dae.ac(frequencies, b_ac=b_ac)
    return AcResult(np.atleast_1d(np.asarray(frequencies, dtype=float)),
                    phasors, index)


def noise_analysis(
    network: Network,
    frequencies: np.ndarray,
    output_node: str,
    reference_node: str = GROUND,
) -> np.ndarray:
    """Output noise voltage PSD [V^2/Hz] at ``output_node``."""
    dae, index = network.assemble()
    sources = []
    for component in network.components:
        sources.extend(component.noise_sources(index.stamper))
    d = index.selection_vector(output_node, reference_node)
    return output_noise_psd(dae.C, dae.G, sources, d, frequencies)
