"""`repro.eln` — conservative-law electrical linear networks.

Networks of R/L/C, independent and controlled sources, transformers,
gyrators, op-amps, switches and probes, formulated by Modified Nodal
Analysis into the linear DAE form solved by :mod:`repro.ct`.
"""

from .analysis import (
    AcResult,
    DcResult,
    TransientResult,
    ac_analysis,
    dc_analysis,
    noise_analysis,
    transient_analysis,
)
from .components import (
    Capacitor,
    Cccs,
    Ccvs,
    Gyrator,
    IdealOpAmp,
    IdealTransformer,
    Inductor,
    Isource,
    Probe,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    Vsource,
)
from .network import GROUND, Component, Network, NetworkIndex, Stamper

__all__ = [
    "AcResult", "Capacitor", "Cccs", "Ccvs", "Component", "DcResult",
    "GROUND", "Gyrator", "IdealOpAmp", "IdealTransformer", "Inductor",
    "Isource", "Network", "NetworkIndex", "Probe", "Resistor", "Stamper",
    "Switch", "TransientResult", "Vccs", "Vcvs", "Vsource", "ac_analysis",
    "dc_analysis", "noise_analysis", "transient_analysis",
]
