"""Piecewise-linear (PWL) exact simulation of switching circuits.

The AnalogSL approach (seed work [8], Grimm et al.): a power driver with
a capacitive or inductive load visits a *small set of linear circuit
configurations* selected by the switch positions.  Within one
configuration the dynamics are ``x' = A x + B`` (B collects the constant
supply terms), whose solution is exact:

    x(t0 + h) = x_inf + expm(A h) (x(t0) - x_inf),   x_inf = -A^{-1} B

so a whole PWM segment is *one* matrix-vector product — no timestep, no
iteration, no local truncation error.  Transition matrices are cached per
(configuration, duration).  This is the "specialized continuous-time
MoC ... for power electronics" of the paper's Phase 3, and experiment E6
measures its speedup over the general nonlinear solver.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

import numpy as np
from scipy.linalg import expm

from ..core.errors import SolverError


class PwlConfig:
    """One linear configuration: ``x' = A x + B``."""

    def __init__(self, A, B):
        self.A = np.atleast_2d(np.asarray(A, dtype=float))
        self.B = np.atleast_1d(np.asarray(B, dtype=float))
        n = self.A.shape[0]
        if self.A.shape != (n, n) or self.B.shape != (n,):
            raise SolverError(
                f"inconsistent config shapes A{self.A.shape} B{self.B.shape}"
            )
        self.n = n


class PwlSolver:
    """Exact advancer over a dictionary of configurations."""

    def __init__(self, configs: dict[Hashable, PwlConfig]):
        if not configs:
            raise SolverError("need at least one configuration")
        sizes = {config.n for config in configs.values()}
        if len(sizes) != 1:
            raise SolverError("all configurations must share the state size")
        self.configs = dict(configs)
        self.n = sizes.pop()
        #: cache: (config key, duration) -> (Phi, offset) with
        #: x1 = Phi @ x0 + offset.
        self._cache: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self.segment_count = 0

    def _transition(self, key: Hashable, h: float):
        cache_key = (key, h)
        hit = self._cache.get(cache_key)
        if hit is not None:
            return hit
        config = self.configs[key]
        phi = expm(config.A * h)
        # offset = (phi - I) A^{-1} B  — computed robustly via the
        # augmented-matrix trick when A is singular.
        try:
            x_inf = np.linalg.solve(config.A, -config.B)
            offset = x_inf - phi @ x_inf
        except np.linalg.LinAlgError:
            # Augment: d/dt [x; 1] = [[A, B], [0, 0]] [x; 1].
            augmented = np.zeros((config.n + 1, config.n + 1))
            augmented[: config.n, : config.n] = config.A
            augmented[: config.n, config.n] = config.B
            phi_aug = expm(augmented * h)
            phi = phi_aug[: config.n, : config.n]
            offset = phi_aug[: config.n, config.n]
        self._cache[cache_key] = (phi, offset)
        return phi, offset

    def advance(self, x: np.ndarray, key: Hashable, h: float) -> np.ndarray:
        """Exact state after spending ``h`` seconds in configuration
        ``key``."""
        if key not in self.configs:
            raise SolverError(f"unknown configuration {key!r}")
        if h < 0:
            raise SolverError("segment duration must be non-negative")
        if h == 0:
            return np.asarray(x, dtype=float)
        phi, offset = self._transition(key, h)
        self.segment_count += 1
        return phi @ np.asarray(x, dtype=float) + offset

    def sample_segment(self, x: np.ndarray, key: Hashable, h: float,
                       points: int) -> tuple[np.ndarray, np.ndarray]:
        """States at ``points`` equidistant times within a segment
        (excluding t=0, including t=h)."""
        dt = h / points
        out = np.empty((points, self.n))
        state = np.asarray(x, dtype=float)
        for k in range(points):
            state = self.advance(state, key, dt)
            out[k] = state
        times = dt * np.arange(1, points + 1)
        return times, out

    def steady_state(self, schedule: Sequence[tuple[Hashable, float]],
                     max_iterations: int = 10000,
                     tolerance: float = 1e-12) -> np.ndarray:
        """Periodic steady state of a repeating segment schedule.

        One period maps ``x -> M x + c`` (both obtained by composing the
        cached segment transitions); the fixed point solves
        ``(I - M) x = c`` directly.
        """
        M = np.eye(self.n)
        c = np.zeros(self.n)
        for key, h in schedule:
            phi, offset = self._transition(key, h)
            M = phi @ M
            c = phi @ c + offset
        try:
            return np.linalg.solve(np.eye(self.n) - M, c)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "periodic map is singular (undamped circuit?)"
            ) from exc


def run_schedule(
    solver: PwlSolver,
    schedule: Sequence[tuple[Hashable, float]],
    x0: np.ndarray,
    samples_per_segment: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate a segment schedule, sampling within each segment.

    Returns ``(times, states)`` including the initial point.
    """
    times = [0.0]
    states = [np.asarray(x0, dtype=float)]
    t = 0.0
    x = states[0]
    for key, h in schedule:
        seg_times, seg_states = solver.sample_segment(
            x, key, h, samples_per_segment
        )
        times.extend(t + seg_times)
        states.extend(seg_states)
        t += h
        x = seg_states[-1]
    return np.asarray(times), np.asarray(states)
