"""`repro.power` — dedicated power-electronics MoC (AnalogSL, Phase 3).

Exact piecewise-linear simulation of switching power stages: per-switch
-configuration matrix-exponential transitions, periodic-steady-state
solving, and PWM driver models with DE gate control.
"""

from .driver import (
    HIGH,
    LOW,
    HalfBridgeDriver,
    PwmDriverModule,
    RCLoad,
    RLLoad,
    RlcLoad,
)
from .pwl import PwlConfig, PwlSolver, run_schedule

__all__ = [
    "HIGH", "HalfBridgeDriver", "LOW", "PwlConfig", "PwlSolver",
    "PwmDriverModule", "RCLoad", "RLLoad", "RlcLoad", "run_schedule",
]
