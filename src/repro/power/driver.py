"""Power-driver models on top of the PWL solver.

A half-bridge driving an R-L or R-C load under PWM — the AnalogSL
application family ("power drivers with capacitive or inductive loads",
seed work [8]).  High-level helpers compute full PWM waveforms, ripple,
and periodic steady state; a TDF module embeds the driver in the
mixed-signal world with a DE gate input.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import ElaborationError
from ..core.module import Module
from ..core.port import InPort
from ..tdf.module import TdfModule
from ..tdf.signal import TdfOut
from .pwl import PwlConfig, PwlSolver, run_schedule

HIGH = "high"
LOW = "low"


class RLLoad:
    """Series R-L load with optional back-EMF; state = inductor current."""

    def __init__(self, resistance: float, inductance: float,
                 back_emf: float = 0.0):
        if resistance <= 0 or inductance <= 0:
            raise ElaborationError("R and L must be positive")
        self.resistance = resistance
        self.inductance = inductance
        self.back_emf = back_emf

    def configs(self, v_supply: float, r_on: float) -> dict:
        R, L, e = self.resistance, self.inductance, self.back_emf
        high = PwlConfig([[-(R + r_on) / L]], [(v_supply - e) / L])
        low = PwlConfig([[-(R + r_on) / L]], [-e / L])
        return {HIGH: high, LOW: low}

    state_names = ("i_load",)


class RCLoad:
    """Series R into a capacitor; state = capacitor voltage."""

    def __init__(self, resistance: float, capacitance: float):
        if resistance <= 0 or capacitance <= 0:
            raise ElaborationError("R and C must be positive")
        self.resistance = resistance
        self.capacitance = capacitance

    def configs(self, v_supply: float, r_on: float) -> dict:
        tau_inv_on = 1.0 / ((self.resistance + r_on) * self.capacitance)
        high = PwlConfig([[-tau_inv_on]], [v_supply * tau_inv_on])
        low = PwlConfig([[-tau_inv_on]], [0.0])
        return {HIGH: high, LOW: low}

    state_names = ("v_load",)


class RlcLoad:
    """Series R-L into a capacitor (output filter); states = (i_L, v_C)."""

    def __init__(self, resistance: float, inductance: float,
                 capacitance: float, load_resistance: float = np.inf):
        if min(resistance, inductance, capacitance) <= 0:
            raise ElaborationError("R, L and C must be positive")
        self.resistance = resistance
        self.inductance = inductance
        self.capacitance = capacitance
        self.load_resistance = load_resistance

    def configs(self, v_supply: float, r_on: float) -> dict:
        R, L, C = self.resistance, self.inductance, self.capacitance
        g_load = 0.0 if np.isinf(self.load_resistance) \
            else 1.0 / self.load_resistance
        A = [[-(R + r_on) / L, -1.0 / L],
             [1.0 / C, -g_load / C]]
        high = PwlConfig(A, [v_supply / L, 0.0])
        low = PwlConfig(A, [0.0, 0.0])
        return {HIGH: high, LOW: low}

    state_names = ("i_l", "v_c")


class HalfBridgeDriver:
    """PWM half-bridge: supply, switch on-resistance, and a load model."""

    def __init__(self, load, v_supply: float = 12.0, r_on: float = 0.05,
                 pwm_frequency: float = 20e3, duty: float = 0.5):
        if not 0.0 < duty < 1.0:
            raise ElaborationError("duty must lie strictly between 0 and 1")
        if pwm_frequency <= 0:
            raise ElaborationError("PWM frequency must be positive")
        self.load = load
        self.v_supply = v_supply
        self.r_on = r_on
        self.pwm_frequency = pwm_frequency
        self.duty = duty
        self.solver = PwlSolver(load.configs(v_supply, r_on))

    def period_schedule(self) -> list[tuple[str, float]]:
        period = 1.0 / self.pwm_frequency
        return [(HIGH, self.duty * period),
                (LOW, (1.0 - self.duty) * period)]

    def simulate(self, n_cycles: int, samples_per_segment: int = 8,
                 x0: Optional[np.ndarray] = None):
        """Simulate ``n_cycles`` PWM periods from ``x0`` (default zero).

        Returns ``(times, states)``.
        """
        schedule = self.period_schedule() * n_cycles
        start = np.zeros(self.solver.n) if x0 is None \
            else np.asarray(x0, dtype=float)
        return run_schedule(self.solver, schedule, start,
                            samples_per_segment)

    def steady_state(self) -> np.ndarray:
        """State at the start of a period in periodic steady state."""
        return self.solver.steady_state(self.period_schedule())

    def steady_ripple(self, samples_per_segment: int = 32):
        """Peak-to-peak ripple of each state in steady state."""
        x0 = self.steady_state()
        times, states = run_schedule(
            self.solver, self.period_schedule(), x0, samples_per_segment
        )
        return np.ptp(states, axis=0)

    def average_output(self, samples_per_segment: int = 32) -> np.ndarray:
        """Cycle-average of each state in periodic steady state."""
        x0 = self.steady_state()
        times, states = run_schedule(
            self.solver, self.period_schedule(), x0, samples_per_segment
        )
        return np.trapezoid(states, times, axis=0) * self.pwm_frequency


class PwmDriverModule(TdfModule):
    """TDF embedding of a PWL power stage with a DE gate input.

    Each activation advances the exact PWL solver by one module timestep
    in the configuration selected by the DE gate signal (sampled at the
    activation); state outputs stream onto TDF ports.
    """

    def __init__(self, name: str, load, v_supply: float = 12.0,
                 r_on: float = 0.05,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.solver = PwlSolver(load.configs(v_supply, r_on))
        self.gate = InPort(f"{name}.gate")
        self.outputs = [TdfOut(f"out_{n}") for n in load.state_names]
        for port, state_name in zip(self.outputs, load.state_names):
            port.module = self
            setattr(self, f"out_{state_name}", port)
        self._x = np.zeros(self.solver.n)

    def bind_gate(self, de_signal) -> None:
        self.gate.bind(de_signal)

    def processing(self):
        key = HIGH if bool(self.gate.read()) else LOW
        h = self.timestep.to_seconds()
        if self._activation_index > 0:
            self._x = self.solver.advance(self._x, key, h)
        for k, port in enumerate(self.outputs):
            port.write(float(self._x[k]))
