"""pysysc-ams — a Python reproduction of the SystemC-AMS framework.

Reproduces "SystemC-AMS Requirements, Design Objectives and Rationale"
(Vachoux, Grimm, Einwich — DATE 2003): a layered mixed-signal modeling
and simulation framework comprising a discrete-event kernel
(:mod:`repro.core`), dataflow models of computation (:mod:`repro.sdf`,
:mod:`repro.tdf`), continuous-time solvers (:mod:`repro.ct`), linear
signal-flow and conservative electrical-network modeling
(:mod:`repro.lsf`, :mod:`repro.eln`), nonlinear and multi-domain
extensions (:mod:`repro.nonlin`, :mod:`repro.power`,
:mod:`repro.multidomain`), a synchronization layer (:mod:`repro.sync`),
a mixed-signal module library (:mod:`repro.lib`), and a parallel
campaign engine for sweeps, corners, and Monte Carlo with result
caching (:mod:`repro.campaign`), a resilience layer — solver
fallback chains, convergence homotopy, numerical health guards, and
checkpoint/restart (:mod:`repro.resilience`) — and a static model
verifier that lints rates, schedules, MNA structure, and DE/TDF
synchronization before any simulation runs (:mod:`repro.verify`).
"""

__version__ = "1.0.0"
