"""`repro.adsl` — the Figure 1 ADSL SLIC/codec virtual prototype.

The paper's motivating mixed-signal system, assembled from every layer
of the framework, plus the frequency-domain views of its starred blocks.
"""

from .system import (
    REG_HOOK_STATUS,
    REG_LINE_LEVEL,
    REG_RX_GAIN_DB,
    REG_TX_ENABLE,
    AdslConfig,
    AdslSystem,
    build_antialias_filter,
    build_line_network,
    build_smoothing_filter,
    default_software_program,
)
from .views import (
    antialias_transfer,
    end_to_end_analog_transfer,
    line_output_noise,
    line_transfer,
    smoothing_transfer,
)

__all__ = [
    "AdslConfig", "AdslSystem", "REG_HOOK_STATUS", "REG_LINE_LEVEL",
    "REG_RX_GAIN_DB", "REG_TX_ENABLE", "antialias_transfer",
    "build_antialias_filter", "build_line_network",
    "build_smoothing_filter", "default_software_program",
    "end_to_end_analog_transfer", "line_output_noise", "line_transfer",
    "smoothing_transfer",
]
