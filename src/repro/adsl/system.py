"""The Figure 1 system: ADSL subscriber line interface and codec filter.

The paper's motivating example, modeled exactly as Section 2 prescribes:

* **system environment** (subscriber + subscriber line + protection
  network) — a linear electrical network (`repro.eln` inside an
  :class:`~repro.sync.ElnTdfModule`);
* **high-voltage driver, analog filters** — signal-flow blocks
  (`repro.lib` saturating amplifier, `repro.lsf` continuous filters);
* **converters** (Σ∆ pofi / Σ∆ prefi) — oversampled ΣΔ modulators and a
  CIC decimator;
* **digital filters + DSP block** — dataflow (TDF FIR + level meter);
* **control software** — an event-driven bus-functional model
  (`repro.de`) driving a register file whose mirrors control the AMS
  hardware (receive gain), and polling the hook-detector status;
* **digital interface** — RTL register file on the synchronous bus.

Starred blocks of the figure carry frequency-domain views; these are
produced by :mod:`repro.adsl.views` from the same time-domain equations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.clock import Clock
from ..core.module import Module
from ..core.time import SimTime
from ..de.bus import Bus, BusMaster, RegisterFile
from ..eln.components import Capacitor, Inductor, Probe, Resistor, Vsource
from ..eln.network import Network
from ..lib.blocks import Comparator, SaturatingAmp, TdfSink, Vga
from ..lib.filters import FirFilter, fir_lowpass
from ..lib.sigma_delta import CicDecimator, SigmaDelta2
from ..lib.sources import SineSource
from ..lsf.blocks import LsfLtfNd, LsfSource
from ..lsf.network import LsfNetwork
from ..sync.ct_modules import ElnTdfModule, LsfTdfModule
from ..tdf.module import TdfDeIn, TdfModule
from ..tdf.signal import TdfIn, TdfOut, TdfSignal

#: Register map of the codec's software-visible interface.
REG_TX_ENABLE = 0
REG_RX_GAIN_DB = 1
REG_HOOK_STATUS = 2
REG_LINE_LEVEL = 3


@dataclass
class AdslConfig:
    """Parameters of the ADSL SLIC/codec virtual prototype."""

    #: oversampled (modulator) rate timestep.
    base_timestep: SimTime = field(default_factory=lambda: SimTime(1, "us"))
    #: test-tone frequency produced by the DSP (voice-band).
    tone_frequency: float = 3906.25  # coherent with 1 MHz / 256
    tone_amplitude: float = 0.5
    #: line-driver voltage gain and supply rail (the "high voltage").
    driver_gain: float = 8.0
    driver_rail: float = 12.0
    #: subscriber line: two RLC ladder segments + termination.
    line_series_r: float = 50.0
    line_series_l: float = 0.7e-3
    line_shunt_c: float = 15e-9
    subscriber_r: float = 600.0
    #: protection network series resistance.
    protection_r: float = 20.0
    #: CIC decimation factor (prefi output rate = base rate / factor).
    decimation: int = 32
    #: RX anti-alias corner [Hz].
    antialias_corner: float = 30e3
    #: software-programmed receive gain [dB] (negative: the subscriber
    #: voltage is several volts; the Σ∆ prefi needs |x| < 1).
    rx_gain_db: float = -18.0
    #: off-hook loop-current threshold [A].
    hook_threshold: float = 4e-3
    #: far-end (subscriber-side) upstream tone injected onto the line;
    #: zero amplitude disables the duplex scenario.
    far_end_frequency: float = 1953.125  # 31.25 kHz / 16
    far_end_amplitude: float = 0.0
    #: enable the DSP's LMS echo canceller (duplex operation: removes
    #: the near-end TX echo from the received stream).
    echo_cancellation: bool = False
    echo_taps: int = 24
    echo_mu: float = 0.25


class DspToneGenerator(TdfModule):
    """The DSP block's transmit side: synthesizes the test tone,
    gated by the software TX-enable register (a DE converter input)."""

    def __init__(self, name: str, config: AdslConfig,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self.enable = TdfDeIn("enable", initial_value=0)
        self.config = config

    def set_attributes(self):
        self.set_timestep(self.config.base_timestep)

    def processing(self):
        if self.enable.read():
            t = self.local_time.to_seconds()
            value = self.config.tone_amplitude * np.sin(
                2 * np.pi * self.config.tone_frequency * t
            )
        else:
            value = 0.0
        self.out.write(value)


class LevelMeter(TdfModule):
    """The DSP block's receive side: exponential RMS level estimate,
    reported to software through the register file (backdoor poke)."""

    #: the register poke is DE-visible state outside any converter
    #: port — running periods ahead of kernel time would let software
    #: observe future levels.
    batch_unsafe = True

    def __init__(self, name: str, registers: RegisterFile,
                 parent: Optional[Module] = None,
                 smoothing: float = 0.01):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.registers = registers
        self.smoothing = smoothing
        self._mean_square = 0.0
        self.samples: list[float] = []

    def processing(self):
        value = self.inp.read()
        self.samples.append(value)
        self._mean_square += self.smoothing * (
            value * value - self._mean_square
        )
        # Report in milli-units so the integer register is meaningful.
        self.registers.poke(
            REG_LINE_LEVEL, int(1000 * np.sqrt(self._mean_square))
        )

    @property
    def rms(self) -> float:
        return float(np.sqrt(self._mean_square))


def build_line_network(config: AdslConfig) -> Network:
    """Protection network + 2-segment subscriber-line ladder +
    subscriber termination, with a loop-current probe for the hook
    detector.  This is the "linear networks (results in linear DAE's)"
    part of Figure 1.  The subscriber termination carries a series EMF
    (``Vfar``) so a far-end upstream signal can be injected for duplex
    scenarios."""
    net = Network("subscriber_line")
    net.add(Vsource("Vdrv", "drv", "0"))
    net.add(Resistor("Rprot", "drv", "line0", config.protection_r))
    previous = "line0"
    for segment in range(2):
        node = f"line{segment + 1}"
        net.add(Resistor(f"Rl{segment}", previous, f"{node}_m",
                         config.line_series_r))
        net.add(Inductor(f"Ll{segment}", f"{node}_m", node,
                         config.line_series_l))
        net.add(Capacitor(f"Cl{segment}", node, "0",
                          config.line_shunt_c))
        previous = node
    net.add(Probe("Ploop", previous, "sub"))
    net.add(Resistor("Rsub", "sub", "sub_emf", config.subscriber_r))
    net.add(Vsource("Vfar", "sub_emf", "0", 0.0))
    return net


def build_smoothing_filter(config: AdslConfig) -> tuple[LsfNetwork, object, object]:
    """TX smoothing filter: 2nd-order lowpass at ~2x voice band,
    realized as a Laplace transfer function (signal flow)."""
    lsf = LsfNetwork("smoothing")
    u = lsf.signal("u")
    y = lsf.signal("y")
    w0 = 2 * np.pi * 12e3
    lsf.add(LsfSource("src", u))
    lsf.add(LsfLtfNd("lp", u, y,
                     num=[w0 * w0],
                     den=[w0 * w0, 2 * 0.707 * w0, 1.0]))
    return lsf, u, y


def build_antialias_filter(config: AdslConfig) -> tuple[LsfNetwork, object, object]:
    """RX anti-alias filter ahead of the Σ∆ prefi."""
    lsf = LsfNetwork("antialias")
    u = lsf.signal("u")
    y = lsf.signal("y")
    w0 = 2 * np.pi * config.antialias_corner
    lsf.add(LsfSource("src", u))
    lsf.add(LsfLtfNd("lp", u, y,
                     num=[w0 * w0],
                     den=[w0 * w0, 2 * 0.707 * w0, 1.0]))
    return lsf, u, y


class AdslSystem(Module):
    """The complete Figure 1 virtual prototype."""

    def __init__(self, config: Optional[AdslConfig] = None,
                 software_program=None):
        super().__init__("adsl")
        self.config = config or AdslConfig()
        cfg = self.config
        step = cfg.base_timestep

        # ---- digital interface: clock, bus, register file ----------------
        self.clk = Clock("clk", period=SimTime(100, "ns"), parent=self)
        self.bus = Bus("bus")
        self.cpu = BusMaster("cpu", self.bus, self.clk, parent=self)
        self.registers = RegisterFile("regs", self.bus, self.clk,
                                      size=8, parent=self)
        tx_enable_sig = self.registers.mirror(REG_TX_ENABLE, initial=0)
        rx_gain_sig = self.registers.mirror(
            REG_RX_GAIN_DB, initial=int(cfg.rx_gain_db)
        )

        # ---- TX path: DSP tone -> sigma-delta pofi -> smoothing ->
        #      high-voltage driver ------------------------------------------
        self.dsp_tx = DspToneGenerator("dsp_tx", cfg, parent=self)
        self.dsp_tx.enable(tx_enable_sig)
        self.sd_pofi = SigmaDelta2("sd_pofi", parent=self)
        lsf_tx, tx_in, tx_out = build_smoothing_filter(cfg)
        self.smoothing = LsfTdfModule("smoothing", lsf_tx, parent=self,
                                      oversample=2)
        self.driver = SaturatingAmp("driver", gain=cfg.driver_gain,
                                    limit=cfg.driver_rail, parent=self)

        s_tone = TdfSignal("s_tone")
        s_bits = TdfSignal("s_bits")
        s_smooth = TdfSignal("s_smooth")
        s_drive = TdfSignal("s_drive")
        self.dsp_tx.out(s_tone)
        self.sd_pofi.inp(s_tone)
        self.sd_pofi.out(s_bits)
        self.smoothing.drive(tx_in)(s_bits)
        self.smoothing.sample(tx_out)(s_smooth)
        self.driver.inp(s_smooth)
        self.driver.out(s_drive)

        # ---- the line (conservative network) ------------------------------
        self.line = ElnTdfModule("line", build_line_network(cfg),
                                 parent=self, oversample=2)
        s_sub = TdfSignal("s_sub")       # subscriber voltage
        s_loop = TdfSignal("s_loop")     # loop current (hook detect)
        s_far = TdfSignal("s_far")       # far-end upstream EMF
        self.line.drive_voltage("Vdrv")(s_drive)
        self.line.sample_voltage("sub")(s_sub)
        self.line.sample_current("Ploop")(s_loop)
        self.far_end = SineSource("far_end",
                                  frequency=cfg.far_end_frequency,
                                  amplitude=cfg.far_end_amplitude,
                                  parent=self)
        self.far_end.out(s_far)
        self.line.drive_voltage("Vfar")(s_far)

        # ---- hook detection (mixed-signal -> DE) ---------------------------
        self.hook = Comparator("hook", threshold=cfg.hook_threshold,
                               hysteresis=cfg.hook_threshold * 0.2,
                               de_output=True, parent=self)
        s_hook = TdfSignal("s_hook")
        self.hook.inp(s_loop)
        self.hook.out(s_hook)
        self.hook_sink = TdfSink("hook_sink", parent=self)
        self.hook_sink.inp(s_hook)
        from ..core.signal import Signal as DeSignal

        self.hook_de = DeSignal("hook_de", initial=False)
        self.hook.de_out(self.hook_de)
        self.method(self._hook_status_update,
                    sensitivity=[self.hook_de], dont_initialize=True)

        # ---- RX path: VGA -> anti-alias -> sigma-delta prefi ->
        #      CIC decimator -> FIR -> DSP level meter -----------------------
        self.vga = Vga("vga", parent=self)
        s_gain = TdfSignal("s_gain")
        self._gain_bridge = _RegisterToTdf("gain_bridge", rx_gain_sig,
                                           parent=self)
        self._gain_bridge.out(s_gain)

        lsf_rx, rx_in, rx_out = build_antialias_filter(cfg)
        self.antialias = LsfTdfModule("antialias", lsf_rx, parent=self,
                                      oversample=2)
        self.sd_prefi = SigmaDelta2("sd_prefi", parent=self)
        self.cic = CicDecimator("cic", factor=cfg.decimation, order=3,
                                parent=self)
        decimated_rate = 1.0 / (step.to_seconds() * cfg.decimation)
        taps = fir_lowpass(63, cfg.tone_frequency * 1.6, decimated_rate)
        self.rx_fir = FirFilter("rx_fir", taps, parent=self)
        self.dsp_rx = LevelMeter("dsp_rx", self.registers, parent=self)

        s_vga = TdfSignal("s_vga")
        s_aa = TdfSignal("s_aa")
        s_adc = TdfSignal("s_adc")
        s_dec = TdfSignal("s_dec")
        s_rx = TdfSignal("s_rx")
        self.vga.inp(s_sub)
        self.vga.gain_db(s_gain)
        self.vga.out(s_vga)
        self.antialias.drive(rx_in)(s_vga)
        self.antialias.sample(rx_out)(s_aa)
        self.sd_prefi.inp(s_aa)
        self.sd_prefi.out(s_adc)
        self.cic.inp(s_adc)
        self.cic.out(s_dec)
        self.rx_fir.inp(s_dec)
        self.rx_fir.out(s_rx)

        if cfg.echo_cancellation:
            # Duplex operation: the DSP removes the near-end TX echo
            # from the received stream with an LMS canceller.  The
            # reference is the transmitted (smoothed) waveform brought
            # to the decimated rate.
            from ..lib.adaptive import LmsFilter
            from ..lib.sigma_delta import CicDecimator as _Cic

            self.echo_ref_dec = _Cic("echo_ref_dec",
                                     factor=cfg.decimation, order=2,
                                     parent=self)
            self.echo_canceller = LmsFilter(
                "echo_canceller", taps=cfg.echo_taps, mu=cfg.echo_mu,
                parent=self,
            )
            s_ref_dec = TdfSignal("s_ref_dec")
            s_clean = TdfSignal("s_clean")
            self.echo_ref_dec.inp(s_smooth)
            self.echo_ref_dec.out(s_ref_dec)
            self.echo_canceller.reference(s_ref_dec)
            self.echo_canceller.desired(s_rx)
            self.echo_canceller.out(s_clean)
            self.echo_est_sink = TdfSink("echo_est_sink", parent=self)
            s_est = TdfSignal("s_est")
            self.echo_canceller.estimate(s_est)
            self.echo_est_sink.inp(s_est)
            self.dsp_rx.inp(s_clean)
        else:
            self.dsp_rx.inp(s_rx)

        # ---- waveform taps for analysis ------------------------------------
        self.tap_drive = TdfSink("tap_drive", parent=self)
        self.tap_drive.inp(s_drive)
        self.tap_sub = TdfSink("tap_sub", parent=self)
        self.tap_sub.inp(s_sub)

        # ---- control software ----------------------------------------------
        program = software_program or default_software_program
        self.software_log: list = []
        self.thread(lambda: program(self), name="software")

    def _hook_status_update(self) -> None:
        self.registers.poke(REG_HOOK_STATUS,
                            int(bool(self.hook_de.read())))

    # -- measurement helpers ---------------------------------------------------

    @property
    def decimated_rate(self) -> float:
        return 1.0 / (self.config.base_timestep.to_seconds()
                      * self.config.decimation)

    def rx_output(self) -> np.ndarray:
        return np.asarray(self.dsp_rx.samples)

    def rx_snr_db(self, settle_fraction: float = 0.5) -> float:
        """SNDR of the received (near-end TX) tone at the DSP output."""
        return self._tone_sndr(self.config.tone_frequency,
                               settle_fraction)

    def far_end_snr_db(self, settle_fraction: float = 0.5) -> float:
        """SNDR of the far-end upstream tone at the DSP output.

        In duplex scenarios the near-end TX echo is the dominant
        impairment; the echo canceller's job is to maximize this.
        """
        return self._tone_sndr(self.config.far_end_frequency,
                               settle_fraction)

    def _tone_sndr(self, frequency: float,
                   settle_fraction: float) -> float:
        from ..analysis.spectrum import ToneAnalysis

        samples = self.rx_output()
        tail = samples[int(len(samples) * settle_fraction):]
        analysis = ToneAnalysis(tail, self.decimated_rate,
                                tone_frequency=frequency)
        return analysis.sndr_db


class _RegisterToTdf(TdfModule):
    """Bridges a register-mirror DE signal into the TDF world."""

    def __init__(self, name: str, de_signal, parent=None):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self.de_in = TdfDeIn("de_in")
        self.de_in(de_signal)

    def processing(self):
        self.out.write(float(self.de_in.read()))


def default_software_program(system: AdslSystem):
    """The control software: configure the codec, start transmission,
    poll the line level and hook status."""
    cpu = system.cpu
    yield from cpu.idle(4)
    yield from cpu.write(REG_RX_GAIN_DB,
                         int(system.config.rx_gain_db))
    yield from cpu.write(REG_TX_ENABLE, 1)
    system.software_log.append(("tx_enabled", None))
    while True:
        yield from cpu.idle(2000)
        level = yield from cpu.read(REG_LINE_LEVEL)
        hook = yield from cpu.read(REG_HOOK_STATUS)
        system.software_log.append(("poll", (level, hook)))
