"""Frequency-domain views of the Figure 1 starred blocks.

The paper marks most analog blocks of the ADSL example with "*": modules
with frequency-domain behaviour, used to "estimate important system
performances such as signal-to-noise ratio".  These helpers derive the
frequency responses *from the same time-domain equations* the transient
simulation uses (the paper: "this should not require additional language
element").
"""

from __future__ import annotations

import numpy as np

from ..ct.noise import output_noise_psd
from .system import (
    AdslConfig,
    build_antialias_filter,
    build_line_network,
    build_smoothing_filter,
)


def line_transfer(config: AdslConfig,
                  frequencies: np.ndarray) -> np.ndarray:
    """Driver-to-subscriber voltage transfer of the line network."""
    network = build_line_network(config)
    dae, index = network.assemble()
    b_ac = np.zeros(index.size)
    b_ac[index.current_index["Vdrv"]] = 1.0
    phasors = dae.ac(frequencies, b_ac=b_ac)
    return phasors[:, index.node_index["sub"]]


def line_output_noise(config: AdslConfig,
                      frequencies: np.ndarray) -> np.ndarray:
    """Thermal-noise PSD at the subscriber node [V^2/Hz]."""
    network = build_line_network(config)
    dae, index = network.assemble()
    sources = []
    for component in network.components:
        sources.extend(component.noise_sources(index.stamper))
    d = index.selection_vector("sub")
    return output_noise_psd(dae.C, dae.G, sources, d, frequencies)


def smoothing_transfer(config: AdslConfig,
                       frequencies: np.ndarray) -> np.ndarray:
    """TX smoothing-filter response."""
    lsf, _u, y = build_smoothing_filter(config)
    dae, index = lsf.assemble()
    b_ac = np.zeros(index.size)
    # The source block's row drives signal u; excite it with unity.
    b_ac[0] = 1.0
    phasors = dae.ac(frequencies, b_ac=b_ac)
    return phasors[:, index.signal_index(y)]


def antialias_transfer(config: AdslConfig,
                       frequencies: np.ndarray) -> np.ndarray:
    """RX anti-alias filter response."""
    lsf, _u, y = build_antialias_filter(config)
    dae, index = lsf.assemble()
    b_ac = np.zeros(index.size)
    b_ac[0] = 1.0
    phasors = dae.ac(frequencies, b_ac=b_ac)
    return phasors[:, index.signal_index(y)]


def end_to_end_analog_transfer(config: AdslConfig,
                               frequencies: np.ndarray) -> np.ndarray:
    """Composite smoothing * driver-gain * line * anti-alias response
    (the linear part of the TX->RX signal path)."""
    return (smoothing_transfer(config, frequencies)
            * config.driver_gain
            * line_transfer(config, frequencies)
            * antialias_transfer(config, frequencies))
