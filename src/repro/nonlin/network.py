"""Nonlinear conservative-law networks.

A :class:`NonlinearNetwork` extends the linear ELN network with
nonlinear devices.  Assembly produces an
:class:`~repro.ct.nonlinear.NonlinearSystem` in charge form:

    d/dt [C0 x + q_nl(x)] + G0 x + i_nl(x) - b(t) = 0

where ``C0``/``G0``/``b`` come from the linear MNA stamps and the
``_nl`` terms from the devices.  The resulting system plugs directly
into DC (with gmin homotopy), variable-step transient, AC linearization
at the operating point, and the TDF synchronization layer — the paper's
Phase 2 ("support of non linear DAEs and their simulation using variable
time steps").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import ElaborationError
from ..ct.nonlinear import NonlinearSystem
from ..eln.network import GROUND, Network, NetworkIndex
from .devices import NonlinearDevice


class MnaNonlinearSystem(NonlinearSystem):
    """Charge-form nonlinear DAE assembled from MNA matrices + devices."""

    def __init__(self, C0: np.ndarray, G0: np.ndarray, source,
                 devices: list[NonlinearDevice]):
        super().__init__(C0.shape[0])
        self.C0 = C0
        self.G0 = G0
        self.source = source
        self.devices = devices
        #: source-stepping homotopy knob: scales the independent-source
        #: vector ``b(t)`` (see :func:`repro.resilience.homotopy.
        #: source_stepping`).  1.0 is the real circuit.
        self.source_scale = 1.0

    def charge(self, x):
        q = self.C0 @ x
        for device in self.devices:
            device.add_charge(x, q)
        return q

    def charge_jacobian(self, x):
        c = self.C0.copy()
        for device in self.devices:
            device.add_charge_jacobian(x, c)
        return c

    def static(self, x, t):
        f = self.G0 @ x \
            - self.source_scale * np.asarray(self.source(t), dtype=float)
        for device in self.devices:
            device.add_static(x, t, f)
        return f

    def static_jacobian(self, x, t):
        jac = self.G0.copy()
        for device in self.devices:
            device.add_static_jacobian(x, t, jac)
        return jac


class NonlinearNetwork(Network):
    """An electrical network with both linear components and nonlinear
    devices.

    Linear primitives (R, L, C, sources, controlled sources, ...) are
    added with :meth:`add`; nonlinear devices with :meth:`add_device`.
    A device-only node still creates an unknown.
    """

    def __init__(self, name: str = "nonlinear_network"):
        super().__init__(name)
        self.devices: list[NonlinearDevice] = []

    def add_device(self, device: NonlinearDevice) -> NonlinearDevice:
        if device.name in self._names:
            raise ElaborationError(
                f"duplicate component name {device.name!r} in network "
                f"{self.name!r}"
            )
        self._names.add(device.name)
        self.devices.append(device)
        return device

    def node_names(self) -> list[str]:
        seen = super().node_names()
        for device in self.devices:
            for node in device.nodes:
                if node != GROUND and node not in seen:
                    seen.append(node)
        return seen

    def assemble_nonlinear(self) -> tuple[MnaNonlinearSystem, NetworkIndex]:
        """Build the charge-form nonlinear DAE plus the name index."""
        if not self.components and not self.devices:
            raise ElaborationError(f"network {self.name!r} is empty")
        if not self.components:
            raise ElaborationError(
                f"network {self.name!r} needs at least one linear "
                "component (typically a source) to anchor the MNA system"
            )
        dae, index = self.assemble()

        def node_of(name: str) -> int:
            if name == GROUND:
                return -1
            return index.node_index[name]

        for device in self.devices:
            device.resolve(node_of)
        system = MnaNonlinearSystem(dae.C, dae.G, dae.source, self.devices)
        return system, index
