"""`repro.nonlin` — nonlinear conservative-law networks (Phase 2).

Nonlinear devices (diode, square-law MOSFET, arbitrary I-V / Q-V
elements) stamped on top of the linear MNA skeleton, producing
charge-form nonlinear DAEs for DC, variable-step transient, and
small-signal analyses.
"""

from .devices import (
    Diode,
    NMos,
    NonlinearCapacitor,
    NonlinearConductor,
    NonlinearDevice,
)
from .network import MnaNonlinearSystem, NonlinearNetwork

__all__ = [
    "Diode", "MnaNonlinearSystem", "NMos", "NonlinearCapacitor",
    "NonlinearConductor", "NonlinearDevice", "NonlinearNetwork",
]
