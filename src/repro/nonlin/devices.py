"""Nonlinear circuit devices.

Each device contributes currents (and charges) plus their derivatives to
the MNA equations of a :class:`~repro.nonlin.network.NonlinearNetwork`.
Node indices are resolved once at assembly; evaluation then works on the
raw unknown vector for speed.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.errors import ElaborationError
from ..ct.nonlinear import dlimexp, limexp


class NonlinearDevice:
    """Base class: declares nodes, contributes stamps at evaluation."""

    def __init__(self, name: str, nodes: Sequence[str]):
        self.name = name
        self.nodes = [str(n) for n in nodes]
        #: resolved unknown indices (-1 = ground), set at assembly.
        self.index: list[int] = []

    def resolve(self, node_of: Callable[[str], int]) -> None:
        self.index = [node_of(n) for n in self.nodes]

    def add_static(self, x: np.ndarray, t: float, f: np.ndarray) -> None:
        """Add this device's currents into the residual vector."""
        raise NotImplementedError

    def add_static_jacobian(self, x: np.ndarray, t: float,
                            jac: np.ndarray) -> None:
        raise NotImplementedError

    def add_charge(self, x: np.ndarray, q: np.ndarray) -> None:
        """Add this device's charges (default: none)."""

    def add_charge_jacobian(self, x: np.ndarray, c: np.ndarray) -> None:
        pass

    # -- helpers -------------------------------------------------------------

    def _v(self, x: np.ndarray, k: int) -> float:
        idx = self.index[k]
        return 0.0 if idx < 0 else float(x[idx])

    def _kcl(self, vec: np.ndarray, k: int, value: float) -> None:
        idx = self.index[k]
        if idx >= 0:
            vec[idx] += value

    def _jac(self, jac: np.ndarray, row_k: int, col_k: int,
             value: float) -> None:
        row, col = self.index[row_k], self.index[col_k]
        if row >= 0 and col >= 0:
            jac[row, col] += value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, {self.nodes})"


class Diode(NonlinearDevice):
    """Shockley diode with junction capacitance.

    ``i = Is * (limexp(v / (n*Vt)) - 1)`` from anode to cathode, plus an
    optional diffusion-style charge ``q = tau * i`` (transit time) and a
    constant junction capacitance.
    """

    def __init__(self, name: str, anode: str, cathode: str,
                 i_sat: float = 1e-14, emission: float = 1.0,
                 vt: float = 0.02585, transit_time: float = 0.0,
                 junction_cap: float = 0.0):
        super().__init__(name, [anode, cathode])
        if i_sat <= 0:
            raise ElaborationError(f"diode {name!r}: i_sat must be positive")
        self.i_sat = i_sat
        self.n_vt = emission * vt
        self.transit_time = transit_time
        self.junction_cap = junction_cap

    def _current(self, v: float) -> float:
        return self.i_sat * (limexp(v / self.n_vt) - 1.0)

    def _conductance(self, v: float) -> float:
        return self.i_sat * dlimexp(v / self.n_vt) / self.n_vt

    def add_static(self, x, t, f):
        v = self._v(x, 0) - self._v(x, 1)
        i = self._current(v)
        self._kcl(f, 0, i)
        self._kcl(f, 1, -i)

    def add_static_jacobian(self, x, t, jac):
        v = self._v(x, 0) - self._v(x, 1)
        g = self._conductance(v)
        self._jac(jac, 0, 0, g)
        self._jac(jac, 0, 1, -g)
        self._jac(jac, 1, 0, -g)
        self._jac(jac, 1, 1, g)

    def add_charge(self, x, q):
        v = self._v(x, 0) - self._v(x, 1)
        charge = self.junction_cap * v + \
            self.transit_time * self._current(v)
        if charge:
            self._kcl(q, 0, charge)
            self._kcl(q, 1, -charge)

    def add_charge_jacobian(self, x, c):
        v = self._v(x, 0) - self._v(x, 1)
        cap = self.junction_cap + self.transit_time * self._conductance(v)
        if cap:
            self._jac(c, 0, 0, cap)
            self._jac(c, 0, 1, -cap)
            self._jac(c, 1, 0, -cap)
            self._jac(c, 1, 1, cap)


class NMos(NonlinearDevice):
    """Square-law (level-1) N-channel MOSFET.

    Nodes ``(drain, gate, source)``; bulk tied to source.  The drain
    current includes channel-length modulation and is symmetrized for
    reverse operation (drain/source swap when v_ds < 0).
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 k_prime: float = 2e-3, vth: float = 0.7,
                 lam: float = 0.0):
        super().__init__(name, [drain, gate, source])
        if k_prime <= 0:
            raise ElaborationError(f"NMOS {name!r}: k' must be positive")
        self.k = k_prime
        self.vth = vth
        self.lam = lam

    def _ids_and_derivs(self, vgs: float, vds: float):
        """Returns (ids, gm, gds) for vds >= 0."""
        vov = vgs - self.vth
        if vov <= 0.0:
            return 0.0, 0.0, 0.0
        clm = 1.0 + self.lam * vds
        if vds < vov:  # triode
            ids = self.k * (vov * vds - 0.5 * vds * vds) * clm
            gm = self.k * vds * clm
            gds = self.k * (vov - vds) * clm \
                + self.k * (vov * vds - 0.5 * vds * vds) * self.lam
        else:  # saturation
            ids = 0.5 * self.k * vov * vov * clm
            gm = self.k * vov * clm
            gds = 0.5 * self.k * vov * vov * self.lam
        return ids, gm, gds

    def add_static(self, x, t, f):
        vd, vg, vs = (self._v(x, k) for k in range(3))
        if vd >= vs:
            ids, _gm, _gds = self._ids_and_derivs(vg - vs, vd - vs)
        else:
            ids_r, _gm, _gds = self._ids_and_derivs(vg - vd, vs - vd)
            ids = -ids_r
        self._kcl(f, 0, ids)
        self._kcl(f, 2, -ids)

    def add_static_jacobian(self, x, t, jac):
        vd, vg, vs = (self._v(x, k) for k in range(3))
        if vd >= vs:
            _ids, gm, gds = self._ids_and_derivs(vg - vs, vd - vs)
            # ids = f(vgs, vds): d/dvg = gm, d/dvd = gds,
            # d/dvs = -(gm + gds).
            self._jac(jac, 0, 1, gm)
            self._jac(jac, 0, 0, gds)
            self._jac(jac, 0, 2, -(gm + gds))
            self._jac(jac, 2, 1, -gm)
            self._jac(jac, 2, 0, -gds)
            self._jac(jac, 2, 2, gm + gds)
        else:
            # Reverse mode: roles of drain and source swap.
            _ids, gm, gds = self._ids_and_derivs(vg - vd, vs - vd)
            self._jac(jac, 0, 1, -gm)
            self._jac(jac, 0, 2, -gds)
            self._jac(jac, 0, 0, gm + gds)
            self._jac(jac, 2, 1, gm)
            self._jac(jac, 2, 2, gds)
            self._jac(jac, 2, 0, -(gm + gds))


class NonlinearConductor(NonlinearDevice):
    """Arbitrary two-terminal I-V element: user supplies ``i(v)`` and
    optionally ``g(v) = di/dv`` (finite differences otherwise)."""

    def __init__(self, name: str, a: str, b: str,
                 current: Callable[[float], float],
                 conductance: Optional[Callable[[float], float]] = None):
        super().__init__(name, [a, b])
        self.current = current
        self.conductance = conductance

    def _g(self, v: float) -> float:
        if self.conductance is not None:
            return self.conductance(v)
        eps = 1e-7 * max(1.0, abs(v))
        return (self.current(v + eps) - self.current(v - eps)) / (2 * eps)

    def add_static(self, x, t, f):
        v = self._v(x, 0) - self._v(x, 1)
        i = self.current(v)
        self._kcl(f, 0, i)
        self._kcl(f, 1, -i)

    def add_static_jacobian(self, x, t, jac):
        v = self._v(x, 0) - self._v(x, 1)
        g = self._g(v)
        self._jac(jac, 0, 0, g)
        self._jac(jac, 0, 1, -g)
        self._jac(jac, 1, 0, -g)
        self._jac(jac, 1, 1, g)


class NonlinearCapacitor(NonlinearDevice):
    """Arbitrary two-terminal charge element: ``q(v)`` with optional
    ``c(v) = dq/dv``."""

    def __init__(self, name: str, a: str, b: str,
                 charge: Callable[[float], float],
                 capacitance: Optional[Callable[[float], float]] = None):
        super().__init__(name, [a, b])
        self.charge = charge
        self.capacitance = capacitance

    def _c(self, v: float) -> float:
        if self.capacitance is not None:
            return self.capacitance(v)
        eps = 1e-7 * max(1.0, abs(v))
        return (self.charge(v + eps) - self.charge(v - eps)) / (2 * eps)

    def add_static(self, x, t, f):
        pass

    def add_static_jacobian(self, x, t, jac):
        pass

    def add_charge(self, x, q):
        v = self._v(x, 0) - self._v(x, 1)
        charge = self.charge(v)
        self._kcl(q, 0, charge)
        self._kcl(q, 1, -charge)

    def add_charge_jacobian(self, x, c):
        v = self._v(x, 0) - self._v(x, 1)
        cap = self._c(v)
        self._jac(c, 0, 0, cap)
        self._jac(c, 0, 1, -cap)
        self._jac(c, 1, 0, -cap)
        self._jac(c, 1, 1, cap)
