"""Analog-to-digital converter models.

Includes the pipelined ADC with *digital noise cancellation* that
Bonnerud et al. (seed work [2]) built their SystemC mixed-signal
framework around: 1.5-bit stages with gain error, comparator offset and
thermal noise, reconstructed either with nominal radix-2 weights or with
the calibrated (actual) inter-stage gains.  The digital correction
recovers the resolution lost to analog gain errors — the claim
benchmarked in experiment E4.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.module import Module
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut
from .seeding import SeedLike, as_generator


def quantize_midrise(value: float, bits: int, full_scale: float = 1.0) -> float:
    """Ideal mid-rise quantizer over ``[-full_scale, +full_scale]``."""
    levels = 2 ** bits
    step = 2.0 * full_scale / levels
    clipped = np.clip(value, -full_scale, full_scale - step / 2)
    return (np.floor(clipped / step) + 0.5) * step


def quantize_code(value: float, bits: int, full_scale: float = 1.0) -> int:
    """Ideal ADC: returns the integer code in ``[0, 2**bits - 1]``."""
    levels = 2 ** bits
    step = 2.0 * full_scale / levels
    code = int(np.floor((value + full_scale) / step))
    return int(np.clip(code, 0, levels - 1))


class IdealAdc(TdfModule):
    """Ideal N-bit quantizer (TDF in, quantized analog value out)."""

    def __init__(self, name: str, bits: int, full_scale: float = 1.0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.bits = bits
        self.full_scale = full_scale

    def processing(self):
        self.out.write(
            float(quantize_midrise(self.inp.read(), self.bits,
                                   self.full_scale))
        )

    def processing_block(self, n):
        # quantize_midrise is pure numpy ufuncs — it vectorizes as-is.
        self.out.write_block(
            quantize_midrise(self.inp.read_block(n), self.bits,
                             self.full_scale)
        )


class FlashAdc(TdfModule):
    """Flash ADC: ``2**bits - 1`` comparators with individual offsets.

    Comparator offsets model the dominant flash non-ideality; bubble
    errors are suppressed by counting ones in the thermometer code.
    Output is the quantized analog value.
    """

    def __init__(self, name: str, bits: int, full_scale: float = 1.0,
                 offset_rms: float = 0.0, seed: SeedLike = 0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.bits = bits
        self.full_scale = full_scale
        levels = 2 ** bits
        self.step = 2.0 * full_scale / levels
        rng = as_generator(seed)
        nominal = (-full_scale
                   + self.step * np.arange(1, levels))
        offsets = rng.normal(0.0, offset_rms, levels - 1) \
            if offset_rms > 0 else np.zeros(levels - 1)
        self.thresholds = nominal + offsets

    def processing(self):
        value = self.inp.read()
        code = int(np.sum(value > self.thresholds))
        self.out.write(-self.full_scale + (code + 0.5) * self.step)

    def processing_block(self, n):
        x = self.inp.read_block(n)
        codes = np.sum(x[:, None] > self.thresholds[None, :], axis=1)
        self.out.write_block(-self.full_scale + (codes + 0.5) * self.step)


class PipelineStage:
    """One 1.5-bit pipelined-ADC stage (MDAC).

    Residue transfer: ``v_out = G * v_in - d * Vref`` with sub-ADC
    decision ``d in {-1, 0, +1}`` at thresholds ``+/- Vref/4`` (plus
    comparator offsets).  The nominal gain is 2; ``gain_error`` is the
    relative deviation (the imperfection digital calibration removes).
    """

    def __init__(self, gain_error: float = 0.0,
                 comparator_offset: float = 0.0,
                 noise_rms: float = 0.0,
                 vref: float = 1.0):
        self.gain = 2.0 * (1.0 + gain_error)
        self.comparator_offset = comparator_offset
        self.noise_rms = noise_rms
        self.vref = vref

    def decide(self, v: float) -> int:
        quarter = self.vref / 4.0
        if v > quarter + self.comparator_offset:
            return 1
        if v < -quarter + self.comparator_offset:
            return -1
        return 0

    def residue(self, v: float, d: int, rng: np.random.Generator) -> float:
        out = self.gain * v - d * self.vref
        if self.noise_rms > 0.0:
            out += rng.normal(0.0, self.noise_rms)
        return out


class PipelinedAdc:
    """A pipelined ADC: N 1.5-bit stages plus a backend flash.

    ``convert`` produces the per-stage decisions and backend code;
    ``reconstruct`` folds them back into an analog estimate using either
    the nominal radix-2 gains (``calibrated=False``) or the actual stage
    gains (``calibrated=True`` — the digital noise cancellation of
    Bonnerud [2]).
    """

    def __init__(
        self,
        n_stages: int = 8,
        backend_bits: int = 3,
        gain_errors: Optional[Sequence[float]] = None,
        comparator_offsets: Optional[Sequence[float]] = None,
        noise_rms: float = 0.0,
        vref: float = 1.0,
        seed: SeedLike = 0,
    ):
        if gain_errors is None:
            gain_errors = [0.0] * n_stages
        if comparator_offsets is None:
            comparator_offsets = [0.0] * n_stages
        if len(gain_errors) != n_stages or \
                len(comparator_offsets) != n_stages:
            raise ValueError("per-stage parameter length mismatch")
        self.stages = [
            PipelineStage(ge, co, noise_rms, vref)
            for ge, co in zip(gain_errors, comparator_offsets)
        ]
        self.backend_bits = backend_bits
        self.vref = vref
        self._rng = as_generator(seed)

    @property
    def nominal_bits(self) -> int:
        return len(self.stages) + self.backend_bits

    def convert(self, v: float) -> tuple[list[int], float]:
        """Run the analog pipeline: (stage decisions, backend estimate)."""
        residue = v
        decisions = []
        for stage in self.stages:
            d = stage.decide(residue)
            decisions.append(d)
            residue = stage.residue(residue, d, self._rng)
        backend = float(quantize_midrise(
            np.clip(residue, -self.vref, self.vref),
            self.backend_bits, self.vref,
        ))
        return decisions, backend

    def reconstruct(self, decisions: Sequence[int], backend: float,
                    calibrated: bool) -> float:
        """Digital reconstruction: fold the residue chain back.

        ``v_i = (v_{i+1} + d_i * Vref) / G_i`` — with the true gains the
        analog gain error cancels digitally; with the nominal gain of 2
        it aliases into conversion error.
        """
        estimate = backend
        for stage, d in zip(reversed(self.stages), reversed(list(decisions))):
            gain = stage.gain if calibrated else 2.0
            estimate = (estimate + d * self.vref) / gain
        return float(estimate)

    def sample(self, v: float, calibrated: bool = True) -> float:
        decisions, backend = self.convert(v)
        return self.reconstruct(decisions, backend, calibrated)

    def convert_block(self, samples: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`convert` over a sample batch.

        Returns ``(decisions, backend)`` with ``decisions`` of shape
        ``(n_stages, len(samples))``.  Bit-identical to per-sample
        :meth:`convert` calls: the per-stage arithmetic is the same
        elementwise, and the noise draws come from one C-ordered
        ``(n, n_stages)`` normal batch — the exact generator-stream
        positions the sample-major scalar loop would consume.
        """
        residue = np.array(samples, dtype=float)
        m = len(residue)
        n_stages = len(self.stages)
        decisions = np.empty((n_stages, m), dtype=np.int64)
        # Scalar conversion draws sample-major over the *noisy* stages
        # only; a C-ordered (samples, noisy-stages) batch consumes the
        # identical generator-stream positions.
        noisy = [si for si, stage in enumerate(self.stages)
                 if stage.noise_rms > 0.0]
        noise = (self._rng.normal(0.0, 1.0, (m, len(noisy)))
                 if noisy else None)
        column = {si: c for c, si in enumerate(noisy)}
        for si, stage in enumerate(self.stages):
            quarter = stage.vref / 4.0
            d = np.where(
                residue > quarter + stage.comparator_offset, 1,
                np.where(residue < -quarter + stage.comparator_offset,
                         -1, 0),
            )
            decisions[si] = d
            residue = stage.gain * residue - d * stage.vref
            if stage.noise_rms > 0.0:
                residue = residue + stage.noise_rms * noise[:, column[si]]
        backend = quantize_midrise(
            np.clip(residue, -self.vref, self.vref),
            self.backend_bits, self.vref,
        )
        return decisions, backend

    def reconstruct_block(self, decisions: np.ndarray,
                          backend: np.ndarray,
                          calibrated: bool) -> np.ndarray:
        """Vectorized :meth:`reconstruct` over a converted batch."""
        estimate = np.array(backend, dtype=float)
        for si in range(len(self.stages) - 1, -1, -1):
            gain = self.stages[si].gain if calibrated else 2.0
            estimate = (estimate + decisions[si] * self.vref) / gain
        return estimate

    def convert_array(self, samples: np.ndarray,
                      calibrated: bool = True) -> np.ndarray:
        decisions, backend = self.convert_block(
            np.asarray(samples, dtype=float)
        )
        return self.reconstruct_block(decisions, backend, calibrated)


class PipelinedAdcModule(TdfModule):
    """TDF wrapper around :class:`PipelinedAdc`.

    Emits both reconstructions so a testbench can compare them in one
    run: ``out`` (calibrated) and ``out_raw`` (nominal radix-2).
    """

    def __init__(self, name: str, adc: PipelinedAdc,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.out_raw = TdfOut("out_raw")
        self.adc = adc

    def processing(self):
        decisions, backend = self.adc.convert(self.inp.read())
        self.out.write(self.adc.reconstruct(decisions, backend, True))
        self.out_raw.write(self.adc.reconstruct(decisions, backend, False))

    def processing_block(self, n):
        decisions, backend = self.adc.convert_block(self.inp.read_block(n))
        self.out.write_block(
            self.adc.reconstruct_block(decisions, backend, True)
        )
        self.out_raw.write_block(
            self.adc.reconstruct_block(decisions, backend, False)
        )

    def checkpoint_state(self):
        return {"rng": self.adc._rng.bit_generator.state}

    def restore_state(self, data):
        if data is not None:
            self.adc._rng.bit_generator.state = data["rng"]
