"""`repro.lib` — the mixed-signal module library.

Sources, amplifiers, mixers, comparators, sample-and-hold, data
converters (flash / pipelined-with-noise-cancellation ADCs, ΣΔ
modulators, DACs), and digital filters — the Phase 1/2 libraries of the
paper plus the functional blocks its seed work describes.
"""

from .adaptive import LmsFilter, lms_cancel
from .adc import (
    FlashAdc,
    IdealAdc,
    PipelineStage,
    PipelinedAdc,
    PipelinedAdcModule,
    quantize_code,
    quantize_midrise,
)
from .blocks import (
    Add2,
    Comparator,
    DeadbandBlock,
    LinearAmp,
    MapBlock,
    Mixer,
    QuadratureOscillator,
    SampleHold,
    SaturatingAmp,
    TdfSink,
    Vga,
)
from .dac import IdealDac, SwitchedCapDac
from .filters import (
    Biquad,
    FirFilter,
    IirFilter,
    butterworth_lowpass_sections,
    cascade_response,
    filter_samples,
    fir_bandpass,
    fir_frequency_response,
    fir_highpass,
    fir_lowpass,
)
from .goertzel import GoertzelDetector, goertzel_magnitude
from .pll import BehavioralPll
from .seeding import (
    SeedLike,
    as_generator,
    seed_to_int,
    spawn_rngs,
    spawn_seed_sequences,
)
from .sigma_delta import (
    CicDecimator,
    SigmaDelta1,
    SigmaDelta2,
    cic_decimate,
    sigma_delta1_bitstream,
    sigma_delta2_bitstream,
)
from .sources import (
    ConstSource,
    FunctionSource,
    GaussianNoiseSource,
    PrbsSource,
    PulseSource,
    RampSource,
    SampleListSource,
    SineSource,
    StepSource,
    TdfSourceBase,
)

__all__ = [
    "Add2", "BehavioralPll", "Biquad", "CicDecimator", "Comparator", "ConstSource",
    "DeadbandBlock", "FirFilter", "FlashAdc", "FunctionSource",
    "GaussianNoiseSource", "GoertzelDetector", "IdealAdc", "IdealDac", "IirFilter", "LmsFilter",
    "LinearAmp", "MapBlock", "Mixer", "PipelineStage", "PipelinedAdc",
    "PipelinedAdcModule", "PrbsSource", "PulseSource",
    "QuadratureOscillator", "RampSource", "SampleHold", "SampleListSource",
    "SaturatingAmp", "SeedLike", "SigmaDelta1", "SigmaDelta2", "SineSource",
    "StepSource", "SwitchedCapDac", "TdfSink", "TdfSourceBase", "Vga",
    "as_generator",
    "butterworth_lowpass_sections", "cascade_response", "cic_decimate",
    "filter_samples", "fir_bandpass", "fir_frequency_response", "lms_cancel",
    "fir_highpass", "fir_lowpass", "goertzel_magnitude", "quantize_code", "quantize_midrise",
    "seed_to_int", "sigma_delta1_bitstream", "sigma_delta2_bitstream",
    "spawn_rngs", "spawn_seed_sequences",
]
