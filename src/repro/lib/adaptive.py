"""Adaptive filtering: LMS, the workhorse of the ADSL line card's echo
cancellation (the hybrid leakage path of Figure 1's application).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.module import Module
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut


class LmsFilter(TdfModule):
    """Normalized-LMS adaptive FIR.

    Ports: ``reference`` (the signal whose echo is to be removed, e.g.
    the transmitted samples), ``desired`` (the observed signal =
    wanted + echo), ``out`` (the error = observed minus echo estimate —
    i.e. the cleaned signal), ``estimate`` (the echo estimate).

    Update: ``w += mu * e * x / (||x||^2 + eps)``.
    """

    def __init__(self, name: str, taps: int, mu: float = 0.5,
                 eps: float = 1e-9,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if taps < 1:
            raise ValueError("need at least one tap")
        if not 0.0 < mu <= 2.0:
            raise ValueError("NLMS step size must lie in (0, 2]")
        self.reference = TdfIn("reference")
        self.desired = TdfIn("desired")
        self.out = TdfOut("out")
        self.estimate = TdfOut("estimate")
        self.mu = mu
        self.eps = eps
        self.weights = np.zeros(taps)
        self._history = np.zeros(taps)

    def processing(self):
        self._history = np.roll(self._history, 1)
        self._history[0] = self.reference.read()
        estimate = float(self.weights @ self._history)
        error = self.desired.read() - estimate
        power = float(self._history @ self._history) + self.eps
        self.weights = self.weights + (
            self.mu * error / power
        ) * self._history
        self.out.write(error)
        self.estimate.write(estimate)

    def checkpoint_state(self):
        return {"weights": self.weights.tolist(),
                "history": self._history.tolist()}

    def restore_state(self, data):
        if data is not None:
            self.weights = np.asarray(data["weights"], dtype=float)
            self._history = np.asarray(data["history"], dtype=float)


def lms_cancel(reference: np.ndarray, desired: np.ndarray,
               taps: int, mu: float = 0.5,
               eps: float = 1e-9) -> tuple[np.ndarray, np.ndarray]:
    """Offline NLMS run over arrays: returns (error, final_weights)."""
    reference = np.asarray(reference, dtype=float)
    desired = np.asarray(desired, dtype=float)
    weights = np.zeros(taps)
    history = np.zeros(taps)
    error_out = np.empty(len(reference))
    for k in range(len(reference)):
        history = np.roll(history, 1)
        history[0] = reference[k]
        estimate = float(weights @ history)
        error = desired[k] - estimate
        power = float(history @ history) + eps
        weights = weights + (mu * error / power) * history
        error_out[k] = error
    return error_out, weights
