"""TDF signal sources for the mixed-signal library."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.module import Module
from ..core.time import SimTime
from ..tdf.module import TdfModule
from ..tdf.signal import TdfOut
from .seeding import SeedLike, as_generator


class TdfSourceBase(TdfModule):
    """Shared scaffolding: one output port, optional timestep setting."""

    def __init__(self, name: str, parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent)
        self.out = TdfOut("out", rate=rate)
        self._timestep = timestep

    def set_attributes(self):
        if self._timestep is not None:
            self.set_timestep(self._timestep)

    def _sample_time(self, k: int) -> float:
        """Time of sample ``k`` within the current activation."""
        step = self.timestep.to_seconds() / self.out.rate
        return self.local_time.to_seconds() + k * step

    def _block_times(self, n: int) -> np.ndarray:
        """All sample times of the next ``n`` activations (bit-identical
        to per-sample :meth:`_sample_time` evaluation)."""
        return self.sample_times(n, self.out.rate)


class SineSource(TdfSourceBase):
    """``amplitude * sin(2*pi*frequency*t + phase) + offset``."""

    def __init__(self, name: str, frequency: float, amplitude: float = 1.0,
                 phase: float = 0.0, offset: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.frequency = frequency
        self.amplitude = amplitude
        self.phase = phase
        self.offset = offset

    def processing(self):
        for k in range(self.out.rate):
            t = self._sample_time(k)
            value = self.offset + self.amplitude * np.sin(
                2 * np.pi * self.frequency * t + self.phase
            )
            self.out.write(value, k)

    def processing_block(self, n):
        t = self._block_times(n)
        self.out.write_block(self.offset + self.amplitude * np.sin(
            2 * np.pi * self.frequency * t + self.phase
        ))


class ConstSource(TdfSourceBase):
    """Constant level."""

    def __init__(self, name: str, level: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.level = level

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(self.level, k)

    def processing_block(self, n):
        if type(self.level) is float:
            self.out.write_block(np.full(n * self.out.rate, self.level))
        else:
            # Non-float levels keep the signal in object mode; replay
            # the scalar writes so the payload type is preserved.
            self._scalar_fallback(n)


class StepSource(TdfSourceBase):
    """0 before ``step_time``, ``level`` at and after it."""

    def __init__(self, name: str, level: float = 1.0,
                 step_time: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.level = level
        self.step_time = step_time

    def processing(self):
        for k in range(self.out.rate):
            t = self._sample_time(k)
            self.out.write(self.level if t >= self.step_time else 0.0, k)

    def processing_block(self, n):
        if type(self.level) is not float:
            self._scalar_fallback(n)
            return
        t = self._block_times(n)
        self.out.write_block(
            np.where(t >= self.step_time, self.level, 0.0)
        )


class PulseSource(TdfSourceBase):
    """Periodic pulse train: ``high`` for the first ``duty`` fraction of
    each period, ``low`` for the rest."""

    def __init__(self, name: str, period: float, duty: float = 0.5,
                 high: float = 1.0, low: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must lie strictly between 0 and 1")
        self.period = period
        self.duty = duty
        self.high = high
        self.low = low

    def processing(self):
        for k in range(self.out.rate):
            phase = (self._sample_time(k) / self.period) % 1.0
            self.out.write(self.high if phase < self.duty else self.low, k)

    def processing_block(self, n):
        if type(self.high) is not float or type(self.low) is not float:
            self._scalar_fallback(n)
            return
        phase = (self._block_times(n) / self.period) % 1.0
        self.out.write_block(
            np.where(phase < self.duty, self.high, self.low)
        )


class RampSource(TdfSourceBase):
    """``offset + slope * t``."""

    def __init__(self, name: str, slope: float = 1.0, offset: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.slope = slope
        self.offset = offset

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(self.offset + self.slope * self._sample_time(k),
                           k)

    def processing_block(self, n):
        self.out.write_block(
            self.offset + self.slope * self._block_times(n)
        )


class GaussianNoiseSource(TdfSourceBase):
    """White Gaussian noise with given RMS; reproducible via ``seed``."""

    def __init__(self, name: str, rms: float = 1.0, seed: SeedLike = 0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.rms = rms
        self._rng = as_generator(seed)

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self._rng.normal(0.0, self.rms)), k)

    def processing_block(self, n):
        # One batched draw consumes the generator stream exactly like
        # n*rate sequential scalar draws (same bit-stream positions).
        self.out.write_block(
            self._rng.normal(0.0, self.rms, n * self.out.rate)
        )

    def checkpoint_state(self):
        return {"rng": self._rng.bit_generator.state}

    def restore_state(self, data):
        if data is not None:
            self._rng.bit_generator.state = data["rng"]


class PrbsSource(TdfSourceBase):
    """Pseudo-random binary sequence (maximal-length LFSR, 15 bits).

    Emits ``+amplitude`` / ``-amplitude``; ``samples_per_bit`` stretches
    each bit over several samples (for eye-diagram-style workloads).
    """

    TAPS = (15, 14)  # x^15 + x^14 + 1

    def __init__(self, name: str, amplitude: float = 1.0,
                 samples_per_bit: int = 1, seed: int = 0b101010101010101,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.amplitude = amplitude
        self.samples_per_bit = samples_per_bit
        self._state = seed & 0x7FFF or 1
        self._bit = self._advance()
        self._count = 0

    def _advance(self) -> int:
        bit = ((self._state >> (self.TAPS[0] - 1))
               ^ (self._state >> (self.TAPS[1] - 1))) & 1
        self._state = ((self._state << 1) | bit) & 0x7FFF
        return self._state & 1

    def processing(self):
        for k in range(self.out.rate):
            if self._count == self.samples_per_bit:
                self._bit = self._advance()
                self._count = 0
            self._count += 1
            self.out.write(
                self.amplitude if self._bit else -self.amplitude, k
            )

    def processing_block(self, n):
        # The LFSR recurrence is inherently sequential, but emitting the
        # whole block through one array write still removes the
        # per-sample port dispatch.
        values = np.empty(n * self.out.rate)
        for j in range(len(values)):
            if self._count == self.samples_per_bit:
                self._bit = self._advance()
                self._count = 0
            self._count += 1
            values[j] = self.amplitude if self._bit else -self.amplitude
        self.out.write_block(values)

    def checkpoint_state(self):
        return {"state": self._state, "bit": self._bit,
                "count": self._count}

    def restore_state(self, data):
        if data is not None:
            self._state = int(data["state"])
            self._bit = int(data["bit"])
            self._count = int(data["count"])


class SampleListSource(TdfSourceBase):
    """Plays back a pre-computed sample array (cycling at the end)."""

    def __init__(self, name: str, samples: Sequence[float],
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.samples = np.asarray(samples, dtype=float)
        if self.samples.size == 0:
            raise ValueError("sample list must be non-empty")
        self._index = 0

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self.samples[self._index]), k)
            self._index = (self._index + 1) % len(self.samples)

    def processing_block(self, n):
        total = n * self.out.rate
        idx = (self._index + np.arange(total)) % len(self.samples)
        self.out.write_block(self.samples[idx])
        self._index = (self._index + total) % len(self.samples)

    def checkpoint_state(self):
        return {"index": self._index}

    def restore_state(self, data):
        if data is not None:
            self._index = int(data["index"])


class FunctionSource(TdfSourceBase):
    """Samples an arbitrary function of time."""

    def __init__(self, name: str, func: Callable[[float], float],
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.func = func

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self.func(self._sample_time(k))), k)

    def processing_block(self, n):
        # Arbitrary callables cannot be vectorized safely; call them one
        # by one (with plain-float arguments, as in scalar mode) and
        # batch only the port writes.
        times = self._block_times(n)
        self.out.write_block(np.fromiter(
            (float(self.func(float(t))) for t in times),
            dtype=float, count=len(times),
        ))
