"""TDF signal sources for the mixed-signal library."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.module import Module
from ..core.time import SimTime
from ..tdf.module import TdfModule
from ..tdf.signal import TdfOut
from .seeding import SeedLike, as_generator


class TdfSourceBase(TdfModule):
    """Shared scaffolding: one output port, optional timestep setting."""

    def __init__(self, name: str, parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent)
        self.out = TdfOut("out", rate=rate)
        self._timestep = timestep

    def set_attributes(self):
        if self._timestep is not None:
            self.set_timestep(self._timestep)

    def _sample_time(self, k: int) -> float:
        """Time of sample ``k`` within the current activation."""
        step = self.timestep.to_seconds() / self.out.rate
        return self.local_time.to_seconds() + k * step


class SineSource(TdfSourceBase):
    """``amplitude * sin(2*pi*frequency*t + phase) + offset``."""

    def __init__(self, name: str, frequency: float, amplitude: float = 1.0,
                 phase: float = 0.0, offset: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.frequency = frequency
        self.amplitude = amplitude
        self.phase = phase
        self.offset = offset

    def processing(self):
        for k in range(self.out.rate):
            t = self._sample_time(k)
            value = self.offset + self.amplitude * np.sin(
                2 * np.pi * self.frequency * t + self.phase
            )
            self.out.write(value, k)


class ConstSource(TdfSourceBase):
    """Constant level."""

    def __init__(self, name: str, level: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.level = level

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(self.level, k)


class StepSource(TdfSourceBase):
    """0 before ``step_time``, ``level`` at and after it."""

    def __init__(self, name: str, level: float = 1.0,
                 step_time: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.level = level
        self.step_time = step_time

    def processing(self):
        for k in range(self.out.rate):
            t = self._sample_time(k)
            self.out.write(self.level if t >= self.step_time else 0.0, k)


class PulseSource(TdfSourceBase):
    """Periodic pulse train: ``high`` for the first ``duty`` fraction of
    each period, ``low`` for the rest."""

    def __init__(self, name: str, period: float, duty: float = 0.5,
                 high: float = 1.0, low: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must lie strictly between 0 and 1")
        self.period = period
        self.duty = duty
        self.high = high
        self.low = low

    def processing(self):
        for k in range(self.out.rate):
            phase = (self._sample_time(k) / self.period) % 1.0
            self.out.write(self.high if phase < self.duty else self.low, k)


class RampSource(TdfSourceBase):
    """``offset + slope * t``."""

    def __init__(self, name: str, slope: float = 1.0, offset: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.slope = slope
        self.offset = offset

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(self.offset + self.slope * self._sample_time(k),
                           k)


class GaussianNoiseSource(TdfSourceBase):
    """White Gaussian noise with given RMS; reproducible via ``seed``."""

    def __init__(self, name: str, rms: float = 1.0, seed: SeedLike = 0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.rms = rms
        self._rng = as_generator(seed)

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self._rng.normal(0.0, self.rms)), k)


class PrbsSource(TdfSourceBase):
    """Pseudo-random binary sequence (maximal-length LFSR, 15 bits).

    Emits ``+amplitude`` / ``-amplitude``; ``samples_per_bit`` stretches
    each bit over several samples (for eye-diagram-style workloads).
    """

    TAPS = (15, 14)  # x^15 + x^14 + 1

    def __init__(self, name: str, amplitude: float = 1.0,
                 samples_per_bit: int = 1, seed: int = 0b101010101010101,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.amplitude = amplitude
        self.samples_per_bit = samples_per_bit
        self._state = seed & 0x7FFF or 1
        self._bit = self._advance()
        self._count = 0

    def _advance(self) -> int:
        bit = ((self._state >> (self.TAPS[0] - 1))
               ^ (self._state >> (self.TAPS[1] - 1))) & 1
        self._state = ((self._state << 1) | bit) & 0x7FFF
        return self._state & 1

    def processing(self):
        for k in range(self.out.rate):
            if self._count == self.samples_per_bit:
                self._bit = self._advance()
                self._count = 0
            self._count += 1
            self.out.write(
                self.amplitude if self._bit else -self.amplitude, k
            )


class SampleListSource(TdfSourceBase):
    """Plays back a pre-computed sample array (cycling at the end)."""

    def __init__(self, name: str, samples: Sequence[float],
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.samples = np.asarray(samples, dtype=float)
        if self.samples.size == 0:
            raise ValueError("sample list must be non-empty")
        self._index = 0

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self.samples[self._index]), k)
            self._index = (self._index + 1) % len(self.samples)


class FunctionSource(TdfSourceBase):
    """Samples an arbitrary function of time."""

    def __init__(self, name: str, func: Callable[[float], float],
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None, rate: int = 1):
        super().__init__(name, parent, timestep, rate)
        self.func = func

    def processing(self):
        for k in range(self.out.rate):
            self.out.write(float(self.func(self._sample_time(k))), k)
